"""Differential tests: ReportValidator.process_columnar vs process.

The columnar entry point runs the stateless screens vectorized, but it
must be observationally identical to the object path — same survivors,
in the same order, with the same quarantine accounting — on clean
streams and on every fault class the screens exist for.
"""

from __future__ import annotations

import copy
import math

import numpy as np
import pytest

from repro.hardware.llrp_columnar import ColumnarReportBatch
from repro.hardware.llrp import TagReportData
from repro.robustness.validation import ReportValidator, ValidationConfig


def make_report(
    time_s: float = 0.0,
    phase: float = 1.0,
    epc: str = "E2-TEST-1",
    channel: int = 8,
    rssi: float = -60.0,
    antenna: int = 1,
) -> TagReportData:
    return TagReportData(
        epc=epc,
        antenna_port=antenna,
        channel_index=channel,
        reader_timestamp_us=round(time_s * 1e6),
        host_timestamp_us=round(time_s * 1e6) + 1500,
        phase_rad=phase,
        rssi_dbm=rssi,
    )


def smooth_stream(n: int = 80, dt: float = 0.05) -> list:
    return [
        make_report(
            time_s=i * dt,
            phase=float(np.mod(1.0 + 0.3 * np.sin(0.5 * i * dt), 2 * np.pi)),
        )
        for i in range(n)
    ]


def _differential(reports, config=None):
    object_validator = ReportValidator(
        copy.deepcopy(config) if config else None
    )
    columnar_validator = ReportValidator(
        copy.deepcopy(config) if config else None
    )
    object_out = object_validator.process(list(reports))
    columnar_out = columnar_validator.process_columnar(
        ColumnarReportBatch.from_reports(list(reports))
    )
    assert columnar_out == object_out
    assert (
        columnar_validator.stats.__dict__ == object_validator.stats.__dict__
    )
    return object_out


class TestCleanStreams:
    def test_clean_stream(self):
        out = _differential(smooth_stream())
        assert len(out) == 80

    def test_empty(self):
        assert _differential([]) == []


class TestFaultClasses:
    def test_phase_out_of_range(self):
        reports = smooth_stream(20)
        reports[3] = make_report(time_s=0.15, phase=2 * math.pi + 0.4)
        reports[7] = make_report(time_s=0.35, phase=-0.2)
        _differential(reports)

    def test_rssi_out_of_range(self):
        reports = smooth_stream(20)
        reports[4] = make_report(time_s=0.2, rssi=+10.0)
        _differential(reports)

    def test_bad_channel(self):
        reports = smooth_stream(20)
        reports[5] = make_report(time_s=0.25, channel=0)
        reports[6] = make_report(time_s=0.3, channel=999)
        _differential(reports)

    def test_negative_timestamp(self):
        reports = smooth_stream(20)
        bad = make_report(time_s=0.45)
        reports[9] = TagReportData(
            epc=bad.epc,
            antenna_port=bad.antenna_port,
            channel_index=bad.channel_index,
            reader_timestamp_us=-5,
            host_timestamp_us=bad.host_timestamp_us,
            phase_rad=bad.phase_rad,
            rssi_dbm=bad.rssi_dbm,
        )
        _differential(reports)

    def test_duplicates(self):
        reports = smooth_stream(30)
        reports = reports[:10] + [reports[9]] * 3 + reports[10:]
        _differential(reports)

    def test_reordered(self):
        reports = smooth_stream(30)
        reports[12], reports[20] = reports[20], reports[12]
        _differential(reports)

    def test_pi_slips_repaired_identically(self):
        reports = smooth_stream(60)
        for i in (15, 16, 40):
            r = reports[i]
            reports[i] = make_report(
                time_s=r.reader_timestamp_us / 1e6,
                phase=float(np.mod(r.phase_rad + np.pi, 2 * np.pi)),
            )
        _differential(reports)

    def test_everything_at_once(self):
        reports = smooth_stream(60)
        reports[3] = make_report(time_s=0.15, phase=7.5)
        reports[10] = make_report(time_s=0.5, rssi=+5.0)
        reports[20] = make_report(time_s=1.0, channel=0)
        reports = reports[:30] + [reports[29]] * 2 + reports[30:]
        reports[40], reports[45] = reports[45], reports[40]
        _differential(reports)

    def test_custom_config(self):
        config = ValidationConfig(repair_pi_slips=False, dedup_memory=4)
        reports = smooth_stream(25)
        reports = reports[:6] + [reports[5]] * 2 + reports[6:]
        reports[12], reports[13] = reports[13], reports[12]
        _differential(reports, config)


class TestWireDtypeColumns:
    def test_uint64_timestamps_from_wire(self):
        """Wire decode yields uint64 timestamps; screens must cope."""
        reports = smooth_stream(20)
        cols = ColumnarReportBatch.from_reports(reports)
        wire_cols = ColumnarReportBatch(
            epcs=cols.epcs,
            epc_index=cols.epc_index,
            antenna_port=cols.antenna_port,
            channel_index=cols.channel_index,
            reader_timestamp_us=cols.reader_timestamp_us.astype(np.uint64),
            host_timestamp_us=cols.host_timestamp_us.astype(np.uint64),
            phase_rad=cols.phase_rad,
            rssi_dbm=cols.rssi_dbm,
        )
        a = ReportValidator()
        b = ReportValidator()
        assert b.process_columnar(wire_cols) == a.process(reports)
        assert b.stats.__dict__ == a.stats.__dict__

    def test_huge_uint64_not_misread_as_negative(self):
        reports = smooth_stream(5)
        cols = ColumnarReportBatch.from_reports(reports)
        big = cols.reader_timestamp_us.astype(np.uint64).copy()
        big[2] = np.uint64(2**63 + 17)  # would wrap negative as int64
        wire_cols = ColumnarReportBatch(
            epcs=cols.epcs,
            epc_index=cols.epc_index,
            antenna_port=cols.antenna_port,
            channel_index=cols.channel_index,
            reader_timestamp_us=big,
            host_timestamp_us=cols.host_timestamp_us.astype(np.uint64),
            phase_rad=cols.phase_rad,
            rssi_dbm=cols.rssi_dbm,
        )
        validator = ReportValidator()
        out = validator.process_columnar(wire_cols)
        # The huge timestamp is *not* screened as negative; it survives
        # the bad_timestamp screen (later screens may still act on it).
        assert validator.stats.bad_timestamp == 0
        assert len(out) >= 1
