"""Tests for repro.robustness.gating (per-disk quality scoring)."""

from __future__ import annotations

import pytest

from repro.core.geometry import Point3
from repro.robustness.gating import (
    GATE_HIGH_RESIDUAL,
    GATE_POOR_COVERAGE,
    GATE_WEAK_PEAK,
    DiskQuality,
    score_disk,
    select_disks,
)
from repro.sim.faults import jam_window, stall_disk

POSE = Point3(0.4, 1.9, 0.0)


@pytest.fixture(scope="module")
def collection(calibrated_scenario_2d):
    batch, reader = calibrated_scenario_2d.collect(POSE)
    return calibrated_scenario_2d, batch, reader


def quality_for(scenario, batch, epc):
    series = scenario.system.extract_series(batch, epc, 1)
    spectrum = scenario.system.azimuth_spectrum(series)
    record = scenario.scene.registry.get(epc)
    return score_disk(record, series, spectrum)


class TestScoring:
    def test_clean_disk_passes(self, collection):
        scenario, batch, _reader = collection
        for epc in scenario.scene.registry.epcs():
            quality = quality_for(scenario, batch, epc)
            assert quality.passed, quality
            assert quality.rotation_coverage > 0.9
            assert quality.sharpness > 2.0

    def test_stalled_disk_fails_coverage(self, collection):
        scenario, batch, _reader = collection
        epc = scenario.scene.registry.epcs()[0]
        disk = scenario.scene.registry.get(epc).disk
        stalled = stall_disk(batch, disk, epc)
        quality = quality_for(scenario, stalled, epc)
        assert GATE_POOR_COVERAGE in quality.gate_reasons
        assert quality.rotation_coverage < 0.5

    def test_jammed_disk_fails(self, collection, rng):
        """Randomized phases destroy the model fit: the residual
        explodes and/or the peak collapses."""
        scenario, batch, _reader = collection
        epc = scenario.scene.registry.epcs()[0]
        jammed = jam_window(batch, 0.0, 1e9, rng)
        quality = quality_for(scenario, jammed, epc)
        assert not quality.passed
        assert (
            GATE_HIGH_RESIDUAL in quality.gate_reasons
            or GATE_WEAK_PEAK in quality.gate_reasons
        )


def _quality(epc, reasons=(), sharpness=5.0):
    return DiskQuality(
        epc=epc,
        peak_power=0.5,
        sharpness=sharpness,
        residual_rms_rad=0.3,
        rotation_coverage=1.0,
        gate_reasons=tuple(reasons),
    )


class TestSelection:
    def test_all_passing_kept(self):
        qualities = [_quality("a"), _quality("b"), _quality("c")]
        kept, excluded = select_disks(qualities)
        assert kept == ["a", "b", "c"]
        assert excluded == []

    def test_failing_disk_excluded_with_three(self):
        qualities = [
            _quality("a"),
            _quality("b", reasons=(GATE_POOR_COVERAGE,)),
            _quality("c"),
        ]
        kept, excluded = select_disks(qualities)
        assert kept == ["a", "c"]
        assert [q.epc for q in excluded] == ["b"]

    def test_never_below_minimum(self):
        """With two disks a failing one is flagged, not excluded —
        localization needs two bearings no matter what."""
        qualities = [_quality("a"), _quality("b", reasons=(GATE_WEAK_PEAK,))]
        kept, excluded = select_disks(qualities)
        assert kept == ["a", "b"]
        assert excluded == []

    def test_worst_dropped_first(self):
        qualities = [
            _quality("a", reasons=(GATE_WEAK_PEAK,), sharpness=2.0),
            _quality("b"),
            _quality("c", reasons=(GATE_WEAK_PEAK, GATE_POOR_COVERAGE)),
            _quality("d"),
        ]
        kept, excluded = select_disks(qualities)
        assert [q.epc for q in excluded] == ["c", "a"]
        assert kept == ["b", "d"]

    def test_minimum_respected_when_all_fail(self):
        qualities = [
            _quality("a", reasons=(GATE_WEAK_PEAK,)),
            _quality("b", reasons=(GATE_WEAK_PEAK,)),
            _quality("c", reasons=(GATE_WEAK_PEAK,)),
        ]
        kept, excluded = select_disks(qualities)
        assert len(kept) == 2
        assert len(excluded) == 1


class TestGatedPipeline:
    def test_gating_noop_on_clean_two_disk_scene(self, collection):
        """With two clean disks the gated fix equals the ungated one."""
        from dataclasses import replace

        scenario, batch, reader = collection
        gated_system = type(scenario.system)(
            scenario.scene.registry,
            replace(scenario.config.pipeline, disk_gating=True),
        )
        gated = gated_system.locate_2d(batch, 1)
        ungated = scenario.system.locate_2d(batch, 1)
        assert gated.position.distance_to(ungated.position) < 1e-9

    def test_diagnosed_reports_all_disks(self, collection):
        scenario, batch, _reader = collection
        fix, diagnostics = scenario.system.locate_2d_diagnosed(batch, 1)
        assert set(diagnostics.disks_used) == set(
            scenario.scene.registry.epcs()
        )
        assert diagnostics.disks_excluded == ()
        assert diagnostics.profile_used == "R"
        assert not diagnostics.fallback_applied
        assert not diagnostics.degraded
        assert len(diagnostics.qualities) == 2
        assert diagnostics.residual_m == fix.residual
