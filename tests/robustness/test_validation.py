"""Tests for repro.robustness.validation (ingest screening)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.constants import NUM_CHANNELS
from repro.core.phase import wrap_phase_signed
from repro.hardware.llrp import TagReportData
from repro.robustness.validation import (
    QuarantineStats,
    ReportValidator,
    ValidationConfig,
)


def make_report(
    time_s: float = 0.0,
    phase: float = 1.0,
    epc: str = "E2-TEST-1",
    channel: int = 8,
    rssi: float = -60.0,
    antenna: int = 1,
) -> TagReportData:
    return TagReportData(
        epc=epc,
        antenna_port=antenna,
        channel_index=channel,
        reader_timestamp_us=round(time_s * 1e6),
        host_timestamp_us=round(time_s * 1e6) + 1500,
        phase_rad=phase,
        rssi_dbm=rssi,
    )


def smooth_stream(n: int = 100, dt: float = 0.05) -> list:
    """A clean slowly varying phase stream (rotating-tag-like)."""
    return [
        make_report(time_s=i * dt, phase=float(np.mod(1.0 + 0.3 * np.sin(0.5 * i * dt), 2 * np.pi)))
        for i in range(n)
    ]


class TestRangeScreens:
    def test_clean_stream_untouched(self):
        validator = ReportValidator()
        reports = smooth_stream()
        accepted = validator.process(reports)
        assert len(accepted) == len(reports)
        assert validator.stats.quarantined == 0
        assert validator.stats.accepted == len(reports)

    def test_phase_out_of_range_rejected(self):
        validator = ReportValidator()
        bad = [
            make_report(time_s=0.0, phase=2 * math.pi + 0.5),
            make_report(time_s=0.1, phase=-0.3),
            make_report(time_s=0.2, phase=float("nan")),
        ]
        assert validator.process(bad) == []
        assert validator.stats.phase_out_of_range == 3

    def test_rssi_out_of_range_rejected(self):
        validator = ReportValidator()
        bad = [
            make_report(time_s=0.0, rssi=40.0),
            make_report(time_s=0.1, rssi=-200.0),
            make_report(time_s=0.2, rssi=float("inf")),
        ]
        assert validator.process(bad) == []
        assert validator.stats.rssi_out_of_range == 3

    def test_bad_channel_rejected(self):
        validator = ReportValidator()
        assert validator.process([make_report(channel=NUM_CHANNELS)]) == []
        assert validator.process([make_report(channel=-1)]) == []
        assert validator.stats.bad_channel == 2

    def test_negative_timestamp_rejected(self):
        validator = ReportValidator()
        assert validator.process([make_report(time_s=-1.0)]) == []
        assert validator.stats.bad_timestamp == 1


class TestDeduplication:
    def test_exact_duplicates_suppressed(self):
        validator = ReportValidator()
        report = make_report(time_s=1.0)
        accepted = validator.process([report, report, report])
        assert len(accepted) == 1
        assert validator.stats.duplicates == 2

    def test_duplicates_across_chunks(self):
        validator = ReportValidator()
        report = make_report(time_s=1.0)
        validator.process([report])
        assert validator.process([report]) == []
        assert validator.stats.duplicates == 1

    def test_different_tags_not_duplicates(self):
        validator = ReportValidator()
        a = make_report(time_s=1.0, epc="E2-A")
        b = make_report(time_s=1.0, epc="E2-B")
        assert len(validator.process([a, b])) == 2
        assert validator.stats.duplicates == 0


class TestOrdering:
    def test_out_of_order_counted_but_kept(self):
        validator = ReportValidator()
        reports = [
            make_report(time_s=0.0),
            make_report(time_s=0.2),
            make_report(time_s=0.1),
        ]
        accepted = validator.process(reports)
        assert len(accepted) == 3
        assert validator.stats.reordered == 1
        times = [r.reader_timestamp_us for r in accepted]
        assert times == sorted(times)

    def test_monotonicity_repaired_in_output(self, rng):
        validator = ReportValidator()
        reports = smooth_stream()
        shuffled = [reports[i] for i in rng.permutation(len(reports))]
        accepted = validator.process(shuffled)
        times = [r.reader_timestamp_us for r in accepted]
        assert times == sorted(times)
        assert len(accepted) == len(reports)


class TestPiSlipRepair:
    def test_isolated_slip_repaired(self):
        validator = ReportValidator()
        reports = smooth_stream(50)
        clean_phases = [r.phase_rad for r in reports]
        slipped = list(reports)
        victim = slipped[20]
        slipped[20] = make_report(
            time_s=victim.reader_time_s,
            phase=float((victim.phase_rad + math.pi) % (2 * math.pi)),
        )
        accepted = validator.process(slipped)
        assert validator.stats.pi_slips_repaired == 1
        repaired = [r.phase_rad for r in accepted]
        np.testing.assert_allclose(repaired, clean_phases, atol=1e-9)

    def test_slip_run_repaired(self):
        validator = ReportValidator()
        reports = smooth_stream(60)
        clean_phases = [r.phase_rad for r in reports]
        slipped = []
        for i, r in enumerate(reports):
            if 25 <= i < 35:
                r = make_report(
                    time_s=r.reader_time_s,
                    phase=float((r.phase_rad + math.pi) % (2 * math.pi)),
                )
            slipped.append(r)
        accepted = validator.process(slipped)
        assert validator.stats.pi_slips_repaired == 10
        repaired = [r.phase_rad for r in accepted]
        np.testing.assert_allclose(repaired, clean_phases, atol=1e-9)

    def test_large_gap_not_classified(self):
        """Across a long read gap a ~pi change can be real rotation: the
        detector must re-anchor instead of 'repairing'."""
        validator = ReportValidator()
        a = make_report(time_s=0.0, phase=0.5)
        b = make_report(time_s=10.0, phase=0.5 + math.pi)
        accepted = validator.process([a, b])
        assert [r.phase_rad for r in accepted] == [a.phase_rad, b.phase_rad]
        assert validator.stats.pi_slips_repaired == 0

    def test_detector_can_be_disabled(self):
        validator = ReportValidator(ValidationConfig(repair_pi_slips=False))
        reports = smooth_stream(30)
        slipped = [
            make_report(
                time_s=r.reader_time_s,
                phase=float((r.phase_rad + math.pi) % (2 * math.pi)),
            )
            if i == 10
            else r
            for i, r in enumerate(reports)
        ]
        accepted = validator.process(slipped)
        assert accepted[10].phase_rad == slipped[10].phase_rad
        assert validator.stats.pi_slips_repaired == 0


class TestStats:
    def test_quarantine_ratio(self):
        stats = QuarantineStats(received=100, duplicates=3, bad_channel=2)
        assert stats.quarantined == 5
        assert stats.quarantine_ratio == pytest.approx(0.05)

    def test_snapshot_is_independent(self):
        validator = ReportValidator()
        validator.process([make_report()])
        snap = validator.stats.snapshot()
        validator.process([make_report(time_s=1.0)])
        assert snap.received == 1
        assert validator.stats.received == 2

    def test_as_dict_roundtrip(self):
        stats = QuarantineStats(received=10, accepted=8, duplicates=2)
        assert QuarantineStats(**stats.as_dict()) == stats


def test_wrapped_phases_survive_screening():
    """Phases exactly at 0 and just below 2*pi are legal reader output."""
    validator = ReportValidator()
    reports = [
        make_report(time_s=0.0, phase=0.0),
        make_report(time_s=10.0, phase=2 * math.pi - 1e-9),
    ]
    assert len(validator.process(reports)) == 2


def test_slip_band_excludes_legitimate_change():
    """The slip band must sit above the largest per-read phase change the
    paper's disks produce (~0.4 rad at 40 Hz reads)."""
    cfg = ValidationConfig()
    max_legit_step = 0.95  # rad, at the max gap the detector classifies
    assert math.pi - cfg.pi_slip_tolerance_rad > max_legit_step
    assert float(np.abs(wrap_phase_signed(math.pi))) <= math.pi
