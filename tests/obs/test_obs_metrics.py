"""Tests for repro.obs.metrics (registry, instruments, kill-switch)."""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_COUNT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    get_registry,
    set_telemetry_enabled,
    telemetry_enabled,
    use_registry,
)


class TestInstruments:
    def test_counter_increments_and_rejects_negative(self):
        counter = Counter()
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_gauge_set_inc_dec(self):
        gauge = Gauge()
        gauge.set(10)
        gauge.inc(5)
        gauge.dec(2)
        assert gauge.value == 13.0

    def test_histogram_le_semantics(self):
        # A value equal to a bound lands in that bound's bucket.
        histogram = Histogram((1.0, 2.0, 4.0))
        for value in (0.5, 1.0, 1.5, 2.0, 4.0, 100.0):
            histogram.observe(value)
        assert histogram.counts == [2, 2, 1, 1]
        assert histogram.count == 6
        assert histogram.sum == pytest.approx(109.0)

    def test_histogram_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            Histogram(())
        with pytest.raises(ValueError):
            Histogram((1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram((2.0, 1.0))

    def test_histogram_timer_observes(self):
        histogram = Histogram((10.0,))
        with histogram.time():
            pass
        assert histogram.count == 1
        assert 0.0 <= histogram.sum < 10.0


class TestRegistry:
    def test_same_labels_return_same_instrument(self):
        registry = MetricsRegistry()
        a = registry.counter("c_total", "help", kind="x")
        b = registry.counter("c_total", kind="x")
        assert a is b
        a.inc()
        assert b.value == 1.0

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        a = registry.counter("c_total", x="1", y="2")
        b = registry.counter("c_total", y="2", x="1")
        assert a is b

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("m")
        with pytest.raises(ValueError):
            registry.gauge("m")

    def test_histogram_bucket_conflict_raises(self):
        registry = MetricsRegistry()
        registry.histogram("h", buckets=(1.0, 2.0))
        with pytest.raises(ValueError):
            registry.histogram("h", buckets=(1.0, 3.0))
        # Same buckets are fine.
        registry.histogram("h", buckets=(1.0, 2.0))

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "counts things", kind="a").inc(3)
        registry.gauge("g").set(7)
        registry.histogram(
            "h", buckets=DEFAULT_COUNT_BUCKETS
        ).observe(5)
        snapshot = registry.snapshot()
        assert snapshot["schema"] == "tagspin-metrics/1"
        counter = snapshot["metrics"]["c_total"]
        assert counter["type"] == "counter"
        assert counter["help"] == "counts things"
        assert counter["samples"] == [
            {"labels": {"kind": "a"}, "value": 3.0}
        ]
        histogram = snapshot["metrics"]["h"]["samples"][0]
        assert histogram["count"] == 1
        assert len(histogram["counts"]) == len(histogram["bounds"]) + 1

    def test_use_registry_scopes_default(self):
        outer = get_registry()
        with use_registry() as scoped:
            assert get_registry() is scoped
            assert get_registry() is not outer
        assert get_registry() is outer

    def test_concurrent_increments_are_exact(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")

        def work() -> None:
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=work) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8000.0


class TestKillSwitch:
    def test_disable_short_circuits_every_update(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total")
        gauge = registry.gauge("g")
        histogram = registry.histogram("h", buckets=(1.0,))
        previous = set_telemetry_enabled(False)
        try:
            assert not telemetry_enabled()
            counter.inc()
            gauge.set(5)
            histogram.observe(0.5)
            with histogram.time():
                pass
            assert counter.value == 0.0
            assert gauge.value == 0.0
            assert histogram.count == 0
        finally:
            set_telemetry_enabled(previous)
        counter.inc()
        assert counter.value == 1.0

    def test_toggle_returns_previous_state(self):
        previous = set_telemetry_enabled(False)
        try:
            assert set_telemetry_enabled(True) is False
            assert set_telemetry_enabled(previous) is True
        finally:
            set_telemetry_enabled(previous)
