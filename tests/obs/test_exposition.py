"""Tests for repro.obs.exposition (Prometheus text, snapshot merge).

The merge property tests are the load-bearing ones: the sharded fleet
folds dead-worker snapshots with :func:`merge_snapshots`, and the
"exact across restarts" guarantee only holds if merging two snapshots
is indistinguishable from having recorded the union stream into one
registry.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.exposition import (
    SNAPSHOT_SCHEMA,
    empty_snapshot,
    histogram_quantile,
    histogram_totals,
    merge_snapshots,
    sample_value,
    to_prometheus,
)
from repro.obs.metrics import MetricsRegistry

BOUNDS = (0.001, 0.01, 0.1, 1.0, 10.0)


def _snapshot_of(values, bounds=BOUNDS):
    registry = MetricsRegistry()
    histogram = registry.histogram("h_seconds", buckets=bounds)
    for value in values:
        histogram.observe(value)
    return registry.snapshot()


class TestPrometheusText:
    def test_renders_all_instrument_types(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "a counter", kind="x").inc(2)
        registry.gauge("g", "a gauge").set(1.5)
        registry.histogram("h_seconds", buckets=(0.1, 1.0)).observe(0.05)
        text = to_prometheus(registry.snapshot())
        assert "# TYPE c_total counter" in text
        assert 'c_total{kind="x"} 2' in text
        assert "# HELP c_total a counter" in text
        assert "# TYPE g gauge" in text
        assert "# TYPE h_seconds histogram" in text
        assert 'h_seconds_bucket{le="0.1"} 1' in text
        assert 'h_seconds_bucket{le="+Inf"} 1' in text
        assert "h_seconds_count 1" in text
        assert text.endswith("\n")

    def test_bucket_counts_are_cumulative_and_monotone(self):
        snapshot = _snapshot_of([0.005, 0.005, 0.5, 5.0, 50.0])
        text = to_prometheus(snapshot)
        counts = []
        for line in text.splitlines():
            if line.startswith("h_seconds_bucket"):
                counts.append(float(line.rsplit(" ", 1)[1]))
        assert counts == sorted(counts)
        assert counts[-1] == 5.0

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c_total", kind='we"ird\n\\x').inc()
        text = to_prometheus(registry.snapshot())
        assert 'kind="we\\"ird\\n\\\\x"' in text


class TestHelpers:
    def test_sample_value_sums_subset_matches(self):
        registry = MetricsRegistry()
        registry.counter("c_total", dep="a", outcome="ok").inc(2)
        registry.counter("c_total", dep="a", outcome="error").inc(1)
        registry.counter("c_total", dep="b", outcome="ok").inc(5)
        snapshot = registry.snapshot()
        assert sample_value(snapshot, "c_total") == 8.0
        assert sample_value(snapshot, "c_total", {"dep": "a"}) == 3.0
        assert sample_value(snapshot, "c_total", {"outcome": "ok"}) == 7.0
        assert sample_value(snapshot, "c_total", {"dep": "missing"}) == 0.0

    def test_histogram_totals_and_quantile(self):
        snapshot = _snapshot_of([0.005] * 50 + [0.5] * 49 + [5.0])
        totals = histogram_totals(snapshot, "h_seconds")
        assert totals["count"] == 100
        assert histogram_quantile(totals, 0.5) == pytest.approx(0.01)
        assert histogram_quantile(totals, 0.99) == pytest.approx(1.0)

    def test_quantile_of_empty_histogram_is_nan(self):
        totals = histogram_totals(_snapshot_of([]), "h_seconds")
        assert math.isnan(histogram_quantile(totals, 0.5))


class TestMergeSemantics:
    def test_merge_skips_none_and_empty(self):
        snapshot = _snapshot_of([0.5])
        merged = merge_snapshots([None, empty_snapshot(), snapshot, None])
        assert merged["schema"] == SNAPSHOT_SCHEMA
        assert histogram_totals(merged, "h_seconds")["count"] == 1

    def test_merge_sums_counters_and_gauges(self):
        a = MetricsRegistry()
        a.counter("c_total", kind="x").inc(2)
        a.gauge("g").set(3)
        b = MetricsRegistry()
        b.counter("c_total", kind="x").inc(5)
        b.counter("c_total", kind="y").inc(1)
        b.gauge("g").set(4)
        merged = merge_snapshots([a.snapshot(), b.snapshot()])
        assert sample_value(merged, "c_total", {"kind": "x"}) == 7.0
        assert sample_value(merged, "c_total", {"kind": "y"}) == 1.0
        assert sample_value(merged, "g") == 7.0

    @given(
        left=st.lists(
            st.floats(0.0, 100.0, allow_nan=False), max_size=50
        ),
        right=st.lists(
            st.floats(0.0, 100.0, allow_nan=False), max_size=50
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_histogram_merge_equals_union_stream(self, left, right):
        merged = merge_snapshots(
            [_snapshot_of(left), _snapshot_of(right)]
        )
        union = _snapshot_of(left + right)
        got = histogram_totals(merged, "h_seconds")
        want = histogram_totals(union, "h_seconds")
        assert got["counts"] == want["counts"]
        assert got["count"] == want["count"]
        assert math.isclose(
            got["sum"], want["sum"], rel_tol=1e-9, abs_tol=1e-9
        )

    @given(
        streams=st.lists(
            st.lists(st.integers(0, 1000), max_size=20),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_counter_merge_equals_union_stream(self, streams):
        def record(stream):
            registry = MetricsRegistry()
            counter = registry.counter("c_total")
            for value in stream:
                counter.inc(value)
            return registry.snapshot()

        merged = merge_snapshots([record(s) for s in streams])
        union = record([v for s in streams for v in s])
        assert sample_value(merged, "c_total") == sample_value(
            union, "c_total"
        )

    @given(
        a=st.lists(st.floats(0.0, 10.0, allow_nan=False), max_size=20),
        b=st.lists(st.floats(0.0, 10.0, allow_nan=False), max_size=20),
        c=st.lists(st.floats(0.0, 10.0, allow_nan=False), max_size=20),
    )
    @settings(max_examples=50, deadline=None)
    def test_merge_is_associative(self, a, b, c):
        sa, sb, sc = _snapshot_of(a), _snapshot_of(b), _snapshot_of(c)
        left = merge_snapshots([merge_snapshots([sa, sb]), sc])
        right = merge_snapshots([sa, merge_snapshots([sb, sc])])
        assert (
            histogram_totals(left, "h_seconds")["counts"]
            == histogram_totals(right, "h_seconds")["counts"]
        )
