"""Tests for repro.obs.trace (span trees, annotations, kill-switch)."""

from __future__ import annotations

import threading

from repro.obs.metrics import set_telemetry_enabled
from repro.obs.trace import Tracer, get_tracer, use_tracer


class TestSpans:
    def test_nesting_builds_a_tree(self):
        tracer = Tracer()
        with tracer.span("fix", mode="2d") as root:
            with tracer.span("extract"):
                pass
            with tracer.span("spectrum", kind="azimuth") as spectrum:
                with tracer.span("harmonic-evaluate"):
                    pass
            spectrum.annotate(disks=3)
        assert root.name == "fix"
        assert root.annotations["mode"] == "2d"
        assert [child.name for child in root.children] == [
            "extract", "spectrum",
        ]
        assert root.children[1].annotations["disks"] == 3
        assert root.children[1].children[0].name == "harmonic-evaluate"
        assert root.duration_s >= 0.0

    def test_find_returns_all_matches(self):
        tracer = Tracer()
        with tracer.span("fix") as root:
            with tracer.span("spectrum"):
                with tracer.span("harmonic-evaluate"):
                    pass
            with tracer.span("spectrum"):
                pass
        assert len(root.find("spectrum")) == 2
        assert len(root.find("harmonic-evaluate")) == 1
        assert root.find("missing") == []

    def test_tree_renders_every_span(self):
        tracer = Tracer()
        with tracer.span("fix") as root:
            with tracer.span("extract", disks=4):
                pass
        text = root.tree()
        assert "fix" in text
        assert "extract" in text
        assert "disks=4" in text

    def test_as_dict_roundtrips_structure(self):
        tracer = Tracer()
        with tracer.span("fix", mode="3d") as root:
            with tracer.span("refine", kind="orientation"):
                pass
        as_dict = root.as_dict()
        assert as_dict["name"] == "fix"
        assert as_dict["annotations"] == {"mode": "3d"}
        assert as_dict["children"][0]["name"] == "refine"

    def test_roots_are_bounded(self):
        tracer = Tracer(capacity=4)
        for i in range(10):
            with tracer.span(f"root-{i}"):
                pass
        roots = tracer.recent()
        assert len(roots) == 4
        assert roots[-1].name == "root-9"

    def test_recent_filters_by_name_and_count(self):
        tracer = Tracer()
        for i in range(3):
            with tracer.span("fix", attempt=i):
                pass
            with tracer.span("ingest"):
                pass
        fixes = tracer.recent(name="fix")
        assert len(fixes) == 3
        assert tracer.recent(n=1, name="fix")[0].annotations == {
            "attempt": 2
        }

    def test_annotate_current_span(self):
        tracer = Tracer()
        with tracer.span("fix") as span:
            tracer.annotate(outcome="ok")
        assert span.annotations["outcome"] == "ok"
        # Without an open span it must be a safe no-op.
        tracer.annotate(outcome="ignored")

    def test_threads_get_separate_stacks(self):
        tracer = Tracer()
        errors = []

        def work(tag: str) -> None:
            try:
                with tracer.span(f"fix-{tag}") as span:
                    with tracer.span(f"child-{tag}"):
                        pass
                assert span.children[0].name == f"child-{tag}"
            except AssertionError as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(str(i),)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(tracer.recent()) == 4


class TestKillSwitch:
    def test_disabled_tracer_yields_null_span(self):
        tracer = Tracer()
        previous = set_telemetry_enabled(False)
        try:
            with tracer.span("fix", mode="2d") as span:
                # Annotating the null span must be a safe no-op.
                span.annotate(outcome="ok")
                with tracer.span("extract") as child:
                    child.annotate(disks=1)
            tracer.annotate(outcome="ignored")
        finally:
            set_telemetry_enabled(previous)
        assert tracer.recent() == []


class TestDefaultTracer:
    def test_use_tracer_scopes_default(self):
        outer = get_tracer()
        with use_tracer() as scoped:
            assert get_tracer() is scoped
            assert get_tracer() is not outer
            with get_tracer().span("fix"):
                pass
            assert len(scoped.recent()) == 1
        assert get_tracer() is outer
