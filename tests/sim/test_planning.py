"""Tests for repro.sim.planning."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import Point2
from repro.errors import ConfigurationError
from repro.sim.planning import (
    AccuracyMap,
    PlannedDisk,
    accuracy_map,
    bearing_error_std,
    position_covariance,
    predicted_rmse,
    recommend_center_distance,
)

DEFAULT_DISKS = [
    PlannedDisk(Point2(-0.25, 0.0)),
    PlannedDisk(Point2(0.25, 0.0)),
]


class TestBearingError:
    def test_scales_inverse_radius(self):
        small = bearing_error_std(0.05, 200)
        large = bearing_error_std(0.20, 200)
        assert small == pytest.approx(4.0 * large, rel=1e-9)

    def test_scales_inverse_sqrt_snapshots(self):
        few = bearing_error_std(0.10, 100)
        many = bearing_error_std(0.10, 400)
        assert few == pytest.approx(2.0 * many, rel=1e-9)

    def test_sub_degree_at_defaults(self):
        sigma = bearing_error_std(0.10, 250)
        assert sigma < np.deg2rad(0.3)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            bearing_error_std(0.0, 100)
        with pytest.raises(ValueError):
            bearing_error_std(0.1, 1)


class TestPositionCovariance:
    def test_error_grows_with_distance(self):
        sigma = [0.002, 0.002]
        near = position_covariance(Point2(0.0, 1.0), DEFAULT_DISKS, sigma)
        far = position_covariance(Point2(0.0, 3.0), DEFAULT_DISKS, sigma)
        assert np.trace(far) > np.trace(near)

    def test_symmetric_positive_definite(self):
        cov = position_covariance(
            Point2(0.5, 1.5), DEFAULT_DISKS, [0.002, 0.002]
        )
        assert np.allclose(cov, cov.T)
        assert np.all(np.linalg.eigvalsh(cov) > 0)

    def test_degenerate_geometry_rejected(self):
        collinear = [
            PlannedDisk(Point2(-0.25, 0.0)),
            PlannedDisk(Point2(0.25, 0.0)),
        ]
        # Target on the line through both disk centers -> parallel bearings.
        with pytest.raises(ConfigurationError):
            position_covariance(Point2(5.0, 0.0), collinear, [0.002, 0.002])

    def test_third_disk_reduces_error(self):
        target = Point2(0.3, 2.0)
        sigma2 = [0.002, 0.002]
        sigma3 = [0.002, 0.002, 0.002]
        three = DEFAULT_DISKS + [PlannedDisk(Point2(0.0, 0.5))]
        cov2 = position_covariance(target, DEFAULT_DISKS, sigma2)
        cov3 = position_covariance(target, three, sigma3)
        assert np.trace(cov3) < np.trace(cov2)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            position_covariance(Point2(0, 1), DEFAULT_DISKS[:1], [0.002])
        with pytest.raises(ValueError):
            position_covariance(Point2(0, 1), DEFAULT_DISKS, [0.002, -1.0])


class TestPredictedRmse:
    def test_centimeter_scale_at_defaults(self):
        rmse = predicted_rmse(Point2(0.4, 1.9), DEFAULT_DISKS)
        assert 0.001 < rmse < 0.10

    @given(
        st.floats(min_value=-1.5, max_value=1.5),
        st.floats(min_value=1.0, max_value=3.0),
    )
    @settings(max_examples=25)
    def test_finite_and_positive_off_axis(self, x, y):
        rmse = predicted_rmse(Point2(x, y), DEFAULT_DISKS)
        assert np.isfinite(rmse) and rmse > 0

    def test_matches_simulator_order_of_magnitude(
        self, calibrated_scenario_2d
    ):
        """The a-priori prediction should land within ~4x of the simulated
        error (it ignores orientation residuals and model error)."""
        target = Point2(0.4, 1.9)
        _fix, error = calibrated_scenario_2d.locate_2d(target)
        predicted = predicted_rmse(target, DEFAULT_DISKS)
        assert error.combined < 6.0 * max(predicted, 0.005) + 0.05


class TestAccuracyMap:
    def test_map_shape_and_nan_near_disks(self):
        grid = accuracy_map(
            DEFAULT_DISKS, (-1.0, 1.0), (-0.5, 2.0), resolution=0.25
        )
        assert grid.rmse.shape == (len(grid.ys), len(grid.xs))
        assert np.isnan(grid.at(Point2(-0.25, 0.0)))  # on a disk
        assert np.isfinite(grid.at(Point2(0.0, 1.5)))

    def test_coverage_fraction_monotone(self):
        grid = accuracy_map(
            DEFAULT_DISKS, (-1.5, 1.5), (0.8, 2.5), resolution=0.25
        )
        assert grid.coverage_fraction(0.5) >= grid.coverage_fraction(0.05)
        assert 0.0 <= grid.coverage_fraction(0.02) <= 1.0


class TestRecommendation:
    def test_wider_baseline_wins_at_depth(self):
        best, rmse = recommend_center_distance(
            Point2(0.0, 2.0), [0.2, 0.4, 0.6, 0.8]
        )
        assert best == pytest.approx(0.8)
        assert rmse > 0

    def test_empty_candidates(self):
        with pytest.raises(ValueError):
            recommend_center_distance(Point2(0, 2), [])
