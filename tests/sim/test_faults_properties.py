"""Property-based tests for repro.sim.faults transforms.

Hypothesis drives synthetic report batches through the fault transforms
and checks the structural invariants each transform must preserve —
count bounds, phase ranges, untouched bystander tags and composition
order.  Synthetic batches (not simulated collections) keep the property
search fast enough for many examples.
"""

from __future__ import annotations

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import Point3
from repro.hardware.llrp import ReportBatch, TagReportData
from repro.hardware.rotator import horizontal_disk
from repro.sim.faults import (
    bias_timestamps,
    chain,
    corrupt_quantization,
    drop_reads,
    duplicate_reports,
    jam_window,
    pi_slips,
    shuffle_reports,
    silence_tag,
    stall_disk,
)

EPCS = ("E2-SPIN-1", "E2-SPIN-2", "E2-STATIC-1")


@st.composite
def report_batches(draw, min_reports=1, max_reports=60):
    n = draw(st.integers(min_reports, max_reports))
    reports = []
    for i in range(n):
        reports.append(
            TagReportData(
                epc=draw(st.sampled_from(EPCS)),
                antenna_port=1,
                channel_index=draw(st.integers(0, 15)),
                reader_timestamp_us=draw(st.integers(0, 20_000_000)),
                host_timestamp_us=draw(st.integers(0, 20_000_000)),
                phase_rad=draw(
                    st.floats(0.0, 2.0 * math.pi, exclude_max=True)
                ),
                rssi_dbm=draw(st.floats(-90.0, -30.0)),
            )
        )
    return ReportBatch(reports)


seeds = st.integers(0, 2**32 - 1)


@settings(max_examples=50, deadline=None)
@given(batch=report_batches(), fraction=st.floats(0.0, 1.0), seed=seeds)
def test_drop_reads_count_invariant(batch, fraction, seed):
    """drop_reads never adds reports, keeps all at 0.0 and none at 1.0."""
    rng = np.random.default_rng(seed)
    thinned = drop_reads(batch, fraction, rng)
    assert len(thinned) <= len(batch)
    if fraction == 0.0:
        assert thinned.reports == batch.reports
    if fraction == 1.0:
        assert len(thinned) == 0
    # Survivors appear in their original order.
    survivors = iter(batch.reports)
    for report in thinned.reports:
        assert report in survivors


@settings(max_examples=50, deadline=None)
@given(batch=report_batches(), epc=st.sampled_from(EPCS))
def test_silence_tag_count_invariant(batch, epc):
    """silence_tag removes exactly the silenced tag's reports."""
    silenced = silence_tag(batch, epc)
    removed = sum(1 for r in batch.reports if r.epc == epc)
    assert len(silenced) == len(batch) - removed
    assert all(r.epc != epc for r in silenced.reports)
    assert [r for r in batch.reports if r.epc != epc] == silenced.reports


@settings(max_examples=50, deadline=None)
@given(
    batch=report_batches(),
    start=st.floats(0.0, 10.0),
    width=st.floats(0.1, 10.0),
    seed=seeds,
)
def test_jam_window_phase_range_invariant(batch, start, width, seed):
    """Jamming preserves count and keeps every phase inside [0, 2*pi);
    reads outside the window are untouched."""
    rng = np.random.default_rng(seed)
    jammed = jam_window(batch, start, start + width, rng)
    assert len(jammed) == len(batch)
    for before, after in zip(batch.reports, jammed.reports):
        assert 0.0 <= after.phase_rad < 2.0 * math.pi
        if not (start <= before.reader_time_s <= start + width):
            assert after.phase_rad == before.phase_rad
        assert after.reader_timestamp_us == before.reader_timestamp_us
        assert after.epc == before.epc


@settings(max_examples=50, deadline=None)
@given(batch=report_batches(), stuck=st.floats(0.01, 1.0))
def test_stall_disk_leaves_bystanders_untouched(batch, stuck):
    """Stalling one tag's disk never drops another tag's reads."""
    disk = horizontal_disk(
        center=Point3(0.0, 0.0, 0.0), radius=0.1, angular_speed=1.0
    )
    target = EPCS[0]
    stalled = stall_disk(batch, disk, target, stuck_fraction=stuck)
    bystanders_before = [r for r in batch.reports if r.epc != target]
    bystanders_after = [r for r in stalled.reports if r.epc != target]
    assert bystanders_before == bystanders_after
    kept_target = [r for r in stalled.reports if r.epc == target]
    assert len(kept_target) <= sum(1 for r in batch.reports if r.epc == target)


@settings(max_examples=50, deadline=None)
@given(batch=report_batches(), fraction=st.floats(0.0, 1.0), seed=seeds)
def test_duplicate_reports_count_invariant(batch, fraction, seed):
    rng = np.random.default_rng(seed)
    doubled = duplicate_reports(batch, fraction, rng)
    assert len(batch) <= len(doubled) <= 2 * len(batch)
    if fraction == 0.0:
        assert doubled.reports == batch.reports
    if fraction == 1.0:
        assert len(doubled) == 2 * len(batch)


@settings(max_examples=50, deadline=None)
@given(batch=report_batches(), seed=seeds)
def test_shuffle_reports_is_a_permutation(batch, seed):
    rng = np.random.default_rng(seed)
    shuffled = shuffle_reports(batch, rng)
    assert sorted(
        shuffled.reports, key=lambda r: (r.epc, r.reader_timestamp_us, r.phase_rad)
    ) == sorted(
        batch.reports, key=lambda r: (r.epc, r.reader_timestamp_us, r.phase_rad)
    )


@settings(max_examples=50, deadline=None)
@given(batch=report_batches(), prob=st.floats(0.0, 1.0), seed=seeds)
def test_pi_slips_phase_range_invariant(batch, prob, seed):
    rng = np.random.default_rng(seed)
    slipped = pi_slips(batch, prob, rng)
    assert len(slipped) == len(batch)
    for before, after in zip(batch.reports, slipped.reports):
        assert 0.0 <= after.phase_rad < 2.0 * math.pi + 1e-12
        delta = abs(after.phase_rad - before.phase_rad)
        assert (
            math.isclose(delta, 0.0)
            or math.isclose(delta, math.pi, rel_tol=1e-9)
        )


@settings(max_examples=50, deadline=None)
@given(batch=report_batches(), fraction=st.floats(0.0, 1.0), seed=seeds)
def test_corrupt_quantization_marks_out_of_range(batch, fraction, seed):
    """Corrupted phases land in [2*pi, 4*pi) — provably detectable —
    and clean reports are byte-identical."""
    rng = np.random.default_rng(seed)
    corrupted = corrupt_quantization(batch, fraction, rng)
    assert len(corrupted) == len(batch)
    for before, after in zip(batch.reports, corrupted.reports):
        if after.phase_rad != before.phase_rad:
            assert 2.0 * math.pi <= after.phase_rad < 4.0 * math.pi
        else:
            assert after == before


@settings(max_examples=30, deadline=None)
@given(batch=report_batches(), epc=st.sampled_from(EPCS), seed=seeds)
def test_chain_composition_order(batch, epc, seed):
    """chain applies left-to-right: silencing then duplicating equals the
    manual composition, and differs from the reverse when the tag has
    reads (duplicating first doubles reads the silencer then removes)."""
    rng1, rng2 = np.random.default_rng(seed), np.random.default_rng(seed)
    chained = chain(
        batch,
        lambda b: silence_tag(b, epc),
        lambda b: duplicate_reports(b, 1.0, rng1),
    )
    manual = duplicate_reports(silence_tag(batch, epc), 1.0, rng2)
    assert chained.reports == manual.reports
    assert all(r.epc != epc for r in chained.reports)


# ----------------------------------------------------------------------
# Chained-fault accounting (ISSUE 6 satellite): however transport faults
# compose, the total number of offered reports must stay derivable —
# shedding/quarantine accounting downstream relies on it.
# ----------------------------------------------------------------------
def _multiset(reports):
    counts = {}
    for r in reports:
        counts[r] = counts.get(r, 0) + 1
    return counts


@settings(max_examples=50, deadline=None)
@given(
    batch=report_batches(),
    fraction=st.floats(0.0, 1.0),
    seed=seeds,
    shuffle_first=st.booleans(),
)
def test_duplicate_shuffle_chain_preserves_accounting(
    batch, fraction, seed, shuffle_first
):
    """Property: any duplicate/shuffle composition keeps exact accounting.

    Every delivered report is one of the originals, each original appears
    1 or 2 times (never 0 — neither fault drops), and the total equals
    the original count plus the number of duplications, in either order.
    """
    rng = np.random.default_rng(seed)
    if shuffle_first:
        result = chain(
            batch,
            lambda b: shuffle_reports(b, rng),
            lambda b: duplicate_reports(b, fraction, rng),
        )
    else:
        result = chain(
            batch,
            lambda b: duplicate_reports(b, fraction, rng),
            lambda b: shuffle_reports(b, rng),
        )
    before = _multiset(batch.reports)
    after = _multiset(result.reports)
    assert set(after) == set(before)  # nothing invented, nothing dropped
    duplicated = 0
    for report, count in after.items():
        base = before[report]
        assert base <= count <= 2 * base
        duplicated += count - base
    assert len(result) == len(batch) + duplicated


@settings(max_examples=30, deadline=None)
@given(batch=report_batches(), fraction=st.floats(0.0, 1.0), seed=seeds)
def test_duplicate_then_shuffle_order_matters_but_not_totals(
    batch, fraction, seed
):
    """The two composition orders deliver different sequences (chain is
    left-to-right, not commutative) yet identical multisets and totals
    when driven by the same RNG stream."""
    rng_a, rng_b = np.random.default_rng(seed), np.random.default_rng(seed)
    dup_then_shuffle = chain(
        batch,
        lambda b: duplicate_reports(b, fraction, rng_a),
        lambda b: shuffle_reports(b, rng_a),
    )
    shuffle_then_dup = chain(
        batch,
        lambda b: shuffle_reports(b, rng_b),
        lambda b: duplicate_reports(b, fraction, rng_b),
    )
    # Totals agree run-to-run only in the degenerate fractions; the
    # multiset-vs-original invariant must hold for both orders always.
    for result in (dup_then_shuffle, shuffle_then_dup):
        assert set(_multiset(result.reports)) <= set(_multiset(batch.reports))
        assert len(batch) <= len(result) <= 2 * len(batch)
    if fraction == 0.0:
        assert len(dup_then_shuffle) == len(shuffle_then_dup) == len(batch)
    if fraction == 1.0:
        assert (
            len(dup_then_shuffle) == len(shuffle_then_dup) == 2 * len(batch)
        )


@settings(max_examples=30, deadline=None)
@given(
    batch=report_batches(),
    epc=st.sampled_from(EPCS),
    fraction=st.floats(0.0, 1.0),
    seed=seeds,
)
def test_three_fault_chain_accounting(batch, epc, fraction, seed):
    """silence -> duplicate -> shuffle: offered-report accounting stays
    exact through a three-deep chain (total = survivors + duplications)."""
    rng = np.random.default_rng(seed)
    result = chain(
        batch,
        lambda b: silence_tag(b, epc),
        lambda b: duplicate_reports(b, fraction, rng),
        lambda b: shuffle_reports(b, rng),
    )
    survivors = [r for r in batch.reports if r.epc != epc]
    after = _multiset(result.reports)
    assert set(after) <= set(_multiset(survivors))
    assert len(survivors) <= len(result) <= 2 * len(survivors)
    assert all(r.epc != epc for r in result.reports)


@settings(max_examples=50, deadline=None)
@given(batch=report_batches(), offset=st.integers(0, 10_000_000))
def test_skew_clock_shifts_reader_time_only(batch, offset):
    """skew_clock shifts every reader timestamp by the same constant and
    touches nothing else."""
    from repro.sim.faults import skew_clock

    skewed = skew_clock(batch, offset)
    assert len(skewed) == len(batch)
    for before, after in zip(batch.reports, skewed.reports):
        assert after.reader_timestamp_us == before.reader_timestamp_us + offset
        assert after.host_timestamp_us == before.host_timestamp_us
        assert after.phase_rad == before.phase_rad
        assert after.epc == before.epc


def test_skew_clock_rejects_negative_result():
    import pytest

    from repro.errors import ConfigurationError
    from repro.sim.faults import skew_clock

    report = TagReportData(
        epc="E2-SPIN-1",
        antenna_port=1,
        channel_index=0,
        reader_timestamp_us=100,
        host_timestamp_us=100,
        phase_rad=1.0,
        rssi_dbm=-60.0,
    )
    with pytest.raises(ConfigurationError):
        skew_clock(ReportBatch([report]), -200)


# ----------------------------------------------------------------------
# bias_timestamps regression (ISSUE 1 satellite): int() truncation used
# to swallow sub-ppm drifts for small timestamps entirely.
# ----------------------------------------------------------------------
class TestBiasTimestampsRounding:
    def test_small_timestamp_drift_not_swallowed(self):
        """A 0.9 us drift on a small timestamp must round up, not
        truncate to zero shift."""
        report = TagReportData(
            epc="E2-SPIN-1",
            antenna_port=1,
            channel_index=0,
            reader_timestamp_us=900_000,
            host_timestamp_us=900_000,
            phase_rad=1.0,
            rssi_dbm=-60.0,
        )
        drifted = bias_timestamps(ReportBatch([report]), drift_ppm=1.0)
        # 900_000 * (1 + 1e-6) = 900_000.9 -> round() gives 900_001;
        # the old int() truncation returned 900_000 (drift swallowed).
        assert drifted.reports[0].reader_timestamp_us == 900_001

    @settings(max_examples=100, deadline=None)
    @given(
        timestamp=st.integers(0, 10**9),
        drift_ppm=st.floats(-100.0, 100.0),
    )
    def test_rounding_error_bounded(self, timestamp, drift_ppm):
        """round() keeps the applied drift within half a microsecond of
        the exact value for any timestamp/drift combination."""
        report = TagReportData(
            epc="E2-SPIN-1",
            antenna_port=1,
            channel_index=0,
            reader_timestamp_us=timestamp,
            host_timestamp_us=timestamp,
            phase_rad=1.0,
            rssi_dbm=-60.0,
        )
        drifted = bias_timestamps(ReportBatch([report]), drift_ppm)
        exact = timestamp * (1.0 + drift_ppm * 1e-6)
        assert abs(drifted.reports[0].reader_timestamp_us - exact) <= 0.5 + 1e-6
