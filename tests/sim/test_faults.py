"""Tests for repro.sim.faults: graceful degradation and detection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.geometry import Point3
from repro.errors import ConfigurationError, InsufficientDataError
from repro.server.health import (
    ISSUE_NOT_SEEN,
    ISSUE_POOR_COVERAGE,
    DeploymentMonitor,
)
from repro.sim.faults import (
    bias_timestamps,
    chain,
    drop_reads,
    jam_window,
    silence_tag,
    stall_disk,
)

POSE = Point3(0.4, 1.9, 0.0)


@pytest.fixture(scope="module")
def collection(calibrated_scenario_2d):
    batch, reader = calibrated_scenario_2d.collect(POSE)
    return calibrated_scenario_2d, batch, reader


class TestTransforms:
    def test_drop_reads_fraction(self, collection, rng):
        _scenario, batch, _reader = collection
        thinned = drop_reads(batch, 0.5, rng)
        assert 0.35 * len(batch) < len(thinned) < 0.65 * len(batch)

    def test_drop_reads_single_tag(self, collection, rng):
        scenario, batch, _reader = collection
        epc = scenario.scene.registry.epcs()[0]
        thinned = drop_reads(batch, 1.0, rng, epc=epc)
        assert all(r.epc != epc for r in thinned.reports)

    def test_drop_reads_invalid_fraction(self, collection, rng):
        _scenario, batch, _reader = collection
        with pytest.raises(ConfigurationError):
            drop_reads(batch, 1.5, rng)

    def test_silence_tag(self, collection):
        scenario, batch, _reader = collection
        epc = scenario.scene.registry.epcs()[1]
        silenced = silence_tag(batch, epc)
        assert epc not in silenced.epcs()

    def test_jam_window_randomizes_phases(self, collection, rng):
        _scenario, batch, _reader = collection
        jammed = jam_window(batch, 0.0, 3.0, rng)
        changed = sum(
            1
            for a, b in zip(batch.reports, jammed.reports)
            if a.phase_rad != b.phase_rad
        )
        in_window = sum(1 for r in batch.reports if r.reader_time_s <= 3.0)
        assert changed >= 0.95 * in_window

    def test_jam_window_validation(self, collection, rng):
        _scenario, batch, _reader = collection
        with pytest.raises(ConfigurationError):
            jam_window(batch, 2.0, 1.0, rng)

    def test_chain_composes(self, collection, rng):
        scenario, batch, _reader = collection
        epc = scenario.scene.registry.epcs()[0]
        result = chain(
            batch,
            lambda b: drop_reads(b, 0.2, rng),
            lambda b: silence_tag(b, epc),
        )
        assert epc not in result.epcs()
        assert len(result) < len(batch)


class TestGracefulDegradation:
    def test_moderate_loss_still_accurate(self, collection, rng):
        scenario, batch, reader = collection
        thinned = drop_reads(batch, 0.5, rng)
        fix = scenario.system.locate_2d(thinned, 1)
        truth = reader.antenna(1).position.horizontal()
        assert fix.position.distance_to(truth) < 0.15

    def test_silenced_tag_raises(self, collection):
        scenario, batch, _reader = collection
        epc = scenario.scene.registry.epcs()[0]
        with pytest.raises(InsufficientDataError):
            scenario.system.locate_2d(silence_tag(batch, epc), 1)

    def test_short_jam_survivable(self, collection, rng):
        """An EMI burst covering a fraction of the capture shifts the fix
        but R's likelihood weighting keeps it bounded."""
        scenario, batch, reader = collection
        jammed = jam_window(batch, 1.0, 2.5, rng)
        fix = scenario.system.locate_2d(jammed, 1)
        truth = reader.antenna(1).position.horizontal()
        assert fix.position.distance_to(truth) < 0.35

    def test_clock_drift_degrades(self, collection):
        """Uncorrected reader-clock drift rotates the disk-angle model and
        biases the bearings measurably."""
        scenario, batch, reader = collection
        truth = reader.antenna(1).position.horizontal()
        clean_error = scenario.system.locate_2d(batch, 1).position.distance_to(
            truth
        )
        drifted = bias_timestamps(batch, drift_ppm=3000.0)
        drift_error = scenario.system.locate_2d(drifted, 1).position.distance_to(
            truth
        )
        assert drift_error > clean_error


class TestMonitorDetection:
    def test_stalled_disk_detected(self, collection):
        scenario, batch, _reader = collection
        epc = scenario.scene.registry.epcs()[0]
        disk = scenario.scene.registry.get(epc).disk
        stalled = stall_disk(batch, disk, epc)
        monitor = DeploymentMonitor(scenario.scene.registry)
        report = monitor.check_tag(stalled, epc)
        assert ISSUE_POOR_COVERAGE in report.issues

    def test_silenced_tag_detected(self, collection):
        scenario, batch, _reader = collection
        epc = scenario.scene.registry.epcs()[1]
        monitor = DeploymentMonitor(scenario.scene.registry)
        report = monitor.check_tag(silence_tag(batch, epc), epc)
        assert report.issues == (ISSUE_NOT_SEEN,)
