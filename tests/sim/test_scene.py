"""Tests for repro.sim.scene."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.geometry import Point3
from repro.errors import ConfigurationError
from repro.sim.scene import (
    DeploymentSpec,
    build_scene,
    default_room,
    reference_grid,
    sample_reader_positions_2d,
    sample_reader_positions_3d,
)


class TestDeploymentSpec:
    def test_default_two_disks_50cm_apart(self):
        spec = DeploymentSpec()
        assert len(spec.disk_centers) == 2
        distance = spec.disk_centers[0].distance_to(spec.disk_centers[1])
        assert distance == pytest.approx(0.50)

    def test_overlapping_disks_rejected(self):
        with pytest.raises(ConfigurationError):
            DeploymentSpec(
                disk_centers=(Point3(0, 0, 0), Point3(0.1, 0, 0)),
                disk_radius=0.10,
            )

    def test_no_disks_rejected(self):
        with pytest.raises(ConfigurationError):
            DeploymentSpec(disk_centers=())


class TestBuildScene:
    def test_registry_matches_units(self, rng):
        scene = build_scene(rng=rng)
        assert len(scene.registry) == 2
        for unit in scene.spinning_units:
            record = scene.registry.get(unit.tag.epc)
            assert record.disk is unit.disk

    def test_stagger_phase(self, rng):
        scene = build_scene(rng=rng, stagger_phase=True)
        phases = [u.disk.phase0 for u in scene.spinning_units]
        assert phases[0] != phases[1]

    def test_no_stagger(self, rng):
        scene = build_scene(rng=rng, stagger_phase=False)
        assert all(u.disk.phase0 == 0.0 for u in scene.spinning_units)

    def test_spinning_unit_lookup(self, rng):
        scene = build_scene(rng=rng)
        epc = scene.spinning_units[0].tag.epc
        assert scene.spinning_unit_for(epc) is scene.spinning_units[0]
        with pytest.raises(ConfigurationError):
            scene.spinning_unit_for("NOPE")

    def test_default_room_dimensions(self):
        room = default_room()
        assert room.x1 - room.x0 == pytest.approx(9.0)
        assert room.y1 - room.y0 == pytest.approx(6.0)


class TestReferenceGrid:
    def test_count_and_spacing(self, rng):
        units = reference_grid(3, 4, 0.5, rng=rng)
        assert len(units) == 12
        xs = sorted({u.location.x for u in units})
        assert np.allclose(np.diff(xs), 0.5)

    def test_centered_on_origin(self, rng):
        units = reference_grid(3, 3, 1.0, origin=Point3(0.5, 2.0, 0.0), rng=rng)
        mean_x = np.mean([u.location.x for u in units])
        mean_y = np.mean([u.location.y for u in units])
        assert mean_x == pytest.approx(0.5)
        assert mean_y == pytest.approx(2.0)

    def test_unique_epcs(self, rng):
        units = reference_grid(2, 5, 0.4, rng=rng)
        assert len({u.tag.epc for u in units}) == 10

    def test_invalid_dimensions(self, rng):
        with pytest.raises(ValueError):
            reference_grid(0, 3, 0.5, rng=rng)
        with pytest.raises(ValueError):
            reference_grid(2, 2, 0.0, rng=rng)


class TestReaderSampling:
    def test_2d_count_and_ranges(self, rng):
        positions = sample_reader_positions_2d(
            25, rng, x_range=(-1, 1), y_range=(1, 2)
        )
        assert len(positions) == 25
        assert all(-1 <= p.x <= 1 and 1 <= p.y <= 2 for p in positions)

    def test_min_disk_distance_respected(self, rng):
        centers = [Point3(0.0, 1.5, 0.0)]
        positions = sample_reader_positions_2d(
            30,
            rng,
            x_range=(-1, 1),
            y_range=(1, 2),
            min_disk_distance=0.7,
            disk_centers=centers,
        )
        assert all(
            p.distance_to(centers[0].horizontal()) >= 0.7 for p in positions
        )

    def test_impossible_constraint_raises(self, rng):
        centers = [Point3(0.0, 1.5, 0.0)]
        with pytest.raises(ConfigurationError):
            sample_reader_positions_2d(
                5,
                rng,
                x_range=(-0.1, 0.1),
                y_range=(1.4, 1.6),
                min_disk_distance=5.0,
                disk_centers=centers,
            )

    def test_3d_heights_in_range(self, rng):
        positions = sample_reader_positions_3d(
            10, rng, z_range=(0.2, 0.8)
        )
        assert all(0.2 <= p.z <= 0.8 for p in positions)
