"""Tests for repro.sim.wire_recording (binary capture format)."""

from __future__ import annotations

import math
import struct

import pytest

from repro.core.geometry import Point3
from repro.errors import ConfigurationError, WireProtocolError
from repro.hardware.llrp import ReportBatch, TagReportData
from repro.hardware.llrp_stream import StreamingLLRPParser
from repro.sim.wire_recording import (
    WIRE_FORMAT_VERSION,
    WIRE_MAGIC,
    RecordedFrame,
    WireRecording,
)


def _report(i: int) -> TagReportData:
    return TagReportData(
        epc=f"E20000000000000000{i % 2:06X}",
        antenna_port=1,
        channel_index=1 + i % 16,
        reader_timestamp_us=5_000_000 + 10_000 * i,
        host_timestamp_us=5_000_040 + 10_000 * i,
        phase_rad=(i * 0.41) % 6.28,
        rssi_dbm=-58.0,
    )


def _batch(n: int = 20) -> ReportBatch:
    return ReportBatch([_report(i) for i in range(n)])


@pytest.fixture()
def recording(calibrated_scenario_2d) -> WireRecording:
    return WireRecording.capture(
        _batch(),
        list(calibrated_scenario_2d.scene.registry),
        truth=Point3(0.4, 1.9, 0.0),
        label="unit",
        reports_per_frame=6,
    )


class TestCapture:
    def test_frame_grouping(self, recording):
        assert len(recording) == 4  # 20 reports / 6 per frame
        parser = StreamingLLRPParser()
        reports = []
        for frame in recording.frames:
            for _mid, batch in parser.feed(frame.payload):
                reports.extend(batch.reports)
        expected = _batch().sorted_by_reader_time().reports
        assert len(reports) == len(expected)
        for got, want in zip(reports, expected):
            # Phase is quantized by the wire encoding; everything else
            # round-trips exactly.
            assert got.epc == want.epc
            assert got.reader_timestamp_us == want.reader_timestamp_us
            assert got.host_timestamp_us == want.host_timestamp_us
            assert got.phase_rad == pytest.approx(
                want.phase_rad, abs=2 * math.pi / 4096
            )

    def test_offsets_relative_to_first_report(self, recording):
        # Frame offset = its last report's time minus session start.
        assert recording.frames[0].offset_us == 5 * 10_000
        assert recording.frames[-1].offset_us == 19 * 10_000
        assert recording.duration_s == pytest.approx(0.19)

    def test_empty_batch(self):
        recording = WireRecording.capture(ReportBatch([]), [])
        assert len(recording) == 0
        assert recording.duration_s == 0.0

    def test_rejects_bad_group_size(self):
        with pytest.raises(ConfigurationError):
            WireRecording.capture(_batch(), [], reports_per_frame=0)

    def test_negative_offset_rejected(self):
        with pytest.raises(ConfigurationError):
            RecordedFrame(offset_us=-1, payload=b"")


class TestRoundTrip:
    def test_bytes_round_trip(self, recording):
        restored = WireRecording.from_bytes(recording.to_bytes())
        assert [f.payload for f in restored.frames] == [
            f.payload for f in recording.frames
        ]
        assert [f.offset_us for f in restored.frames] == [
            f.offset_us for f in recording.frames
        ]
        assert restored.truth == recording.truth
        assert restored.label == "unit"

    def test_registry_round_trip(self, recording):
        restored = WireRecording.from_bytes(recording.to_bytes())
        original = recording.build_registry()
        rebuilt = restored.build_registry()
        assert rebuilt.epcs() == original.epcs()
        for epc in original.epcs():
            a, b = original.get(epc), rebuilt.get(epc)
            assert a.disk.center == b.disk.center
            assert a.model_key == b.model_key
            assert (a.orientation_profile is None) == (
                b.orientation_profile is None
            )

    def test_file_round_trip(self, recording, tmp_path):
        path = tmp_path / "session.tswire"
        recording.save(path)
        assert WireRecording.load(path).truth == recording.truth

    def test_no_truth(self):
        recording = WireRecording.capture(_batch(4), [])
        assert WireRecording.from_bytes(recording.to_bytes()).truth is None


class TestLoadErrors:
    def test_bad_magic(self):
        with pytest.raises(WireProtocolError, match="magic"):
            WireRecording.from_bytes(b"NOTAWIRE" + b"\x00" * 20)

    def test_truncated_preamble(self):
        with pytest.raises(WireProtocolError, match="preamble"):
            WireRecording.from_bytes(WIRE_MAGIC[:4])

    def test_unsupported_version(self, recording):
        blob = bytearray(recording.to_bytes())
        struct.pack_into(">H", blob, len(WIRE_MAGIC), 99)
        with pytest.raises(ConfigurationError, match="version"):
            WireRecording.from_bytes(bytes(blob))

    def test_truncated_frame_body(self, recording):
        blob = recording.to_bytes()
        with pytest.raises(WireProtocolError, match="truncated"):
            WireRecording.from_bytes(blob[:-3])

    def test_trailing_garbage(self, recording):
        with pytest.raises(WireProtocolError, match="trailing"):
            WireRecording.from_bytes(recording.to_bytes() + b"\x00")

    def test_corrupt_header_json(self, recording):
        blob = bytearray(recording.to_bytes())
        header_start = len(WIRE_MAGIC) + 6
        blob[header_start] = 0xFF
        with pytest.raises(WireProtocolError, match="header"):
            WireRecording.from_bytes(bytes(blob))

    def test_every_truncation_is_typed(self, recording):
        blob = recording.to_bytes()
        for cut in range(len(blob)):
            try:
                WireRecording.from_bytes(blob[:cut])
            except (WireProtocolError, ConfigurationError):
                pass
            except struct.error:  # pragma: no cover
                pytest.fail(f"cut={cut} leaked struct.error")


class TestReplaySchedule:
    def test_delays_scale_with_speed(self, recording):
        at_1x = [d for d, _ in recording.replay_schedule(1.0)]
        at_100x = [d for d, _ in recording.replay_schedule(100.0)]
        assert sum(at_1x) == pytest.approx(recording.duration_s)
        for slow, fast in zip(at_1x, at_100x):
            assert fast == pytest.approx(slow / 100.0)

    def test_payload_order_preserved(self, recording):
        payloads = [p for _, p in recording.replay_schedule(50.0)]
        assert payloads == [f.payload for f in recording.frames]

    def test_rejects_nonpositive_speed(self, recording):
        with pytest.raises(ConfigurationError):
            list(recording.replay_schedule(0.0))

    def test_version_constant(self):
        assert WIRE_FORMAT_VERSION == 1
