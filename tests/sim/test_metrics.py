"""Tests for repro.sim.metrics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.sim.metrics import (
    Cdf,
    ErrorCollection,
    ErrorSample,
    ErrorSummary,
    improvement_factor,
)

positive_samples = arrays(
    float,
    st.integers(min_value=1, max_value=50),
    elements=st.floats(min_value=0.0, max_value=10.0),
)


class TestErrorSample:
    def test_combined_2d(self):
        assert ErrorSample(x=3.0, y=4.0).combined == pytest.approx(5.0)

    def test_combined_3d(self):
        assert ErrorSample(x=1.0, y=2.0, z=2.0).combined == pytest.approx(3.0)


class TestCdf:
    def test_monotone(self):
        cdf = Cdf.from_samples([3.0, 1.0, 2.0, 5.0])
        assert np.all(np.diff(cdf.values) >= 0)
        assert np.all(np.diff(cdf.probabilities) > 0)
        assert cdf.probabilities[-1] == pytest.approx(1.0)

    def test_percentile(self):
        cdf = Cdf.from_samples(list(range(1, 101)))
        assert cdf.percentile(0.9) == pytest.approx(90.0)
        assert cdf.percentile(1.0) == pytest.approx(100.0)

    def test_percentile_bounds(self):
        cdf = Cdf.from_samples([1.0])
        with pytest.raises(ValueError):
            cdf.percentile(0.0)
        with pytest.raises(ValueError):
            cdf.percentile(1.5)

    def test_probability_below(self):
        cdf = Cdf.from_samples([1.0, 2.0, 3.0, 4.0])
        assert cdf.probability_below(2.5) == pytest.approx(0.5)
        assert cdf.probability_below(0.0) == 0.0
        assert cdf.probability_below(10.0) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Cdf.from_samples([])

    @given(positive_samples)
    @settings(max_examples=30)
    def test_percentile_within_sample_range(self, samples):
        cdf = Cdf.from_samples(samples)
        for p in (0.1, 0.5, 0.9, 1.0):
            value = cdf.percentile(p)
            assert samples.min() <= value <= samples.max()


class TestErrorSummary:
    def test_statistics(self):
        summary = ErrorSummary.from_samples([1.0, 2.0, 3.0, 4.0])
        assert summary.mean == pytest.approx(2.5)
        assert summary.median == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.count == 4

    def test_centimeter_view(self):
        summary = ErrorSummary.from_samples([0.05, 0.15])
        stats = summary.as_centimeters()
        assert stats["mean_cm"] == pytest.approx(10.0)
        assert stats["count"] == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ErrorSummary.from_samples([])

    @given(positive_samples)
    @settings(max_examples=30)
    def test_ordering_invariants(self, samples):
        eps = 1e-9  # float accumulation slack (mean of identical values)
        summary = ErrorSummary.from_samples(samples)
        assert summary.minimum <= summary.median <= summary.maximum + eps
        assert summary.minimum - eps <= summary.mean <= summary.maximum + eps
        assert summary.median <= summary.p90 + eps <= summary.maximum + 2 * eps


class TestErrorCollection:
    def test_axis_extraction(self):
        collection = ErrorCollection()
        collection.add(ErrorSample(x=1.0, y=2.0))
        collection.add(ErrorSample(x=3.0, y=4.0))
        assert np.allclose(collection.axis("x"), [1.0, 3.0])
        assert np.allclose(collection.axis("combined"), [np.sqrt(5), 5.0])

    def test_missing_z_axis_raises(self):
        collection = ErrorCollection()
        collection.add(ErrorSample(x=1.0, y=2.0))
        with pytest.raises(ValueError):
            collection.axis("z")

    def test_summary_and_cdf(self):
        collection = ErrorCollection()
        for value in (1.0, 2.0, 3.0):
            collection.add(ErrorSample(x=value, y=0.0))
        assert collection.summary("x").mean == pytest.approx(2.0)
        assert collection.cdf("x").percentile(1.0) == pytest.approx(3.0)


def test_improvement_factor():
    assert improvement_factor(10.0, 2.0) == pytest.approx(5.0)
    with pytest.raises(ValueError):
        improvement_factor(1.0, 0.0)
