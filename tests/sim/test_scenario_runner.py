"""Tests for repro.sim.scenario and repro.sim.runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.geometry import Point2, Point3
from repro.core.pipeline import PipelineConfig
from repro.sim.runner import (
    SweepPoint,
    format_sweep_table,
    run_trials_2d,
    run_trials_3d,
    sweep,
)
from repro.sim.metrics import ErrorSummary
from repro.sim.scenario import (
    ScenarioConfig,
    TagspinScenario,
    paper_default_scenario,
)
from repro.sim.scene import DeploymentSpec


class TestScenario:
    def test_collection_duration_default(self):
        config = ScenarioConfig()
        period = 2 * np.pi / config.deployment.angular_speed
        assert config.collection_duration() == pytest.approx(2 * period)

    def test_collection_duration_explicit(self):
        config = ScenarioConfig(duration_s=4.2)
        assert config.collection_duration() == 4.2

    def test_prelude_fits_all_profiles(self):
        scenario = paper_default_scenario(seed=51)
        assert all(
            r.orientation_profile is None for r in scenario.scene.registry
        )
        scenario.run_orientation_prelude()
        assert all(
            r.orientation_profile is not None for r in scenario.scene.registry
        )

    def test_prelude_profile_close_to_truth(self):
        from repro.core.calibration import profile_distance

        scenario = paper_default_scenario(seed=53)
        scenario.run_orientation_prelude()
        for unit in scenario.scene.spinning_units:
            fitted = scenario.scene.registry.get(unit.tag.epc).orientation_profile
            assert fitted is not None
            assert profile_distance(fitted, unit.tag.orientation_truth) < 0.12

    def test_multi_antenna_reader(self):
        scenario = paper_default_scenario(seed=55)
        reader = scenario.make_reader(Point3(0.0, 2.0, 0.0), num_antennas=4)
        assert len(reader.antennas) == 4
        positions = [reader.antenna(p).position.x for p in (1, 2, 3, 4)]
        assert positions == sorted(positions)

    def test_with_pipeline_shares_scene(self):
        scenario = paper_default_scenario(seed=57)
        sibling = scenario.with_pipeline(
            PipelineConfig(orientation_calibration=False)
        )
        assert sibling.scene is scenario.scene
        assert not sibling.config.pipeline.orientation_calibration
        assert scenario.config.pipeline.orientation_calibration


class TestRunner:
    def test_run_trials_2d(self, calibrated_scenario_2d):
        poses = [Point2(0.3, 1.6), Point2(-0.5, 2.1)]
        batch = run_trials_2d(calibrated_scenario_2d, positions=poses)
        assert batch.trials == 2
        assert batch.failures == 0
        assert batch.summary().mean < 0.3

    def test_run_trials_3d(self, calibrated_scenario_3d):
        poses = [Point3(0.3, 1.8, 0.5)]
        batch = run_trials_3d(calibrated_scenario_3d, positions=poses)
        assert batch.trials == 1
        assert batch.summary().count == 1

    def test_runner_calibrates_when_needed(self):
        scenario = paper_default_scenario(seed=61)
        run_trials_2d(scenario, positions=[Point2(0.4, 1.8)])
        assert all(
            r.orientation_profile is not None for r in scenario.scene.registry
        )

    def test_sweep_runs_each_value(self):
        def factory(radius):
            return TagspinScenario(
                ScenarioConfig(
                    deployment=DeploymentSpec(disk_radius=radius),
                    pipeline=PipelineConfig(orientation_calibration=False),
                    seed=63,
                )
            )

        points = sweep([0.08, 0.12], factory, trials=2, seed=64)
        assert [p.value for p in points] == [0.08, 0.12]
        assert all(p.summary.count + p.failures == 2 for p in points)

    def test_format_sweep_table(self):
        points = [
            SweepPoint(
                value=0.1,
                summary=ErrorSummary.from_samples([0.05, 0.07]),
                failures=0,
            )
        ]
        table = format_sweep_table(points, "radius_cm", value_scale=100.0)
        assert "radius_cm" in table
        assert "10.0" in table
