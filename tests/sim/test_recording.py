"""Tests for repro.sim.recording."""

from __future__ import annotations

import pytest

from repro.core.geometry import Point3
from repro.errors import ConfigurationError
from repro.hardware.llrp import ReportBatch, TagReportData
from repro.hardware.rotator import Mount, horizontal_disk, vertical_disk
from repro.server.registry import SpinningTagRecord
from repro.sim.recording import SessionRecording


@pytest.fixture
def recording() -> SessionRecording:
    reports = [
        TagReportData(
            epc="E200AA",
            antenna_port=1,
            channel_index=5,
            reader_timestamp_us=1000 * i,
            host_timestamp_us=1000 * i + 200,
            phase_rad=0.5 * i % 6.28,
            rssi_dbm=-55.0,
        )
        for i in range(5)
    ]
    records = [
        SpinningTagRecord(
            epc="E200AA",
            disk=horizontal_disk(Point3(-0.25, 0, 0), 0.1, 1.0, phase0=0.3),
        ),
        SpinningTagRecord(
            epc="E200BB",
            disk=vertical_disk(Point3(0.25, 0, 0), 0.1, 2.0),
            model_key="short",
        ),
    ]
    return SessionRecording(
        batch=ReportBatch(reports),
        registry_records=records,
        truth=Point3(0.4, 1.9, 0.0),
        label="unit-test",
    )


class TestRoundTrip:
    def test_dict_roundtrip(self, recording):
        restored = SessionRecording.from_dict(recording.to_dict())
        assert restored.label == "unit-test"
        assert restored.truth == recording.truth
        assert restored.batch.reports == recording.batch.reports
        assert len(restored.registry_records) == 2

    def test_disk_geometry_preserved(self, recording):
        restored = SessionRecording.from_dict(recording.to_dict())
        original = recording.registry_records[1].disk
        disk = restored.registry_records[1].disk
        assert disk.center == original.center
        assert disk.basis_v == original.basis_v
        assert disk.angular_speed == original.angular_speed
        assert disk.mount is Mount.EDGE

    def test_file_roundtrip(self, recording, tmp_path):
        path = tmp_path / "session.json"
        recording.save(path)
        restored = SessionRecording.load(path)
        assert restored.batch.reports == recording.batch.reports

    def test_truthless_recording(self, recording):
        recording.truth = None
        restored = SessionRecording.from_dict(recording.to_dict())
        assert restored.truth is None

    def test_version_checked(self, recording):
        data = recording.to_dict()
        data["version"] = 99
        with pytest.raises(ConfigurationError):
            SessionRecording.from_dict(data)

    def test_build_registry(self, recording):
        registry = recording.build_registry()
        assert len(registry) == 2
        assert registry.get("E200BB").model_key == "short"


    def test_orientation_profile_roundtrip(self, recording):
        import numpy as np

        from repro.core.calibration import make_orientation_profile

        profile = make_orientation_profile(
            np.array([0.1, 0.3]), np.array([0.4, 1.2])
        )
        recording.registry_records[0] = recording.registry_records[0].with_profile(
            profile
        )
        restored = SessionRecording.from_dict(recording.to_dict())
        restored_profile = restored.registry_records[0].orientation_profile
        assert restored_profile is not None
        grid = np.linspace(0, 2 * np.pi, 32)
        assert np.allclose(restored_profile.offset(grid), profile.offset(grid))
