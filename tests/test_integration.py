"""End-to-end integration tests: the paper's headline behaviours.

These drive the full stack — Gen2 inventory, backscatter channel, LLRP
reports, calibration, spectra, localization — and assert the *shape* of the
paper's results: centimeter-level 2D accuracy, working 3D with z worst,
orientation calibration helping, the enhanced profile beating the
traditional one under noise, and robustness to injected failures.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.geometry import Point2, Point3
from repro.core.pipeline import PipelineConfig
from repro.errors import InsufficientDataError
from repro.hardware.llrp import ReportBatch
from repro.rf.noise import NoiseModel
from repro.sim.metrics import ErrorCollection
from repro.sim.scenario import (
    ScenarioConfig,
    TagspinScenario,
    paper_default_scenario,
)


class TestHeadlineAccuracy:
    def test_2d_centimeter_level(self, calibrated_scenario_2d):
        """Mean 2D error across poses lands in the paper's few-cm regime."""
        errors = ErrorCollection()
        for pose in [
            Point2(0.4, 1.9),
            Point2(-0.8, 1.5),
            Point2(1.2, 2.3),
            Point2(0.0, 2.5),
        ]:
            _fix, error = calibrated_scenario_2d.locate_2d(pose)
            errors.add(error)
        assert errors.summary().mean < 0.10

    def test_3d_centimeter_level(self, calibrated_scenario_3d):
        """3D localization lands in the paper's sub-decimeter regime.

        (The "z is the worst axis" property is statistical and is verified
        over many poses by the Fig 10 benchmark, not by this smoke test.)
        """
        errors = ErrorCollection()
        for pose in [Point3(0.4, 1.9, 0.5), Point3(-0.6, 2.2, 0.8)]:
            _fix, error = calibrated_scenario_3d.locate_3d(pose)
            errors.add(error)
        assert errors.summary().mean < 0.15
        assert errors.summary("z").mean < 0.15


class TestOrientationCalibrationEffect:
    def test_calibration_improves_accuracy(self):
        """Fig 11b: with the orientation calibration the error shrinks
        (the paper reports ~1.7x on average)."""
        scenario = paper_default_scenario(seed=71)
        scenario.run_orientation_prelude()
        without = scenario.with_pipeline(
            PipelineConfig(orientation_calibration=False)
        )
        poses = [Point2(0.4, 1.8), Point2(-0.9, 2.1), Point2(0.9, 1.4)]
        err_with, err_without = [], []
        for pose in poses:
            _f, e = scenario.locate_2d(pose)
            err_with.append(e.combined)
            _f, e = without.locate_2d(pose)
            err_without.append(e.combined)
        assert np.mean(err_with) < np.mean(err_without)


class TestEnhancedProfileEffect:
    def test_r_beats_q_under_strong_noise(self):
        """Section IV's claim: R is more robust than Q in strong noise."""
        noisy = NoiseModel(phase_std_rad=0.3)
        poses = [Point2(0.5, 1.9), Point2(-0.6, 1.6), Point2(0.1, 2.4)]

        def mean_error(use_r: bool, seed: int) -> float:
            scenario = TagspinScenario(
                ScenarioConfig(
                    noise=noisy,
                    pipeline=PipelineConfig(
                        use_enhanced_profile=use_r,
                        orientation_calibration=False,
                        sigma=0.3 * np.sqrt(2.0),
                    ),
                    seed=seed,
                )
            )
            return float(
                np.mean([scenario.locate_2d(p)[1].combined for p in poses])
            )

        r_errors = [mean_error(True, s) for s in (81, 82, 83)]
        q_errors = [mean_error(False, s) for s in (81, 82, 83)]
        assert np.mean(r_errors) <= np.mean(q_errors) * 1.2


class TestFailureInjection:
    def test_missing_tag_reads(self, calibrated_scenario_2d):
        """Dropping one spinning tag's reports must raise, not mislead."""
        scenario = calibrated_scenario_2d
        batch, _reader = scenario.collect(Point3(0.4, 1.9, 0.0))
        epc = scenario.scene.registry.epcs()[0]
        crippled = ReportBatch(
            [r for r in batch.reports if r.epc != epc]
        )
        with pytest.raises(InsufficientDataError):
            scenario.system.locate_2d(crippled, 1)

    def test_sparse_reads_raise(self, calibrated_scenario_2d):
        scenario = calibrated_scenario_2d
        batch, _reader = scenario.collect(Point3(0.4, 1.9, 0.0))
        sparse = ReportBatch(batch.reports[:8])
        with pytest.raises(InsufficientDataError):
            scenario.system.locate_2d(sparse, 1)

    def test_pi_jump_outliers_tolerated(self):
        """Occasional demodulator pi-slips should not break localization
        (the Gaussian weights of R suppress them)."""
        scenario = TagspinScenario(
            ScenarioConfig(
                noise=NoiseModel(pi_jump_probability=0.05),
                pipeline=PipelineConfig(orientation_calibration=False),
                seed=91,
            )
        )
        _fix, error = scenario.locate_2d(Point2(0.4, 1.8))
        assert error.combined < 0.2

    def test_frequency_hopping_pipeline(self):
        """With hopping enabled the pipeline splits series per channel and
        still localizes.  Dwells must cover ~a rotation per channel: each
        per-channel series needs enough angular aperture on its own."""
        from repro.hardware.reader import ReaderConfig

        scenario = TagspinScenario(
            ScenarioConfig(
                reader_config=ReaderConfig(
                    frequency_hopping=True, hop_interval_s=7.0
                ),
                pipeline=PipelineConfig(orientation_calibration=False),
                duration_s=28.0,
                seed=93,
            )
        )
        _fix, error = scenario.locate_2d(Point2(0.3, 1.7))
        assert error.combined < 0.25


class TestVerticalDiskExtension:
    def test_vertical_disk_resolves_mirror(self, calibrated_scenario_3d):
        """Future-work extension: a vertically spinning third tag picks the
        correct mirror candidate without a height prior."""
        from repro.core.oriented import resolve_z_with_vertical_disk
        from repro.core.spectrum import SnapshotSeries
        from repro.hardware.llrp import ROSpec
        from repro.hardware.reader import SpinningTagUnit
        from repro.hardware.rotator import vertical_disk
        from repro.hardware.tags import make_tag

        scenario = calibrated_scenario_3d
        truth = Point3(0.5, 2.0, 0.6)
        fix, _error = scenario.locate_3d(truth)

        # Collect from a vertical disk at the origin.
        rng = np.random.default_rng(101)
        disk = vertical_disk(Point3(0.0, 0.3, 0.0), 0.10, 1.0)
        unit = SpinningTagUnit(disk=disk, tag=make_tag(rng=rng))
        reader = scenario.make_reader(truth)
        batch = reader.run([unit], ROSpec(duration_s=12.6))
        reports = batch.filter_epc(unit.tag.epc).sorted_by_reader_time()
        series = SnapshotSeries(
            times=np.array([r.reader_time_s for r in reports.reports]),
            phases=np.array([r.phase_rad for r in reports.reports]),
            wavelength=reader.wavelength_for_channel(
                reader.config.fixed_channel_index
            ),
            radius=disk.radius,
            angular_speed=disk.angular_speed,
            phase0=disk.phase0,
        )
        chosen = resolve_z_with_vertical_disk(
            fix.candidates, disk.center, series, disk.basis_u, disk.basis_v
        )
        assert abs(chosen.z - truth.z) < abs(fix.mirror.z - truth.z)
