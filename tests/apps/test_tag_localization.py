"""Tests for repro.apps.tag_localization and repro.apps.closed_loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.closed_loop import (
    ClosedLoopExperiment,
    format_closed_loop_table,
)
from repro.apps.tag_localization import (
    HyperbolicTagLocator,
    perturbed_antenna_positions,
    phase_per_antenna,
)
from repro.core.geometry import Point2, Point3
from repro.errors import (
    CalibrationError,
    ConfigurationError,
    InsufficientDataError,
)
from repro.hardware.llrp import ReportBatch, TagReportData

ANTENNAS = {
    1: Point3(-1.5, 1.0, 0.0),
    2: Point3(1.5, 1.0, 0.0),
    3: Point3(-1.0, 2.6, 0.0),
    4: Point3(1.0, 2.6, 0.0),
}


@pytest.fixture(scope="module")
def experiment(calibrated_scenario_2d):
    exp = ClosedLoopExperiment(calibrated_scenario_2d, seed=777)
    batch = exp.collect_tag_reads()
    locator = HyperbolicTagLocator(dict(exp.antenna_truth))
    locator.calibrate_antenna_offsets(
        batch, exp.reference_tag.epc, exp.reference_position
    )
    return exp, batch, locator


def _report(epc, antenna, channel, phase, rssi=-55.0, t=0):
    return TagReportData(
        epc=epc,
        antenna_port=antenna,
        channel_index=channel,
        reader_timestamp_us=t,
        host_timestamp_us=t,
        phase_rad=phase,
        rssi_dbm=rssi,
    )


class TestPhasePerAntenna:
    def test_groups_by_port_on_shared_channel(self):
        batch = ReportBatch(
            [
                _report("A", 1, 5, 1.0),
                _report("A", 2, 5, 2.0),
                _report("A", 1, 3, 0.1),  # minority channel, ignored
            ]
        )
        phases = phase_per_antenna(batch, "A")
        assert set(phases) == {1, 2}

    def test_missing_tag_raises(self):
        with pytest.raises(InsufficientDataError):
            phase_per_antenna(ReportBatch([]), "A")


class TestLocatorConstruction:
    def test_needs_three_antennas(self):
        with pytest.raises(ConfigurationError):
            HyperbolicTagLocator({1: Point3(0, 0, 0), 2: Point3(1, 0, 0)})

    def test_locate_requires_calibration(self, experiment):
        exp, batch, _locator = experiment
        fresh = HyperbolicTagLocator(dict(exp.antenna_truth))
        with pytest.raises(CalibrationError):
            fresh.locate(batch, exp.target_tags[0].epc)


class TestRanging:
    def test_ranges_close_to_truth(self, experiment):
        """4 MHz of bandwidth bounds ranging to decimeters: the typical
        antenna should be within ~35 cm, the worst within ~1 m."""
        exp, batch, locator = experiment
        tag, truth = exp.target_tags[0], exp.target_positions[0]
        ranges = locator.estimate_ranges(batch, tag.epc)
        assert len(ranges) >= 3
        errors = [
            abs(
                estimated
                - Point3(truth.x, truth.y, 0.0).distance_to(
                    exp.antenna_truth[port]
                )
            )
            for port, estimated in ranges.items()
        ]
        assert float(np.median(errors)) < 0.35
        assert max(errors) < 1.0

    def test_multilaterate_exact_ranges(self, experiment):
        exp, _batch, locator = experiment
        truth = Point2(0.2, 1.7)
        ranges = {
            port: Point3(truth.x, truth.y, 0.0).distance_to(position)
            for port, position in exp.antenna_truth.items()
        }
        estimate = locator.multilaterate(ranges)
        assert estimate.distance_to(truth) < 1e-6

    def test_multilaterate_needs_three(self, experiment):
        _exp, _batch, locator = experiment
        with pytest.raises(InsufficientDataError):
            locator.multilaterate({1: 2.0, 2: 2.0})

    def test_ranging_prior_decimeter_grade(self, experiment):
        exp, batch, locator = experiment
        tag, truth = exp.target_tags[1], exp.target_positions[1]
        prior = locator.ranging_prior(batch, tag.epc)
        assert prior.distance_to(truth) < 0.5


class TestLocate:
    def test_locates_targets(self, experiment):
        exp, batch, locator = experiment
        errors = []
        for tag, truth in zip(exp.target_tags, exp.target_positions):
            fix = locator.locate(batch, tag.epc)
            errors.append(fix.position.distance_to(truth))
        assert float(np.mean(errors)) < 0.45

    def test_truth_prior_gives_tight_fix(self, experiment):
        exp, batch, locator = experiment
        hits = 0
        for tag, truth in zip(exp.target_tags, exp.target_positions):
            fix = locator.locate(
                batch, tag.epc, prior_center=truth, prior_radius=0.1
            )
            if fix.position.distance_to(truth) < 0.12:
                hits += 1
        assert hits >= len(exp.target_tags) - 1


class TestPerturbedPositions:
    def test_zero_error_is_identity(self, rng):
        perturbed = perturbed_antenna_positions(ANTENNAS, 0.0, rng)
        assert perturbed == ANTENNAS

    def test_error_statistics(self, rng):
        offsets = []
        for _ in range(200):
            perturbed = perturbed_antenna_positions(ANTENNAS, 0.05, rng)
            offsets.extend(
                perturbed[p].distance_to(ANTENNAS[p]) for p in ANTENNAS
            )
        # 2D Gaussian with per-axis sigma 0.05 -> mean offset ~0.0627.
        assert float(np.mean(offsets)) == pytest.approx(0.0627, rel=0.15)

    def test_negative_std_rejected(self, rng):
        with pytest.raises(ValueError):
            perturbed_antenna_positions(ANTENNAS, -0.1, rng)


class TestClosedLoop:
    def test_calibrate_antennas_accuracy(self, experiment):
        exp, _batch, _locator = experiment
        estimates = exp.calibrate_antennas()
        rmse = np.sqrt(
            np.mean(
                [
                    estimates[p].distance_to(exp.antenna_truth[p]) ** 2
                    for p in estimates
                ]
            )
        )
        assert rmse < 0.12

    def test_run_produces_all_conditions(self, calibrated_scenario_2d):
        exp = ClosedLoopExperiment(calibrated_scenario_2d, seed=888)
        results = exp.run(manual_error_levels=(0.05,))
        labels = [r.label for r in results]
        assert labels[0] == "true positions"
        assert labels[1] == "Tagspin-calibrated"
        assert len(results) == 3
        table = format_closed_loop_table(results)
        assert "Tagspin-calibrated" in table

    def test_tagspin_close_to_truth_downstream(self, calibrated_scenario_2d):
        """The paper's motivation: Tagspin's calibration costs (almost)
        nothing downstream, unlike coarse manual measurement."""
        exp = ClosedLoopExperiment(calibrated_scenario_2d, seed=999)
        results = {r.label: r for r in exp.run(manual_error_levels=(0.10,))}
        truth_err = results["true positions"].tag_mean_error
        tagspin_err = results["Tagspin-calibrated"].tag_mean_error
        manual_err = results["manual +/-10 cm"].tag_mean_error
        assert tagspin_err < truth_err + 0.15
        assert manual_err > truth_err
