"""EventLog subscriber containment, unsubscribe, and metrics bridge."""

from __future__ import annotations

import pytest

from repro.fleet.events import EVENT_ACTOR_STARTED, EventLog
from repro.obs.exposition import sample_value
from repro.obs.metrics import use_registry


class TestSubscriberContainment:
    def test_raising_subscriber_does_not_break_emit(self):
        log = EventLog()

        def bad(_event):
            raise RuntimeError("observer bug")

        log.subscribe(bad)
        event = log.emit("dep-a", EVENT_ACTOR_STARTED)
        assert event.kind == EVENT_ACTOR_STARTED
        assert log.subscriber_errors == 1
        # The log itself must still have recorded the event.
        assert log.count(EVENT_ACTOR_STARTED) == 1

    def test_other_subscribers_still_run_after_a_raise(self):
        log = EventLog()
        seen = []

        def bad(_event):
            raise ValueError("boom")

        log.subscribe(bad)
        log.subscribe(seen.append)
        log.emit("dep-a", EVENT_ACTOR_STARTED)
        log.emit("dep-a", EVENT_ACTOR_STARTED)
        assert len(seen) == 2
        assert log.subscriber_errors == 2

    def test_subscriber_errors_bridge_to_metrics(self):
        with use_registry() as registry:
            log = EventLog()
            log.subscribe(lambda _event: (_ for _ in ()).throw(OSError()))
            log.emit("dep-a", EVENT_ACTOR_STARTED)
            snapshot = registry.snapshot()
        assert sample_value(
            snapshot, "tagspin_event_subscriber_errors_total"
        ) == 1.0
        assert sample_value(
            snapshot,
            "tagspin_fleet_events_total",
            {"kind": EVENT_ACTOR_STARTED},
        ) == 1.0

    def test_subscriber_mutating_subscribers_during_emit(self):
        # A subscriber unsubscribing itself mid-emit must not skip or
        # double-call others (emit iterates a copy of the list).
        log = EventLog()
        seen = []

        def once(event):
            seen.append(event)
            log.unsubscribe(once)

        log.subscribe(once)
        log.subscribe(seen.append)
        log.emit("dep-a", EVENT_ACTOR_STARTED)
        log.emit("dep-a", EVENT_ACTOR_STARTED)
        assert len(seen) == 3  # once fired once, append fired twice


class TestUnsubscribe:
    def test_unsubscribe_stops_delivery(self):
        log = EventLog()
        seen = []
        log.subscribe(seen.append)
        log.emit("dep-a", EVENT_ACTOR_STARTED)
        assert log.unsubscribe(seen.append) is True
        log.emit("dep-a", EVENT_ACTOR_STARTED)
        assert len(seen) == 1

    def test_unsubscribe_unknown_returns_false(self):
        log = EventLog()
        assert log.unsubscribe(lambda _event: None) is False

    def test_unsubscribe_removes_one_registration(self):
        log = EventLog()
        seen = []
        log.subscribe(seen.append)
        log.subscribe(seen.append)
        log.unsubscribe(seen.append)
        log.emit("dep-a", EVENT_ACTOR_STARTED)
        assert len(seen) == 1


class TestCapacity:
    def test_counts_survive_log_wrap(self):
        log = EventLog(capacity=4)
        for _ in range(10):
            log.emit("dep-a", EVENT_ACTOR_STARTED)
        assert len(log) == 4
        assert log.count(EVENT_ACTOR_STARTED) == 10

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            EventLog(capacity=0)
