"""Cross-process metrics merge: exact across SIGKILL + restart.

The acceptance invariant of the observability tier: per-worker metric
snapshots, folded across a kill/restart cycle exactly like the report
ledger, must reconcile with the supervisor's delivered ledger —
``tagspin_reports_delivered_total{deployment} == accounting["delivered"]``
— and histograms must merge element-wise across incarnations.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.fleet.sharding import ShardedFleet, shard_for
from repro.fleet.supervisor import FleetSupervisor
from repro.obs.exposition import (
    histogram_totals,
    sample_value,
    to_prometheus,
)
from repro.obs.metrics import use_registry
from repro.server.registry import TagRegistry
from repro.server.resilience import ResilientLocalizationServer

from test_sharding import (  # noqa: F401  (pytest fixtures by import)
    assert_balanced,
    collected,
    make_spec,
    reference_fix,
)
from test_supervisor import running_actor, wait_until


def _pick_deployments_on_distinct_shards(workers: int = 2):
    candidates = [f"dep-metrics-{i:02d}" for i in range(16)]
    first = candidates[0]
    second = next(
        name
        for name in candidates[1:]
        if shard_for(name, workers) != shard_for(first, workers)
    )
    return first, second


def _delivered(snapshot: dict, deployment_id: str) -> float:
    return sample_value(
        snapshot,
        "tagspin_reports_delivered_total",
        {"deployment": deployment_id},
    )


class TestShardedMetricsMerge:
    def test_merge_is_exact_across_kill_and_restart(
        self, calibrated_scenario_2d, collected, reference_fix
    ):
        reports = collected.reports
        half = len(reports) // 2
        victim, survivor = _pick_deployments_on_distinct_shards()
        with use_registry():
            fleet = ShardedFleet(workers=2, request_timeout_s=120.0)
            fleet.start()
            try:
                for deployment_id in (victim, survivor):
                    fleet.add_deployment(
                        make_spec(calibrated_scenario_2d, deployment_id)
                    )
                    fleet.offer(
                        deployment_id, "reader-1", reports[:half]
                    )
                fleet.drain(timeout_s=120.0)
                for deployment_id in (victim, survivor):
                    fleet.locate_2d_sync(deployment_id, "reader-1")

                # Live snapshot reconciles before any chaos.
                snapshot = fleet.metrics_snapshot()
                for deployment_id in (victim, survivor):
                    assert _delivered(snapshot, deployment_id) == half
                    assert sample_value(
                        snapshot,
                        "tagspin_fixes_total",
                        {"deployment": deployment_id, "outcome": "ok"},
                    ) == 1.0

                # SIGKILL the victim's worker: its counters must survive
                # in the fold, and repeated snapshots must not
                # double-count the dead incarnation.
                shard = fleet.shard_of(victim)
                assert fleet.checkpoint(victim) > 0
                fleet.kill_worker(shard)
                after_kill = fleet.metrics_snapshot()
                assert _delivered(after_kill, victim) == half
                assert _delivered(after_kill, survivor) == half
                again = fleet.metrics_snapshot()
                assert _delivered(again, victim) == half

                fleet.restart_shard(shard)
                for deployment_id in (victim, survivor):
                    fleet.offer(
                        deployment_id, "reader-1", reports[half:]
                    )
                fleet.drain(timeout_s=120.0)
                for deployment_id in (victim, survivor):
                    fix, _diag = fleet.locate_2d_sync(
                        deployment_id, "reader-1"
                    )
                    assert fix.position.x == pytest.approx(
                        reference_fix.position.x, abs=1e-9
                    )

                merged = fleet.metrics_snapshot()
                total_received = 0
                for deployment_id in (victim, survivor):
                    ledger = fleet.accounting(deployment_id)
                    assert_balanced(ledger)
                    total_received += ledger["received"]
                    # The acceptance criterion: per-worker counters,
                    # merged across the SIGKILL + restart cycle, equal
                    # the supervisor's lifetime ledger exactly.
                    assert _delivered(merged, deployment_id) == (
                        ledger["delivered"]
                    )
                    assert ledger["delivered"] == len(reports)
                    assert sample_value(
                        merged,
                        "tagspin_reports_accepted_total",
                        {"deployment": deployment_id},
                    ) == ledger["accepted"]
                    assert sample_value(
                        merged,
                        "tagspin_fixes_total",
                        {"deployment": deployment_id, "outcome": "ok"},
                    ) == 2.0

                # Validator screen results partition every received
                # report, summed across both workers and the dead
                # incarnation.
                assert sample_value(
                    merged, "tagspin_validator_reports_total"
                ) == total_received

                # Fix latency histograms merged element-wise across the
                # dead and live incarnations: at least the four actor
                # fixes, internally consistent.
                totals = histogram_totals(
                    merged, "tagspin_fix_seconds", {"mode": "2d"}
                )
                assert totals["count"] >= 4
                assert totals["count"] == sum(totals["counts"])
                assert totals["sum"] > 0.0

                # The merged snapshot must render as Prometheus text.
                text = to_prometheus(merged)
                assert (
                    f'tagspin_reports_delivered_total{{'
                    f'deployment="{victim}"}} {len(reports)}' in text
                )
                assert "tagspin_fix_seconds_bucket" in text
            finally:
                fleet.close()

    def test_supervisor_metrics_snapshot_in_process(
        self, calibrated_scenario_2d, collected
    ):
        """The in-process supervisor exposes the same snapshot surface
        (one registry, no folds) so ``tagspin serve`` reads one shape."""
        registry = TagRegistry()
        for record in calibrated_scenario_2d.scene.registry:
            registry.register(record)

        def factory() -> ResilientLocalizationServer:
            return ResilientLocalizationServer(
                registry,
                calibrated_scenario_2d.config.pipeline,
                engine="streaming",
            )

        with use_registry():

            async def scenario():
                supervisor = FleetSupervisor()
                supervisor.add_deployment("dep-inproc", factory)
                try:
                    await wait_until(
                        lambda: running_actor(supervisor, "dep-inproc")
                    )
                    supervisor.offer(
                        "dep-inproc", "reader-1", collected.reports
                    )
                    await supervisor.locate_2d(
                        "dep-inproc", "reader-1", 1
                    )
                    return supervisor.metrics_snapshot()
                finally:
                    await supervisor.stop()

            snapshot = asyncio.run(scenario())
        assert snapshot["schema"] == "tagspin-metrics/1"
        assert _delivered(snapshot, "dep-inproc") == len(
            collected.reports
        )
        assert sample_value(
            snapshot,
            "tagspin_fixes_total",
            {"deployment": "dep-inproc", "outcome": "ok"},
        ) == 1.0
