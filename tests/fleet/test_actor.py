"""Tests for repro.fleet.actor (serialization, deadlines, checkpoints)."""

from __future__ import annotations

import asyncio

import pytest

from fleet_helpers import (
    FakeLocalizationServer,
    RecordingServerFactory,
    make_report,
)

from repro.errors import (
    ConfigurationError,
    FixDeadlineError,
    InsufficientDataError,
)
from repro.fleet.actor import ActorConfig, DeploymentActor
from repro.fleet.checkpoint import MemoryCheckpointStore
from repro.fleet.events import (
    EVENT_CHECKPOINT_CORRUPT,
    EVENT_CHECKPOINT_RESTORED,
    EVENT_CHECKPOINT_SAVED,
    EVENT_FIX_DEADLINE,
    EVENT_INGEST_REJECTED,
    EVENT_REPORTS_SHED,
    EventLog,
)


def run_with_actor(actor, body):
    """Drive ``body(actor)`` with the actor's run loop alive, then stop."""

    async def scenario():
        run_task = asyncio.ensure_future(actor.run())
        try:
            result = await body()
        finally:
            if not run_task.done():
                await actor.stop()
            await run_task
        return result

    return asyncio.run(scenario())


class TestServing:
    def test_ingest_then_fix_in_order(self):
        factory = RecordingServerFactory()
        actor = DeploymentActor("dep-1", factory)

        async def body():
            actor.offer("r1", [make_report(i) for i in range(4)])
            return await actor.request_fix("r1", 1)

        fix, diag = run_with_actor(actor, body)
        assert fix == "fix-r1-1"
        assert diag == "diagnostics"
        assert actor.stats.accepted == 4
        assert actor.stats.fixes_served == 1

    def test_fix_error_propagates_and_actor_survives(self):
        factory = RecordingServerFactory()
        actor = DeploymentActor("dep-1", factory)

        async def body():
            with pytest.raises(InsufficientDataError):
                await actor.request_fix("silent-reader", 1)
            # Still serving afterwards:
            actor.offer("r1", [make_report(0)])
            return await actor.request_fix("r1", 1)

        fix, _diag = run_with_actor(actor, body)
        assert fix == "fix-r1-1"
        assert actor.stats.fixes_failed == 1
        assert actor.stats.fixes_served == 1

    def test_invalid_batch_rejected_not_fatal(self):
        factory = RecordingServerFactory()
        events = EventLog()
        actor = DeploymentActor("dep-1", factory, events=events)

        async def body():
            server = factory.servers[0]
            server.ingest_error = ConfigurationError("bad stream key")
            actor.offer("bad reader", [make_report(0), make_report(1)])
            server_ok = factory.servers[0]
            # Wait for the rejection to be processed, then recover.
            while actor.mailbox.pending_reports:
                await asyncio.sleep(0.001)
            server_ok.ingest_error = None
            actor.offer("r1", [make_report(2)])
            return await actor.request_fix("r1", 1)

        run_with_actor(actor, body)
        assert actor.stats.rejected_invalid == 2
        assert events.count(EVENT_INGEST_REJECTED) == 1
        ledger = actor.accounting()
        assert ledger["delivered"] == 3
        assert ledger["received"] == 1
        assert ledger["rejected_invalid"] == 2

    def test_shed_reports_emit_events(self):
        factory = RecordingServerFactory()
        events = EventLog()
        actor = DeploymentActor(
            "dep-1",
            factory,
            config=ActorConfig(high_water_mark=3),
            events=events,
        )
        # No run loop: offer synchronously so nothing drains.
        actor.offer("r1", [make_report(i, epc="NOBODY") for i in range(5)])
        assert events.count(EVENT_REPORTS_SHED) == 1
        event = events.events(kind=EVENT_REPORTS_SHED)[0]
        assert event.detail["shed"] == 2


class TestDeadline:
    def test_slow_fix_raises_deadline_error(self):
        factory = RecordingServerFactory(locate_delay_s=0.25)
        events = EventLog()
        actor = DeploymentActor(
            "dep-1",
            factory,
            config=ActorConfig(fix_deadline_s=0.05),
            events=events,
        )

        async def body():
            actor.offer("r1", [make_report(0)])
            with pytest.raises(FixDeadlineError):
                await actor.request_fix("r1", 1)
            # The actor keeps serving after the miss, and the stray
            # solve thread was waited out before this ran:
            factory.locate_delay_s = 0.0
            factory.servers[0].locate_delay_s = 0.0
            return await actor.request_fix("r1", 1)

        fix, _diag = run_with_actor(actor, body)
        assert fix == "fix-r1-1"
        assert actor.stats.deadline_misses == 1
        assert events.count(EVENT_FIX_DEADLINE) == 1
        assert events.events(kind=EVENT_FIX_DEADLINE)[0].detail[
            "deadline_s"
        ] == pytest.approx(0.05)

    def test_fast_fix_unaffected_by_deadline(self):
        factory = RecordingServerFactory()
        actor = DeploymentActor(
            "dep-1", factory, config=ActorConfig(fix_deadline_s=5.0)
        )

        async def body():
            actor.offer("r1", [make_report(0)])
            return await actor.request_fix("r1", 1)

        fix, _diag = run_with_actor(actor, body)
        assert fix == "fix-r1-1"
        assert actor.stats.deadline_misses == 0


class TestCrash:
    def test_injected_crash_surfaces_from_run(self):
        factory = RecordingServerFactory()
        actor = DeploymentActor("dep-1", factory)

        async def scenario():
            run_task = asyncio.ensure_future(actor.run())
            actor.offer("r1", [make_report(0)])
            actor.inject_crash(RuntimeError("boom"))
            with pytest.raises(RuntimeError, match="boom"):
                await run_task

        asyncio.run(scenario())
        assert not actor.running


class TestCheckpointing:
    def test_explicit_checkpoint_and_warm_restore(self):
        store = MemoryCheckpointStore()
        events = EventLog()
        factory = RecordingServerFactory()
        actor = DeploymentActor("dep-1", factory, events=events, store=store)

        async def body():
            actor.offer("r1", [make_report(i) for i in range(6)])
            seq = await actor.request_checkpoint()
            assert seq == 1
            return seq

        run_with_actor(actor, body)
        assert events.count(EVENT_CHECKPOINT_SAVED) == 1
        assert actor.stats.checkpoints_saved == 1

        # Second incarnation warm-starts from the stored snapshot.
        revived = DeploymentActor(
            "dep-1", factory, events=events, store=store, incarnation=1
        )

        async def body2():
            return await revived.request_fix("r1", 1)

        fix, _diag = run_with_actor(revived, body2)
        assert fix == "fix-r1-1"
        assert revived.stats.warm_restored
        assert revived.stats.restored_reports == 6
        assert events.count(EVENT_CHECKPOINT_RESTORED) == 1
        # The restore primed the streams (one locate before the request).
        assert factory.servers[1].locate_calls == 2
        assert factory.servers[1].snapshot_streams() == (
            factory.servers[0].snapshot_streams()
        )

    def test_auto_checkpoint_every_n_batches(self):
        store = MemoryCheckpointStore()
        factory = RecordingServerFactory()
        actor = DeploymentActor(
            "dep-1",
            factory,
            config=ActorConfig(checkpoint_every=2),
            store=store,
        )

        async def body():
            for i in range(5):
                actor.offer("r1", [make_report(i)])
            while actor.mailbox.pending_reports:
                await asyncio.sleep(0.001)

        run_with_actor(actor, body)
        assert actor.stats.checkpoints_saved == 2  # after batches 2 and 4

    def test_corrupt_checkpoint_cold_starts(self):
        store = MemoryCheckpointStore()
        events = EventLog()
        factory = RecordingServerFactory()
        actor = DeploymentActor("dep-1", factory, events=events, store=store)

        async def body():
            actor.offer("r1", [make_report(i) for i in range(4)])
            await actor.request_checkpoint()

        run_with_actor(actor, body)
        store.corrupt("dep-1")

        revived = DeploymentActor(
            "dep-1", factory, events=events, store=store, incarnation=1
        )

        async def body2():
            actor_server = factory.servers[1]
            assert actor_server.snapshot_streams() == {}
            return None

        run_with_actor(revived, body2)
        assert not revived.stats.warm_restored
        assert revived.stats.restored_reports == 0
        assert events.count(EVENT_CHECKPOINT_CORRUPT) == 1

    def test_checkpoint_without_store_is_an_error(self):
        factory = RecordingServerFactory()
        actor = DeploymentActor("dep-1", factory)

        async def body():
            with pytest.raises(ConfigurationError, match="checkpoint store"):
                await actor.request_checkpoint()

        run_with_actor(actor, body)
