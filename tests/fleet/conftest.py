"""Path wiring for the fleet test helpers (no pytest-asyncio: every
async test drives its own loop with ``asyncio.run``)."""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))
