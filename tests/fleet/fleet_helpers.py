"""Shared fakes for the fleet serving-tier tests.

``FakeLocalizationServer`` duck-types the slice of
:class:`~repro.server.resilience.ResilientLocalizationServer` the actor
and checkpoint layers touch, so mechanics tests (ordering, deadlines,
crashes, supervision) run in milliseconds; the integration and chaos
tests use the real server against the session-scoped calibrated
scenario.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Tuple

from repro.errors import InsufficientDataError
from repro.hardware.llrp import TagReportData
from repro.robustness.diagnostics import DegradationState
from repro.robustness.validation import QuarantineStats


def make_report(
    i: int,
    epc: str = "EPC-SPIN-1",
    antenna_port: int = 1,
    phase: float = 0.0,
) -> TagReportData:
    return TagReportData(
        epc=epc,
        antenna_port=antenna_port,
        channel_index=7,
        reader_timestamp_us=1_000 * i,
        host_timestamp_us=1_000 * i + 40,
        phase_rad=phase,
        rssi_dbm=-55.0,
    )


class FakeLocalizationServer:
    """Duck-typed stand-in for the resilient server."""

    def __init__(
        self,
        registry_epcs: Tuple[str, ...] = ("EPC-SPIN-1",),
        locate_delay_s: float = 0.0,
    ) -> None:
        self.registry = set(registry_epcs)
        self.locate_delay_s = locate_delay_s
        self.locate_error: Optional[Exception] = None
        self.ingest_error: Optional[Exception] = None
        self.locate_calls = 0
        self._streams: Dict[Tuple[str, int], List[TagReportData]] = {}
        self._quarantine: Dict[Tuple[str, int], QuarantineStats] = {}
        self._degradation: Dict[Tuple[str, int], DegradationState] = {}

    # -- ingest --------------------------------------------------------
    def ingest(self, reader_name: str, reports) -> int:
        if self.ingest_error is not None:
            raise self.ingest_error
        reports = list(reports)
        for report in reports:
            key = (reader_name, report.antenna_port)
            self._streams.setdefault(key, []).append(report)
            stats = self._quarantine.setdefault(key, QuarantineStats())
            stats.received += 1
            stats.accepted += 1
        return len(reports)

    # -- queries -------------------------------------------------------
    def locate_antenna_2d_diagnosed(
        self, reader_name: str, antenna_port: int = 1
    ):
        self.locate_calls += 1
        if self.locate_delay_s:
            time.sleep(self.locate_delay_s)
        if self.locate_error is not None:
            raise self.locate_error
        if (reader_name, antenna_port) not in self._streams:
            raise InsufficientDataError(
                f"no reports for {reader_name!r}:{antenna_port}"
            )
        return (f"fix-{reader_name}-{antenna_port}", "diagnostics")

    def locate_antenna_2d(self, reader_name: str, antenna_port: int = 1):
        fix, _diag = self.locate_antenna_2d_diagnosed(
            reader_name, antenna_port
        )
        return fix

    # -- checkpoint surface --------------------------------------------
    def streams(self):
        return sorted(self._streams)

    def snapshot_streams(self):
        return {key: list(reports) for key, reports in self._streams.items()}

    def restore_streams(self, streams) -> int:
        self._streams = {
            key: list(reports) for key, reports in streams.items()
        }
        return sum(len(r) for r in self._streams.values())

    def restore_degradation(self, states) -> None:
        self._degradation.update(states)

    def degradation_states(self):
        return dict(self._degradation)

    def quarantine_stats(self, reader_name: str, antenna_port: int):
        return self._quarantine.get(
            (reader_name, antenna_port), QuarantineStats()
        )

    def all_quarantine_stats(self):
        return dict(self._quarantine)


class RecordingServerFactory:
    """Server factory that remembers every incarnation it built."""

    def __init__(self, locate_delay_s: float = 0.0) -> None:
        self.servers: List[FakeLocalizationServer] = []
        self.locate_delay_s = locate_delay_s

    def __call__(self) -> FakeLocalizationServer:
        server = FakeLocalizationServer(locate_delay_s=self.locate_delay_s)
        self.servers.append(server)
        return server
