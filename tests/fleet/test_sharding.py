"""Tests for repro.fleet.sharding (multi-process fleet, shm transport).

The process tests spawn real workers (spawn start method), so they keep
fleets small (2 workers) and reuse one collected scenario batch.  Every
ledger assertion is *exact* — the cross-incarnation invariant
``offered == shed + pending + delivered + lost_in_crash`` is the one
guarantee a ``kill -9`` is not allowed to break.
"""

from __future__ import annotations

import os
import queue
import signal
import threading
import time
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.core.geometry import Point3
from repro.errors import ConfigurationError, WorkerUnavailableError
from repro.fleet.backpressure import BoundedMailbox
from repro.fleet.sharding import ShardedFleet, ShmRing, shard_for
from repro.fleet.worker import DeploymentSpec, thread_pin_env
from repro.hardware.llrp_columnar import ColumnarReportBatch
from repro.server.registry import TagRegistry
from repro.server.resilience import ResilientLocalizationServer

TRUTH = Point3(0.4, 1.9, 0.0)


@pytest.fixture(scope="module")
def collected(calibrated_scenario_2d):
    # The scenario RNG is session-shared; later modules (e.g. the gating
    # suite) depend on their position in its stream.  Snapshot/restore so
    # this module's extra collect() is invisible to them.
    state = calibrated_scenario_2d.rng.bit_generator.state
    batch, _reader = calibrated_scenario_2d.collect(TRUTH)
    calibrated_scenario_2d.rng.bit_generator.state = state
    return batch


@pytest.fixture(scope="module")
def reference_fix(calibrated_scenario_2d, collected):
    registry = TagRegistry()
    for record in calibrated_scenario_2d.scene.registry:
        registry.register(record)
    server = ResilientLocalizationServer(
        registry,
        calibrated_scenario_2d.config.pipeline,
        engine="streaming",
    )
    server.ingest("reader-1", collected.reports)
    fix, _diag = server.locate_antenna_2d_diagnosed("reader-1")
    return fix


def make_spec(calibrated_scenario_2d, deployment_id: str) -> DeploymentSpec:
    return DeploymentSpec(
        deployment_id=deployment_id,
        registry_records=tuple(calibrated_scenario_2d.scene.registry),
        pipeline=calibrated_scenario_2d.config.pipeline,
        engine="streaming",
    )


def assert_balanced(ledger: dict) -> None:
    assert ledger["offered"] == (
        ledger["shed"]
        + ledger["pending"]
        + ledger["delivered"]
        + ledger["lost_in_crash"]
    ), ledger
    assert ledger["delivered"] == (
        ledger["received"] + ledger["rejected_invalid"]
    ), ledger
    assert ledger["received"] == (
        ledger["accepted"] + ledger["quarantined"]
    ), ledger


class TestShardRouting:
    def test_stable_and_in_range(self):
        for workers in (1, 2, 7):
            for name in ("dep-a", "dep-b", "warehouse-42"):
                first = shard_for(name, workers)
                assert 0 <= first < workers
                assert shard_for(name, workers) == first

    def test_known_values_are_process_independent(self):
        # blake2b, not the per-process-salted hash(): these exact
        # assignments must hold in every interpreter, forever —
        # re-routing a deployment would strand its accumulator state.
        assert shard_for("deployment-00", 4) == 1
        assert shard_for("deployment-01", 4) == 1
        assert shard_for("deployment-02", 4) == 0
        assert shard_for("deployment-03", 4) == 0

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            shard_for("dep", 0)


class TestShmRing:
    def test_alloc_release_fifo(self):
        ring = ShmRing(1 << 12)
        try:
            first = ring.alloc(100)
            second = ring.alloc(200)
            assert first == 0
            assert second == 104  # 8-byte aligned
            ring.release(first)
            ring.release(second)
            assert ring.used == 0
        finally:
            ring.close()

    def test_wrap_and_exhaustion(self):
        ring = ShmRing(1 << 10)
        try:
            slots = []
            while True:
                offset = ring.alloc(200)
                if offset is None:
                    break
                slots.append(offset)
            assert len(slots) == 5  # 5 x 200 (aligned) in 1024
            ring.release(slots[0])
            wrapped = ring.alloc(200)
            assert wrapped == 0  # reused the freed head
        finally:
            ring.close()

    def test_out_of_order_release_is_refused(self):
        ring = ShmRing(1 << 10)
        try:
            ring.alloc(64)
            ring.alloc(64)
            with pytest.raises(ValueError):
                ring.release(64)  # second slot before the first
        finally:
            ring.close()

    def test_concurrent_alloc_release_stays_consistent(self):
        """alloc (offer thread) and release (reader thread) race.

        A lost update on ``_used`` either hands out overlapping bytes
        (corruption) or strands the ring full (permanent fallback); with
        the lock the accounting must come back to exactly zero.
        """
        ring = ShmRing(1 << 12)
        inflight: "queue.Queue" = queue.Queue()
        errors = []

        def consumer():
            try:
                while True:
                    offset = inflight.get()
                    if offset is None:
                        return
                    ring.release(offset)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        thread = threading.Thread(target=consumer)
        thread.start()
        try:
            produced = 0
            while produced < 2000:
                offset = ring.alloc(64)
                if offset is None:
                    continue
                inflight.put(offset)
                produced += 1
        finally:
            inflight.put(None)
            thread.join(30.0)
        try:
            assert not errors
            assert ring.used == 0
            assert ring.inflight == 0
        finally:
            ring.close()

    def test_cancel_reclaims_newest_unshipped_slot(self):
        ring = ShmRing(1 << 10)
        try:
            first = ring.alloc(64)
            second = ring.alloc(64)
            # Only the newest slot is cancellable (older may be in
            # flight at the worker already).
            assert ring.cancel(first) is False
            assert ring.cancel(second) is True
            assert ring.used == 64
            assert ring.alloc(64) == second  # head rewound
        finally:
            ring.close()

    def test_cancel_of_wrapped_slot_restores_tail(self):
        ring = ShmRing(1 << 10)
        try:
            slots = [ring.alloc(200) for _ in range(5)]
            for offset in slots:
                ring.release(offset)
            wrapped = ring.alloc(200)  # pads the 24-byte tail, wraps
            assert wrapped == 0
            assert ring.cancel(wrapped) is True
            assert ring.used == 0
            assert ring.alloc(16) == 1000  # tail bytes usable again
        finally:
            ring.close()

    def test_columnar_roundtrip_through_segment(self, collected):
        cols = ColumnarReportBatch.from_reports(collected.reports)
        ring = ShmRing(1 << 22)
        try:
            offset = ring.alloc(cols.packed_nbytes())
            meta = cols.pack_into(ring.buf, offset)
            clone = ColumnarReportBatch.unpack_from(
                ring.buf, meta, offset=offset, copy=True
            )
            assert clone.epcs == cols.epcs
            np.testing.assert_array_equal(clone.epc_index, cols.epc_index)
            np.testing.assert_array_equal(clone.phase_rad, cols.phase_rad)
            np.testing.assert_array_equal(
                clone.reader_timestamp_us, cols.reader_timestamp_us
            )
            assert clone.phase_rad.dtype == cols.phase_rad.dtype
            # copy=True detaches from the segment: release + reuse must
            # not corrupt the clone.
            ring.release(offset)
            before = clone.phase_rad.copy()
            ring.buf[: 1 << 12] = b"\xff" * (1 << 12)
            np.testing.assert_array_equal(clone.phase_rad, before)
        finally:
            ring.close()


class TestColumnarMailbox:
    def test_offer_columnar_counts_like_object_path(self, collected):
        cols = ColumnarReportBatch.from_reports(collected.reports)
        mailbox = BoundedMailbox(high_water=1_000_000)
        kept, shed = mailbox.offer_columnar("reader-1", cols)
        assert kept == len(cols)
        assert shed == 0
        assert mailbox.pending_reports == len(cols)

    def test_columnar_shedding_drops_bystanders_first(self, collected):
        cols = ColumnarReportBatch.from_reports(collected.reports)
        registered = set(cols.epcs[: len(cols.epcs) // 2])
        mailbox = BoundedMailbox(
            high_water=len(cols) // 2,
            is_infrastructure_epc=lambda epc: epc in registered,
        )
        mailbox.offer_columnar("reader-1", cols)
        stats = mailbox.stats
        assert stats.shed > 0
        assert stats.shed_bystander > 0
        assert stats.offered == len(cols)
        assert stats.offered == (
            mailbox.pending_reports + stats.shed + stats.delivered
        )


class TestThreadPinning:
    def test_pin_env_covers_blas_and_numba(self):
        env = thread_pin_env(3)
        assert env["OMP_NUM_THREADS"] == "3"
        assert env["OPENBLAS_NUM_THREADS"] == "3"
        assert env["NUMBA_NUM_THREADS"] == "3"
        with pytest.raises(ValueError):
            thread_pin_env(0)


class TestShardedFleetServing:
    def test_end_to_end_identity_and_clean_shutdown(
        self, calibrated_scenario_2d, collected, reference_fix
    ):
        cols = ColumnarReportBatch.from_reports(collected.reports)
        fleet = ShardedFleet(workers=2, request_timeout_s=120.0)
        fleet.start()
        ids = ["dep-shm", "dep-obj"]
        try:
            for deployment_id in ids:
                fleet.add_deployment(
                    make_spec(calibrated_scenario_2d, deployment_id)
                )
            with pytest.raises(ConfigurationError):
                fleet.add_deployment(
                    make_spec(calibrated_scenario_2d, ids[0])
                )
            # Same rows over both transports: shm columnar and pickle.
            step = 200
            for start in range(0, len(cols), step):
                rows = np.arange(start, min(start + step, len(cols)))
                fleet.offer_columnar(
                    "dep-shm", "reader-1", cols.select(rows)
                )
            for start in range(0, len(collected.reports), step):
                fleet.offer(
                    "dep-obj",
                    "reader-1",
                    collected.reports[start : start + step],
                )
            fleet.drain(timeout_s=120.0)
            for deployment_id in ids:
                fix, _diag = fleet.locate_2d_sync(
                    deployment_id, "reader-1"
                )
                assert fix.position.x == pytest.approx(
                    reference_fix.position.x, abs=1e-9
                )
                assert fix.position.y == pytest.approx(
                    reference_fix.position.y, abs=1e-9
                )
                ledger = fleet.accounting(deployment_id)
                assert ledger["offered"] == len(cols)
                assert ledger["delivered"] == len(cols)
                assert_balanced(ledger)
            stats = fleet.engine_stats()
            assert set(stats) == set(ids)
            assert stats["dep-shm"]["streaming"]["cold_builds"] > 0
            pids = [
                info["pid"] for info in fleet.worker_info() if info["pid"]
            ]
        finally:
            summary = fleet.close()
        assert sorted(summary["clean"]) == [0, 1]
        assert summary["killed"] == []
        # No orphans: every worker pid must be fully reaped.
        for pid in pids:
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)
        assert fleet.close()["already_closed"]

    def test_worker_kill_restart_warm_restores_exactly(
        self, calibrated_scenario_2d, collected, reference_fix
    ):
        """Satellite SLO: checkpoint/restore across the process boundary.

        Stream half the series, checkpoint, SIGKILL the worker, restart
        the shard, stream the rest.  The restored streaming accumulator
        must accept the exact-prefix append — the final fix equals the
        uninterrupted single-process fix to 1e-9 — and the ledger must
        balance across both worker incarnations.
        """
        reports = collected.reports
        half = len(reports) // 2
        fleet = ShardedFleet(workers=2, request_timeout_s=120.0)
        fleet.start()
        victim = "dep-victim"
        try:
            fleet.add_deployment(
                make_spec(calibrated_scenario_2d, victim)
            )
            shard = fleet.shard_of(victim)
            fleet.offer(victim, "reader-1", reports[:half])
            assert fleet.checkpoint(victim) > 0
            old_pid = fleet.worker_info()[shard]["pid"]
            fleet.kill_worker(shard)
            assert fleet.worker_info()[shard]["alive"] is False
            with pytest.raises(ProcessLookupError):
                os.kill(old_pid, 0)
            # Offers while the shard is down are rejected and counted.
            assert fleet.offer(victim, "reader-1", reports[:10]) == 0
            ledger = fleet.accounting(victim)
            assert ledger["rejected_open"] == 10
            assert_balanced(ledger)
            with pytest.raises(WorkerUnavailableError):
                fleet.locate_2d_sync(victim, "reader-1")

            receipts = fleet.restart_shard(shard)
            assert [r["deployment_id"] for r in receipts] == [victim]
            assert receipts[0]["warm_restored"] is True
            stats = fleet.actor_stats(victim)
            assert stats["warm_restored"] is True

            fleet.offer(victim, "reader-1", reports[half:])
            fleet.drain(timeout_s=120.0)
            fix, _diag = fleet.locate_2d_sync(victim, "reader-1")
            assert fix.position.x == pytest.approx(
                reference_fix.position.x, abs=1e-9
            )
            assert fix.position.y == pytest.approx(
                reference_fix.position.y, abs=1e-9
            )
            ledger = fleet.accounting(victim)
            # Checkpointed prefix + post-restart suffix: nothing lost,
            # every report in exactly one bucket, across two processes.
            assert ledger["offered"] == len(reports)
            assert ledger["delivered"] == len(reports)
            assert ledger["lost_in_crash"] == 0
            assert ledger["rejected_open"] == 10
            assert_balanced(ledger)
        finally:
            fleet.close()

    def test_restart_after_uncommanded_death_settles(
        self, calibrated_scenario_2d, collected
    ):
        """A worker dying on its own (not via ``kill_worker``) leaves an
        unfolded incarnation behind; ``restart_shard`` must fold it and
        unlink its shm segment, or ``dispatched`` keeps the dead count
        and ``drain`` can never settle."""
        reports = collected.reports
        fleet = ShardedFleet(workers=1, request_timeout_s=120.0)
        fleet.start()
        try:
            fleet.add_deployment(
                make_spec(calibrated_scenario_2d, "dep-ucd")
            )
            fleet.offer("dep-ucd", "reader-1", reports[:100])
            fleet.drain(timeout_s=120.0)
            handle = fleet._workers[0]
            old_ring_name = handle.ring.name
            os.kill(handle.pid, signal.SIGKILL)
            deadline = time.monotonic() + 30.0
            while handle.alive and time.monotonic() < deadline:
                time.sleep(0.01)
            assert not handle.alive

            fleet.restart_shard(0)
            # The dead incarnation's segment must be gone, not leaked.
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=old_ring_name)
            fleet.offer("dep-ucd", "reader-1", reports[100:200])
            fleet.drain(timeout_s=120.0)  # hung forever pre-fix
            ledger = fleet.accounting("dep-ucd")
            assert ledger["offered"] == 200
            assert ledger["delivered"] == 200
            assert_balanced(ledger)
        finally:
            fleet.close()

    def test_worker_survives_bad_ingest(
        self, calibrated_scenario_2d, collected
    ):
        """Fire-and-forget ingest failures must not kill the shard.

        An unknown deployment id reaching the worker (restart race) and
        a corrupt shm slot meta both have to be contained: the worker
        records an ingest-rejected event (releasing the slot in the
        columnar case) and keeps serving every other deployment."""
        fleet = ShardedFleet(workers=1, request_timeout_s=120.0)
        fleet.start()
        try:
            fleet.add_deployment(
                make_spec(calibrated_scenario_2d, "dep-robust")
            )
            handle = fleet._workers[0]
            # Bypass parent routing: unknown deployment on the worker.
            fleet._send(
                handle, ("offer", "no-such-dep", "reader-1", [])
            )
            # Corrupt columnar meta in an otherwise valid slot.
            offset = handle.ring.alloc(64)
            fleet._send(
                handle,
                ("offer_cols", "dep-robust", "reader-1", offset, object()),
            )
            fleet.offer("dep-robust", "reader-1", collected.reports[:50])
            fleet.drain(timeout_s=120.0)
            assert handle.alive
            # The corrupt slot's release ack still came back.
            deadline = time.monotonic() + 30.0
            while handle.ring.inflight and time.monotonic() < deadline:
                time.sleep(0.01)
            assert handle.ring.inflight == 0
            assert fleet.worker_events().get("ingest-rejected", 0) >= 2
            ledger = fleet.accounting("dep-robust")
            assert ledger["offered"] == 50
            assert_balanced(ledger)
        finally:
            fleet.close()

    def test_unacked_dispatch_folds_into_lost_in_crash(
        self, calibrated_scenario_2d, collected
    ):
        """Reports in the pipe when the worker dies are counted lost."""
        fleet = ShardedFleet(workers=1, request_timeout_s=120.0)
        fleet.start()
        try:
            fleet.add_deployment(
                make_spec(calibrated_scenario_2d, "dep-loss")
            )
            # Dispatch a burst and SIGKILL immediately: some (usually
            # all) of it never gets acknowledged.
            fleet.offer("dep-loss", "reader-1", collected.reports)
            fleet.kill_worker(0)
            ledger = fleet.accounting("dep-loss")
            assert ledger["offered"] == len(collected.reports)
            assert_balanced(ledger)
        finally:
            fleet.close()
