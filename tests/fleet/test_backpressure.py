"""Tests for repro.fleet.backpressure (bounded mailbox + shedding)."""

from __future__ import annotations

import asyncio

import pytest

from fleet_helpers import make_report

from repro.fleet.backpressure import (
    BoundedMailbox,
    CommandMessage,
    IngestMessage,
)

SPIN = "EPC-SPIN-1"
BYSTANDER = "EPC-OTHER-9"


def spin_reports(n, start=0):
    return [make_report(start + i, epc=SPIN) for i in range(n)]


def bystander_reports(n, start=0):
    return [make_report(start + i, epc=BYSTANDER) for i in range(n)]


def infra_mailbox(high_water):
    return BoundedMailbox(
        high_water=high_water, is_infrastructure=lambda r: r.epc == SPIN
    )


class TestOfferAndGet:
    def test_under_high_water_nothing_shed(self):
        box = infra_mailbox(100)
        kept, shed = box.offer("r1", spin_reports(40))
        assert (kept, shed) == (40, 0)
        assert box.pending_reports == 40
        assert box.stats.offered == 40
        assert box.stats.shed == 0

    def test_fifo_delivery_interleaves_commands(self):
        box = infra_mailbox(100)

        async def scenario():
            box.offer("r1", spin_reports(2))
            box.put_command(CommandMessage(kind="locate"))
            box.offer("r1", spin_reports(3, start=2))
            first = await box.get()
            second = await box.get()
            third = await box.get()
            return first, second, third

        first, second, third = asyncio.run(scenario())
        assert isinstance(first, IngestMessage) and len(first.reports) == 2
        assert isinstance(second, CommandMessage) and second.kind == "locate"
        assert isinstance(third, IngestMessage) and len(third.reports) == 3
        assert box.stats.delivered == 5
        assert box.pending_reports == 0

    def test_get_blocks_until_offer(self):
        box = infra_mailbox(10)

        async def scenario():
            async def producer():
                await asyncio.sleep(0.01)
                box.offer("r1", spin_reports(1))

            producer_task = asyncio.ensure_future(producer())
            message = await asyncio.wait_for(box.get(), timeout=2.0)
            await producer_task
            return message

        message = asyncio.run(scenario())
        assert isinstance(message, IngestMessage)


class TestShedding:
    def test_bystanders_shed_before_infrastructure(self):
        box = infra_mailbox(10)
        box.offer("r1", bystander_reports(8))
        kept, shed = box.offer("r1", spin_reports(8))
        assert shed == 6  # 16 pending -> 10, all six from the bystanders
        assert kept == 8  # the new (infrastructure) batch was untouched
        assert box.stats.shed_bystander == 6
        assert box.stats.shed_infrastructure == 0
        assert box.pending_reports == 10

    def test_oldest_bystanders_go_first(self):
        box = infra_mailbox(5)
        box.offer("r1", bystander_reports(3, start=0))
        box.offer("r1", bystander_reports(3, start=100))
        box.offer("r1", spin_reports(1, start=200))
        # 7 pending -> shed 2, both from the *first* bystander batch.
        assert box.stats.shed == 2

        async def collect():
            out = []
            while box.pending_reports:
                out.append(await box.get())
            return out

        messages = asyncio.run(collect())
        survivors = [r for m in messages for r in m.reports]
        timestamps = [r.reader_timestamp_us for r in survivors]
        assert 0 not in timestamps and 1_000 not in timestamps
        assert 2_000 in timestamps  # third report of the first batch kept

    def test_infrastructure_shed_only_when_flooded_by_it(self):
        box = infra_mailbox(5)
        box.offer("r1", spin_reports(4))
        _kept, shed = box.offer("r1", spin_reports(4, start=4))
        assert shed == 3
        assert box.stats.shed_bystander == 0
        assert box.stats.shed_infrastructure == 3
        # Oldest infrastructure went first: the first batch lost 3 of 4.
        assert box.pending_reports == 5

    def test_commands_survive_any_flood(self):
        box = infra_mailbox(3)
        box.put_command(CommandMessage(kind="checkpoint"))
        box.offer("r1", bystander_reports(50))
        assert box.pending_reports == 3

        async def first():
            return await box.get()

        message = asyncio.run(first())
        assert isinstance(message, CommandMessage)

    def test_fully_shed_batches_are_skipped_not_delivered(self):
        box = infra_mailbox(2)
        box.offer("r1", bystander_reports(2))
        box.offer("r1", spin_reports(2, start=10))  # sheds both bystanders

        async def first():
            return await box.get()

        message = asyncio.run(first())
        assert [r.epc for r in message.reports] == [SPIN, SPIN]


class TestAccounting:
    def test_offered_equals_delivered_plus_pending_plus_shed(self):
        box = infra_mailbox(7)
        box.offer("r1", bystander_reports(5))
        box.offer("r2", spin_reports(6))
        box.offer("r1", spin_reports(4, start=50))

        async def drain_two():
            await box.get()
            await box.get()

        asyncio.run(drain_two())
        stats = box.stats
        assert stats.offered == 15
        assert (
            stats.offered
            == stats.delivered + box.pending_reports + stats.shed
        )
        assert stats.shed == stats.shed_bystander + stats.shed_infrastructure

    def test_drain_counts_undelivered_and_returns_commands(self):
        box = infra_mailbox(100)
        box.offer("r1", spin_reports(9))
        command = CommandMessage(kind="locate")
        box.put_command(command)
        lost, commands = box.drain()
        assert lost == 9
        assert commands == [command]
        assert box.pending_reports == 0
        assert len(box) == 0

    def test_high_water_must_be_positive(self):
        with pytest.raises(ValueError):
            BoundedMailbox(high_water=0)
