"""Tests for repro.fleet.chaos (the fault-injection harness itself).

One full suite run against a module-scoped calibrated scenario, with
the recovery SLOs asserted per scenario from the same report — the
harness is the acceptance test of the fleet tier, so this module mostly
checks that its verdicts and its accounting are trustworthy.

This module deliberately does NOT use the session-scoped
``calibrated_scenario_2d`` fixture: collections draw from the
scenario's RNG, and consuming extra draws from the shared scenario
would shift the noise seen by every later module in the suite.
"""

from __future__ import annotations

import pytest

from repro.fleet.chaos import ChaosConfig, run_chaos_suite
from repro.sim.scenario import paper_default_scenario


@pytest.fixture(scope="module")
def chaos_scenario():
    scenario = paper_default_scenario(seed=11)
    scenario.run_orientation_prelude()
    return scenario


@pytest.fixture(scope="module")
def chaos_report(chaos_scenario):
    return run_chaos_suite(ChaosConfig(), scenario=chaos_scenario)


class TestSuiteVerdicts:
    def test_all_scenarios_pass(self, chaos_report):
        failing = [o.name for o in chaos_report.outcomes if not o.passed]
        assert chaos_report.passed, (
            f"chaos SLOs violated in {failing}: "
            f"{[o.details for o in chaos_report.outcomes if not o.passed]}"
        )
        assert len(chaos_report.outcomes) == 4

    def test_actor_kill_recovers_warm(self, chaos_report):
        details = chaos_report.outcome("actor-kill").details
        assert details["warm_restored"]
        assert details["restored_reports"] > 0
        assert details["recovery_cycles"] <= ChaosConfig().recovery_fix_budget
        # Post-restart fixes rode the streaming append path.
        streaming = details["post_restart_streaming"]
        assert streaming["extensions"] >= 1

    def test_flood_sheds_bystanders_first_and_reconciles(self, chaos_report):
        details = chaos_report.outcome("ingest-flood").details
        ledger = details["ledger"]
        assert details["shed_bystander"] > 0
        assert ledger["shed"] > 0
        assert (
            ledger["offered"]
            == ledger["shed"]
            + ledger["pending"]
            + ledger["delivered"]
            + ledger["lost_in_crash"]
        )
        assert ledger["received"] == (
            ledger["accepted"] + ledger["quarantined"]
        )

    def test_corrupt_checkpoint_degrades_to_cold_start(self, chaos_report):
        details = chaos_report.outcome("checkpoint-corruption").details
        assert details["corrupt_events"] >= 1
        assert details["cold_started"]

    def test_clock_skew_verdict(self, chaos_report):
        details = chaos_report.outcome("clock-skew").details
        assert details["disagreement_m"] <= ChaosConfig().skew_agreement_m
        assert details["duplicates_quarantined"] > 0
        # Fractional skew is physically biased — the harness records the
        # bias rather than hiding it.
        assert details["fractional_bias_m"] > details["disagreement_m"]


class TestHarnessInterface:
    def test_unknown_scenario_name_rejected(self, chaos_scenario):
        with pytest.raises(KeyError, match="no-such-fault"):
            run_chaos_suite(
                ChaosConfig(),
                scenario=chaos_scenario,
                scenarios=["no-such-fault"],
            )

    def test_subset_selection_runs_only_named(self, chaos_scenario):
        report = run_chaos_suite(
            ChaosConfig(),
            scenario=chaos_scenario,
            scenarios=["ingest-flood"],
        )
        assert [o.name for o in report.outcomes] == ["ingest-flood"]
        assert report.passed

    def test_report_round_trips_to_json_dict(self, chaos_report):
        doc = chaos_report.as_dict()
        assert doc["passed"] is True
        assert {s["name"] for s in doc["scenarios"]} == {
            "actor-kill",
            "ingest-flood",
            "checkpoint-corruption",
            "clock-skew",
        }
