"""Tests for repro.fleet.checkpoint (snapshot, stores, corruption)."""

from __future__ import annotations

import json

import pytest

from fleet_helpers import FakeLocalizationServer, make_report

from repro.errors import CheckpointError
from repro.fleet.checkpoint import (
    CHECKPOINT_SCHEMA,
    DeploymentCheckpoint,
    JsonCheckpointStore,
    MemoryCheckpointStore,
)
from repro.robustness.diagnostics import DegradationState


def populated_server() -> FakeLocalizationServer:
    server = FakeLocalizationServer()
    server.ingest("r1", [make_report(i) for i in range(5)])
    server.ingest(
        "r2", [make_report(i, antenna_port=2, phase=1.25) for i in range(3)]
    )
    server.restore_degradation({("r1", 1): DegradationState.DEGRADED})
    return server


class TestRoundtrip:
    def test_capture_serialize_restore(self):
        server = populated_server()
        snapshot = DeploymentCheckpoint.capture("dep-1", server, seq=4)
        revived = DeploymentCheckpoint.from_json(snapshot.to_json())

        assert revived.deployment_id == "dep-1"
        assert revived.seq == 4
        assert revived.streams == snapshot.streams  # exact reports
        assert revived.quarantine == snapshot.quarantine
        assert revived.degradation == {("r1", 1): "degraded"}
        assert revived.report_count() == 8

        target = FakeLocalizationServer()
        revived.restore_into(target)
        assert target.snapshot_streams() == server.snapshot_streams()
        assert target.degradation_states() == {
            ("r1", 1): DegradationState.DEGRADED
        }

    def test_schema_field_is_versioned(self):
        snapshot = DeploymentCheckpoint.capture(
            "dep-1", populated_server(), seq=1
        )
        doc = json.loads(snapshot.to_json())
        assert doc["schema"] == CHECKPOINT_SCHEMA == "tagspin-checkpoint/1"


class TestCorruption:
    def test_truncated_payload_raises(self):
        payload = DeploymentCheckpoint.capture(
            "dep-1", populated_server(), seq=1
        ).to_json()
        with pytest.raises(CheckpointError):
            DeploymentCheckpoint.from_json(payload[: len(payload) // 2])

    def test_wrong_schema_raises(self):
        with pytest.raises(CheckpointError, match="schema"):
            DeploymentCheckpoint.from_json(
                json.dumps({"schema": "tagspin-checkpoint/99"})
            )

    def test_malformed_report_row_raises(self):
        doc = json.loads(
            DeploymentCheckpoint.capture(
                "dep-1", populated_server(), seq=1
            ).to_json()
        )
        doc["streams"][0]["reports"][0] = ["EPC", 1]  # wrong arity
        with pytest.raises(CheckpointError, match="report row"):
            DeploymentCheckpoint.from_json(json.dumps(doc))

    def test_unknown_degradation_state_raises(self):
        doc = json.loads(
            DeploymentCheckpoint.capture(
                "dep-1", populated_server(), seq=1
            ).to_json()
        )
        doc["degradation"] = [
            {"reader_name": "r1", "antenna_port": 1, "state": "on-fire"}
        ]
        with pytest.raises(CheckpointError):
            DeploymentCheckpoint.from_json(json.dumps(doc))

    def test_non_object_document_raises(self):
        with pytest.raises(CheckpointError):
            DeploymentCheckpoint.from_json("[1, 2, 3]")


class TestMemoryStore:
    def test_roundtrip_and_delete(self):
        store = MemoryCheckpointStore()
        assert store.load("dep-1") is None
        store.save("dep-1", "payload")
        assert store.load("dep-1") == "payload"
        store.delete("dep-1")
        assert store.load("dep-1") is None
        assert store.saves == 1

    def test_corrupt_truncates_stored_payload(self):
        store = MemoryCheckpointStore()
        payload = DeploymentCheckpoint.capture(
            "dep-1", populated_server(), seq=1
        ).to_json()
        store.save("dep-1", payload)
        store.corrupt("dep-1")
        with pytest.raises(CheckpointError):
            DeploymentCheckpoint.from_json(store.load("dep-1"))


class TestJsonStore:
    def test_roundtrip_on_disk(self, tmp_path):
        store = JsonCheckpointStore(tmp_path / "checkpoints")
        snapshot = DeploymentCheckpoint.capture(
            "dep-1", populated_server(), seq=2
        )
        store.save("dep-1", snapshot.to_json())
        revived = DeploymentCheckpoint.from_json(store.load("dep-1"))
        assert revived.streams == snapshot.streams
        store.delete("dep-1")
        assert store.load("dep-1") is None
        store.delete("dep-1")  # idempotent

    def test_save_leaves_no_temp_litter(self, tmp_path):
        store = JsonCheckpointStore(tmp_path)
        store.save("dep-1", "x" * 1024)
        store.save("dep-1", "y" * 1024)  # overwrite is atomic
        assert store.load("dep-1") == "y" * 1024
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []

    @pytest.mark.parametrize("bad_id", ["", "../escape", ".hidden", "a/b"])
    def test_unsafe_deployment_ids_rejected(self, tmp_path, bad_id):
        store = JsonCheckpointStore(tmp_path)
        with pytest.raises(CheckpointError):
            store.save(bad_id, "payload")
