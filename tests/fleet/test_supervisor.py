"""Tests for repro.fleet.supervisor (restarts, backoff, circuit breaker)."""

from __future__ import annotations

import asyncio
from typing import List

import pytest

from fleet_helpers import RecordingServerFactory, make_report

from repro.errors import ActorUnavailableError, ConfigurationError
from repro.fleet.checkpoint import MemoryCheckpointStore
from repro.fleet.events import (
    EVENT_ACTOR_CRASHED,
    EVENT_ACTOR_RESTARTED,
    EVENT_ACTOR_STARTED,
    EVENT_ACTOR_STOPPED,
    EVENT_BREAKER_CLOSED,
    EVENT_BREAKER_HALF_OPEN,
    EVENT_BREAKER_OPENED,
    EventLog,
)
from repro.fleet.supervisor import (
    BreakerState,
    FleetSupervisor,
    SupervisorPolicy,
)
from repro.server.resilience import RetryPolicy


class RecordingSleep:
    """Injectable sleep that records delays and returns immediately."""

    def __init__(self) -> None:
        self.delays: List[float] = []

    async def __call__(self, delay: float) -> None:
        self.delays.append(delay)
        await asyncio.sleep(0)


class GatedSleep:
    """Injectable sleep that blocks until released (to observe the OPEN
    state while the supervisor sits in its cooldown)."""

    def __init__(self) -> None:
        self.pending: List[asyncio.Event] = []
        self.delays: List[float] = []

    async def __call__(self, delay: float) -> None:
        self.delays.append(delay)
        gate = asyncio.Event()
        self.pending.append(gate)
        await gate.wait()

    def release(self) -> None:
        for gate in self.pending:
            gate.set()
        self.pending.clear()


def fast_policy(**overrides) -> SupervisorPolicy:
    defaults = dict(
        max_restarts=2,
        restart_window_s=100.0,
        backoff=RetryPolicy(
            max_attempts=1_000_000, backoff_base_s=0.1, backoff_factor=2.0
        ),
        open_cooldown_s=7.0,
        stability_probe_s=0.02,
    )
    defaults.update(overrides)
    return SupervisorPolicy(**defaults)


async def wait_until(predicate, timeout_s: float = 5.0) -> None:
    async def poll():
        while not predicate():
            await asyncio.sleep(0.002)

    await asyncio.wait_for(poll(), timeout_s)


def running_actor(supervisor, deployment_id):
    actor = supervisor.actor(deployment_id)
    return actor is not None and actor.running


class TestRestart:
    def test_crash_restarts_with_backoff_and_serves_again(self):
        factory = RecordingServerFactory()
        events = EventLog()
        sleep = RecordingSleep()

        async def scenario():
            supervisor = FleetSupervisor(
                policy=fast_policy(), events=events, sleep=sleep
            )
            supervisor.add_deployment("dep-1", factory)
            await wait_until(lambda: running_actor(supervisor, "dep-1"))
            supervisor.offer("dep-1", "r1", [make_report(0)])
            fix, _diag = await supervisor.locate_2d("dep-1", "r1")
            assert fix == "fix-r1-1"

            supervisor.kill("dep-1", RuntimeError("chaos"))
            await wait_until(
                lambda: running_actor(supervisor, "dep-1")
                and supervisor.actor("dep-1").incarnation == 1
            )
            supervisor.offer("dep-1", "r1", [make_report(1)])
            fix2, _diag = await supervisor.locate_2d("dep-1", "r1")
            await supervisor.stop()
            return fix2

        fix2 = asyncio.run(scenario())
        assert fix2 == "fix-r1-1"
        assert len(factory.servers) == 2  # one per incarnation
        assert events.count(EVENT_ACTOR_STARTED) == 1
        assert events.count(EVENT_ACTOR_CRASHED) == 1
        assert events.count(EVENT_ACTOR_RESTARTED) == 1
        assert events.count(EVENT_ACTOR_STOPPED) == 1
        assert sleep.delays == [0.1]  # backoff.delay(1)

    def test_backoff_grows_with_repeated_crashes(self):
        factory = RecordingServerFactory()
        sleep = RecordingSleep()

        async def scenario():
            supervisor = FleetSupervisor(
                policy=fast_policy(max_restarts=10), sleep=sleep
            )
            supervisor.add_deployment("dep-1", factory)
            for generation in range(3):
                await wait_until(
                    lambda: running_actor(supervisor, "dep-1")
                    and supervisor.actor("dep-1").incarnation == generation
                )
                supervisor.kill("dep-1")
            await wait_until(
                lambda: running_actor(supervisor, "dep-1")
                and supervisor.actor("dep-1").incarnation == 3
            )
            await supervisor.stop()

        asyncio.run(scenario())
        assert sleep.delays == [0.1, 0.2, 0.4]

    def test_crash_loss_is_accounted(self):
        factory = RecordingServerFactory()

        async def scenario():
            supervisor = FleetSupervisor(policy=fast_policy())
            supervisor.add_deployment("dep-1", factory)
            await wait_until(lambda: running_actor(supervisor, "dep-1"))
            supervisor.offer("dep-1", "r1", [make_report(0)])
            await wait_until(
                lambda: supervisor.actor("dep-1").mailbox.pending_reports
                == 0
            )
            # Crash with a batch still queued behind the crash marker:
            supervisor.kill("dep-1")
            supervisor.offer(
                "dep-1", "r1", [make_report(i) for i in range(1, 6)]
            )
            await wait_until(
                lambda: running_actor(supervisor, "dep-1")
                and supervisor.actor("dep-1").incarnation == 1
            )
            accounting = supervisor.accounting("dep-1")
            await supervisor.stop()
            return accounting

        accounting = asyncio.run(scenario())
        assert accounting["offered"] == 6
        assert accounting["lost_in_crash"] == 5
        assert accounting["delivered"] == 1
        assert accounting["received"] == 1
        assert (
            accounting["offered"]
            == accounting["shed"]
            + accounting["pending"]
            + accounting["delivered"]
            + accounting["lost_in_crash"]
        )

    def test_pending_fix_fails_fast_on_crash(self):
        factory = RecordingServerFactory()

        async def scenario():
            supervisor = FleetSupervisor(policy=fast_policy())
            supervisor.add_deployment("dep-1", factory)
            await wait_until(lambda: running_actor(supervisor, "dep-1"))
            supervisor.kill("dep-1")
            # Enqueued behind the crash marker; must not hang forever.
            actor = supervisor.actor("dep-1")
            fix_task = asyncio.ensure_future(actor.request_fix("r1", 1))
            with pytest.raises(ActorUnavailableError):
                await asyncio.wait_for(fix_task, timeout=5.0)
            await supervisor.stop()

        asyncio.run(scenario())


class TestBreaker:
    def test_opens_after_crash_budget_then_half_open_then_closes(self):
        factory = RecordingServerFactory()
        events = EventLog()
        sleep = GatedSleep()
        clock_now = [0.0]

        async def scenario():
            supervisor = FleetSupervisor(
                policy=fast_policy(max_restarts=2),
                events=events,
                sleep=sleep,
                clock=lambda: clock_now[0],
            )
            supervisor.add_deployment("dep-1", factory)
            # Crash 1 and 2: plain restarts (inside the budget).
            for generation in range(2):
                await wait_until(
                    lambda: running_actor(supervisor, "dep-1")
                    and supervisor.actor("dep-1").incarnation == generation
                )
                supervisor.kill("dep-1")
                await wait_until(lambda: len(sleep.pending) == 1)
                assert supervisor.breaker_state("dep-1") is (
                    BreakerState.CLOSED
                )
                sleep.release()
            # Crash 3: budget exceeded -> breaker OPEN during cooldown.
            await wait_until(
                lambda: running_actor(supervisor, "dep-1")
                and supervisor.actor("dep-1").incarnation == 2
            )
            supervisor.kill("dep-1")
            await wait_until(lambda: len(sleep.pending) == 1)
            assert supervisor.breaker_state("dep-1") is BreakerState.OPEN
            assert sleep.delays[-1] == 7.0  # cooldown, not backoff

            # While OPEN: ingest is rejected and counted, fixes refuse.
            rejected = supervisor.offer(
                "dep-1", "r1", [make_report(i) for i in range(3)]
            )
            assert rejected == 0
            with pytest.raises(ActorUnavailableError):
                await supervisor.locate_2d("dep-1", "r1")

            # Cooldown over: HALF_OPEN probe starts and stabilizes.
            sleep.release()
            await wait_until(
                lambda: supervisor.breaker_state("dep-1")
                is BreakerState.CLOSED
            )
            supervisor.offer("dep-1", "r1", [make_report(9)])
            fix, _diag = await supervisor.locate_2d("dep-1", "r1")
            accounting = supervisor.accounting("dep-1")
            await supervisor.stop()
            return fix, accounting

        fix, accounting = asyncio.run(scenario())
        assert fix == "fix-r1-1"
        assert accounting["rejected_open"] == 3
        assert events.count(EVENT_BREAKER_OPENED) == 1
        assert events.count(EVENT_BREAKER_HALF_OPEN) == 1
        assert events.count(EVENT_BREAKER_CLOSED) == 1

    def test_half_open_crash_reopens(self):
        factory = RecordingServerFactory()
        events = EventLog()
        sleep = RecordingSleep()
        clock_now = [0.0]

        async def scenario():
            supervisor = FleetSupervisor(
                policy=fast_policy(max_restarts=0, stability_probe_s=10.0),
                events=events,
                sleep=sleep,
                clock=lambda: clock_now[0],
            )
            supervisor.add_deployment("dep-1", factory)
            # First crash trips the zero-tolerance breaker; the probe
            # incarnation is killed before it can stabilize, reopening.
            for _ in range(2):
                await wait_until(lambda: running_actor(supervisor, "dep-1"))
                supervisor.kill("dep-1")
                await wait_until(
                    lambda: events.count(EVENT_BREAKER_OPENED) >= 1
                )
            await wait_until(
                lambda: events.count(EVENT_BREAKER_OPENED) == 2
            )
            await wait_until(lambda: running_actor(supervisor, "dep-1"))
            await supervisor.stop()

        asyncio.run(scenario())
        assert events.count(EVENT_BREAKER_OPENED) == 2


class TestFleetShape:
    def test_deployments_are_isolated(self):
        factory_a = RecordingServerFactory()
        factory_b = RecordingServerFactory()

        async def scenario():
            supervisor = FleetSupervisor(policy=fast_policy())
            supervisor.add_deployment("dep-a", factory_a)
            supervisor.add_deployment("dep-b", factory_b)
            await wait_until(
                lambda: running_actor(supervisor, "dep-a")
                and running_actor(supervisor, "dep-b")
            )
            supervisor.kill("dep-a")
            # dep-b keeps serving while dep-a is down.
            supervisor.offer("dep-b", "r1", [make_report(0)])
            fix, _diag = await supervisor.locate_2d("dep-b", "r1")
            await wait_until(
                lambda: running_actor(supervisor, "dep-a")
                and supervisor.actor("dep-a").incarnation == 1
            )
            await supervisor.stop()
            return fix

        assert asyncio.run(scenario()) == "fix-r1-1"

    def test_duplicate_and_unknown_deployments_rejected(self):
        factory = RecordingServerFactory()

        async def scenario():
            supervisor = FleetSupervisor(policy=fast_policy())
            supervisor.add_deployment("dep-1", factory)
            with pytest.raises(ConfigurationError, match="already"):
                supervisor.add_deployment("dep-1", factory)
            with pytest.raises(ConfigurationError, match="unknown"):
                supervisor.offer("nope", "r1", [])
            assert supervisor.deployment_ids() == ["dep-1"]
            await supervisor.stop()

        asyncio.run(scenario())

    def test_checkpoint_via_supervisor(self):
        factory = RecordingServerFactory()
        store = MemoryCheckpointStore()

        async def scenario():
            supervisor = FleetSupervisor(policy=fast_policy(), store=store)
            supervisor.add_deployment("dep-1", factory)
            await wait_until(lambda: running_actor(supervisor, "dep-1"))
            supervisor.offer("dep-1", "r1", [make_report(0)])
            seq = await supervisor.checkpoint("dep-1")
            await supervisor.stop()
            return seq

        assert asyncio.run(scenario()) == 1
        assert store.saves == 1
