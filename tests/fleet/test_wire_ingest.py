"""Tests for repro.fleet.wire_ingest (endpoint + recording replay)."""

from __future__ import annotations

import asyncio

import pytest

from repro.core.geometry import Point3
from repro.errors import ConfigurationError
from repro.fleet.wire_ingest import (
    WireIngestEndpoint,
    replay_frames,
    replay_into_supervisor,
)
from repro.sim.wire_recording import WireRecording

TRUTH = Point3(0.4, 1.9, 0.0)


@pytest.fixture(scope="module")
def recording(calibrated_scenario_2d) -> WireRecording:
    batch, _reader = calibrated_scenario_2d.collect(TRUTH)
    return WireRecording.capture(
        batch,
        list(calibrated_scenario_2d.scene.registry),
        truth=TRUTH,
        label="fleet-replay regression",
    )


@pytest.fixture(scope="module")
def reference_fix(calibrated_scenario_2d, recording):
    """The fix the plain in-process server computes from the capture."""
    from repro.server.resilience import ResilientLocalizationServer

    server = ResilientLocalizationServer(
        recording.build_registry(),
        calibrated_scenario_2d.config.pipeline,
    )
    from repro.hardware.llrp_stream import StreamingLLRPParser

    parser = StreamingLLRPParser()
    for frame in recording.frames:
        for _mid, batch in parser.feed(frame.payload):
            server.ingest("reader-1", batch.reports)
    fix, _diag = server.locate_antenna_2d_diagnosed("reader-1")
    return fix


class TestReplayRegression:
    @pytest.mark.parametrize("decode", ("columnar", "object"))
    def test_replayed_fix_matches_recorded_truth(
        self, recording, decode
    ):
        result = asyncio.run(
            replay_into_supervisor(
                recording, speed=1e5, decode=decode, fragment_bytes=1400
            )
        )
        assert result.reports_offered > 0
        assert result.reports_enqueued == result.reports_offered
        assert result.error_m is not None
        assert result.error_m < 0.05  # within 5 cm of recorded truth

    def test_replay_reproduces_in_process_fix(
        self, recording, reference_fix
    ):
        """The wire loopback changes nothing: same fix as direct ingest."""
        result = asyncio.run(
            replay_into_supervisor(recording, speed=1e5)
        )
        assert result.fix.position.x == pytest.approx(
            reference_fix.position.x, abs=1e-9
        )
        assert result.fix.position.y == pytest.approx(
            reference_fix.position.y, abs=1e-9
        )

    def test_round_tripped_file_replays_identically(
        self, recording, tmp_path
    ):
        path = tmp_path / "session.tswire"
        recording.save(path)
        restored = WireRecording.load(path)
        a = asyncio.run(replay_into_supervisor(recording, speed=1e5))
        b = asyncio.run(replay_into_supervisor(restored, speed=1e5))
        assert a.fix.position == b.fix.position
        assert a.stream_stats == b.stream_stats

    def test_fragmentation_does_not_change_outcome(self, recording):
        whole = asyncio.run(
            replay_into_supervisor(recording, speed=1e5)
        )
        shredded = asyncio.run(
            replay_into_supervisor(
                recording, speed=1e5, fragment_bytes=17
            )
        )
        assert whole.fix.position == shredded.fix.position
        assert (
            whole.stream_stats["reports"]
            == shredded.stream_stats["reports"]
        )


class TestEndpointMechanics:
    def test_rejects_bad_decode_mode(self):
        with pytest.raises(ConfigurationError):
            WireIngestEndpoint(None, "d", "r", decode="simd")

    def test_rejects_bad_read_size(self):
        with pytest.raises(ConfigurationError):
            WireIngestEndpoint(None, "d", "r", read_bytes=0)

    def test_stats_aggregate_connections(self, recording):
        result = asyncio.run(
            replay_into_supervisor(recording, speed=1e5)
        )
        stats = result.stream_stats
        assert stats["frames"] == len(recording)
        assert stats["batches"] == len(recording)
        assert stats["reports"] == result.reports_offered
        assert stats["bytes_fed"] == recording.total_bytes

    def test_replay_frames_rejects_bad_fragment(self, recording):
        async def run():
            server = await asyncio.start_server(
                lambda r, w: None, host="127.0.0.1", port=0
            )
            host, port = server.sockets[0].getsockname()[:2]
            _r, writer = await asyncio.open_connection(host, port)
            try:
                with pytest.raises(ConfigurationError):
                    await replay_frames(
                        recording, writer, fragment_bytes=0
                    )
            finally:
                writer.close()
                server.close()
                await server.wait_closed()

        asyncio.run(run())


class TestReplayFanOut:
    def test_clone_ids_shapes(self):
        from repro.fleet.wire_ingest import clone_deployment_ids

        assert clone_deployment_ids("replay", 1) == ["replay"]
        assert clone_deployment_ids("replay", 3) == [
            "replay-000", "replay-001", "replay-002"
        ]
        with pytest.raises(ConfigurationError):
            clone_deployment_ids("replay", 0)

    def test_fanout_clones_agree_with_single_replay(
        self, recording, reference_fix
    ):
        """One capture cloned across M deployments: every clone ingests
        the full stream independently and lands on the identical fix."""
        results = asyncio.run(
            replay_into_supervisor(recording, speed=1e5, deployments=3)
        )
        assert isinstance(results, list) and len(results) == 3
        offered = {r.reports_offered for r in results}
        assert len(offered) == 1 and offered.pop() > 0
        for result in results:
            assert result.reports_enqueued == result.reports_offered
            assert result.fix.position.x == pytest.approx(
                reference_fix.position.x, abs=1e-9
            )
            assert result.fix.position.y == pytest.approx(
                reference_fix.position.y, abs=1e-9
            )

    def test_decoded_batches_match_frame_parse(self, recording):
        """decode_columnar_batches: one decode equals per-frame decode."""
        from repro.hardware.llrp_stream import StreamingLLRPParser

        batches = recording.decode_columnar_batches()
        parser = StreamingLLRPParser()
        expected = []
        for frame in recording.frames:
            for _mid, cols in parser.feed_columnar(frame.payload):
                if len(cols):
                    expected.append(cols)
        assert len(batches) == len(expected)
        total = sum(len(b) for b in batches)
        assert total > 0
        for got, want in zip(batches, expected):
            assert got.epcs == want.epcs
            assert (got.phase_rad == want.phase_rad).all()
