"""Differential tests: ResilientLocalizationServer.ingest_columnar."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.geometry import Point3
from repro.errors import ConfigurationError
from repro.hardware.llrp_columnar import ColumnarReportBatch
from repro.server.resilience import ResilientLocalizationServer
from repro.sim import faults

POSE = Point3(0.35, -0.85, 0.0)


@pytest.fixture(scope="module")
def collected(calibrated_scenario_2d):
    batch, _reader = calibrated_scenario_2d.collect(POSE)
    rng = np.random.default_rng(5)
    batch = faults.duplicate_reports(batch, 0.15, rng)
    batch = faults.pi_slips(batch, 0.1, rng)
    return calibrated_scenario_2d, batch


def _servers(scenario):
    return (
        ResilientLocalizationServer(
            scenario.scene.registry, scenario.config.pipeline
        ),
        ResilientLocalizationServer(
            scenario.scene.registry, scenario.config.pipeline
        ),
    )


class TestIngestColumnar:
    def test_streams_and_stats_match_object_path(self, collected):
        scenario, batch = collected
        object_server, columnar_server = _servers(scenario)
        object_count = object_server.ingest("r", batch.reports)
        columnar_count = columnar_server.ingest_columnar(
            "r", ColumnarReportBatch.from_reports(batch.reports)
        )
        assert columnar_count == object_count
        assert columnar_server.streams() == object_server.streams()
        for key in object_server.streams():
            assert (
                columnar_server.snapshot_streams()[key]
                == object_server.snapshot_streams()[key]
            )
            assert (
                columnar_server.quarantine_stats(*key).as_dict()
                == object_server.quarantine_stats(*key).as_dict()
            )

    def test_fix_matches_object_path(self, collected):
        scenario, batch = collected
        object_server, columnar_server = _servers(scenario)
        object_server.ingest("r", batch.reports)
        columnar_server.ingest_columnar(
            "r", ColumnarReportBatch.from_reports(batch.reports)
        )
        fix_object, _ = object_server.locate_antenna_2d_diagnosed("r")
        fix_columnar, _ = columnar_server.locate_antenna_2d_diagnosed("r")
        assert fix_columnar.position == fix_object.position

    def test_invalid_port_is_all_or_nothing(self, collected):
        scenario, batch = collected
        _, server = _servers(scenario)
        cols = ColumnarReportBatch.from_reports(batch.reports)
        bad_ports = cols.antenna_port.copy()
        bad_ports[-1] = -1  # negative ports can never name a stream
        broken = ColumnarReportBatch(
            epcs=cols.epcs,
            epc_index=cols.epc_index,
            antenna_port=bad_ports,
            channel_index=cols.channel_index,
            reader_timestamp_us=cols.reader_timestamp_us,
            host_timestamp_us=cols.host_timestamp_us,
            phase_rad=cols.phase_rad,
            rssi_dbm=cols.rssi_dbm,
        )
        with pytest.raises(ConfigurationError):
            server.ingest_columnar("r", broken)
        assert server.streams() == []

    def test_empty_batch(self, collected):
        scenario, _batch = collected
        _, server = _servers(scenario)
        assert server.ingest_columnar("r", ColumnarReportBatch.empty()) == 0
