"""Tests for repro.server.service (the central localization server)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.geometry import Point3
from repro.errors import ConfigurationError, InsufficientDataError
from repro.server.service import LocalizationServer


@pytest.fixture(scope="module")
def served(calibrated_scenario_2d):
    """A server fed with one reader's stream, plus the ground truth."""
    scenario = calibrated_scenario_2d
    pose = Point3(0.5, 1.9, 0.0)
    batch, reader = scenario.collect(pose)
    server = LocalizationServer(
        scenario.scene.registry, scenario.config.pipeline
    )
    server.ingest("reader-1", batch.reports)
    return server, reader


class TestIngestion:
    def test_ingest_counts(self, served):
        server, _reader = served
        assert server.stream_report_count("reader-1", 1) > 100

    def test_streams_listing(self, served):
        server, _reader = served
        assert ("reader-1", 1) in server.streams()

    def test_buffer_cap(self, calibrated_scenario_2d):
        scenario = calibrated_scenario_2d
        pose = Point3(0.5, 1.9, 0.0)
        batch, _reader = scenario.collect(pose)
        server = LocalizationServer(scenario.scene.registry, max_buffer=50)
        server.ingest("r", batch.reports)
        assert server.stream_report_count("r", 1) == 50

    def test_invalid_buffer(self, calibrated_scenario_2d):
        with pytest.raises(ValueError):
            LocalizationServer(
                calibrated_scenario_2d.scene.registry, max_buffer=0
            )


class TestIngestValidation:
    """Junk stream keys are configuration errors, not quarantined data."""

    @pytest.fixture()
    def server(self, calibrated_scenario_2d):
        return LocalizationServer(calibrated_scenario_2d.scene.registry)

    def _report(self, antenna_port=1):
        from repro.hardware.llrp import TagReportData

        return TagReportData(
            epc="E2-TEST",
            antenna_port=antenna_port,
            channel_index=0,
            reader_timestamp_us=1_000,
            host_timestamp_us=1_000,
            phase_rad=1.0,
            rssi_dbm=-60.0,
        )

    def test_empty_reader_name_rejected(self, server):
        with pytest.raises(ConfigurationError, match="reader_name"):
            server.ingest("", [self._report()])

    def test_whitespace_reader_name_rejected(self, server):
        with pytest.raises(ConfigurationError, match="'   '"):
            server.ingest("   ", [self._report()])

    def test_empty_reader_name_rejected_even_without_reports(self, server):
        """The junk key is wrong regardless of payload."""
        with pytest.raises(ConfigurationError):
            server.ingest("", [])

    def test_negative_antenna_port_rejected_with_value(self, server):
        with pytest.raises(ConfigurationError, match="-3"):
            server.ingest("reader-1", [self._report(antenna_port=-3)])
        assert server.streams() == []  # no junk bucket left behind

    def test_resilient_server_rejects_before_creating_validators(
        self, calibrated_scenario_2d
    ):
        from repro.server.resilience import ResilientLocalizationServer

        server = ResilientLocalizationServer(
            calibrated_scenario_2d.scene.registry
        )
        with pytest.raises(ConfigurationError, match="-1"):
            server.ingest("reader-1", [self._report(antenna_port=-1)])
        assert server.quarantine_stats("reader-1", -1).received == 0
        with pytest.raises(ConfigurationError, match="reader_name"):
            server.ingest("", [self._report()])


class TestQueries:
    def test_locate_antenna_2d(self, served):
        server, reader = served
        fix = server.locate_antenna_2d("reader-1", 1)
        truth = reader.antenna(1).position.horizontal()
        assert fix.position.distance_to(truth) < 0.15

    def test_locate_unknown_stream(self, served):
        server, _reader = served
        with pytest.raises(InsufficientDataError):
            server.locate_antenna_2d("ghost-reader", 1)

    def test_locate_all_2d(self, served):
        server, reader = served
        fixes = server.locate_all_2d("reader-1")
        assert set(fixes) == {1}
        truth = reader.antenna(1).position.horizontal()
        assert fixes[1].position.distance_to(truth) < 0.15

    def test_clear(self, calibrated_scenario_2d):
        scenario = calibrated_scenario_2d
        pose = Point3(0.5, 1.9, 0.0)
        batch, _reader = scenario.collect(pose)
        server = LocalizationServer(scenario.scene.registry)
        server.ingest("r", batch.reports)
        server.clear("r")
        assert server.streams() == []

    def test_multi_antenna_streams(self, calibrated_scenario_2d):
        scenario = calibrated_scenario_2d
        pose = Point3(0.2, 1.7, 0.0)
        batch, reader = scenario.collect(pose, num_antennas=2)
        server = LocalizationServer(
            scenario.scene.registry, scenario.config.pipeline
        )
        server.ingest("r", batch.reports)
        fixes = server.locate_all_2d("r")
        assert set(fixes) == {1, 2}
        for port, fix in fixes.items():
            truth = reader.antenna(port).position.horizontal()
            assert fix.position.distance_to(truth) < 0.2
