"""Tests for repro.server.health (deployment monitoring)."""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core.geometry import Point3
from repro.server.health import (
    ISSUE_LOW_READ_RATE,
    ISSUE_NOT_SEEN,
    ISSUE_POOR_COVERAGE,
    ISSUE_WEAK_PEAK,
    DeploymentMonitor,
    format_health_table,
)
from repro.server.registry import SpinningTagRecord, TagRegistry


@pytest.fixture(scope="module")
def healthy_batch(calibrated_scenario_2d):
    batch, _reader = calibrated_scenario_2d.collect(Point3(0.4, 1.9, 0.0))
    return batch


class TestHealthyDeployment:
    def test_all_healthy(self, calibrated_scenario_2d, healthy_batch):
        monitor = DeploymentMonitor(calibrated_scenario_2d.scene.registry)
        reports = monitor.check_all(healthy_batch)
        assert len(reports) == 2
        for report in reports.values():
            assert report.healthy, report.issues
            assert report.read_rate_hz > 10.0
            assert report.rotation_coverage > 0.8
            assert report.peak_power is not None
            assert report.peak_power > 0.4

    def test_unhealthy_list_empty(self, calibrated_scenario_2d, healthy_batch):
        monitor = DeploymentMonitor(calibrated_scenario_2d.scene.registry)
        assert monitor.unhealthy(healthy_batch) == []


class TestFailureDetection:
    def test_unseen_tag_flagged(self, calibrated_scenario_2d, healthy_batch):
        registry = calibrated_scenario_2d.scene.registry
        epc = registry.epcs()[0]
        stripped = healthy_batch.filter_epc(registry.epcs()[1])
        monitor = DeploymentMonitor(registry)
        report = monitor.check_tag(stripped, epc)
        assert ISSUE_NOT_SEEN in report.issues

    def test_stale_registry_speed_weakens_peak(
        self, calibrated_scenario_2d, healthy_batch
    ):
        """A wrong angular speed in the registry collapses the spectrum
        peak: the monitor should notice the model mismatch."""
        true_registry = calibrated_scenario_2d.scene.registry
        stale = TagRegistry()
        for record in true_registry:
            wrong_disk = replace(
                record.disk, angular_speed=record.disk.angular_speed * 1.5
            )
            stale.register(
                SpinningTagRecord(
                    epc=record.epc,
                    disk=wrong_disk,
                    model_key=record.model_key,
                    orientation_profile=record.orientation_profile,
                )
            )
        monitor = DeploymentMonitor(stale)
        for report in monitor.check_all(healthy_batch).values():
            assert ISSUE_WEAK_PEAK in report.issues

    def test_sparse_reads_flag_rate(self, calibrated_scenario_2d, healthy_batch):
        registry = calibrated_scenario_2d.scene.registry
        epc = registry.epcs()[0]
        from repro.hardware.llrp import ReportBatch

        tag_reports = [r for r in healthy_batch.reports if r.epc == epc]
        sparse = ReportBatch(tag_reports[::12])
        monitor = DeploymentMonitor(registry)
        report = monitor.check_tag(sparse, epc)
        assert ISSUE_LOW_READ_RATE in report.issues

    def test_stalled_disk_flags_coverage(
        self, calibrated_scenario_2d, healthy_batch
    ):
        """Keep only reads from a small slice of the rotation — what a
        stalled disk produces."""
        registry = calibrated_scenario_2d.scene.registry
        epc = registry.epcs()[0]
        record = registry.get(epc)
        from repro.hardware.llrp import ReportBatch

        period = record.disk.period
        slice_reports = [
            r
            for r in healthy_batch.reports
            if r.epc == epc and (r.reader_time_s % period) < 0.15 * period
        ]
        monitor = DeploymentMonitor(registry)
        report = monitor.check_tag(ReportBatch(slice_reports), epc)
        assert ISSUE_POOR_COVERAGE in report.issues


def test_format_health_table(calibrated_scenario_2d, healthy_batch):
    monitor = DeploymentMonitor(calibrated_scenario_2d.scene.registry)
    table = format_health_table(list(monitor.check_all(healthy_batch).values()))
    assert "rate_hz" in table
    assert "ok" in table
