"""Tests for repro.server.resilience (the supervised server).

Includes the end-to-end fault-recovery acceptance scenario: three disks,
one stalled, resilient server recovers within 2x of the clean fix while
the unguarded server is dragged far off.
"""

from __future__ import annotations

import pytest

from repro.core.geometry import Point3
from repro.errors import (
    InsufficientDataError,
    TransientError,
    UnknownTagError,
)
from repro.robustness.diagnostics import DegradationState
from repro.robustness.gating import GATE_POOR_COVERAGE
from repro.server.resilience import ResilientLocalizationServer, RetryPolicy
from repro.server.service import LocalizationServer
from repro.sim.faults import corrupt_quantization, pi_slips, stall_disk
from repro.sim.scenario import ScenarioConfig, TagspinScenario
from repro.sim.scene import DeploymentSpec

POSE = Point3(0.4, 1.9, 0.0)


@pytest.fixture(scope="module")
def three_disk_scene():
    """Calibrated 3-disk deployment plus one collection from POSE."""
    spec = DeploymentSpec(
        disk_centers=(
            Point3(-0.3, 0.0, 0.0),
            Point3(0.3, 0.0, 0.0),
            Point3(0.0, 0.35, 0.0),
        )
    )
    scenario = TagspinScenario(ScenarioConfig(deployment=spec, seed=2))
    scenario.run_orientation_prelude()
    batch, reader = scenario.collect(POSE)
    return scenario, batch, reader


def make_server(scenario, **kwargs):
    return ResilientLocalizationServer(
        scenario.scene.registry, scenario.config.pipeline, **kwargs
    )


class TestFaultRecoveryAcceptance:
    """ISSUE 1 acceptance: stalled disk, 3 disks registered."""

    @pytest.fixture(scope="class")
    def stalled(self, three_disk_scene):
        scenario, batch, reader = three_disk_scene
        epc = scenario.scene.registry.epcs()[0]
        disk = scenario.scene.registry.get(epc).disk
        return scenario, stall_disk(batch, disk, epc), reader, epc

    @pytest.fixture(scope="class")
    def clean_error(self, three_disk_scene):
        scenario, batch, reader = three_disk_scene
        server = make_server(scenario)
        server.ingest("r", batch.reports)
        fix = server.locate_antenna_2d("r")
        truth = reader.antenna(1).position.horizontal()
        return fix.position.distance_to(truth)

    def test_resilient_server_recovers(self, stalled, clean_error):
        scenario, faulty, reader, stalled_epc = stalled
        server = make_server(scenario)
        server.ingest("r", faulty.reports)
        fix, diagnostics = server.locate_antenna_2d_diagnosed("r")
        truth = reader.antenna(1).position.horizontal()
        error = fix.position.distance_to(truth)

        assert error <= 2.0 * clean_error
        excluded = {e.epc: e.reasons for e in diagnostics.disks_excluded}
        assert stalled_epc in excluded
        assert GATE_POOR_COVERAGE in excluded[stalled_epc]
        assert stalled_epc not in diagnostics.disks_used
        assert diagnostics.degradation is DegradationState.DEGRADED
        assert server.degradation_state("r") is DegradationState.DEGRADED

    def test_starved_disk_excluded_not_fatal(self, three_disk_scene):
        """A disk with too few reads to extract any series becomes an
        exclusion (insufficient-reads), not an InsufficientDataError."""
        from repro.robustness.gating import GATE_NO_DATA

        scenario, batch, reader = three_disk_scene
        starved_epc = scenario.scene.registry.epcs()[0]
        keep = [
            r
            for r in batch.reports
            if r.epc != starved_epc
        ] + [r for r in batch.reports if r.epc == starved_epc][:5]
        server = make_server(scenario)
        server.ingest("r", keep)
        fix, diagnostics = server.locate_antenna_2d_diagnosed("r")
        truth = reader.antenna(1).position.horizontal()
        assert fix.position.distance_to(truth) < 0.15
        excluded = {e.epc: e.reasons for e in diagnostics.disks_excluded}
        assert excluded.get(starved_epc) == (GATE_NO_DATA,)
        assert diagnostics.degradation is DegradationState.DEGRADED

    def test_unguarded_server_degrades_badly(self, stalled, clean_error):
        scenario, faulty, reader, _epc = stalled
        server = LocalizationServer(
            scenario.scene.registry, scenario.config.pipeline
        )
        server.ingest("r", faulty.reports)
        truth = reader.antenna(1).position.horizontal()
        try:
            fix = server.locate_antenna_2d("r")
        except TransientError:
            return  # erroring out also satisfies the criterion
        assert fix.position.distance_to(truth) > 2.0 * clean_error


class TestValidationAtIngest:
    def test_corrupt_reports_quarantined(self, three_disk_scene, rng):
        scenario, batch, reader = three_disk_scene
        corrupted = corrupt_quantization(batch, 0.2, rng)
        server = make_server(scenario)
        server.ingest("r", corrupted.reports)
        stats = server.quarantine_stats("r", 1)
        assert stats.phase_out_of_range > 0.1 * len(batch.reports)
        fix, diagnostics = server.locate_antenna_2d_diagnosed("r")
        truth = reader.antenna(1).position.horizontal()
        assert fix.position.distance_to(truth) < 0.1
        assert diagnostics.quarantine.phase_out_of_range > 0
        assert diagnostics.degradation is DegradationState.DEGRADED

    def test_pi_slip_storm_survived(self, three_disk_scene, rng):
        scenario, batch, reader = three_disk_scene
        slipped = pi_slips(batch, 0.15, rng)
        server = make_server(scenario)
        server.ingest("r", slipped.reports)
        fix, diagnostics = server.locate_antenna_2d_diagnosed("r")
        truth = reader.antenna(1).position.horizontal()
        assert fix.position.distance_to(truth) < 0.1
        assert diagnostics.quarantine.pi_slips_repaired > 0

    def test_quarantine_stats_empty_stream(self, three_disk_scene):
        scenario, _batch, _reader = three_disk_scene
        server = make_server(scenario)
        assert server.quarantine_stats("ghost", 1).received == 0


class TestRetryPolicy:
    def test_backoff_delays(self):
        policy = RetryPolicy(backoff_base_s=0.5, backoff_factor=2.0)
        assert policy.delay(1) == pytest.approx(0.5)
        assert policy.delay(2) == pytest.approx(1.0)
        assert policy.delay(3) == pytest.approx(2.0)

    def test_backoff_saturates_at_cap(self):
        policy = RetryPolicy(
            backoff_base_s=0.5, backoff_factor=2.0, backoff_max_s=1.5
        )
        assert policy.delay(1) == pytest.approx(0.5)
        assert policy.delay(2) == pytest.approx(1.0)
        assert policy.delay(3) == pytest.approx(1.5)
        assert policy.delay(10) == pytest.approx(1.5)

    def test_full_jitter_bounded_by_backoff(self):
        """Jittered delays stay in [0, deterministic backoff)."""
        import random

        policy = RetryPolicy(
            backoff_base_s=0.5,
            backoff_factor=2.0,
            jitter_rng=random.Random(42),
        )
        ceilings = RetryPolicy(backoff_base_s=0.5, backoff_factor=2.0)
        for attempt in (1, 2, 3, 4):
            for _ in range(50):
                delay = policy.delay(attempt)
                assert 0.0 <= delay <= ceilings.delay(attempt)

    def test_full_jitter_decorrelates_a_fleet(self):
        """Two actors with distinct RNGs never thunder-herd in lockstep;
        the same seed reproduces the same schedule (injectable RNG)."""
        import random

        a = RetryPolicy(jitter_rng=random.Random(1))
        b = RetryPolicy(jitter_rng=random.Random(2))
        schedule_a = [a.delay(n) for n in (1, 2, 3)]
        schedule_b = [b.delay(n) for n in (1, 2, 3)]
        assert schedule_a != schedule_b
        replay = RetryPolicy(jitter_rng=random.Random(1))
        assert [replay.delay(n) for n in (1, 2, 3)] == schedule_a

    def test_retry_grows_window_until_fix(self, three_disk_scene):
        """A buffer too small for a fix succeeds after the data source
        delivers the rest of the stream on retry."""
        scenario, batch, reader = three_disk_scene
        sleeps = []
        # 20 reports (~7 per tag) starve every disk below the snapshot
        # minimum, so the first attempt raises InsufficientDataError.
        chunks = [batch.reports[:20], batch.reports[20:]]

        def source(_reader, _port, attempt):
            return chunks[1] if attempt == 1 else []

        server = make_server(
            scenario,
            retry=RetryPolicy(max_attempts=3, backoff_base_s=0.25),
            data_source=source,
            sleep=sleeps.append,
        )
        server.ingest("r", chunks[0])
        fix, diagnostics = server.locate_antenna_2d_diagnosed("r")
        truth = reader.antenna(1).position.horizontal()
        assert fix.position.distance_to(truth) < 0.1
        assert diagnostics.attempts == 2
        assert sleeps == [0.25]
        assert diagnostics.degradation is DegradationState.DEGRADED

    def test_exhausted_retries_fail(self, three_disk_scene):
        scenario, _batch, _reader = three_disk_scene
        sleeps = []
        server = make_server(
            scenario,
            retry=RetryPolicy(max_attempts=3, backoff_base_s=0.1),
            sleep=sleeps.append,
        )
        with pytest.raises(InsufficientDataError):
            server.locate_antenna_2d("r")
        assert sleeps == pytest.approx([0.1, 0.2])
        assert server.degradation_state("r") is DegradationState.FAILED

    def test_permanent_error_not_retried(self, three_disk_scene):
        scenario, batch, _reader = three_disk_scene
        sleeps = []
        server = make_server(scenario, sleep=sleeps.append)
        server.ingest("r", batch.reports)
        with pytest.raises(UnknownTagError):
            server.system.registry.get("NOT-A-TAG")
        assert sleeps == []


class TestSupervision:
    def test_healthy_stream_reports_healthy(self, three_disk_scene):
        scenario, batch, _reader = three_disk_scene
        server = make_server(scenario)
        server.ingest("r", batch.reports)
        _fix, diagnostics = server.locate_antenna_2d_diagnosed("r")
        assert diagnostics.degradation is DegradationState.HEALTHY
        assert diagnostics.health_issues == {}
        assert server.degradation_state("r") is DegradationState.HEALTHY

    def test_unqueried_stream_defaults_healthy(self, three_disk_scene):
        scenario, _batch, _reader = three_disk_scene
        server = make_server(scenario)
        assert server.degradation_state("never", 9) is DegradationState.HEALTHY
        assert server.degradation_states() == {}

    def test_monitor_flags_ride_along(self, three_disk_scene):
        scenario, batch, _reader = three_disk_scene
        epc = scenario.scene.registry.epcs()[0]
        disk = scenario.scene.registry.get(epc).disk
        server = make_server(scenario, monitor_every=1)
        server.ingest("r", stall_disk(batch, disk, epc).reports)
        _fix, diagnostics = server.locate_antenna_2d_diagnosed("r")
        assert epc in diagnostics.health_issues
        assert diagnostics.health_issues[epc]

    def test_diagnostics_summary_is_plain_data(self, three_disk_scene):
        import json

        scenario, batch, _reader = three_disk_scene
        server = make_server(scenario)
        server.ingest("r", batch.reports)
        _fix, diagnostics = server.locate_antenna_2d_diagnosed("r")
        summary = diagnostics.summary()
        assert json.dumps(summary)  # must serialize cleanly
        assert summary["degradation"] == "healthy"
        assert len(summary["disks_used"]) == 3

    def test_last_diagnostics_cached(self, three_disk_scene):
        scenario, batch, _reader = three_disk_scene
        server = make_server(scenario)
        server.ingest("r", batch.reports)
        assert server.last_diagnostics("r") is None
        _fix, diagnostics = server.locate_antenna_2d_diagnosed("r")
        assert server.last_diagnostics("r") == diagnostics

    def test_plain_locate_api_still_works(self, three_disk_scene):
        """The resilient server stays drop-in compatible with the plain
        server's query API."""
        scenario, batch, reader = three_disk_scene
        server = make_server(scenario)
        server.ingest("r", batch.reports)
        fix = server.locate_antenna_2d("r")
        truth = reader.antenna(1).position.horizontal()
        assert fix.position.distance_to(truth) < 0.1
        fixes = server.locate_all_2d("r")
        assert set(fixes) == {1}
