"""Tests for repro.server.registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.calibration import make_orientation_profile
from repro.core.geometry import Point3
from repro.errors import ConfigurationError, UnknownTagError
from repro.hardware.rotator import horizontal_disk
from repro.server.registry import SpinningTagRecord, TagRegistry


@pytest.fixture
def record() -> SpinningTagRecord:
    return SpinningTagRecord(
        epc="E200AA",
        disk=horizontal_disk(Point3(0, 0, 0), 0.1, 1.0),
    )


class TestRegistry:
    def test_register_and_get(self, record):
        registry = TagRegistry()
        registry.register(record)
        assert registry.get("E200AA") is record
        assert "E200AA" in registry
        assert len(registry) == 1

    def test_duplicate_rejected(self, record):
        registry = TagRegistry()
        registry.register(record)
        with pytest.raises(ConfigurationError):
            registry.register(record)

    def test_unknown_get_raises(self):
        with pytest.raises(UnknownTagError):
            TagRegistry().get("MISSING")

    def test_iteration_and_epcs(self, record):
        registry = TagRegistry()
        registry.register(record)
        assert [r.epc for r in registry] == ["E200AA"]
        assert registry.epcs() == ["E200AA"]

    def test_set_orientation_profile(self, record):
        registry = TagRegistry()
        registry.register(record)
        profile = make_orientation_profile(np.array([0.3]), np.array([0.0]))
        registry.set_orientation_profile("E200AA", profile)
        assert registry.get("E200AA").orientation_profile is profile
        # Original record object is unchanged (immutable replace).
        assert record.orientation_profile is None

    def test_unregister(self, record):
        registry = TagRegistry()
        registry.register(record)
        registry.unregister("E200AA")
        assert "E200AA" not in registry
        with pytest.raises(UnknownTagError):
            registry.unregister("E200AA")

    def test_with_profile_copy(self, record):
        profile = make_orientation_profile(np.array([0.2]), np.array([0.1]))
        updated = record.with_profile(profile)
        assert updated.orientation_profile is profile
        assert updated.epc == record.epc
        assert updated.disk is record.disk
