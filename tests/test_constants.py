"""Tests for repro.constants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import (
    BAND_HIGH_HZ,
    BAND_LOW_HZ,
    DEFAULT_WAVELENGTH_M,
    NUM_CHANNELS,
    PHASE_NOISE_STD_RAD,
    RELATIVE_PHASE_STD_RAD,
    SPEED_OF_LIGHT,
    channel_frequencies,
    wavelength_for_frequency,
)


class TestWavelengths:
    def test_default_wavelength_is_paper_band(self):
        """The paper's band gives ~32.4-32.6 cm wavelengths."""
        assert 0.3240 < DEFAULT_WAVELENGTH_M < 0.3260

    def test_band_edges(self):
        low = wavelength_for_frequency(BAND_HIGH_HZ)
        high = wavelength_for_frequency(BAND_LOW_HZ)
        assert low < DEFAULT_WAVELENGTH_M < high

    @given(st.floats(min_value=1e6, max_value=1e10))
    @settings(max_examples=30)
    def test_roundtrip(self, frequency):
        wavelength = wavelength_for_frequency(frequency)
        assert wavelength * frequency == pytest.approx(SPEED_OF_LIGHT)

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            wavelength_for_frequency(0.0)


class TestChannelTable:
    def test_count(self):
        assert channel_frequencies().size == NUM_CHANNELS

    def test_within_band(self):
        frequencies = channel_frequencies()
        assert np.all(frequencies > BAND_LOW_HZ)
        assert np.all(frequencies < BAND_HIGH_HZ)

    def test_evenly_spaced(self):
        spacings = np.diff(channel_frequencies())
        assert np.allclose(spacings, spacings[0])

    def test_edge_inset_half_spacing(self):
        frequencies = channel_frequencies()
        spacing = frequencies[1] - frequencies[0]
        assert frequencies[0] - BAND_LOW_HZ == pytest.approx(spacing / 2)
        assert BAND_HIGH_HZ - frequencies[-1] == pytest.approx(spacing / 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            channel_frequencies(num_channels=0)
        with pytest.raises(ValueError):
            channel_frequencies(band_low_hz=1e9, band_high_hz=9e8)


def test_relative_phase_std_is_sqrt2_sigma():
    """Definition 4.1: the difference of two measurements has sqrt(2)*sigma."""
    assert RELATIVE_PHASE_STD_RAD == pytest.approx(
        PHASE_NOISE_STD_RAD * np.sqrt(2.0)
    )
