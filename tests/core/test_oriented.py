"""Tests for repro.core.oriented (arbitrary-disk-orientation spectra)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.geometry import Point3
from repro.core.oriented import (
    compute_oriented_profile,
    direction_vector,
    oriented_relative_phase_model,
    power_at_direction,
    resolve_z_with_vertical_disk,
)
from repro.core.phase import relative_phase_model
from repro.core.spectrum import SnapshotSeries
from repro.errors import InsufficientDataError

HORIZONTAL = ((1.0, 0.0, 0.0), (0.0, 1.0, 0.0))
VERTICAL_X = ((1.0, 0.0, 0.0), (0.0, 0.0, 1.0))


def _vertical_series(
    center: Point3,
    reader: Point3,
    n: int = 220,
    wavelength: float = 0.325,
    radius: float = 0.10,
    omega: float = 1.0,
    noise_std: float = 0.0,
) -> SnapshotSeries:
    """Exact-geometry phases of a tag on a vertical (x-z plane) disk."""
    times = np.linspace(0.0, 2 * 2 * np.pi / omega, n)
    u = np.array(VERTICAL_X[0])
    v = np.array(VERTICAL_X[1])
    angles = omega * times
    positions = (
        center.as_array()[None, :]
        + radius * (np.outer(np.cos(angles), u) + np.outer(np.sin(angles), v))
    )
    distances = np.linalg.norm(positions - reader.as_array()[None, :], axis=1)
    phases = np.mod(4 * np.pi * distances / wavelength, 2 * np.pi)
    if noise_std > 0:
        rng = np.random.default_rng(2)
        phases = np.mod(phases + noise_std * rng.standard_normal(n), 2 * np.pi)
    return SnapshotSeries(times, phases, wavelength, radius, omega)


class TestDirectionVector:
    def test_equator(self):
        assert np.allclose(direction_vector(0.0, 0.0), [1, 0, 0])

    def test_pole(self):
        assert np.allclose(
            direction_vector(1.2, np.pi / 2), [0, 0, 1], atol=1e-12
        )

    def test_unit_norm_grid(self):
        azimuths = np.linspace(0, 2 * np.pi, 12)
        vectors = direction_vector(azimuths, 0.4)
        assert np.allclose(np.linalg.norm(vectors, axis=-1), 1.0)


class TestOrientedModel:
    def test_reduces_to_horizontal_model(self, make_series):
        series = make_series(azimuth=1.3, polar=0.4, n=60)
        azimuths = np.linspace(0, 2 * np.pi, 10, endpoint=False)
        polars = np.array([0.4])
        oriented = oriented_relative_phase_model(
            series, HORIZONTAL[0], HORIZONTAL[1], azimuths, polars
        )
        classic = relative_phase_model(
            series.times,
            series.wavelength,
            series.radius,
            series.angular_speed,
            azimuths[np.newaxis, :],
            np.array([[0.4]]),
            series.phase0,
        )
        assert np.allclose(oriented, classic, atol=1e-9)

    def test_horizontal_profile_matches_peak(self, make_series):
        phi = 2.0
        series = make_series(azimuth=phi, n=150)
        spectrum = compute_oriented_profile(
            series, HORIZONTAL[0], HORIZONTAL[1]
        )
        error = abs(np.angle(np.exp(1j * (spectrum.peak_azimuth - phi))))
        assert error < np.deg2rad(1.5)

    def test_insufficient_data(self, make_series):
        with pytest.raises(InsufficientDataError):
            compute_oriented_profile(
                make_series(azimuth=1.0, n=2), HORIZONTAL[0], HORIZONTAL[1]
            )


class TestVerticalDisk:
    def test_vertical_disk_breaks_z_symmetry(self):
        """A vertical disk's profile distinguishes +gamma from -gamma."""
        center = Point3(0.0, 0.0, 0.0)
        reader = Point3(0.0, 2.0, 0.8)
        series = _vertical_series(center, reader)
        azimuth = center.azimuth_to(reader)
        polar = center.polar_to(reader)
        up = power_at_direction(
            series, VERTICAL_X[0], VERTICAL_X[1], azimuth, polar
        )
        down = power_at_direction(
            series, VERTICAL_X[0], VERTICAL_X[1], azimuth, -polar
        )
        assert up > 3.0 * down

    def test_resolve_z_ambiguity_positive(self):
        center = Point3(0.0, 0.0, 0.0)
        truth = Point3(0.4, 2.0, 0.6)
        series = _vertical_series(center, truth, noise_std=0.1)
        mirror = Point3(truth.x, truth.y, -truth.z)
        chosen = resolve_z_with_vertical_disk(
            (mirror, truth), center, series, VERTICAL_X[0], VERTICAL_X[1]
        )
        assert chosen is truth

    def test_resolve_z_ambiguity_negative(self):
        center = Point3(0.0, 0.0, 0.0)
        truth = Point3(-0.3, 2.2, -0.5)
        series = _vertical_series(center, truth, noise_std=0.1)
        mirror = Point3(truth.x, truth.y, -truth.z)
        chosen = resolve_z_with_vertical_disk(
            (truth, mirror), center, series, VERTICAL_X[0], VERTICAL_X[1]
        )
        assert chosen is truth

    def test_oriented_peak_finds_elevation(self):
        center = Point3(0.0, 0.0, 0.0)
        reader = Point3(0.0, 1.8, 0.9)
        series = _vertical_series(center, reader)
        spectrum = compute_oriented_profile(
            series,
            VERTICAL_X[0],
            VERTICAL_X[1],
            polar_grid=np.linspace(-np.pi / 2, np.pi / 2, 181),
        )
        expected_polar = center.polar_to(reader)
        assert abs(spectrum.peak_polar - expected_polar) < np.deg2rad(3.0)
