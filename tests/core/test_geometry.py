"""Tests for repro.core.geometry."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import (
    Bearing2D,
    Point2,
    Point3,
    angular_difference,
    circle_point,
    euclidean_error_2d,
    euclidean_error_3d,
    fuse_heights,
    height_from_polar,
    intersect_bearings_2d,
    least_squares_intersection,
    point_line_distance,
    rotation_matrix_2d,
    triangulation_residual,
    wrap_angle,
    wrap_angle_signed,
)
from repro.errors import AmbiguityError

finite_angles = st.floats(
    min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
)


class TestAngleWrapping:
    def test_wrap_angle_range(self):
        assert wrap_angle(2.5 * math.pi) == pytest.approx(0.5 * math.pi)
        assert wrap_angle(-0.5 * math.pi) == pytest.approx(1.5 * math.pi)

    def test_wrap_angle_signed_range(self):
        assert wrap_angle_signed(1.5 * math.pi) == pytest.approx(-0.5 * math.pi)
        assert wrap_angle_signed(math.pi) == pytest.approx(math.pi)

    @given(finite_angles)
    def test_wrap_angle_always_in_range(self, angle):
        wrapped = wrap_angle(angle)
        assert 0.0 <= wrapped < 2.0 * math.pi

    @given(finite_angles)
    def test_wrap_signed_always_in_range(self, angle):
        wrapped = wrap_angle_signed(angle)
        assert -math.pi < wrapped <= math.pi

    @given(finite_angles)
    def test_wraps_agree_mod_2pi(self, angle):
        difference = wrap_angle(angle) - wrap_angle_signed(angle)
        assert abs(math.remainder(difference, 2.0 * math.pi)) < 1e-9

    @given(finite_angles, finite_angles)
    def test_angular_difference_symmetric(self, a, b):
        assert angular_difference(a, b) == pytest.approx(
            angular_difference(b, a), abs=1e-9
        )

    def test_angular_difference_max_is_pi(self):
        assert angular_difference(0.0, math.pi) == pytest.approx(math.pi)


class TestPoints:
    def test_distance(self):
        assert Point2(0, 0).distance_to(Point2(3, 4)) == pytest.approx(5.0)

    def test_bearing_east(self):
        assert Point2(0, 0).bearing_to(Point2(1, 0)) == pytest.approx(0.0)

    def test_bearing_north(self):
        assert Point2(0, 0).bearing_to(Point2(0, 2)) == pytest.approx(
            math.pi / 2
        )

    def test_point3_distance(self):
        assert Point3(0, 0, 0).distance_to(Point3(1, 2, 2)) == pytest.approx(3.0)

    def test_point3_horizontal(self):
        assert Point3(1.0, 2.0, 3.0).horizontal() == Point2(1.0, 2.0)

    def test_polar_to_45_degrees(self):
        origin = Point3(0, 0, 0)
        assert origin.polar_to(Point3(1, 0, 1)) == pytest.approx(math.pi / 4)

    def test_polar_to_negative(self):
        origin = Point3(0, 0, 0)
        assert origin.polar_to(Point3(1, 0, -1)) == pytest.approx(-math.pi / 4)

    def test_translated(self):
        assert Point2(1, 1).translated(0.5, -0.5) == Point2(1.5, 0.5)


class TestBearingIntersection:
    def test_perpendicular_bearings(self):
        a = Bearing2D(Point2(0, 0), math.pi / 2)  # north from origin
        b = Bearing2D(Point2(1, 0), math.pi)  # west from (1, 0)
        hit = intersect_bearings_2d(a, b)
        assert hit.x == pytest.approx(0.0, abs=1e-9)
        assert hit.y == pytest.approx(0.0, abs=1e-9)

    def test_known_intersection(self):
        target = Point2(0.4, 1.9)
        a_origin, b_origin = Point2(-0.25, 0.0), Point2(0.25, 0.0)
        a = Bearing2D(a_origin, a_origin.bearing_to(target))
        b = Bearing2D(b_origin, b_origin.bearing_to(target))
        hit = intersect_bearings_2d(a, b)
        assert hit.x == pytest.approx(target.x, abs=1e-9)
        assert hit.y == pytest.approx(target.y, abs=1e-9)

    def test_parallel_raises(self):
        a = Bearing2D(Point2(0, 0), 0.3)
        b = Bearing2D(Point2(0, 1), 0.3)
        with pytest.raises(AmbiguityError):
            intersect_bearings_2d(a, b)

    def test_antiparallel_raises(self):
        a = Bearing2D(Point2(0, 0), 0.3)
        b = Bearing2D(Point2(0, 1), 0.3 + math.pi)
        with pytest.raises(AmbiguityError):
            intersect_bearings_2d(a, b)

    @given(
        st.floats(min_value=-2.0, max_value=2.0),
        st.floats(min_value=0.5, max_value=3.0),
    )
    @settings(max_examples=30)
    def test_exact_bearings_recover_target(self, x, y):
        target = Point2(x, y)
        origins = [Point2(-0.25, 0.0), Point2(0.25, 0.0)]
        bearings = [Bearing2D(o, o.bearing_to(target)) for o in origins]
        hit = intersect_bearings_2d(*bearings)
        assert hit.distance_to(target) < 1e-6


class TestLeastSquaresIntersection:
    def test_matches_pairwise_for_two_lines(self):
        target = Point2(0.7, 1.3)
        origins = [Point2(-0.5, 0.0), Point2(0.5, 0.0)]
        bearings = [Bearing2D(o, o.bearing_to(target)) for o in origins]
        pairwise = intersect_bearings_2d(*bearings)
        lsq = least_squares_intersection(bearings)
        assert lsq.distance_to(pairwise) < 1e-9

    def test_three_exact_lines(self):
        target = Point2(-0.3, 2.1)
        origins = [Point2(-0.5, 0.0), Point2(0.5, 0.0), Point2(0.0, 0.5)]
        bearings = [Bearing2D(o, o.bearing_to(target)) for o in origins]
        hit = least_squares_intersection(bearings)
        assert hit.distance_to(target) < 1e-9

    def test_minimizes_residual(self):
        # Perturb one bearing; LSQ answer should beat any pairwise answer
        # in RMS perpendicular distance.
        target = Point2(0.0, 2.0)
        origins = [Point2(-0.5, 0.0), Point2(0.5, 0.0), Point2(1.0, 0.5)]
        bearings = [
            Bearing2D(o, o.bearing_to(target) + delta)
            for o, delta in zip(origins, [0.01, -0.01, 0.02])
        ]
        lsq = least_squares_intersection(bearings)
        rms = triangulation_residual(lsq, bearings)
        for dx in (-0.02, 0.02):
            nudged = Point2(lsq.x + dx, lsq.y)
            assert triangulation_residual(nudged, bearings) >= rms

    def test_single_bearing_rejected(self):
        with pytest.raises(ValueError):
            least_squares_intersection([Bearing2D(Point2(0, 0), 1.0)])

    def test_parallel_lines_rejected(self):
        bearings = [
            Bearing2D(Point2(0, 0), 0.4),
            Bearing2D(Point2(0, 1), 0.4),
            Bearing2D(Point2(0, 2), 0.4),
        ]
        with pytest.raises(AmbiguityError):
            least_squares_intersection(bearings)


class TestHeights:
    def test_height_from_polar_45(self):
        origin = Point3(0.0, 0.0, 0.0)
        z = height_from_polar(origin, Point2(1.0, 0.0), math.pi / 4)
        assert z == pytest.approx(1.0)

    def test_height_respects_origin_z(self):
        origin = Point3(0.0, 0.0, -0.095)
        z = height_from_polar(origin, Point2(2.0, 0.0), 0.0)
        assert z == pytest.approx(-0.095)

    def test_fuse_heights_mean(self):
        assert fuse_heights([1.0, 2.0, 3.0]) == pytest.approx(2.0)

    def test_fuse_heights_empty_raises(self):
        with pytest.raises(ValueError):
            fuse_heights([])


class TestDistancesAndErrors:
    def test_point_line_distance(self):
        bearing = Bearing2D(Point2(0, 0), 0.0)  # the x-axis
        assert point_line_distance(Point2(3.0, 2.0), bearing) == pytest.approx(2.0)

    def test_rotation_matrix_orthonormal(self):
        m = rotation_matrix_2d(0.7)
        assert np.allclose(m @ m.T, np.eye(2))
        assert np.linalg.det(m) == pytest.approx(1.0)

    def test_euclidean_error_2d(self):
        ex, ey, combined = euclidean_error_2d(Point2(1, 1), Point2(4, 5))
        assert (ex, ey) == (3.0, 4.0)
        assert combined == pytest.approx(5.0)

    def test_euclidean_error_3d(self):
        ex, ey, ez, combined = euclidean_error_3d(
            Point3(0, 0, 0), Point3(1, 2, 2)
        )
        assert (ex, ey, ez) == (1.0, 2.0, 2.0)
        assert combined == pytest.approx(3.0)

    def test_circle_point(self):
        p = circle_point(Point2(1.0, 1.0), 2.0, math.pi / 2)
        assert p.x == pytest.approx(1.0)
        assert p.y == pytest.approx(3.0)

    @given(
        st.floats(min_value=-1.0, max_value=1.0),
        st.floats(min_value=1.0, max_value=3.0),
        st.floats(min_value=0.0, max_value=2.0 * math.pi),
    )
    @settings(max_examples=25)
    def test_rotation_invariance_of_intersection(self, x, y, theta):
        """Rotating the whole scene rotates the intersection accordingly."""
        target = Point2(x, y)
        origins = [Point2(-0.4, 0.0), Point2(0.4, 0.0)]
        bearings = [Bearing2D(o, o.bearing_to(target)) for o in origins]
        try:
            baseline = intersect_bearings_2d(*bearings)
        except AmbiguityError:
            return  # collinear configuration; nothing to check
        m = rotation_matrix_2d(theta)
        rotated = [
            Bearing2D(
                Point2(*(m @ o.as_array())), wrap_angle(b.azimuth + theta)
            )
            for o, b in zip(origins, bearings)
        ]
        hit = intersect_bearings_2d(*rotated)
        expected = m @ baseline.as_array()
        assert np.allclose(hit.as_array(), expected, atol=1e-6)
