"""Tests for repro.core.tracking."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.geometry import Point2
from repro.core.locator import Fix2D
from repro.core.tracking import ConstantVelocityKalman, ReaderTracker
from repro.errors import ConfigurationError


def _fix(x: float, y: float, residual: float = 0.005) -> Fix2D:
    return Fix2D(position=Point2(x, y), residual=residual, confidence=0.8)


class TestKalman:
    def test_first_update_initializes(self):
        kf = ConstantVelocityKalman()
        point = kf.update(0.0, Point2(1.0, 2.0), 0.05)
        assert kf.initialized
        assert point.position == Point2(1.0, 2.0)
        assert not point.rejected

    def test_smooths_noise(self):
        rng = np.random.default_rng(4)
        # A near-static process model lets the filter average heavily.
        kf = ConstantVelocityKalman(accel_std=0.005)
        truth = Point2(0.5, 1.5)
        raw_errors, smoothed_errors = [], []
        for step in range(40):
            noisy = Point2(
                truth.x + 0.05 * rng.standard_normal(),
                truth.y + 0.05 * rng.standard_normal(),
            )
            point = kf.update(step * 1.0, noisy, 0.05)
            raw_errors.append(noisy.distance_to(truth))
            smoothed_errors.append(point.position.distance_to(truth))
        assert np.mean(smoothed_errors[10:]) < 0.6 * np.mean(raw_errors[10:])

    def test_tracks_constant_velocity(self):
        kf = ConstantVelocityKalman(accel_std=0.2)
        for step in range(30):
            t = step * 0.5
            kf.update(t, Point2(0.1 * t, 1.0), 0.02)
        point = kf.update(15.0, Point2(1.5, 1.0), 0.02)
        assert point.velocity[0] == pytest.approx(0.1, abs=0.03)
        assert abs(point.velocity[1]) < 0.03

    def test_outlier_rejected(self):
        kf = ConstantVelocityKalman(accel_std=0.05)
        for step in range(10):
            kf.update(step * 1.0, Point2(0.0, 1.0), 0.02)
        point = kf.update(10.0, Point2(5.0, 9.0), 0.02)
        assert point.rejected
        # The state coasted: still near the true position.
        assert point.position.distance_to(Point2(0.0, 1.0)) < 0.1

    def test_time_must_not_go_backward(self):
        kf = ConstantVelocityKalman()
        kf.update(1.0, Point2(0, 0), 0.05)
        with pytest.raises(ValueError):
            kf.update(0.5, Point2(0, 0), 0.05)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            ConstantVelocityKalman(accel_std=0.0)
        with pytest.raises(ConfigurationError):
            ConstantVelocityKalman(gate=-1.0)

    def test_invalid_measurement_std(self):
        kf = ConstantVelocityKalman()
        with pytest.raises(ValueError):
            kf.update(0.0, Point2(0, 0), 0.0)


class TestReaderTracker:
    def test_ingest_builds_track(self):
        tracker = ReaderTracker()
        for step in range(5):
            tracker.ingest(step * 2.0, _fix(0.1 * step, 1.5))
        assert len(tracker.track) == 5
        assert len(tracker.positions()) == 5
        assert tracker.rejection_count() == 0

    def test_residual_scales_trust(self):
        """A high-residual fix moves the state less than a clean one.

        The jump is kept inside the innovation gate for both arms so the
        comparison is about weighting, not rejection.
        """

        def pull(residual: float) -> float:
            tracker = ReaderTracker(accel_std=0.05)
            for step in range(8):
                tracker.ingest(step * 1.0, _fix(0.0, 1.0))
            point = tracker.ingest(8.0, _fix(0.05, 1.0, residual=residual))
            assert not point.rejected
            return abs(point.position.x)

        assert pull(0.2) < 0.3 * pull(0.01)

    def test_tracks_moving_reader_fixes(self, calibrated_scenario_2d):
        """End-to-end: stop-and-go reader along a line, tracked."""
        scenario = calibrated_scenario_2d
        tracker = ReaderTracker(accel_std=0.1)
        waypoints = [Point2(-0.6 + 0.3 * i, 1.8) for i in range(5)]
        errors = []
        for step, waypoint in enumerate(waypoints):
            fix, _error = scenario.locate_2d(waypoint)
            point = tracker.ingest(step * 15.0, fix)
            errors.append(point.position.distance_to(waypoint))
        assert np.mean(errors) < 0.12
        assert tracker.rejection_count() <= 1
