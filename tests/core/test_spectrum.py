"""Tests for repro.core.spectrum."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spectrum import (
    AngleSpectrum,
    SnapshotSeries,
    _refine_peak_circular,
    _refine_peak_clamped,
    combine_spectra,
    compute_q_profile,
    compute_q_profile_3d,
    compute_r_profile,
    compute_r_profile_3d,
    default_azimuth_grid,
    default_polar_grid,
    peak_sharpness,
)
from repro.errors import InsufficientDataError


class TestSnapshotSeries:
    def test_validates_shapes(self, make_series):
        with pytest.raises(ValueError):
            SnapshotSeries(np.zeros(3), np.zeros(4), 0.325, 0.1, 1.0)

    def test_rejects_decreasing_times(self):
        with pytest.raises(ValueError):
            SnapshotSeries(
                np.array([0.0, 1.0, 0.5]), np.zeros(3), 0.325, 0.1, 1.0
            )

    def test_rejects_bad_wavelength(self):
        with pytest.raises(ValueError):
            SnapshotSeries(np.zeros(2), np.zeros(2), -1.0, 0.1, 1.0)

    def test_rejects_zero_speed(self):
        with pytest.raises(ValueError):
            SnapshotSeries(np.zeros(2), np.zeros(2), 0.325, 0.1, 0.0)

    def test_relative_phases_zero_first(self, make_series):
        series = make_series(azimuth=0.5)
        relative = series.relative_phases()
        assert relative[0] == pytest.approx(0.0)
        assert np.all(np.abs(relative) <= np.pi + 1e-12)

    def test_len(self, make_series):
        assert len(make_series(azimuth=0.1, n=57)) == 57

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_rejects_non_finite_times(self, bad):
        """Regression: a NaN/Inf timestamp used to flow straight into the
        steering model and poison the whole spectrum."""
        with pytest.raises(ValueError, match="finite"):
            SnapshotSeries(
                np.array([0.0, 1.0, bad]), np.zeros(3), 0.325, 0.1, 1.0
            )

    @pytest.mark.parametrize("bad", [np.nan, np.inf, -np.inf])
    def test_rejects_non_finite_phases(self, bad):
        with pytest.raises(ValueError, match="finite"):
            SnapshotSeries(
                np.array([0.0, 1.0, 2.0]),
                np.array([0.1, bad, 0.3]),
                0.325, 0.1, 1.0,
            )

    @pytest.mark.parametrize(
        "field", ["wavelength", "radius", "angular_speed", "phase0"]
    )
    @pytest.mark.parametrize("bad", [np.nan, np.inf])
    def test_rejects_non_finite_scalars(self, field, bad):
        """NaN slipped past the old sign checks (NaN <= 0 is False)."""
        kwargs = {
            "times": np.array([0.0, 1.0, 2.0]),
            "phases": np.zeros(3),
            "wavelength": 0.325,
            "radius": 0.1,
            "angular_speed": 1.0,
            "phase0": 0.0,
        }
        kwargs[field] = bad
        with pytest.raises(ValueError):
            SnapshotSeries(**kwargs)


class TestGrids:
    def test_azimuth_grid_covers_circle(self):
        grid = default_azimuth_grid(np.deg2rad(1.0))
        assert grid[0] == 0.0
        assert grid[-1] < 2 * np.pi
        assert grid.size == 360

    def test_polar_grid_symmetric(self):
        grid = default_polar_grid(np.deg2rad(2.0))
        assert grid[0] == pytest.approx(-np.pi / 2)
        assert grid[-1] == pytest.approx(np.pi / 2)


class TestPeakRefinement:
    """Edge cases of the sub-grid parabolic peak interpolators."""

    GRID = np.linspace(0.0, 2.0 * np.pi, 8, endpoint=False)

    def test_circular_wraps_peak_at_first_point(self):
        """A maximum at index 0 interpolates across the wrap seam."""
        power = np.array([1.0, 0.6, 0.2, 0.1, 0.1, 0.1, 0.2, 0.8])
        azimuth, peak = _refine_peak_circular(self.GRID, power)
        # The wrapped left neighbor (0.8) beats the right one (0.6), so
        # the refined peak sits just below 2*pi rather than just above 0.
        assert 1.5 * np.pi < azimuth < 2.0 * np.pi
        assert peak >= 1.0

    def test_circular_wraps_peak_at_last_point(self):
        power = np.array([0.8, 0.2, 0.1, 0.1, 0.1, 0.2, 0.6, 1.0])
        azimuth, peak = _refine_peak_circular(self.GRID, power)
        # Pulled toward the larger wrapped neighbor at index 0, but the
        # result stays normalized inside [0, 2*pi).
        assert self.GRID[-1] < azimuth < 2.0 * np.pi
        assert peak >= 1.0

    def test_circular_flat_spectrum_returns_grid_point(self):
        """Zero curvature must not divide by zero; grid point wins."""
        power = np.full(8, 0.5)
        azimuth, peak = _refine_peak_circular(self.GRID, power)
        assert azimuth == self.GRID[0]
        assert peak == 0.5

    def test_circular_two_equal_maxima_picks_first(self):
        power = np.array([0.1, 0.9, 0.1, 0.1, 0.1, 0.9, 0.1, 0.1])
        azimuth, _peak = _refine_peak_circular(self.GRID, power)
        # np.argmax ties break to the lowest index; symmetric equal
        # neighbors leave the refined azimuth on the grid point.
        assert azimuth == pytest.approx(self.GRID[1])

    def test_circular_result_stays_in_range(self):
        rng = np.random.default_rng(8)
        for _ in range(50):
            azimuth, _ = _refine_peak_circular(self.GRID, rng.random(8))
            assert 0.0 <= azimuth < 2.0 * np.pi

    def test_clamped_boundary_peak_not_extrapolated(self):
        """A maximum at either end returns the endpoint untouched."""
        grid = np.linspace(-1.0, 1.0, 9)
        rising = np.linspace(0.0, 1.0, 9)
        azimuth, peak = _refine_peak_clamped(grid, rising)
        assert azimuth == grid[-1]
        assert peak == 1.0
        falling = rising[::-1].copy()
        azimuth, peak = _refine_peak_clamped(grid, falling)
        assert azimuth == grid[0]
        assert peak == 1.0

    def test_clamped_flat_spectrum_returns_grid_point(self):
        grid = np.linspace(-1.0, 1.0, 9)
        azimuth, peak = _refine_peak_clamped(grid, np.full(9, 0.3))
        assert azimuth == grid[0]
        assert peak == 0.3

    def test_clamped_two_equal_maxima_picks_first(self):
        grid = np.linspace(-1.0, 1.0, 9)
        power = np.array([0.1, 0.2, 0.9, 0.2, 0.1, 0.2, 0.9, 0.2, 0.1])
        azimuth, _peak = _refine_peak_clamped(grid, power)
        assert azimuth == pytest.approx(grid[2])

    def test_clamped_tiny_grid_degenerates_gracefully(self):
        grid = np.array([0.0, 0.5])
        azimuth, peak = _refine_peak_clamped(grid, np.array([0.2, 0.7]))
        assert azimuth == 0.5
        assert peak == 0.7

    def test_interior_peak_moves_toward_larger_neighbor(self):
        grid = np.linspace(-1.0, 1.0, 9)
        power = np.array([0.1, 0.2, 0.5, 1.0, 0.9, 0.3, 0.2, 0.1, 0.1])
        azimuth, peak = _refine_peak_clamped(grid, power)
        assert grid[3] < azimuth < grid[4]
        assert peak >= 1.0


class TestQProfile:
    def test_peak_at_truth_noiseless(self, make_series):
        for phi in [0.0, 1.2, 3.5, 5.9]:
            series = make_series(azimuth=phi)
            spectrum = compute_q_profile(series)
            error = abs(
                np.angle(np.exp(1j * (spectrum.peak_azimuth - phi)))
            )
            assert error < np.deg2rad(0.3)

    def test_peak_power_near_one(self, make_series):
        spectrum = compute_q_profile(make_series(azimuth=2.0))
        assert spectrum.peak_power == pytest.approx(1.0, abs=1e-3)

    def test_diversity_invariance(self, make_series):
        base = compute_q_profile(make_series(azimuth=1.0, diversity=0.0))
        shifted = compute_q_profile(make_series(azimuth=1.0, diversity=2.7))
        assert np.allclose(base.power, shifted.power, atol=1e-9)

    def test_insufficient_snapshots(self, make_series):
        with pytest.raises(InsufficientDataError):
            compute_q_profile(make_series(azimuth=1.0, n=2))

    def test_phase0_respected(self, make_series):
        phi = 2.2
        series = make_series(azimuth=phi, phase0=1.5)
        spectrum = compute_q_profile(series)
        error = abs(np.angle(np.exp(1j * (spectrum.peak_azimuth - phi))))
        assert error < np.deg2rad(0.3)

    @given(st.floats(min_value=0.0, max_value=2 * np.pi - 1e-6))
    @settings(max_examples=20, deadline=None)
    def test_peak_tracks_truth_property(self, phi):
        from helpers import make_series as factory

        series = factory(azimuth=phi, n=120)
        spectrum = compute_q_profile(series)
        error = abs(np.angle(np.exp(1j * (spectrum.peak_azimuth - phi))))
        assert error < np.deg2rad(0.5)


class TestRProfile:
    def test_peak_at_truth_noisy(self, make_series):
        phi = 3.1
        series = make_series(azimuth=phi, noise_std=0.1, n=300)
        spectrum = compute_r_profile(series)
        error = abs(np.angle(np.exp(1j * (spectrum.peak_azimuth - phi))))
        assert error < np.deg2rad(1.0)

    def test_sharper_than_q(self, make_series):
        """The paper's headline claim: R's peak is far sharper than Q's."""
        series = make_series(azimuth=1.9, noise_std=0.1, n=300)
        q = compute_q_profile(series)
        r = compute_r_profile(series)
        assert peak_sharpness(r) > 2.0 * peak_sharpness(q)

    def test_reference_noise_invariance(self, make_series):
        """R must not be dragged by the first snapshot's own noise."""
        phi = 0.8
        series = make_series(azimuth=phi, n=200)
        # Corrupt only the reference snapshot by a large offset.
        phases = series.phases.copy()
        phases[0] = np.mod(phases[0] + 0.3, 2 * np.pi)
        corrupted = SnapshotSeries(
            series.times, phases, series.wavelength,
            series.radius, series.angular_speed, series.phase0,
        )
        spectrum = compute_r_profile(corrupted)
        error = abs(np.angle(np.exp(1j * (spectrum.peak_azimuth - phi))))
        assert error < np.deg2rad(0.5)

    def test_bad_sigma_rejected(self, make_series):
        with pytest.raises(ValueError):
            compute_r_profile(make_series(azimuth=0.2), sigma=0.0)

    def test_power_at_lookup(self, make_series):
        spectrum = compute_r_profile(make_series(azimuth=1.0))
        assert spectrum.power_at(spectrum.peak_azimuth) == pytest.approx(
            np.max(spectrum.power)
        )


class TestJointProfiles:
    def test_q3d_peak_at_truth(self, make_series):
        phi, gamma = 2.4, 0.45
        series = make_series(azimuth=phi, polar=gamma, n=250)
        spectrum = compute_q_profile_3d(series)
        azimuth_error = abs(
            np.angle(np.exp(1j * (spectrum.peak_azimuth - phi)))
        )
        assert azimuth_error < np.deg2rad(1.0)
        # The polar peak is sign-ambiguous for a horizontal disk.
        assert abs(abs(spectrum.peak_polar) - gamma) < np.deg2rad(2.0)

    def test_r3d_peak_at_truth(self, make_series):
        phi, gamma = 4.0, 0.3
        series = make_series(azimuth=phi, polar=gamma, noise_std=0.1, n=250)
        spectrum = compute_r_profile_3d(series)
        azimuth_error = abs(
            np.angle(np.exp(1j * (spectrum.peak_azimuth - phi)))
        )
        assert azimuth_error < np.deg2rad(1.5)
        assert abs(abs(spectrum.peak_polar) - gamma) < np.deg2rad(4.0)

    def test_mirror_peaks_symmetric(self, make_series):
        """Fig 8: two symmetric peaks in the polar axis."""
        series = make_series(azimuth=1.0, polar=0.5, n=200)
        spectrum = compute_q_profile_3d(series)
        polar = spectrum.polar_grid
        row_up = int(np.argmin(np.abs(polar - 0.5)))
        row_down = int(np.argmin(np.abs(polar + 0.5)))
        azimuth_col = int(np.argmin(np.abs(spectrum.azimuth_grid - 1.0)))
        assert spectrum.power[row_up, azimuth_col] == pytest.approx(
            spectrum.power[row_down, azimuth_col], rel=1e-6
        )

    def test_power_shape(self, make_series):
        azimuths = default_azimuth_grid(np.deg2rad(5.0))
        polars = default_polar_grid(np.deg2rad(5.0))
        spectrum = compute_q_profile_3d(
            make_series(azimuth=0.4, n=100), azimuths, polars
        )
        assert spectrum.power.shape == (polars.size, azimuths.size)


class TestCombineSpectra:
    def test_single_spectrum_identity(self, make_series):
        spectrum = compute_q_profile(make_series(azimuth=1.0))
        combined = combine_spectra([spectrum])
        assert np.allclose(combined.power, spectrum.power)

    def test_two_channels_sharpen_estimate(self, make_series):
        phi = 2.9
        a = compute_r_profile(
            make_series(azimuth=phi, wavelength=0.3245, noise_std=0.1, seed=1)
        )
        b = compute_r_profile(
            make_series(azimuth=phi, wavelength=0.3255, noise_std=0.1, seed=2)
        )
        combined = combine_spectra([a, b])
        error = abs(np.angle(np.exp(1j * (combined.peak_azimuth - phi))))
        assert error < np.deg2rad(1.0)

    def test_mismatched_grids_rejected(self, make_series):
        a = compute_q_profile(
            make_series(azimuth=1.0), default_azimuth_grid(np.deg2rad(1.0))
        )
        b = compute_q_profile(
            make_series(azimuth=1.0), default_azimuth_grid(np.deg2rad(2.0))
        )
        with pytest.raises(ValueError):
            combine_spectra([a, b])

    def test_size_mismatch_error_names_both_sizes(self, make_series):
        """Mixing grids (e.g. a coarse adaptive spectrum with a dense one)
        must fail with a message that says which spectrum diverges how."""
        a = compute_q_profile(
            make_series(azimuth=1.0), default_azimuth_grid(np.deg2rad(1.0))
        )
        b = compute_q_profile(
            make_series(azimuth=1.0), default_azimuth_grid(np.deg2rad(2.0))
        )
        with pytest.raises(ValueError, match=r"spectrum 0 has 360.*spectrum 1 has 180"):
            combine_spectra([a, b])

    def test_shifted_grid_error_reports_deviation(self, make_series):
        grid = default_azimuth_grid(np.deg2rad(1.0))
        a = compute_q_profile(make_series(azimuth=1.0), grid)
        b = compute_q_profile(make_series(azimuth=1.0), grid + 1e-3)
        with pytest.raises(ValueError, match=r"spectrum 1.*deviates.*1\.000e-03"):
            combine_spectra([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            combine_spectra([])


def test_peak_sharpness_rejects_full_window(make_series):
    spectrum = compute_q_profile(make_series(azimuth=0.3))
    with pytest.raises(ValueError):
        peak_sharpness(spectrum, window=10.0)
