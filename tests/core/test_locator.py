"""Tests for repro.core.locator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.geometry import Point2, Point3
from repro.core.locator import (
    Fix2D,
    Fix3D,
    TagspinLocator2D,
    TagspinLocator3D,
    spectra_to_bearings,
)
from repro.core.spectrum import AngleSpectrum, JointSpectrum
from repro.errors import AmbiguityError


def _azimuth_spectrum(peak: float, power: float = 0.9) -> AngleSpectrum:
    grid = np.linspace(0, 2 * np.pi, 360, endpoint=False)
    values = np.exp(-0.5 * ((np.angle(np.exp(1j * (grid - peak)))) / 0.05) ** 2)
    return AngleSpectrum(grid, power * values, peak, power)


def _joint_spectrum(peak_azimuth: float, peak_polar: float) -> JointSpectrum:
    azimuths = np.linspace(0, 2 * np.pi, 90, endpoint=False)
    polars = np.linspace(-np.pi / 2, np.pi / 2, 45)
    power = np.zeros((45, 90))
    return JointSpectrum(azimuths, polars, power, peak_azimuth, peak_polar, 0.8)


class TestLocator2D:
    def test_exact_bearings(self):
        target = Point2(0.4, 1.9)
        centers = [Point2(-0.25, 0.0), Point2(0.25, 0.0)]
        spectra = [_azimuth_spectrum(c.bearing_to(target)) for c in centers]
        fix = TagspinLocator2D().locate(centers, spectra)
        assert fix.position.distance_to(target) < 1e-6
        assert fix.residual < 1e-6
        assert 0 < fix.confidence <= 1.0

    def test_three_disks(self):
        target = Point2(-0.8, 2.4)
        centers = [Point2(-0.5, 0.0), Point2(0.5, 0.0), Point2(0.0, 0.6)]
        spectra = [_azimuth_spectrum(c.bearing_to(target)) for c in centers]
        fix = TagspinLocator2D().locate(centers, spectra)
        assert fix.position.distance_to(target) < 1e-6

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            TagspinLocator2D().locate([Point2(0, 0)], [])

    def test_single_disk_rejected(self):
        with pytest.raises(ValueError):
            TagspinLocator2D().locate(
                [Point2(0, 0)], [_azimuth_spectrum(1.0)]
            )

    def test_parallel_bearings_raise(self):
        centers = [Point2(0.0, 0.0), Point2(0.0, 1.0)]
        spectra = [_azimuth_spectrum(0.5), _azimuth_spectrum(0.5)]
        with pytest.raises(AmbiguityError):
            TagspinLocator2D().locate(centers, spectra)

    def test_confidence_is_geometric_mean(self):
        target = Point2(0.2, 1.5)
        centers = [Point2(-0.25, 0.0), Point2(0.25, 0.0)]
        spectra = [
            _azimuth_spectrum(centers[0].bearing_to(target), power=0.4),
            _azimuth_spectrum(centers[1].bearing_to(target), power=0.9),
        ]
        fix = TagspinLocator2D().locate(centers, spectra)
        assert fix.confidence == pytest.approx(np.sqrt(0.4 * 0.9))


class TestLocator3D:
    def _exact_spectra(self, target: Point3, centers):
        return [
            _joint_spectrum(c.azimuth_to(target), c.polar_to(target))
            for c in centers
        ]

    def test_exact_recovery_positive_z(self):
        target = Point3(0.3, 1.8, 0.7)
        centers = [Point3(-0.25, 0, 0), Point3(0.25, 0, 0)]
        fix = TagspinLocator3D().locate(centers, self._exact_spectra(target, centers))
        assert fix.position.distance_to(target) < 1e-6

    def test_mirror_candidate_reported(self):
        target = Point3(0.3, 1.8, 0.7)
        centers = [Point3(-0.25, 0, 0), Point3(0.25, 0, 0)]
        fix = TagspinLocator3D().locate(centers, self._exact_spectra(target, centers))
        assert fix.mirror.z == pytest.approx(-0.7, abs=1e-6)
        assert len(fix.candidates) == 2

    def test_prior_selects_negative(self):
        target = Point3(0.3, 1.8, -0.5)
        centers = [Point3(-0.25, 0, 0), Point3(0.25, 0, 0)]
        locator = TagspinLocator3D(z_min=-1.0, z_max=0.0)
        fix = locator.locate(centers, self._exact_spectra(target, centers))
        assert fix.position.z == pytest.approx(-0.5, abs=1e-6)

    def test_prior_excludes_both_raises(self):
        target = Point3(0.3, 1.8, 0.7)
        centers = [Point3(-0.25, 0, 0), Point3(0.25, 0, 0)]
        locator = TagspinLocator3D(z_min=5.0, z_max=6.0)
        with pytest.raises(AmbiguityError):
            locator.locate(centers, self._exact_spectra(target, centers))

    def test_prefer_sign_negative(self):
        target = Point3(0.3, 1.8, 0.6)
        centers = [Point3(-0.25, 0, 0), Point3(0.25, 0, 0)]
        locator = TagspinLocator3D(prefer_sign=-1)
        fix = locator.locate(centers, self._exact_spectra(target, centers))
        assert fix.position.z == pytest.approx(-0.6, abs=1e-6)

    def test_disk_plane_offset_respected(self):
        """Disks below z=0 (the paper's -9.5 cm desk offset)."""
        plane_z = -0.095
        target = Point3(0.0, 2.0, 0.4)
        centers = [Point3(-0.25, 0, plane_z), Point3(0.25, 0, plane_z)]
        fix = TagspinLocator3D(z_min=plane_z).locate(
            centers, self._exact_spectra(target, centers)
        )
        assert fix.position.z == pytest.approx(0.4, abs=1e-6)

    def test_invalid_prior_rejected(self):
        with pytest.raises(ValueError):
            TagspinLocator3D(z_min=1.0, z_max=0.0)

    def test_invalid_prefer_sign(self):
        with pytest.raises(ValueError):
            TagspinLocator3D(prefer_sign=0)


def test_spectra_to_bearings():
    centers = [Point2(0, 0), Point2(1, 0)]
    spectra = [_azimuth_spectrum(0.2), _azimuth_spectrum(1.4)]
    bearings = spectra_to_bearings(centers, spectra)
    assert bearings[0].azimuth == pytest.approx(0.2)
    assert bearings[1].origin == Point2(1, 0)
    with pytest.raises(ValueError):
        spectra_to_bearings(centers, spectra[:1])
