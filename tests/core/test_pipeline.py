"""Tests for repro.core.pipeline (series extraction and localization)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.geometry import Point2, Point3
from repro.core.pipeline import PipelineConfig, TagspinSystem
from repro.errors import InsufficientDataError, UnknownTagError
from repro.hardware.llrp import ReportBatch, TagReportData
from repro.sim.scenario import ScenarioConfig, TagspinScenario, paper_default_scenario


def _report(epc, t_s, phase, antenna=1, channel=8):
    return TagReportData(
        epc=epc,
        antenna_port=antenna,
        channel_index=channel,
        reader_timestamp_us=int(t_s * 1e6),
        host_timestamp_us=int((t_s + 0.02) * 1e6),
        phase_rad=phase,
        rssi_dbm=-55.0,
    )


class TestSeriesExtraction:
    def test_extract_series_basic(self, calibrated_scenario_2d):
        scenario = calibrated_scenario_2d
        pose = Point3(0.3, 1.7, 0.0)
        batch, _reader = scenario.collect(pose)
        epc = scenario.scene.registry.epcs()[0]
        series_list = scenario.system.extract_series(batch, epc, 1)
        assert len(series_list) == 1  # fixed channel by default
        series = series_list[0]
        assert len(series) >= scenario.config.pipeline.min_snapshots
        assert np.all(np.diff(series.times) >= 0)

    def test_extract_unknown_tag(self, calibrated_scenario_2d):
        scenario = calibrated_scenario_2d
        pose = Point3(0.3, 1.7, 0.0)
        batch, _reader = scenario.collect(pose)
        with pytest.raises(UnknownTagError):
            scenario.system.extract_series(batch, "DEADBEEF", 1)

    def test_extract_requires_min_snapshots(self, calibrated_scenario_2d):
        scenario = calibrated_scenario_2d
        epc = scenario.scene.registry.epcs()[0]
        batch = ReportBatch([_report(epc, 0.1 * i, 0.5) for i in range(4)])
        with pytest.raises(InsufficientDataError):
            scenario.system.extract_series(batch, epc, 1)

    def test_extract_splits_channels(self, calibrated_scenario_2d):
        scenario = calibrated_scenario_2d
        epc = scenario.scene.registry.epcs()[0]
        reports = [
            _report(epc, 0.05 * i, 0.5, channel=(3 if i % 2 else 9))
            for i in range(60)
        ]
        series_list = scenario.system.extract_series(ReportBatch(reports), epc, 1)
        assert len(series_list) == 2
        assert series_list[0].wavelength != series_list[1].wavelength

    def test_antenna_filtering(self, calibrated_scenario_2d):
        scenario = calibrated_scenario_2d
        epc = scenario.scene.registry.epcs()[0]
        reports = [_report(epc, 0.05 * i, 0.5, antenna=2) for i in range(40)]
        with pytest.raises(InsufficientDataError):
            scenario.system.extract_series(ReportBatch(reports), epc, 1)


class TestLocalization2D:
    def test_locate_2d_accuracy(self, calibrated_scenario_2d):
        fix, error = calibrated_scenario_2d.locate_2d(Point2(0.5, 2.0))
        assert error.combined < 0.15

    def test_locate_2d_needs_two_tags(self, calibrated_scenario_2d):
        scenario = calibrated_scenario_2d
        pose = Point3(0.5, 2.0, 0.0)
        batch, _reader = scenario.collect(pose)
        epc = scenario.scene.registry.epcs()[0]
        only_one = batch.filter_epc(epc)
        with pytest.raises(InsufficientDataError):
            scenario.system.locate_2d(only_one, 1)

    def test_q_profile_pipeline_also_works(self):
        config = ScenarioConfig(
            pipeline=PipelineConfig(use_enhanced_profile=False), seed=21
        )
        scenario = TagspinScenario(config)
        fix, error = scenario.locate_2d(Point2(-0.4, 1.6))
        assert error.combined < 0.3

    def test_disk_spectra_diagnostics(self, calibrated_scenario_2d):
        scenario = calibrated_scenario_2d
        pose = Point3(0.2, 1.9, 0.0)
        batch, reader = scenario.collect(pose)
        diagnostics = scenario.system.disk_spectra_2d(batch, 1)
        assert len(diagnostics) == 2
        antenna = reader.antenna(1).position
        for diag in diagnostics:
            truth = diag.record.disk.center.azimuth_to(antenna)
            error = abs(
                np.angle(np.exp(1j * (diag.azimuth.peak_azimuth - truth)))
            )
            assert error < np.deg2rad(3.0)


class TestLocalization3D:
    def test_locate_3d_accuracy(self, calibrated_scenario_3d):
        fix, error = calibrated_scenario_3d.locate_3d(Point3(0.4, 1.9, 0.5))
        assert error.combined < 0.30
        assert error.z is not None

    def test_mirror_candidate_below_plane(self, calibrated_scenario_3d):
        fix, _error = calibrated_scenario_3d.locate_3d(Point3(0.4, 1.9, 0.5))
        plane_z = -0.095
        assert fix.mirror.z < plane_z < fix.position.z


class TestHostTimeAblation:
    def test_host_time_degrades_accuracy(self):
        """The paper's reason to use reader timestamps: network latency
        jitter corrupts the time base of the SAR correlation."""
        pose = Point2(0.4, 1.8)
        reader_time = TagspinScenario(ScenarioConfig(seed=31))
        fix_r, error_r = reader_time.locate_2d(pose)
        host_time = TagspinScenario(
            ScenarioConfig(
                pipeline=PipelineConfig(use_host_time=True), seed=31
            )
        )
        fix_h, error_h = host_time.locate_2d(pose)
        assert error_h.combined > error_r.combined


class TestVerticalDiskInPipeline:
    def test_vertical_third_disk_resolves_sign_without_prior(self):
        """A registry containing a vertically spinning third tag lets the
        pipeline pick the correct mirror candidate even when the height
        prior is uninformative and the preferred sign is wrong."""
        from repro.hardware.reader import SpinningTagUnit
        from repro.hardware.rotator import vertical_disk
        from repro.hardware.tags import make_tag
        from repro.server.registry import SpinningTagRecord

        config = ScenarioConfig(
            deployment=__import__(
                "repro.sim.scene", fromlist=["DeploymentSpec"]
            ).DeploymentSpec(
                disk_centers=(
                    Point3(-0.25, 0.0, 0.0),
                    Point3(0.25, 0.0, 0.0),
                )
            ),
            pipeline=PipelineConfig(
                orientation_calibration=False, prefer_sign=1
            ),
            seed=151,
        )
        scenario = TagspinScenario(config)
        disk = vertical_disk(Point3(0.0, 0.35, 0.0), 0.10, 1.0)
        tag = make_tag(rng=scenario.rng)
        scenario.scene.registry.register(
            SpinningTagRecord(epc=tag.epc, disk=disk)
        )
        scenario.scene.spinning_units.append(
            SpinningTagUnit(disk=disk, tag=tag)
        )

        truth = Point3(0.4, 1.5, -0.9)  # well below the disk plane
        fix, error = scenario.locate_3d(truth)
        # prefer_sign=+1 would have picked the +z mirror; the vertical disk
        # must override it.
        assert fix.position.z < -0.3
        assert error.combined < 0.4
