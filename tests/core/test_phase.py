"""Tests for repro.core.phase."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.phase import (
    TWO_PI,
    circular_mean,
    circular_std,
    phase_to_distance_error,
    relative_phase_model,
    smooth_phase_sequence,
    spinning_distance,
    theoretical_phase,
    wrap_phase,
    wrap_phase_signed,
)


class TestWrapping:
    def test_wrap_phase_scalar(self):
        assert wrap_phase(TWO_PI + 0.3) == pytest.approx(0.3)

    def test_wrap_phase_array(self):
        result = wrap_phase(np.array([-0.1, TWO_PI, 3 * np.pi]))
        assert np.allclose(result, [TWO_PI - 0.1, 0.0, np.pi])

    @given(
        arrays(
            float,
            st.integers(min_value=1, max_value=30),
            elements=st.floats(min_value=-50, max_value=50),
        )
    )
    def test_wrap_signed_range(self, values):
        wrapped = np.asarray(wrap_phase_signed(values))
        assert np.all(wrapped > -np.pi - 1e-12)
        assert np.all(wrapped <= np.pi + 1e-12)

    @given(st.floats(min_value=-50, max_value=50))
    def test_signed_and_unsigned_agree(self, value):
        difference = wrap_phase(value) - wrap_phase_signed(value)
        assert abs(difference % TWO_PI) < 1e-9 or abs(
            difference % TWO_PI - TWO_PI
        ) < 1e-9


class TestSmoothing:
    def test_removes_wrap_jumps(self):
        continuous = np.linspace(0.0, 4 * TWO_PI, 400)
        wrapped = np.mod(continuous, TWO_PI)
        smoothed = smooth_phase_sequence(wrapped)
        assert np.allclose(smoothed, continuous, atol=1e-9)

    def test_descending_sequence(self):
        continuous = np.linspace(5 * TWO_PI, 0.0, 300)
        wrapped = np.mod(continuous, TWO_PI)
        smoothed = smooth_phase_sequence(wrapped)
        assert np.allclose(np.diff(smoothed), np.diff(continuous), atol=1e-9)

    def test_no_jump_is_identity(self):
        theta = np.array([0.1, 0.4, 0.2, 0.5])
        assert np.allclose(smooth_phase_sequence(theta), theta)

    def test_empty_sequence(self):
        assert smooth_phase_sequence(np.array([])).size == 0

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            smooth_phase_sequence(np.zeros((2, 2)))

    @given(
        arrays(
            float,
            st.integers(min_value=2, max_value=100),
            elements=st.floats(min_value=-0.5, max_value=0.5),
        )
    )
    @settings(max_examples=30)
    def test_smoothing_inverts_wrapping(self, increments):
        """Any sequence with steps < pi survives a wrap/smooth round trip."""
        continuous = 1.0 + np.cumsum(increments)
        smoothed = smooth_phase_sequence(np.mod(continuous, TWO_PI))
        # Smoothing recovers the sequence up to a constant 2*pi multiple.
        offset = smoothed[0] - continuous[0]
        assert abs(offset % TWO_PI) < 1e-9 or abs(offset % TWO_PI - TWO_PI) < 1e-9
        assert np.allclose(np.diff(smoothed), np.diff(continuous), atol=1e-9)


class TestDistanceModel:
    def test_distance_range(self):
        times = np.linspace(0, 10, 500)
        d = spinning_distance(times, 2.0, 0.1, 1.0, 0.3)
        assert np.all(d >= 1.9 - 1e-12)
        assert np.all(d <= 2.1 + 1e-12)

    def test_closest_when_tag_faces_reader(self):
        # At omega*t + phase0 == phi the tag is nearest the reader.
        d = spinning_distance(np.array([0.5]), 2.0, 0.1, 1.0, 0.5)
        assert d[0] == pytest.approx(1.9)

    def test_polar_shrinks_modulation(self):
        times = np.linspace(0, 6.28, 100)
        flat = spinning_distance(times, 2.0, 0.1, 1.0, 0.0, 0.0)
        steep = spinning_distance(times, 2.0, 0.1, 1.0, 0.0, np.pi / 3)
        assert np.ptp(steep) == pytest.approx(np.ptp(flat) * 0.5, rel=1e-9)

    def test_phase0_shifts_pattern(self):
        times = np.linspace(0, 6.28, 100)
        base = spinning_distance(times, 2.0, 0.1, 1.0, 0.7)
        shifted = spinning_distance(times, 2.0, 0.1, 1.0, 0.7, phase0=0.3)
        rolled = spinning_distance(times + 0.3, 2.0, 0.1, 1.0, 0.7)
        assert np.allclose(shifted, rolled)


class TestTheoreticalPhase:
    def test_in_range(self):
        times = np.linspace(0, 12, 300)
        theta = theoretical_phase(times, 0.325, 2.0, 0.1, 1.0, 0.3)
        assert np.all(theta >= 0.0)
        assert np.all(theta < TWO_PI)

    def test_diversity_shifts_phase(self):
        times = np.linspace(0, 5, 50)
        base = theoretical_phase(times, 0.325, 2.0, 0.1, 1.0, 0.3)
        shifted = theoretical_phase(
            times, 0.325, 2.0, 0.1, 1.0, 0.3, diversity=1.0
        )
        assert np.allclose(np.mod(shifted - base, TWO_PI), 1.0)

    def test_period_matches_rotation(self):
        omega = 1.3
        period = TWO_PI / omega
        times = np.array([0.2, 0.2 + period])
        theta = theoretical_phase(times, 0.325, 2.0, 0.1, omega, 0.9)
        assert theta[0] == pytest.approx(theta[1], abs=1e-9)


class TestRelativePhaseModel:
    def test_zero_at_first_snapshot(self):
        times = np.linspace(0, 5, 40)
        c = relative_phase_model(times, 0.325, 0.1, 1.0, 0.4)
        assert c[0] == pytest.approx(0.0)

    def test_matches_theoretical_difference(self):
        times = np.linspace(0, 5, 40)
        phi = 1.1
        theta = theoretical_phase(times, 0.325, 2.0, 0.1, 1.0, phi)
        c = relative_phase_model(times, 0.325, 0.1, 1.0, phi)
        expected = np.mod(theta - theta[0], TWO_PI)
        assert np.allclose(np.mod(c, TWO_PI), expected, atol=1e-9)

    def test_broadcast_shape(self):
        times = np.linspace(0, 5, 40)
        grid = np.linspace(0, TWO_PI, 16, endpoint=False)
        c = relative_phase_model(times, 0.325, 0.1, 1.0, grid)
        assert c.shape == (16, 40)

    def test_2d_broadcast_shape(self):
        times = np.linspace(0, 5, 40)
        azimuths = np.linspace(0, TWO_PI, 8, endpoint=False)
        polars = np.linspace(-1.0, 1.0, 5)
        c = relative_phase_model(
            times, 0.325, 0.1, 1.0,
            azimuths[np.newaxis, :], polars[:, np.newaxis],
        )
        assert c.shape == (5, 8, 40)

    def test_empty_times_rejected(self):
        with pytest.raises(ValueError):
            relative_phase_model(np.array([]), 0.325, 0.1, 1.0, 0.0)

    def test_polar_symmetry(self):
        """Horizontal-disk model cannot distinguish +gamma from -gamma."""
        times = np.linspace(0, 5, 40)
        up = relative_phase_model(times, 0.325, 0.1, 1.0, 0.4, 0.5)
        down = relative_phase_model(times, 0.325, 0.1, 1.0, 0.4, -0.5)
        assert np.allclose(up, down)


class TestCircularStats:
    def test_circular_mean_simple(self):
        assert circular_mean(np.array([0.1, -0.1])) == pytest.approx(0.0)

    def test_circular_mean_across_wrap(self):
        angles = np.array([np.pi - 0.1, -np.pi + 0.1])
        assert abs(circular_mean(angles)) == pytest.approx(np.pi, abs=1e-9)

    def test_circular_mean_empty_raises(self):
        with pytest.raises(ValueError):
            circular_mean(np.array([]))

    def test_circular_std_concentrated(self):
        rng = np.random.default_rng(0)
        angles = 0.05 * rng.standard_normal(20000)
        assert circular_std(angles) == pytest.approx(0.05, rel=0.05)

    def test_circular_std_uniform_is_large(self):
        rng = np.random.default_rng(1)
        angles = rng.uniform(-np.pi, np.pi, 5000)
        assert circular_std(angles) > 1.5


def test_phase_to_distance_error_paper_figure():
    """0.7 rad at lambda ~ 32.5 cm is ~1.8 cm (the paper rounds to ~2 cm
    from the doubled path; with their lambda/2 effective wavelength the
    quoted 0.9 cm appears — both follow from the same formula)."""
    error = phase_to_distance_error(0.7, 0.325)
    assert error == pytest.approx(0.0181, abs=2e-4)
