"""Tests for repro.core.calibration."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.calibration import (
    REFERENCE_ORIENTATION_RAD,
    FourierSeries,
    OrientationCalibrator,
    OrientationProfile,
    estimate_diversity,
    fit_fourier_series,
    make_orientation_profile,
    profile_distance,
    residual_rms,
)
from repro.errors import CalibrationError


class TestFourierSeries:
    def test_constant_series(self):
        series = FourierSeries(a0=2.0, cosine=np.zeros(1), sine=np.zeros(1))
        grid = np.linspace(0, 2 * np.pi, 10)
        assert np.allclose(series(grid), 2.0)

    def test_first_harmonic(self):
        series = FourierSeries(a0=0.0, cosine=np.array([1.0]), sine=np.array([0.0]))
        assert series(0.0) == pytest.approx(1.0)
        assert series(np.pi) == pytest.approx(-1.0)

    def test_mismatched_coefficients_rejected(self):
        with pytest.raises(ValueError):
            FourierSeries(a0=0.0, cosine=np.zeros(2), sine=np.zeros(3))

    def test_peak_to_peak(self):
        series = FourierSeries(a0=5.0, cosine=np.array([1.5]), sine=np.array([0.0]))
        assert series.peak_to_peak() == pytest.approx(3.0, rel=1e-4)

    def test_scalar_call_returns_float(self):
        series = FourierSeries(a0=1.0, cosine=np.array([0.5]), sine=np.array([0.5]))
        assert isinstance(series(1.0), float)


class TestFourierFit:
    @given(
        st.floats(min_value=-1, max_value=1),
        st.floats(min_value=-1, max_value=1),
        st.floats(min_value=-1, max_value=1),
        st.floats(min_value=-1, max_value=1),
        st.floats(min_value=-1, max_value=1),
    )
    @settings(max_examples=30)
    def test_exact_recovery(self, a0, c1, s1, c2, s2):
        """A noise-free order-2 series is recovered exactly."""
        truth = FourierSeries(
            a0=a0, cosine=np.array([c1, c2]), sine=np.array([s1, s2])
        )
        x = np.linspace(0, 2 * np.pi, 41, endpoint=False)
        fitted = fit_fourier_series(x, np.asarray(truth(x)), order=2)
        grid = np.linspace(0, 2 * np.pi, 100)
        assert np.allclose(fitted(grid), truth(grid), atol=1e-8)

    def test_noisy_fit_is_close(self):
        rng = np.random.default_rng(3)
        truth = make_orientation_profile(
            np.array([0.1, 0.3]), np.array([0.5, 1.2])
        )
        x = rng.uniform(0, 2 * np.pi, 600)
        y = np.asarray(truth.series(x)) + 0.05 * rng.standard_normal(600)
        fitted = fit_fourier_series(x, y, order=2)
        grid = np.linspace(0, 2 * np.pi, 200)
        assert np.sqrt(np.mean((fitted(grid) - truth.series(grid)) ** 2)) < 0.02

    def test_too_few_samples_raises(self):
        x = np.linspace(0, 1, 4)
        with pytest.raises(CalibrationError):
            fit_fourier_series(x, np.sin(x), order=2)

    def test_bad_order_raises(self):
        x = np.linspace(0, 1, 10)
        with pytest.raises(ValueError):
            fit_fourier_series(x, np.sin(x), order=0)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            fit_fourier_series(np.zeros(5), np.zeros(6), order=1)


class TestDiversityEstimation:
    def test_constant_offset_recovered(self):
        rng = np.random.default_rng(5)
        theoretical = rng.uniform(0, 2 * np.pi, 300)
        measured = theoretical + 1.7
        assert estimate_diversity(measured, theoretical) == pytest.approx(1.7)

    def test_offset_recovered_across_wrap(self):
        rng = np.random.default_rng(6)
        theoretical = rng.uniform(0, 2 * np.pi, 300)
        measured = np.mod(theoretical + 5.0, 2 * np.pi)
        estimated = estimate_diversity(measured, theoretical)
        assert np.mod(estimated, 2 * np.pi) == pytest.approx(5.0, abs=1e-9)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            estimate_diversity(np.array([]), np.array([]))


class TestOrientationProfile:
    def test_correction_zero_at_reference(self):
        profile = make_orientation_profile(
            np.array([0.2, 0.3]), np.array([0.1, 0.4])
        )
        assert profile.correction(REFERENCE_ORIENTATION_RAD) == pytest.approx(0.0)

    def test_apply_removes_offset(self):
        profile = make_orientation_profile(np.array([0.3]), np.array([0.0]))
        orientations = np.linspace(0, 2 * np.pi, 50)
        base = 1.234
        contaminated = base + np.asarray(profile.correction(orientations))
        cleaned = profile.apply(contaminated, orientations)
        assert np.allclose(cleaned, base)

    def test_apply_shape_mismatch(self):
        profile = make_orientation_profile(np.array([0.3]), np.array([0.0]))
        with pytest.raises(ValueError):
            profile.apply(np.zeros(3), np.zeros(4))


class TestOrientationCalibrator:
    def test_fit_from_center_spin_recovers_profile(self):
        rng = np.random.default_rng(9)
        truth = make_orientation_profile(
            np.array([0.05, 0.30, 0.04]), np.array([0.3, 1.1, 2.0])
        )
        orientations = rng.uniform(0, 2 * np.pi, 800)
        constant = 4.0  # geometric phase + diversity at the disk center
        phases = np.mod(
            constant + np.asarray(truth.offset(orientations))
            + 0.1 * rng.standard_normal(800),
            2 * np.pi,
        )
        calibrator = OrientationCalibrator(fourier_order=3)
        fitted = calibrator.fit_from_center_spin(orientations, phases)
        assert profile_distance(fitted, truth) < 0.03

    def test_calibrate_roundtrip(self):
        rng = np.random.default_rng(10)
        truth = make_orientation_profile(np.array([0.0, 0.35]), np.array([0.0, 0.8]))
        calibrator = OrientationCalibrator(fourier_order=2)
        orientations = rng.uniform(0, 2 * np.pi, 500)
        phases = np.mod(2.0 + np.asarray(truth.offset(orientations)), 2 * np.pi)
        fitted = calibrator.fit_from_center_spin(orientations, phases)
        edge_orientations = rng.uniform(0, 2 * np.pi, 100)
        raw = np.asarray(truth.correction(edge_orientations))  # pure offset signal
        cleaned = calibrator.calibrate(fitted, raw, edge_orientations)
        assert float(np.sqrt(np.mean(cleaned**2))) < 0.02

    def test_invalid_order(self):
        with pytest.raises(ValueError):
            OrientationCalibrator(fourier_order=0)


class TestResidualRms:
    def test_zero_for_identical(self):
        theta = np.linspace(0, 5, 50)
        assert residual_rms(theta, theta) == pytest.approx(0.0, abs=1e-9)

    def test_constant_offset_removed(self):
        theta = np.linspace(0, 5, 50)
        assert residual_rms(theta + 0.9, theta) == pytest.approx(0.0, abs=1e-9)

    def test_constant_offset_kept_when_asked(self):
        theta = np.linspace(0, 5, 50)
        rms = residual_rms(theta + 0.5, theta, remove_constant=False)
        assert rms == pytest.approx(0.5, abs=1e-9)

    def test_wrapping_in_residual(self):
        measured = np.array([2 * np.pi - 0.05])
        theoretical = np.array([0.05])
        assert residual_rms(measured, theoretical, remove_constant=False) == (
            pytest.approx(0.1, abs=1e-9)
        )


def test_profile_distance_identical_profiles():
    profile = make_orientation_profile(np.array([0.2]), np.array([0.3]))
    assert profile_distance(profile, profile) == pytest.approx(0.0, abs=1e-12)
