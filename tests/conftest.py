"""Shared fixtures for the Tagspin test suite."""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest

sys.path.insert(0, str(Path(__file__).parent))

from helpers import make_series as _make_series  # noqa: E402

from repro.sim.scenario import TagspinScenario, paper_default_scenario  # noqa: E402


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def make_series():
    """Factory producing synthetic spinning-tag snapshot series.

    The phases follow the paper's far-field model exactly, with optional
    Gaussian noise, so the true azimuth/polar angles are known by
    construction.  Hypothesis-driven tests import ``tests/helpers.py``
    directly instead (function-scoped fixtures don't mix with @given).
    """
    return _make_series


@pytest.fixture(scope="session")
def calibrated_scenario_2d() -> TagspinScenario:
    """A paper-default 2D scenario with the orientation prelude already run.

    Session-scoped: building it costs a simulated calibration campaign, and
    the scenario object is read-only for localization queries.
    """
    scenario = paper_default_scenario(seed=11)
    scenario.run_orientation_prelude()
    return scenario


@pytest.fixture(scope="session")
def calibrated_scenario_3d() -> TagspinScenario:
    scenario = paper_default_scenario(seed=13, three_d=True)
    scenario.run_orientation_prelude()
    return scenario
