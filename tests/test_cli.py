"""Tests for repro.cli."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_locate2d_args(self):
        args = build_parser().parse_args(["locate2d", "0.5", "1.8"])
        assert args.x == 0.5 and args.y == 1.8

    def test_trials_defaults(self):
        args = build_parser().parse_args(["trials"])
        assert args.trials == 20
        assert not args.three_d

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestCommands:
    def test_tags_command(self, capsys):
        assert main(["tags"]) == 0
        output = capsys.readouterr().out
        assert "ALN-9640" in output
        assert "Squiggle" in output

    def test_locate2d_command(self, capsys):
        assert main(["locate2d", "0.5", "1.8", "--seed", "3"]) == 0
        output = capsys.readouterr().out
        assert "error" in output
        assert "estimate" in output

    def test_trials_command(self, capsys):
        assert main(["trials", "--trials", "2", "--seed", "5"]) == 0
        output = capsys.readouterr().out
        assert "mean_cm" in output


class TestBenchEngine:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["bench-engine"])
        assert args.scales == ["medium"]
        assert "batched" in args.engines
        assert args.rounds == 3

    def test_bench_engine_command(self, capsys, tmp_path):
        """A tiny run: the table prints and the JSON artifact is written."""
        json_path = tmp_path / "timings.json"
        assert main([
            "bench-engine",
            "--scales", "small",
            "--engines", "reference", "batched",
            "--rounds", "1",
            "--snapshots", "24",
            "--json", str(json_path),
        ]) == 0
        output = capsys.readouterr().out
        assert "scenario small" in output
        assert "batched" in output
        assert json_path.exists()

    def test_bench_engine_rejects_unknown_engine(self):
        with pytest.raises(ValueError):
            main([
                "bench-engine", "--scales", "small",
                "--engines", "warp-drive", "--rounds", "1",
                "--snapshots", "24",
            ])


class TestNewCommands:
    def test_plan_command(self, capsys):
        assert main(["plan", "--resolution", "1.0"]) == 0
        output = capsys.readouterr().out
        assert "predicted RMSE map" in output
        assert "coverage" in output

    def test_health_command(self, capsys):
        assert main(["health", "--seed", "4"]) == 0
        output = capsys.readouterr().out
        assert "rate_hz" in output
        assert "ok" in output
