"""Tests for repro.baselines.base helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.base import (
    candidate_grid,
    mean_phase_per_tag_channel,
    mean_rssi_per_tag,
    reference_positions,
    weighted_centroid,
)
from repro.core.geometry import Point2, Point3
from repro.errors import InsufficientDataError
from repro.hardware.llrp import ReportBatch, TagReportData
from repro.hardware.reader import StaticTagUnit
from repro.hardware.tags import make_tag


def _report(epc, phase=1.0, rssi=-55.0, antenna=1, channel=2, t=0):
    return TagReportData(
        epc=epc,
        antenna_port=antenna,
        channel_index=channel,
        reader_timestamp_us=t,
        host_timestamp_us=t,
        phase_rad=phase,
        rssi_dbm=rssi,
    )


class TestAggregation:
    def test_mean_rssi_linear_domain(self):
        batch = ReportBatch(
            [_report("A", rssi=-50.0), _report("A", rssi=-60.0)]
        )
        mean = mean_rssi_per_tag(batch)["A"]
        # Linear-power mean of -50/-60 dBm is ~ -52.6 dBm, not -55.
        assert mean == pytest.approx(-52.6, abs=0.1)

    def test_mean_rssi_filters_antenna(self):
        batch = ReportBatch([_report("A", antenna=2)])
        with pytest.raises(InsufficientDataError):
            mean_rssi_per_tag(batch, antenna_port=1)

    def test_mean_phase_circular(self):
        batch = ReportBatch(
            [
                _report("A", phase=2 * np.pi - 0.1),
                _report("A", phase=0.1),
            ]
        )
        mean = mean_phase_per_tag_channel(batch)[("A", 2)]
        assert abs(mean) < 1e-9  # circular mean across the wrap is 0

    def test_mean_phase_grouped_by_channel(self):
        batch = ReportBatch(
            [_report("A", phase=1.0, channel=1), _report("A", phase=2.0, channel=5)]
        )
        means = mean_phase_per_tag_channel(batch)
        assert set(means) == {("A", 1), ("A", 5)}


class TestGridAndCentroid:
    def test_candidate_grid_covers_ranges(self):
        cells = candidate_grid((0.0, 1.0), (0.0, 0.5), 0.5)
        xs = {c.x for c in cells}
        ys = {c.y for c in cells}
        assert xs == {0.0, 0.5, 1.0}
        assert ys == {0.0, 0.5}

    def test_candidate_grid_invalid_spacing(self):
        with pytest.raises(ValueError):
            candidate_grid((0, 1), (0, 1), 0.0)

    def test_weighted_centroid_equal_weights(self):
        points = [Point2(0, 0), Point2(2, 0)]
        centroid = weighted_centroid(points, [1.0, 1.0])
        assert centroid == Point2(1.0, 0.0)

    def test_weighted_centroid_skewed(self):
        points = [Point2(0, 0), Point2(2, 0)]
        centroid = weighted_centroid(points, [3.0, 1.0])
        assert centroid.x == pytest.approx(0.5)

    def test_weighted_centroid_validation(self):
        with pytest.raises(ValueError):
            weighted_centroid([], [])
        with pytest.raises(ValueError):
            weighted_centroid([Point2(0, 0)], [0.0])


def test_reference_positions(rng):
    units = [
        StaticTagUnit(tag=make_tag(rng=rng), location=Point3(1, 2, 0)),
        StaticTagUnit(tag=make_tag(rng=rng), location=Point3(3, 4, 0)),
    ]
    positions = reference_positions(units)
    assert positions[units[0].tag.epc] == Point3(1, 2, 0)
    assert len(positions) == 2
