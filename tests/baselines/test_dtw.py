"""Tests for repro.baselines.dtw."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.baselines.dtw import dtw_distance, dtw_normalized

sequences = arrays(
    float,
    st.integers(min_value=2, max_value=15),
    elements=st.floats(min_value=-5, max_value=5),
)


class TestDtwDistance:
    def test_identical_sequences_zero(self):
        a = np.array([1.0, 2.0, 3.0, 2.0])
        assert dtw_distance(a, a) == pytest.approx(0.0)

    @given(sequences)
    @settings(max_examples=30)
    def test_self_distance_zero(self, a):
        assert dtw_distance(a, a) == pytest.approx(0.0, abs=1e-9)

    @given(sequences, sequences)
    @settings(max_examples=30)
    def test_non_negative_and_symmetric(self, a, b):
        d_ab = dtw_distance(a, b)
        assert d_ab >= 0.0
        assert d_ab == pytest.approx(dtw_distance(b, a), rel=1e-9, abs=1e-9)

    def test_warping_absorbs_time_stretch(self):
        """DTW tolerates local stretching that Euclidean distance punishes."""
        a = np.array([0.0, 1.0, 2.0, 3.0, 4.0])
        stretched = np.array([0.0, 1.0, 1.0, 2.0, 3.0, 4.0])
        assert dtw_distance(a, stretched) == pytest.approx(0.0, abs=1e-9)

    def test_shifted_sequences_nonzero(self):
        a = np.zeros(5)
        b = np.ones(5)
        assert dtw_distance(a, b) == pytest.approx(5.0)

    def test_vector_elements(self):
        a = np.array([[0.0, 0.0], [1.0, 1.0]])
        b = np.array([[0.0, 0.0], [1.0, 1.0]])
        assert dtw_distance(a, b) == pytest.approx(0.0)

    def test_band_constrains_path(self):
        a = np.array([0.0, 0.0, 0.0, 5.0])
        b = np.array([5.0, 0.0, 0.0, 0.0])
        unconstrained = dtw_distance(a, b)
        banded = dtw_distance(a, b, band=1)
        assert banded >= unconstrained

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            dtw_distance(np.array([]), np.array([1.0]))

    def test_feature_mismatch_rejected(self):
        with pytest.raises(ValueError):
            dtw_distance(np.zeros((3, 2)), np.zeros((3, 3)))

    def test_negative_band_rejected(self):
        with pytest.raises(ValueError):
            dtw_distance(np.zeros(3), np.zeros(3), band=-1)


def test_dtw_normalized_scales_by_length():
    a = np.zeros(10)
    b = np.ones(10)
    assert dtw_normalized(a, b) == pytest.approx(dtw_distance(a, b) / 20.0)
