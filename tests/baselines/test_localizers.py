"""Tests for the four baseline localizers.

Each baseline is exercised on the shared comparison harness (one session-
scoped fixture keeps the cost down): the point is not centimeter accuracy
but that each system produces a sane fix on the common substrate and that
its documented failure modes raise instead of silently misbehaving.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines.antloc import AntlocLocalizer, bearing_from_scan
from repro.baselines.backpos import BackposLocalizer
from repro.baselines.landmarc import LandmarcLocalizer
from repro.baselines.pinit import PinitLocalizer, angular_profile
from repro.core.geometry import Point2, Point3
from repro.errors import (
    CalibrationError,
    ConfigurationError,
    InsufficientDataError,
)
from repro.hardware.llrp import ReportBatch
from repro.hardware.reader import StaticTagUnit
from repro.hardware.tags import make_tag
from repro.rf.multipath import centered_room
from repro.sim.comparison import BaselineComparison
from repro.sim.scenario import paper_default_scenario

POSE = Point2(0.6, 2.0)


@pytest.fixture(scope="module")
def comparison():
    comp = BaselineComparison(paper_default_scenario(seed=41), seed=43)
    comp.calibrate()
    return comp


def _units(rng, count=4):
    return [
        StaticTagUnit(
            tag=make_tag(rng=rng),
            location=Point3(0.8 * (i % 2) - 0.4, 0.8 * (i // 2) + 1.0, 0.0),
        )
        for i in range(count)
    ]


class TestLandmarc:
    def test_locates_within_a_meter(self, comparison):
        fix = comparison.landmarc.locate(comparison._collect_fixed(POSE))
        assert fix.position.distance_to(POSE) < 1.0

    def test_requires_reference_tags(self):
        with pytest.raises(ConfigurationError):
            LandmarcLocalizer(reference_units=[])

    def test_requires_all_tags_read(self, comparison, rng):
        batch = ReportBatch([])  # nothing read
        with pytest.raises(InsufficientDataError):
            comparison.landmarc.locate(batch)

    def test_invalid_k(self, rng):
        with pytest.raises(ConfigurationError):
            LandmarcLocalizer(reference_units=_units(rng), k=0)


class TestAntloc:
    def test_bearing_from_scan_peak(self):
        boresights = np.linspace(0, 2 * math.pi, 12, endpoint=False)
        truth = 1.5
        rssi = -50.0 + 8.0 * np.cos(boresights - truth)
        bearing = bearing_from_scan(boresights, rssi)
        assert abs(np.angle(np.exp(1j * (bearing - truth)))) < 0.2

    def test_bearing_needs_enough_steps(self):
        boresights = np.linspace(0, 2 * math.pi, 12, endpoint=False)
        rssi = np.full(12, np.nan)
        rssi[0] = -50.0
        with pytest.raises(InsufficientDataError):
            bearing_from_scan(boresights, rssi)

    def test_locates_within_two_meters(self, comparison):
        fix = comparison._antloc_fix(POSE)
        assert fix.position.distance_to(POSE) < 2.0

    def test_needs_three_tags(self, rng):
        with pytest.raises(ConfigurationError):
            AntlocLocalizer(reference_units=_units(rng, count=2))

    def test_locate_without_bearings_raises(self, rng):
        localizer = AntlocLocalizer(reference_units=_units(rng, count=4))
        with pytest.raises(InsufficientDataError):
            localizer.locate_from_bearings()

    def test_set_bearings_filters_unknown(self, rng):
        localizer = AntlocLocalizer(reference_units=_units(rng, count=4))
        with pytest.raises(InsufficientDataError):
            localizer.set_bearings({"UNKNOWN1": 0.1, "UNKNOWN2": 0.2})


class TestPinit:
    def test_angular_profile_peaks_at_arrival_angle(self):
        """A pure plane-wave arrival produces a beamforming peak there."""
        wavelength = 0.325
        offsets = np.array([0.0, 0.35, 0.70, 1.05])
        theta = 1.1
        phasors = np.exp(
            -1j * 4 * np.pi / wavelength * offsets * np.cos(theta)
        )
        angles = np.linspace(0, np.pi, 180, endpoint=False)
        profile = angular_profile(phasors, offsets, wavelength, angles)
        # Beamforming over a sparse >lambda/2-spaced aperture aliases, so
        # the true angle must be among the top peaks rather than unique.
        peak_angles = angles[np.argsort(profile)[-10:]]
        assert np.min(np.abs(peak_angles - theta)) < 0.1

    def test_locates_within_a_meter(self, comparison):
        fix = comparison.pinit.locate(comparison._collect_aperture(POSE))
        assert fix.position.distance_to(POSE) < 1.0

    def test_requires_full_aperture(self, comparison):
        batch = comparison._collect_aperture(POSE)
        # Strip all but antenna port 1 -> aperture incomplete.
        partial = batch.filter_antenna(1)
        with pytest.raises(InsufficientDataError):
            comparison.pinit.locate(partial)

    def test_requires_reference_tags(self, rng):
        with pytest.raises(ConfigurationError):
            PinitLocalizer(reference_units=[], room=centered_room(9, 6))


class TestBackpos:
    def test_requires_calibration(self, rng):
        localizer = BackposLocalizer(reference_units=_units(rng, count=4))
        with pytest.raises(CalibrationError):
            localizer.locate(ReportBatch([]))

    def test_locates_with_prior(self, comparison):
        fix = comparison.backpos.locate(
            comparison._collect_hopping(POSE), prior_center=POSE
        )
        assert fix.position.distance_to(POSE) < 0.4

    def test_needs_three_tags(self, rng):
        with pytest.raises(ConfigurationError):
            BackposLocalizer(reference_units=_units(rng, count=2))


class TestComparisonHarness:
    def test_full_run_produces_all_systems(self, comparison):
        results = comparison.run(poses=[POSE, Point2(-0.5, 1.6)])
        names = {r.name for r in results}
        assert names == {"Tagspin", "LandMARC", "AntLoc", "PinIt", "BackPos"}
        for result in results:
            assert len(result.errors) + result.failures == 2

    def test_tagspin_beats_rss_methods(self, comparison):
        """The paper's qualitative claim on the shared substrate."""
        results = {r.name: r for r in comparison.run(
            poses=[Point2(0.3, 1.8), Point2(-0.7, 2.2), Point2(1.0, 1.4)]
        )}
        tagspin = results["Tagspin"].summary().mean
        assert tagspin < results["LandMARC"].summary().mean
        assert tagspin < results["AntLoc"].summary().mean
