"""Shared test helpers (importable, unlike fixtures, from hypothesis tests)."""

from __future__ import annotations

import numpy as np

from repro.constants import DEFAULT_WAVELENGTH_M
from repro.core.phase import theoretical_phase
from repro.core.spectrum import SnapshotSeries


def make_series(
    azimuth: float,
    polar: float = 0.0,
    n: int = 200,
    rotations: float = 2.0,
    wavelength: float = DEFAULT_WAVELENGTH_M,
    radius: float = 0.10,
    angular_speed: float = 1.0,
    phase0: float = 0.0,
    center_distance: float = 2.0,
    diversity: float = 0.0,
    noise_std: float = 0.0,
    seed: int = 7,
) -> SnapshotSeries:
    """Synthetic spinning-tag series following the far-field model exactly."""
    period = 2.0 * np.pi / abs(angular_speed)
    times = np.linspace(0.0, rotations * period, n)
    phases = theoretical_phase(
        times,
        wavelength,
        center_distance,
        radius,
        angular_speed,
        azimuth,
        polar,
        diversity,
        phase0,
    )
    if noise_std > 0:
        noise_rng = np.random.default_rng(seed)
        phases = np.mod(
            phases + noise_std * noise_rng.standard_normal(n), 2.0 * np.pi
        )
    return SnapshotSeries(
        times=times,
        phases=phases,
        wavelength=wavelength,
        radius=radius,
        angular_speed=angular_speed,
        phase0=phase0,
    )
