"""Property tests: engine equivalence and cache correctness.

Randomized :class:`SnapshotSeries` — including the 3-snapshot minimum,
non-uniform (even duplicate) timestamps, and windows covering less than
one rotation — must produce *bit-identical* spectra from the batched
engine, because it shares the reference implementation's arithmetic
kernels.  The cache tests pin the hit/miss semantics the speedup relies
on: repeats hit, changed phases reuse steering but recompute spectra,
changed grids miss everything, and quantization only merges inputs that
agree far below the equivalence tolerance.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.spectrum import (
    SnapshotSeries,
    default_azimuth_grid,
    default_polar_grid,
)
from repro.errors import InsufficientDataError
from repro.perf import BatchedEngine, ReferenceEngine

# Hypothesis-heavy perf suite: runs in the dedicated CI slow job.
pytestmark = pytest.mark.slow

AZIMUTH_GRID = default_azimuth_grid(np.deg2rad(5.0))
POLAR_GRID = default_polar_grid(np.deg2rad(15.0))

_unit_floats = st.floats(0.0, 1.0, allow_nan=False, allow_infinity=False)


@st.composite
def snapshot_series(draw, min_snapshots=3, max_snapshots=24):
    """Random series: non-uniform times, arbitrary rotation coverage."""
    n = draw(st.integers(min_snapshots, max_snapshots))
    # Sorted non-uniform offsets; duplicates are allowed (times need only
    # be non-decreasing) and exercised whenever the draw repeats a value.
    offsets = np.sort(np.array(draw(
        st.lists(_unit_floats, min_size=n, max_size=n)
    )))
    angular_speed = draw(st.floats(0.3, 3.0)) * draw(st.sampled_from([1.0, -1.0]))
    period = 2.0 * np.pi / abs(angular_speed)
    # From well under one rotation (0.2 periods) to several.
    span = draw(st.floats(0.2, 3.0)) * period
    phases = 2.0 * np.pi * np.array(draw(
        st.lists(_unit_floats, min_size=n, max_size=n)
    ))
    return SnapshotSeries(
        times=offsets * span,
        phases=phases,
        wavelength=draw(st.floats(0.2, 0.5)),
        radius=draw(st.floats(0.02, 0.2)),
        angular_speed=angular_speed,
        phase0=draw(st.floats(0.0, 2.0 * np.pi)),
    )


class TestEngineEquivalenceProperties:
    @given(series=snapshot_series(), sigma=st.sampled_from([None, 0.1, 0.3]))
    @settings(max_examples=40, deadline=None)
    def test_azimuth_spectrum_bit_identical(self, series, sigma):
        expected = ReferenceEngine().azimuth_spectrum(
            series, AZIMUTH_GRID, sigma
        )
        with BatchedEngine() as engine:
            actual = engine.azimuth_spectrum(series, AZIMUTH_GRID, sigma)
        assert np.array_equal(expected.power, actual.power)
        assert expected.peak_azimuth == actual.peak_azimuth
        assert expected.peak_power == actual.peak_power

    @given(series=snapshot_series(max_snapshots=12),
           sigma=st.sampled_from([None, 0.14]))
    @settings(max_examples=15, deadline=None)
    def test_joint_spectrum_bit_identical(self, series, sigma):
        expected = ReferenceEngine().joint_spectrum(
            series, AZIMUTH_GRID, POLAR_GRID, sigma
        )
        with BatchedEngine() as engine:
            actual = engine.joint_spectrum(
                series, AZIMUTH_GRID, POLAR_GRID, sigma
            )
        assert np.array_equal(expected.power, actual.power)
        assert expected.peak_azimuth == actual.peak_azimuth
        assert expected.peak_polar == actual.peak_polar

    @given(series=snapshot_series(min_snapshots=3, max_snapshots=3))
    @settings(max_examples=15, deadline=None)
    def test_three_snapshot_minimum_supported(self, series):
        """The legal minimum series size works and stays equivalent."""
        expected = ReferenceEngine().azimuth_spectrum(series, AZIMUTH_GRID, 0.2)
        with BatchedEngine() as engine:
            actual = engine.azimuth_spectrum(series, AZIMUTH_GRID, 0.2)
        assert np.array_equal(expected.power, actual.power)

    @given(series=snapshot_series())
    @settings(max_examples=10, deadline=None)
    def test_streaming_path_bit_identical(self, series):
        """A tiny block budget forces the uncached streaming fallback."""
        expected = ReferenceEngine().joint_spectrum(
            series, AZIMUTH_GRID, POLAR_GRID, 0.14
        )
        with BatchedEngine(max_block_elements=64) as engine:
            actual = engine.joint_spectrum(
                series, AZIMUTH_GRID, POLAR_GRID, 0.14
            )
        assert np.array_equal(expected.power, actual.power)


def _series(phase_offset=0.0, n=40, seed=3):
    rng = np.random.default_rng(seed)
    return SnapshotSeries(
        times=np.sort(rng.uniform(0.0, 10.0, n)),
        phases=np.mod(rng.uniform(0.0, 2.0 * np.pi, n) + phase_offset,
                      2.0 * np.pi),
        wavelength=0.325,
        radius=0.1,
        angular_speed=1.1,
        phase0=0.2,
    )


class TestCacheSemantics:
    def test_first_call_misses_everything(self):
        with BatchedEngine() as engine:
            engine.azimuth_spectrum(_series(), AZIMUTH_GRID, 0.14)
            stats = engine.cache_stats()
        assert stats["steering"]["hits"] == 0
        assert stats["steering"]["misses"] == 1
        assert stats["spectra"]["hits"] == 0
        assert stats["spectra"]["misses"] == 1

    def test_identical_repeat_hits_spectrum_cache(self):
        with BatchedEngine() as engine:
            first = engine.azimuth_spectrum(_series(), AZIMUTH_GRID, 0.14)
            second = engine.azimuth_spectrum(_series(), AZIMUTH_GRID, 0.14)
            stats = engine.cache_stats()
        assert second is first
        assert stats["spectra"]["hits"] == 1
        # The cached spectrum short-circuits before the steering lookup.
        assert stats["steering"]["misses"] == 1

    def test_changed_phases_reuse_steering_only(self):
        """New measurements, same geometry: the expensive trig is reused."""
        with BatchedEngine() as engine:
            engine.azimuth_spectrum(_series(), AZIMUTH_GRID, 0.14)
            engine.azimuth_spectrum(
                _series(phase_offset=1.0), AZIMUTH_GRID, 0.14
            )
            stats = engine.cache_stats()
        assert stats["steering"]["hits"] == 1
        assert stats["steering"]["misses"] == 1
        assert stats["spectra"]["hits"] == 0
        assert stats["spectra"]["misses"] == 2
        assert stats["residuals"]["misses"] == 2

    def test_profile_switch_reuses_residuals(self):
        """The R-to-Q fallback pays the phase wrap only once."""
        with BatchedEngine() as engine:
            engine.azimuth_spectrum(_series(), AZIMUTH_GRID, 0.14)
            engine.azimuth_spectrum(_series(), AZIMUTH_GRID, None)
            stats = engine.cache_stats()
        assert stats["residuals"]["hits"] == 1
        assert stats["residuals"]["misses"] == 1
        assert stats["spectra"]["misses"] == 2  # R and Q are distinct spectra

    def test_changed_grid_misses_steering(self):
        other_grid = default_azimuth_grid(np.deg2rad(4.0))
        with BatchedEngine() as engine:
            engine.azimuth_spectrum(_series(), AZIMUTH_GRID, 0.14)
            engine.azimuth_spectrum(_series(), other_grid, 0.14)
            stats = engine.cache_stats()
        assert stats["steering"]["hits"] == 0
        assert stats["steering"]["misses"] == 2

    def test_sub_quantum_perturbation_shares_entry(self):
        """Inputs agreeing below 1e-12 are the same cached spectrum.

        Phases are pinned to 8 decimals so the 1e-14 nudge cannot land on
        a rounding-boundary of the key quantizer's 12-decimal cells.
        """
        raw = _series()
        base = SnapshotSeries(
            raw.times,
            np.round(raw.phases, 8),
            raw.wavelength,
            raw.radius,
            raw.angular_speed,
            raw.phase0,
        )
        nudged = SnapshotSeries(
            base.times,
            base.phases + 1e-14,
            base.wavelength,
            base.radius,
            base.angular_speed,
            base.phase0,
        )
        with BatchedEngine() as engine:
            first = engine.azimuth_spectrum(base, AZIMUTH_GRID, 0.14)
            second = engine.azimuth_spectrum(nudged, AZIMUTH_GRID, 0.14)
        assert second is first

    def test_supra_quantum_perturbation_recomputes(self):
        """Inputs differing by more than the quantum must NOT collide."""
        base = _series()
        moved = SnapshotSeries(
            base.times,
            base.phases + 1e-6,
            base.wavelength,
            base.radius,
            base.angular_speed,
            base.phase0,
        )
        with BatchedEngine() as engine:
            first = engine.azimuth_spectrum(base, AZIMUTH_GRID, 0.14)
            second = engine.azimuth_spectrum(moved, AZIMUTH_GRID, 0.14)
            stats = engine.cache_stats()
        assert second is not first
        assert stats["spectra"]["hits"] == 0
        expected = ReferenceEngine().azimuth_spectrum(moved, AZIMUTH_GRID, 0.14)
        assert np.array_equal(second.power, expected.power)

    def test_eviction_under_tiny_budget_stays_correct(self):
        """A starved cache evicts but never returns wrong spectra."""
        series_a, series_b = _series(seed=3), _series(seed=4)
        reference = ReferenceEngine()
        with BatchedEngine(
            spectrum_budget=AZIMUTH_GRID.size,  # room for exactly one spectrum
            residual_budget=0,
        ) as engine:
            for _ in range(2):
                for series in (series_a, series_b):
                    actual = engine.azimuth_spectrum(series, AZIMUTH_GRID, 0.14)
                    expected = reference.azimuth_spectrum(
                        series, AZIMUTH_GRID, 0.14
                    )
                    assert np.array_equal(actual.power, expected.power)
            stats = engine.cache_stats()
        assert stats["spectra"]["evictions"] > 0
        assert stats["spectra"]["cost"] <= AZIMUTH_GRID.size

    @given(sigma=st.floats(allow_nan=False, max_value=0.0))
    @settings(max_examples=10, deadline=None)
    def test_invalid_sigma_rejected(self, sigma):
        with BatchedEngine() as engine:
            with pytest.raises(ValueError):
                engine.azimuth_spectrum(_series(), AZIMUTH_GRID, sigma)

    def test_insufficient_snapshots_rejected(self):
        short = SnapshotSeries(
            np.array([0.0, 1.0]), np.array([0.1, 0.2]), 0.325, 0.1, 1.0
        )
        with BatchedEngine() as engine:
            with pytest.raises(InsufficientDataError):
                engine.azimuth_spectrum(short, AZIMUTH_GRID, None)
        with pytest.raises(InsufficientDataError):
            ReferenceEngine().azimuth_spectrum(short, AZIMUTH_GRID, None)

    def test_cached_spectra_are_immutable(self):
        with BatchedEngine() as engine:
            spectrum = engine.azimuth_spectrum(_series(), AZIMUTH_GRID, 0.14)
        with pytest.raises(ValueError):
            spectrum.power[0] = 99.0
