"""Adaptive-engine correctness: tolerance contract, fallback, plumbing.

The coarse-to-fine engine trades dense power arrays for speed but must
keep its *peak* within the configured angular tolerance of the
dense-grid reference peak — on the recorded golden traces (clean,
pi-slip, multipath), on the fused multi-channel objective, on the joint
(azimuth x polar) search, and on randomized synthetic series (the
hypothesis suite, marked slow).  A flat spectrum must trigger the dense
fallback instead of trusting meaningless basins.
"""

from __future__ import annotations

import numpy as np
import pytest
from test_golden_equivalence import SCENARIOS, _disk_series, _grid, golden  # noqa: F401

from helpers import make_series
from repro.constants import RELATIVE_PHASE_STD_RAD
from repro.core.phase import wrap_phase_signed
from repro.core.spectrum import (
    SnapshotSeries,
    combine_spectra,
    default_azimuth_grid,
    default_polar_grid,
)
from repro.perf import AdaptiveEngine, BatchedEngine, ReferenceEngine, create_engine

TOLERANCE = 1e-3  # rad; the engine default the acceptance gate uses


def _angular_error(a: float, b: float) -> float:
    return abs(float(wrap_phase_signed(a - b)))


def _flat_series(n: int = 24) -> SnapshotSeries:
    """A series whose spectrum is flat: the time window is so short that
    the disk barely moves, so every candidate azimuth explains the
    (noisy) phases equally well."""
    rng = np.random.default_rng(9)
    times = np.sort(rng.uniform(0.0, 1e-4, n))
    phases = np.mod(0.3 + 0.05 * rng.standard_normal(n), 2.0 * np.pi)
    return SnapshotSeries(
        times=times,
        phases=phases,
        wavelength=0.325,
        radius=0.1,
        angular_speed=1.0,
        phase0=0.0,
    )


@pytest.mark.parametrize("kind", SCENARIOS)
class TestGoldenTolerance:
    def test_azimuth_peaks_within_tolerance(self, golden, kind):
        grid = _grid(golden)
        reference = ReferenceEngine()
        with AdaptiveEngine() as engine:
            for channels in _disk_series(golden, kind):
                for series in channels:
                    for sigma in (RELATIVE_PHASE_STD_RAD, None):
                        expected = reference.azimuth_spectrum(series, grid, sigma)
                        actual = engine.azimuth_spectrum(series, grid, sigma)
                        assert (
                            _angular_error(
                                expected.peak_azimuth, actual.peak_azimuth
                            )
                            <= TOLERANCE
                        )

    def test_fused_peak_within_tolerance(self, golden, kind):
        """The pipeline path: refinement runs on the fused objective."""
        grid = _grid(golden)
        reference = ReferenceEngine()
        with AdaptiveEngine() as engine:
            for channels in _disk_series(golden, kind):
                expected = combine_spectra(
                    reference.azimuth_spectra(
                        channels, grid, RELATIVE_PHASE_STD_RAD
                    )
                )
                actual = engine.fused_azimuth_spectrum(
                    channels, grid, RELATIVE_PHASE_STD_RAD
                )
                assert (
                    _angular_error(expected.peak_azimuth, actual.peak_azimuth)
                    <= TOLERANCE
                )

    def test_joint_peak_within_tolerance(self, golden, kind):
        azimuths = default_azimuth_grid(np.deg2rad(0.75))
        polars = default_polar_grid(np.deg2rad(1.5))
        series = _disk_series(golden, kind)[0][0]
        reference = ReferenceEngine()
        with AdaptiveEngine() as engine:
            expected = reference.joint_spectrum(
                series, azimuths, polars, RELATIVE_PHASE_STD_RAD
            )
            actual = engine.joint_spectrum(
                series, azimuths, polars, RELATIVE_PHASE_STD_RAD
            )
        assert (
            _angular_error(expected.peak_azimuth, actual.peak_azimuth)
            <= TOLERANCE
        )
        # A horizontal disk's joint spectrum is mirror-symmetric in the
        # polar sign (the +/-z ambiguity the locator resolves downstream),
        # so near-equal mirror peaks are interchangeable: compare up to
        # that symmetry and require equivalent peak quality.
        polar_error = min(
            abs(expected.peak_polar - actual.peak_polar),
            abs(expected.peak_polar + actual.peak_polar),
        )
        assert polar_error <= TOLERANCE
        assert actual.peak_power == pytest.approx(
            expected.peak_power, rel=1e-3
        )

    def test_fused_joint_peak_within_tolerance(self, golden, kind):
        """One ladder refines the fused multi-channel joint objective.

        The dense comparison point is the fused objective's own argmax
        (mean power over channels on the dense grids), which is what the
        fused ladder descends on.
        """
        azimuths = default_azimuth_grid(np.deg2rad(0.75))
        polars = default_polar_grid(np.deg2rad(1.5))
        channels = _disk_series(golden, kind)[0]
        reference = ReferenceEngine()
        dense = [
            reference.joint_spectrum(
                s, azimuths, polars, RELATIVE_PHASE_STD_RAD
            )
            for s in channels
        ]
        mean_power = np.mean([s.power for s in dense], axis=0)
        row, col = np.unravel_index(
            int(np.argmax(mean_power)), mean_power.shape
        )
        with AdaptiveEngine() as engine:
            before = engine.refinements
            actual = engine.fused_joint_spectrum(
                channels, azimuths, polars, RELATIVE_PHASE_STD_RAD
            )
            ladders = engine.refinements - before
        # One ladder per basin, never one per channel.
        assert 0 < ladders <= engine.top_k
        # The fused ladder interpolates between dense samples, so allow
        # one dense grid step on top of the configured tolerance.
        assert _angular_error(
            float(azimuths[col]), actual.peak_azimuth
        ) <= TOLERANCE + np.deg2rad(0.75)
        polar_error = min(
            abs(float(polars[row]) - actual.peak_polar),
            abs(float(polars[row]) + actual.peak_polar),
        )
        assert polar_error <= TOLERANCE + np.deg2rad(1.5)
        assert actual.peak_power >= float(np.max(mean_power)) * (1 - 1e-6)


class TestFlatSpectrumFallback:
    def test_dense_fallback_triggers(self):
        grid = default_azimuth_grid(np.deg2rad(0.5))
        series = _flat_series()
        with AdaptiveEngine() as engine:
            spectrum = engine.azimuth_spectrum(
                series, grid, RELATIVE_PHASE_STD_RAD
            )
            stats = engine.cache_stats()["adaptive"]
        assert stats["dense_fallbacks"] == 1
        # The fallback answered with the full dense grid, so the result
        # is exactly the batched/reference spectrum.
        assert spectrum.power.shape == grid.shape
        expected = ReferenceEngine().azimuth_spectrum(
            series, grid, RELATIVE_PHASE_STD_RAD
        )
        assert np.array_equal(spectrum.power, expected.power)
        assert spectrum.peak_azimuth == expected.peak_azimuth

    def test_sharp_spectrum_does_not_fall_back(self):
        grid = default_azimuth_grid(np.deg2rad(0.5))
        series = make_series(azimuth=1.0, noise_std=0.05, seed=4)
        with AdaptiveEngine() as engine:
            spectrum = engine.azimuth_spectrum(series, grid, 0.14)
            stats = engine.cache_stats()["adaptive"]
        assert stats["dense_fallbacks"] == 0
        assert stats["refinements"] == 1
        # Coarse-to-fine answered on its subsampled grid.
        assert spectrum.power.size < grid.size

    def test_joint_flat_fallback_keeps_coarse_grid_shape(self):
        """Per-channel joint spectra must stay averageable: the fallback
        carries the dense-refined peak on the coarse power surface."""
        azimuths = default_azimuth_grid(np.deg2rad(0.75))
        polars = default_polar_grid(np.deg2rad(1.5))
        with AdaptiveEngine() as engine:
            flat = engine.joint_spectrum(
                _flat_series(), azimuths, polars, RELATIVE_PHASE_STD_RAD
            )
            sharp = engine.joint_spectrum(
                make_series(azimuth=2.0, noise_std=0.02, seed=6),
                azimuths,
                polars,
                RELATIVE_PHASE_STD_RAD,
            )
            assert engine.cache_stats()["adaptive"]["dense_fallbacks"] >= 1
        assert flat.power.shape == sharp.power.shape
        assert np.array_equal(flat.azimuth_grid, sharp.azimuth_grid)


class TestEnginePlumbing:
    def test_create_engine_adaptive(self):
        engine = create_engine("adaptive")
        assert isinstance(engine, AdaptiveEngine)
        assert engine.name == "adaptive"
        assert engine.tolerance == pytest.approx(1e-3)

    def test_create_engine_adaptive_tolerance(self):
        engine = create_engine("adaptive", tolerance=5e-4)
        assert engine.tolerance == pytest.approx(5e-4)

    def test_tolerance_rejected_for_other_engines(self):
        with pytest.raises(ValueError):
            create_engine("batched", tolerance=1e-3)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveEngine(tolerance=0.0)
        with pytest.raises(ValueError):
            AdaptiveEngine(refine_factor=1)
        with pytest.raises(ValueError):
            AdaptiveEngine(basin_prune=0.0)

    def test_repeated_call_serves_cached_spectrum(self):
        grid = default_azimuth_grid(np.deg2rad(0.5))
        series = make_series(azimuth=0.7, noise_std=0.05, seed=8)
        with AdaptiveEngine() as engine:
            first = engine.azimuth_spectrum(series, grid, 0.14)
            second = engine.azimuth_spectrum(series, grid, 0.14)
            stats = engine.cache_stats()["adaptive"]
        assert second is first
        assert stats["spectra"]["hits"] == 1
        assert stats["refinements"] == 1  # no second ladder run

    def test_small_grid_delegates_to_dense(self):
        """Grids too small to subsample get the dense answer verbatim."""
        grid = default_azimuth_grid(np.deg2rad(10.0))  # 36 points
        series = make_series(azimuth=1.2, noise_std=0.05, seed=5)
        expected = BatchedEngine().azimuth_spectrum(series, grid, 0.14)
        with AdaptiveEngine() as engine:
            actual = engine.azimuth_spectrum(series, grid, 0.14)
        assert np.array_equal(actual.power, expected.power)
        assert actual.peak_azimuth == expected.peak_azimuth

    def test_pipeline_fix_close_to_reference(self):
        """End to end: an adaptive-engine fix lands within the angular
        tolerance's positional equivalent of the reference fix."""
        from repro.core.pipeline import TagspinSystem
        from repro.sim.scenario import paper_default_scenario
        from repro.core.geometry import Point3

        scenario = paper_default_scenario(seed=11)
        scenario.run_orientation_prelude()
        batch, _reader = scenario.collect(Point3(0.5, 2.0, 0.0))

        def fix(engine):
            system = TagspinSystem(
                scenario.scene.registry, scenario.config.pipeline, engine=engine
            )
            return system.locate_2d(batch, 1)

        expected = fix("reference")
        actual = fix("adaptive")
        # 1e-3 rad at the few-meter ranges of the default scene is
        # millimeters of bearing-induced displacement; allow 1 cm.
        assert actual.position.distance_to(expected.position) < 0.01
