"""End-to-end: the pipeline and servers produce identical fixes per engine.

The ``engine=`` strategy object must be a pure performance knob — swapping
it can never change a localization answer.  These tests run one simulated
collection through :class:`TagspinSystem` (and the resilient server) once
per engine and require the resulting fixes to be *equal*, not just close.
"""

from __future__ import annotations

import pytest

from repro.core.geometry import Point2, Point3
from repro.core.pipeline import LocalizationPipeline, TagspinSystem
from repro.perf import BatchedEngine, ReferenceEngine
from repro.server.resilience import ResilientLocalizationServer
from repro.server.service import LocalizationServer
from repro.sim.scenario import paper_default_scenario


@pytest.fixture(scope="module")
def collected():
    """One scenario and one collected batch, shared across engine runs."""
    scenario = paper_default_scenario(seed=11)
    scenario.run_orientation_prelude()
    batch, _reader = scenario.collect(Point3(0.5, 2.0, 0.0))
    return scenario, batch


def _fix_with_engine(collected, engine):
    scenario, batch = collected
    system = TagspinSystem(
        scenario.scene.registry, scenario.config.pipeline, engine=engine
    )
    return system.locate_2d(batch, 1)


class TestPipelineEngineEquivalence:
    @pytest.mark.parametrize("engine", ["batched", "parallel-thread"])
    def test_fix_identical_to_reference(self, collected, engine):
        expected = _fix_with_engine(collected, "reference")
        actual = _fix_with_engine(collected, engine)
        assert actual.position.x == expected.position.x
        assert actual.position.y == expected.position.y
        assert actual.residual == expected.residual
        assert actual.confidence == expected.confidence

    def test_harmonic_fix_within_budget(self, collected):
        # The harmonic engine is numerically (not bit-) equivalent: its
        # FFT-realized steering phasors round differently than direct
        # cosines, so the fix is held to the 1e-9 dense budget instead.
        expected = _fix_with_engine(collected, "reference")
        actual = _fix_with_engine(collected, "harmonic")
        assert abs(actual.position.x - expected.position.x) <= 1e-9
        assert abs(actual.position.y - expected.position.y) <= 1e-9
        assert abs(actual.residual - expected.residual) <= 1e-9

    def test_fused_joint_path_per_engine(self, collected):
        # locate_3d exercises engine.fused_joint_spectrum end to end.
        scenario, batch = collected

        def fix_3d(engine):
            system = TagspinSystem(
                scenario.scene.registry,
                scenario.config.pipeline,
                engine=engine,
            )
            return system.locate_3d(batch, 1)

        expected = fix_3d("reference")
        batched = fix_3d("batched")
        assert batched.position.x == expected.position.x
        assert batched.position.y == expected.position.y
        assert batched.position.z == expected.position.z
        harmonic = fix_3d("harmonic")
        assert abs(harmonic.position.x - expected.position.x) <= 1e-6
        assert abs(harmonic.position.y - expected.position.y) <= 1e-6
        assert abs(harmonic.position.z - expected.position.z) <= 1e-6

    def test_fix_is_accurate(self, collected):
        fix = _fix_with_engine(collected, "batched")
        truth = Point2(0.5, 2.0)
        assert fix.position.distance_to(truth) < 0.15

    def test_repeated_fix_hits_caches(self, collected):
        scenario, batch = collected
        engine = BatchedEngine()
        system = TagspinSystem(
            scenario.scene.registry, scenario.config.pipeline, engine=engine
        )
        first = system.locate_2d(batch, 1)
        cold = engine.cache_stats()["spectra"]
        second = system.locate_2d(batch, 1)
        warm = engine.cache_stats()["spectra"]
        assert warm["hits"] > cold["hits"]
        assert second.position.x == first.position.x
        assert second.position.y == first.position.y

    def test_engine_instance_passthrough(self, collected):
        scenario, _batch = collected
        engine = ReferenceEngine()
        system = TagspinSystem(
            scenario.scene.registry, scenario.config.pipeline, engine=engine
        )
        assert system.engine is engine

    def test_unknown_engine_name_rejected(self, collected):
        scenario, _batch = collected
        with pytest.raises(ValueError):
            TagspinSystem(
                scenario.scene.registry,
                scenario.config.pipeline,
                engine="quantum",
            )

    def test_localization_pipeline_alias(self):
        assert LocalizationPipeline is TagspinSystem


class TestServerEnginePassthrough:
    def test_localization_server_forwards_engine(self, collected):
        scenario, _batch = collected
        server = LocalizationServer(
            scenario.scene.registry,
            scenario.config.pipeline,
            engine="batched",
        )
        assert server.system.engine.name == "batched"

    def test_resilient_server_forwards_engine(self, collected):
        scenario, _batch = collected
        server = ResilientLocalizationServer(
            scenario.scene.registry,
            scenario.config.pipeline,
            engine="batched",
        )
        assert server.system.engine.name == "batched"

    def test_resilient_server_fix_identical_across_engines(self, collected):
        scenario, batch = collected

        def serve(engine):
            server = ResilientLocalizationServer(
                scenario.scene.registry,
                scenario.config.pipeline,
                engine=engine,
            )
            server.ingest("reader-1", batch.reports)
            return server.locate_antenna_2d("reader-1")

        expected = serve("reference")
        actual = serve("batched")
        assert actual.position.x == expected.position.x
        assert actual.position.y == expected.position.y
        harmonic = serve("harmonic")
        assert abs(harmonic.position.x - expected.position.x) <= 1e-9
        assert abs(harmonic.position.y - expected.position.y) <= 1e-9
