"""Tests for the parallel fan-out engine and its serial degradation."""

from __future__ import annotations

import numpy as np
import pytest
from helpers import make_series

from repro.core.spectrum import default_azimuth_grid, default_polar_grid
from repro.perf import (
    BatchedEngine,
    ParallelEngine,
    ReferenceEngine,
    create_engine,
)

GRID = default_azimuth_grid(np.deg2rad(2.0))
AZIMUTHS = [0.3, 1.4, 2.6, 4.1, 5.5]


def _batch():
    return [make_series(azimuth=a, n=60, seed=7 + i)
            for i, a in enumerate(AZIMUTHS)]


class TestThreadFanOut:
    def test_matches_reference_in_input_order(self):
        series_list = _batch()
        expected = ReferenceEngine().azimuth_spectra(series_list, GRID, 0.14)
        with ParallelEngine(mode="thread", max_workers=2) as engine:
            actual = engine.azimuth_spectra(series_list, GRID, 0.14)
        assert len(actual) == len(expected)
        for want, got in zip(expected, actual):
            assert np.array_equal(want.power, got.power)
            assert want.peak_azimuth == got.peak_azimuth

    def test_joint_spectra_match_reference(self):
        series_list = _batch()[:2]
        polars = default_polar_grid(np.deg2rad(15.0))
        expected = ReferenceEngine().joint_spectra(
            series_list, GRID, polars, 0.14
        )
        with ParallelEngine(mode="thread", max_workers=2) as engine:
            actual = engine.joint_spectra(series_list, GRID, polars, 0.14)
        for want, got in zip(expected, actual):
            assert np.array_equal(want.power, got.power)

    def test_thread_pool_shares_base_caches(self):
        """Thread workers feed one batched engine, so repeats still hit."""
        series_list = _batch()
        with ParallelEngine(mode="thread", max_workers=2) as engine:
            engine.azimuth_spectra(series_list, GRID, 0.14)
            engine.azimuth_spectra(series_list, GRID, 0.14)
            stats = engine.cache_stats()
        assert stats["spectra"]["hits"] == len(series_list)

    def test_single_series_skips_the_pool(self):
        with ParallelEngine(mode="thread", max_workers=2) as engine:
            spectra = engine.azimuth_spectra(_batch()[:1], GRID, 0.14)
            assert len(spectra) == 1
            assert engine._executor is None  # never spun up


class TestSerialDegradation:
    def test_serial_mode_never_builds_a_pool(self):
        with ParallelEngine(mode="serial") as engine:
            spectra = engine.azimuth_spectra(_batch(), GRID, 0.14)
            assert engine.is_serial
            assert engine._executor is None
        expected = ReferenceEngine().azimuth_spectra(_batch(), GRID, 0.14)
        for want, got in zip(expected, spectra):
            assert np.array_equal(want.power, got.power)

    def test_single_worker_short_circuits_to_serial(self):
        with ParallelEngine(mode="thread", max_workers=1) as engine:
            assert engine.is_serial
            spectra = engine.azimuth_spectra(_batch(), GRID, 0.14)
        assert len(spectra) == len(AZIMUTHS)

    def test_pool_failure_falls_back_and_warns(self, monkeypatch):
        import concurrent.futures

        def broken_pool(*args, **kwargs):
            raise OSError("no threads available")

        monkeypatch.setattr(
            concurrent.futures, "ThreadPoolExecutor", broken_pool
        )
        with ParallelEngine(mode="thread", max_workers=4) as engine:
            with pytest.warns(RuntimeWarning, match="falling back to serial"):
                spectra = engine.azimuth_spectra(_batch(), GRID, 0.14)
            assert engine.is_serial
        expected = ReferenceEngine().azimuth_spectra(_batch(), GRID, 0.14)
        for want, got in zip(expected, spectra):
            assert np.array_equal(want.power, got.power)

    def test_fallback_is_permanent_and_silent_after_first_warning(
        self, monkeypatch
    ):
        import concurrent.futures

        calls = []

        def broken_pool(*args, **kwargs):
            calls.append(1)
            raise OSError("no threads")

        monkeypatch.setattr(
            concurrent.futures, "ThreadPoolExecutor", broken_pool
        )
        with ParallelEngine(mode="thread", max_workers=4) as engine:
            with pytest.warns(RuntimeWarning):
                engine.azimuth_spectra(_batch(), GRID, 0.14)
            engine.azimuth_spectra(_batch()[3:], GRID, None)  # no new warning
        assert len(calls) == 1


class TestConstruction:
    def test_invalid_mode_rejected(self):
        with pytest.raises(ValueError):
            ParallelEngine(mode="gpu")

    def test_invalid_worker_count_rejected(self):
        with pytest.raises(ValueError):
            ParallelEngine(max_workers=0)

    def test_single_series_calls_delegate_to_base(self):
        base = BatchedEngine()
        with ParallelEngine(base=base, mode="thread", max_workers=2) as engine:
            spectrum = engine.azimuth_spectrum(_batch()[0], GRID, 0.14)
            assert base.cache_stats()["spectra"]["misses"] == 1
            again = engine.azimuth_spectrum(_batch()[0], GRID, 0.14)
        assert again is spectrum

    def test_create_engine_names(self):
        for spec, name in [
            (None, "reference"),
            ("reference", "reference"),
            ("batched", "batched"),
            ("parallel", "parallel-thread"),
            ("parallel-thread", "parallel-thread"),
            ("parallel-process", "parallel-process"),
        ]:
            engine = create_engine(spec)
            try:
                assert engine.name == name
            finally:
                engine.close()

    def test_create_engine_passthrough_and_rejection(self):
        base = BatchedEngine()
        assert create_engine(base) is base
        with pytest.raises(ValueError):
            create_engine("warp-drive")


class TestMergeCacheStats:
    def test_numeric_leaves_sum_and_special_keys(self):
        from repro.perf.engine import merge_cache_stats

        merged = merge_cache_stats([
            {"spectra": {"hits": 2, "misses": 1},
             "orders": {"count": 2, "min": 3, "max": 7, "mean": 5.0}},
            {"spectra": {"hits": 5, "misses": 0},
             "orders": {"count": 6, "min": 1, "max": 5, "mean": 2.0}},
        ])
        assert merged["spectra"] == {"hits": 7, "misses": 1}
        # min/max take extrema; mean is weighted by the sibling count.
        assert merged["orders"]["count"] == 8
        assert merged["orders"]["min"] == 1
        assert merged["orders"]["max"] == 7
        assert merged["orders"]["mean"] == pytest.approx(
            (5.0 * 2 + 2.0 * 6) / 8
        )

    def test_empty_and_missing_inputs_are_skipped(self):
        from repro.perf.engine import merge_cache_stats

        assert merge_cache_stats([]) == {}
        assert merge_cache_stats([{}, {"a": 1}, None]) == {"a": 1}


class TestProcessWorkerStats:
    def test_process_mode_surfaces_worker_cache_stats(self):
        # The regression this guards: process workers hold their own
        # caches, so the parent's cache_stats() read zero under process
        # fan-out (bench JSON showed no cache activity at all).  Workers
        # now piggyback cumulative snapshots on every batch result.
        series_list = _batch()
        expected = ReferenceEngine().azimuth_spectra(series_list, GRID, 0.14)
        with ParallelEngine(mode="process", max_workers=2) as engine:
            spectra = engine.azimuth_spectra(series_list, GRID, 0.14)
            for want, got in zip(expected, spectra):
                assert np.array_equal(want.power, got.power)
            stats = engine.cache_stats()
        assert stats["worker_processes"] >= 1
        assert stats["spectra"]["misses"] >= len(series_list)
