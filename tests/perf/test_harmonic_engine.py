"""Harmonic FFT engine: equivalence, truncation, caching and fallbacks.

The engine's claim is *numerical* equivalence (within 1e-9) to the dense
reference on every grid shape, achieved through a truncated Jacobi-Anger
expansion realized by batched inverse FFTs.  The tests pin:

* FFT-vs-direct equivalence across random geometries, grid densities
  and truncation margins (hypothesis, slow suite);
* the exact alias fold when the harmonic band exceeds the grid length;
* the dense fallback on non-circular (sector) grids;
* cross-fix batching: ``evaluate_many`` matches per-series evaluation,
  re-fixing the same geometry with new phases hits the steering cache;
* the accumulate kernel's argument validation and the native backend's
  availability contract (absent numba, ``harmonic+native`` fails
  loudly; the env veto wins over an installed numba).
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import RELATIVE_PHASE_STD_RAD
from repro.core.phase import theoretical_phase
from repro.core.spectrum import (
    SnapshotSeries,
    default_azimuth_grid,
    default_polar_grid,
)
from repro.perf import HarmonicEngine, ReferenceEngine, create_engine
from repro.perf.harmonic import (
    MIN_FFT_GRID_POINTS,
    _circular_layout,
    bessel_table,
    harmonic_order,
)
from repro.perf.native import (
    NATIVE_AVAILABLE,
    _disabled_by_env,
    harmonic_accumulate,
    native_status,
    power_from_residuals,
)

TOLERANCE = 1e-9
SIGMA = RELATIVE_PHASE_STD_RAD


def _series(
    seed: int = 0,
    snapshots: int = 48,
    wavelength: float = 0.33,
    radius: float = 0.10,
    angular_speed: float = 1.3,
    azimuth: float = 1.1,
    distance: float = 2.0,
    phase0: float = 0.2,
) -> SnapshotSeries:
    rng = np.random.default_rng(seed)
    span = 2.0 * (2.0 * np.pi / abs(angular_speed))
    times = np.sort(rng.uniform(0.0, span, snapshots))
    phases = theoretical_phase(
        times,
        wavelength,
        distance,
        radius,
        angular_speed,
        azimuth,
        diversity=rng.uniform(0.0, 2.0 * np.pi),
        phase0=phase0,
    )
    phases = np.mod(phases + 0.05 * rng.standard_normal(snapshots), 2.0 * np.pi)
    return SnapshotSeries(
        times=times,
        phases=phases,
        wavelength=wavelength,
        radius=radius,
        angular_speed=angular_speed,
        phase0=phase0,
    )


def _assert_equivalent(engine, series, grid, sigma):
    expected = ReferenceEngine().azimuth_spectrum(series, grid, sigma)
    actual = engine.azimuth_spectrum(series, grid, sigma)
    assert np.max(np.abs(expected.power - actual.power)) <= TOLERANCE
    assert abs(expected.peak_azimuth - actual.peak_azimuth) <= TOLERANCE
    assert abs(expected.peak_power - actual.peak_power) <= TOLERANCE


class TestEquivalence:
    @pytest.mark.parametrize("sigma", [SIGMA, None])
    @pytest.mark.parametrize("points", [36, 90, 720])
    def test_circular_grids(self, points, sigma):
        grid = np.linspace(0.0, 2.0 * np.pi, points, endpoint=False)
        with HarmonicEngine(use_native=False) as engine:
            _assert_equivalent(engine, _series(), grid, sigma)
            assert engine.dense_fallbacks == 0

    @pytest.mark.parametrize("sigma", [SIGMA, None])
    def test_sector_grid_takes_dense_path(self, sigma):
        # A 90-degree sector is not a uniform circle: no FFT realization
        # exists, so the engine must fall back to direct evaluation.
        grid = np.linspace(0.5, 0.5 + np.pi / 2.0, 181)
        assert _circular_layout(grid) is None
        with HarmonicEngine(use_native=False) as engine:
            _assert_equivalent(engine, _series(), grid, sigma)
            assert engine.dense_fallbacks > 0

    def test_small_grid_takes_dense_path(self):
        grid = np.linspace(
            0.0, 2.0 * np.pi, MIN_FFT_GRID_POINTS - 8, endpoint=False
        )
        assert _circular_layout(grid) is None
        with HarmonicEngine(use_native=False) as engine:
            _assert_equivalent(engine, _series(), grid, SIGMA)
            assert engine.dense_fallbacks > 0

    def test_alias_fold_when_band_exceeds_grid(self):
        # radius 0.20 m at wavelength 0.2 m gives rho ~ 12.6 and a
        # truncation order ~46, so the 93-coefficient band must fold
        # exactly onto a 36-point grid (2H+1 > M).
        series = _series(radius=0.20, wavelength=0.2)
        rho = 4.0 * np.pi * series.radius / series.wavelength
        grid = np.linspace(0.0, 2.0 * np.pi, 36, endpoint=False)
        assert 2 * harmonic_order(rho) + 1 > grid.size
        with HarmonicEngine(use_native=False) as engine:
            _assert_equivalent(engine, series, grid, SIGMA)
            assert engine.dense_fallbacks == 0

    def test_order_margin_only_tightens(self):
        grid = default_azimuth_grid(np.deg2rad(1.0))
        series = _series()
        expected = ReferenceEngine().azimuth_spectrum(series, grid, SIGMA)
        worst = []
        for margin in (0, 8):
            with HarmonicEngine(use_native=False, order_margin=margin) as eng:
                actual = eng.azimuth_spectrum(series, grid, SIGMA)
            worst.append(float(np.max(np.abs(expected.power - actual.power))))
        assert worst[0] <= TOLERANCE
        assert worst[1] <= max(worst[0], 1e-12)

    def test_joint_spectrum_with_negative_cos_polar(self):
        # Polar rows beyond +/- pi/2 have cos(polar) < 0; the engine
        # reuses the |cos| magnitude group with an odd-harmonic sign
        # flip, which this grid exercises directly.
        azimuths = default_azimuth_grid(np.deg2rad(3.0))
        polars = np.linspace(-2.0, 2.0, 21)  # beyond +/- pi/2
        series = _series()
        expected = ReferenceEngine().joint_spectrum(
            series, azimuths, polars, SIGMA
        )
        with HarmonicEngine(use_native=False) as engine:
            actual = engine.joint_spectrum(series, azimuths, polars, SIGMA)
        assert np.max(np.abs(expected.power - actual.power)) <= TOLERANCE


class TestCrossFixBatching:
    def test_evaluate_many_matches_per_series(self):
        grid = default_azimuth_grid(np.deg2rad(1.0))
        series_list = [_series(seed) for seed in range(5)]
        with HarmonicEngine(use_native=False) as batch_engine:
            batched = batch_engine.evaluate_many(series_list, grid, SIGMA)
        for series, got in zip(series_list, batched):
            with HarmonicEngine(use_native=False) as solo:
                want = solo.azimuth_spectrum(series, grid, SIGMA)
            assert np.array_equal(want.power, got.power)
            assert want.peak_azimuth == got.peak_azimuth

    def test_fused_groups_match_unbatched_fusion(self):
        from repro.core.spectrum import combine_spectra

        grid = default_azimuth_grid(np.deg2rad(1.0))
        groups = [
            [_series(seed=10 * g + c) for c in range(3)] for g in range(3)
        ]
        with HarmonicEngine(use_native=False) as engine:
            fused = engine.fused_azimuth_spectra(groups, grid, SIGMA)
            expected = [
                combine_spectra(
                    ReferenceEngine().azimuth_spectra(group, grid, SIGMA)
                )
                for group in groups
            ]
        assert len(fused) == len(groups)
        for want, got in zip(expected, fused):
            assert np.max(np.abs(want.power - got.power)) <= TOLERANCE
            assert abs(want.peak_azimuth - got.peak_azimuth) <= TOLERANCE

    def test_refix_hits_steering_cache(self):
        # Same geometry, new measured phases — the re-fix shape of the
        # pipeline's orientation-corrected pass.  Steering phasors are
        # measured-phase independent, so the second fix must hit.
        grid = default_azimuth_grid(np.deg2rad(1.0))
        series = _series()
        corrected = dataclasses.replace(
            series, phases=np.mod(series.phases + 0.03, 2.0 * np.pi)
        )
        with HarmonicEngine(use_native=False) as engine:
            engine.azimuth_spectrum(series, grid, SIGMA)
            misses = engine.cache_stats()["steering"]["misses"]
            engine.azimuth_spectrum(corrected, grid, SIGMA)
            stats = engine.cache_stats()
            assert stats["steering"]["hits"] >= 1
            assert stats["steering"]["misses"] == misses
            _assert_equivalent(engine, corrected, grid, SIGMA)

    def test_cache_stats_shape(self):
        grid = default_azimuth_grid(np.deg2rad(1.0))
        with HarmonicEngine(use_native=False) as engine:
            engine.azimuth_spectrum(_series(), grid, SIGMA)
            stats = engine.cache_stats()
        for cache in ("steering", "geometry", "spectra", "rowsums", "grids"):
            for counter in ("hits", "misses", "evictions"):
                assert counter in stats[cache]
        orders = stats["harmonic"]["orders"]
        assert orders["count"] >= 1
        assert orders["min"] <= orders["mean"] <= orders["max"]
        assert stats["harmonic"]["fft_batches"] >= 1
        assert stats["harmonic"]["native"] is False


class TestAccumulateKernel:
    def test_rejects_nonpositive_sigma(self):
        phasor = np.ones(3, dtype=complex)
        steering = np.ones((3, 4), dtype=complex)
        with pytest.raises(ValueError, match="sigma"):
            harmonic_accumulate(phasor, steering, None, None, None, 0.0)

    def test_r_profile_needs_residual_ingredients(self):
        phasor = np.ones(3, dtype=complex)
        steering = np.ones((3, 4), dtype=complex)
        with pytest.raises(ValueError, match="coefficients"):
            harmonic_accumulate(phasor, steering, None, None, None, 0.1)

    def test_q_profile_is_column_mean_magnitude(self):
        rng = np.random.default_rng(7)
        phasor = np.exp(1j * rng.uniform(0, 2 * np.pi, 6))
        steering = np.exp(1j * rng.uniform(0, 2 * np.pi, (6, 9)))
        power, colsum = harmonic_accumulate(
            phasor, steering, None, None, None, None
        )
        expected = np.abs((phasor[:, None] * steering).sum(axis=0)) / 6
        np.testing.assert_allclose(power, expected, atol=1e-12)
        np.testing.assert_allclose(
            colsum, (phasor[:, None] * steering).sum(axis=0), atol=1e-12
        )


class TestNativeBackend:
    def test_status_is_machine_readable(self):
        status = native_status()
        assert set(status) == {"available", "disabled_by_env"}
        assert status["available"] == NATIVE_AVAILABLE

    def test_env_veto_parsing(self, monkeypatch):
        for value, expect in [
            ("1", True),
            ("true", True),
            ("YES", True),
            ("", False),
            ("0", False),
            ("off", False),
        ]:
            monkeypatch.setenv("TAGSPIN_DISABLE_NATIVE", value)
            assert _disabled_by_env() is expect

    def test_power_from_residuals_matches_reference(self):
        from repro.core.spectrum import (
            power_from_residuals as reference_kernel,
        )

        rng = np.random.default_rng(3)
        residuals = rng.uniform(-np.pi, np.pi, (5, 40))
        for sigma in (None, 0.14):
            got = power_from_residuals(residuals, sigma)
            want = reference_kernel(residuals, sigma)
            np.testing.assert_allclose(got, want, atol=1e-12)

    @pytest.mark.skipif(NATIVE_AVAILABLE, reason="numba is installed")
    def test_native_request_fails_loudly_without_numba(self):
        with pytest.raises(ValueError, match="numba"):
            HarmonicEngine(use_native=True)
        with pytest.raises(ValueError, match="numba"):
            create_engine("harmonic+native")

    @pytest.mark.skipif(not NATIVE_AVAILABLE, reason="numba not available")
    def test_native_parity_on_circular_grid(self):
        grid = default_azimuth_grid(np.deg2rad(1.0))
        with HarmonicEngine(use_native=True) as engine:
            _assert_equivalent(engine, _series(), grid, SIGMA)


class TestEngineRegistry:
    def test_harmonic_names_resolve(self):
        with create_engine("harmonic") as engine:
            assert isinstance(engine, HarmonicEngine)
            assert engine.name == "harmonic"
        with create_engine("adaptive-harmonic") as engine:
            assert engine.name == "adaptive-harmonic"
            assert isinstance(engine._dense, HarmonicEngine)

    def test_adaptive_harmonic_accepts_tolerance(self):
        with create_engine("adaptive-harmonic", tolerance=5e-4) as engine:
            assert engine.tolerance == 5e-4

    def test_dense_engines_reject_tolerance(self):
        with pytest.raises(ValueError, match="tolerance"):
            create_engine("harmonic", tolerance=1e-3)


class TestBesselRecurrence:
    def test_matches_scipy_jv(self):
        from scipy.special import jv

        x = np.linspace(0.05, 30.0, 64)
        order = 40
        table = bessel_table(order, x)
        assert table.shape == (order + 1, x.size)
        for n in (0, 1, 7, 40):
            np.testing.assert_allclose(table[n], jv(n, x), atol=1e-10)


# ----------------------------------------------------------------------
# Property tests (slow suite): FFT realization vs direct evaluation
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestFFTvsDirectProperties:
    @given(
        seed=st.integers(0, 2**16),
        radius=st.floats(0.02, 0.25),
        wavelength=st.floats(0.2, 0.5),
        angular_speed=st.floats(0.4, 3.0),
        azimuth=st.floats(0.0, 2.0 * np.pi),
        points=st.sampled_from([36, 48, 90, 180, 360]),
        margin=st.sampled_from([0, 2, 8]),
        sigma=st.sampled_from([None, 0.14, 0.3]),
    )
    @settings(max_examples=60, deadline=None)
    def test_random_geometry_grid_and_truncation(
        self, seed, radius, wavelength, angular_speed, azimuth, points,
        margin, sigma,
    ):
        series = _series(
            seed=seed,
            snapshots=24,
            wavelength=wavelength,
            radius=radius,
            angular_speed=angular_speed,
            azimuth=azimuth,
        )
        grid = np.linspace(0.0, 2.0 * np.pi, points, endpoint=False)
        expected = ReferenceEngine().azimuth_spectrum(series, grid, sigma)
        with HarmonicEngine(use_native=False, order_margin=margin) as engine:
            actual = engine.azimuth_spectrum(series, grid, sigma)
        assert np.max(np.abs(expected.power - actual.power)) <= TOLERANCE

    @given(
        seed=st.integers(0, 2**16),
        polar_span=st.floats(0.3, 1.4),
        sigma=st.sampled_from([None, 0.14]),
    )
    @settings(max_examples=15, deadline=None)
    def test_random_joint_surfaces(self, seed, polar_span, sigma):
        series = _series(seed=seed, snapshots=16)
        azimuths = np.linspace(0.0, 2.0 * np.pi, 48, endpoint=False)
        polars = np.linspace(-polar_span, polar_span, 9)
        expected = ReferenceEngine().joint_spectrum(
            series, azimuths, polars, sigma
        )
        with HarmonicEngine(use_native=False) as engine:
            actual = engine.joint_spectrum(series, azimuths, polars, sigma)
        assert np.max(np.abs(expected.power - actual.power)) <= TOLERANCE
