"""Unit tests for the cost-bounded LRU cache and key quantization."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro.perf.cache import (
    KEY_DECIMALS,
    LRUCache,
    quantize_array,
    quantize_scalar,
)


class TestQuantization:
    def test_scalar_rounds_to_key_decimals(self):
        assert quantize_scalar(0.1 + 1e-14) == quantize_scalar(0.1)
        assert quantize_scalar(0.1 + 1e-9) != quantize_scalar(0.1)

    def test_negative_zero_normalized(self):
        assert quantize_array(np.array([-0.0])) == quantize_array(np.array([0.0]))
        assert quantize_scalar(-0.0) == quantize_scalar(0.0)

    def test_array_key_is_hashable_and_stable(self):
        values = np.array([1.0, 2.5, -3.25])
        key = quantize_array(values)
        assert isinstance(key, bytes)
        assert key == quantize_array(values + 10.0 ** (-KEY_DECIMALS - 2))
        assert key != quantize_array(values + 1e-6)

    def test_array_key_distinguishes_shape_content(self):
        assert quantize_array(np.array([1.0, 2.0])) != quantize_array(
            np.array([2.0, 1.0])
        )


class TestLRUCache:
    def test_miss_then_hit(self):
        cache = LRUCache(max_cost=10)
        assert cache.get("a") is None
        cache.put("a", 1, cost=1)
        assert cache.get("a") == 1
        stats = cache.stats
        assert stats.hits == 1
        assert stats.misses == 1
        assert stats.entries == 1
        assert stats.hit_ratio == 0.5

    def test_cost_bounded_eviction_is_lru_ordered(self):
        cache = LRUCache(max_cost=3)
        cache.put("a", "A", cost=1)
        cache.put("b", "B", cost=1)
        cache.put("c", "C", cost=1)
        cache.get("a")  # refresh "a"; "b" is now least recent
        cache.put("d", "D", cost=1)
        assert "b" not in cache
        assert "a" in cache and "c" in cache and "d" in cache
        assert cache.stats.evictions == 1

    def test_large_insert_evicts_many(self):
        cache = LRUCache(max_cost=4)
        for key in "abcd":
            cache.put(key, key, cost=1)
        cache.put("big", "BIG", cost=3)
        assert "big" in cache
        assert cache.stats.cost <= 4
        assert cache.stats.evictions == 3

    def test_oversized_entry_not_cached(self):
        cache = LRUCache(max_cost=2)
        cache.put("huge", "X", cost=3)
        assert "huge" not in cache
        assert len(cache) == 0

    def test_replacing_entry_updates_cost(self):
        cache = LRUCache(max_cost=5)
        cache.put("a", "old", cost=4)
        cache.put("a", "new", cost=2)
        assert cache.get("a") == "new"
        assert cache.stats.cost == 2
        assert len(cache) == 1

    def test_clear_resets_contents_and_cost(self):
        cache = LRUCache(max_cost=5)
        cache.put("a", 1, cost=2)
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.cost == 0
        assert cache.get("a") is None

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError):
            LRUCache(max_cost=-1)

    def test_zero_budget_caches_nothing(self):
        cache = LRUCache(max_cost=0)
        cache.put("a", 1, cost=1)
        assert len(cache) == 0

    def test_stats_as_dict_round_trip(self):
        cache = LRUCache(max_cost=4)
        cache.put("a", 1, cost=1)
        cache.get("a")
        cache.get("missing")
        stats = cache.stats.as_dict()
        assert stats == {
            "hits": 1,
            "misses": 1,
            "evictions": 0,
            "cost": 1,
            "entries": 1,
            "hit_ratio": 0.5,
        }

    def test_concurrent_access_is_consistent(self):
        """Hammer one cache from several threads; counters must balance."""
        cache = LRUCache(max_cost=64)
        errors = []

        def worker(worker_id):
            try:
                for i in range(200):
                    key = (worker_id, i % 8)
                    value = cache.get(key)
                    if value is None:
                        cache.put(key, key, cost=1)
                    elif value != key:
                        raise AssertionError("cross-thread value corruption")
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=worker, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = cache.stats
        assert stats.hits + stats.misses == 4 * 200
        assert stats.cost <= 64
