"""Streaming accumulator: bit-identical appends, exact invalidation.

The incremental path is only admissible because an append-only extension
reproduces the cold residual matrix *bit for bit* (column ``i`` of the
relative-phase model depends only on ``times[0]`` and ``times[i]``).
These tests pin that equality, the accumulator's bookkeeping
(cold/extension/hit/invalidation/eviction counters), and the server
round trip: an ingest-locate-ingest-locate cycle on ``engine="streaming"``
must reuse the buffered prefix and still produce exactly the reference
server's fix.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers import make_series
from repro.core.geometry import Point3
from repro.core.spectrum import default_azimuth_grid
from repro.perf import (
    ReferenceEngine,
    StreamingEngine,
    StreamingSpectrumAccumulator,
    create_engine,
)
from repro.server.service import LocalizationServer
from repro.sim.scenario import paper_default_scenario

GRID = default_azimuth_grid(np.deg2rad(2.0))
OTHER_GRID = default_azimuth_grid(np.deg2rad(3.0))


def _prefix(series, n):
    return dataclasses.replace(
        series, times=series.times[:n], phases=series.phases[:n]
    )


class TestAccumulator:
    def test_extension_bit_identical_to_cold(self):
        series = make_series(azimuth=1.1, noise_std=0.1, n=60, seed=3)
        accumulator = StreamingSpectrumAccumulator()
        accumulator.residual_matrix(_prefix(series, 40), GRID)
        warm = accumulator.residual_matrix(series, GRID)
        cold = StreamingSpectrumAccumulator().residual_matrix(series, GRID)
        assert np.array_equal(warm, cold)
        stats = accumulator.stats
        assert stats.cold_builds == 1
        assert stats.extensions == 1
        assert stats.columns_appended == 20

    def test_exact_repeat_is_a_hit(self):
        series = make_series(azimuth=0.4, n=30)
        accumulator = StreamingSpectrumAccumulator()
        first = accumulator.residual_matrix(series, GRID)
        second = accumulator.residual_matrix(series, GRID)
        assert second is first  # the stored matrix, not a rebuild
        assert accumulator.stats.exact_hits == 1
        assert accumulator.stats.cold_builds == 1

    def test_changed_interior_phase_invalidates(self):
        """A quarantined/edited early report breaks the prefix: rebuild."""
        series = make_series(azimuth=0.9, noise_std=0.1, n=30, seed=5)
        tampered = dataclasses.replace(
            series,
            phases=np.concatenate(
                ([series.phases[0], series.phases[1] + 0.5],
                 series.phases[2:])
            ),
        )
        accumulator = StreamingSpectrumAccumulator()
        accumulator.residual_matrix(series, GRID)
        warm = accumulator.residual_matrix(tampered, GRID)
        assert accumulator.stats.invalidations == 1
        assert accumulator.stats.cold_builds == 2
        cold = StreamingSpectrumAccumulator().residual_matrix(tampered, GRID)
        assert np.array_equal(warm, cold)

    def test_shrunk_series_invalidates(self):
        """A pure shrink (same head, fewer snapshots) is not a trim."""
        series = make_series(azimuth=0.9, n=30)
        accumulator = StreamingSpectrumAccumulator()
        accumulator.residual_matrix(series, GRID)
        accumulator.residual_matrix(_prefix(series, 20), GRID)
        assert accumulator.stats.invalidations == 1

    def test_rereferenced_first_snapshot_is_a_new_link(self):
        """Re-referencing moves phases[0], hence the link key: no mixing."""
        series = make_series(azimuth=0.9, n=30)
        shifted = dataclasses.replace(
            series, phases=np.mod(series.phases + 0.25, 2.0 * np.pi)
        )
        accumulator = StreamingSpectrumAccumulator()
        accumulator.residual_matrix(series, GRID)
        accumulator.residual_matrix(shifted, GRID)
        assert accumulator.stats.invalidations == 0
        assert accumulator.stats.cold_builds == 2
        assert len(accumulator) == 2

    def test_lazy_per_grid_catch_up(self):
        """A grid first seen on the prefix catches up lazily and exactly."""
        series = make_series(azimuth=1.7, noise_std=0.05, n=50, seed=8)
        accumulator = StreamingSpectrumAccumulator()
        accumulator.residual_matrix(_prefix(series, 30), GRID)
        accumulator.residual_matrix(_prefix(series, 30), OTHER_GRID)
        warm_a = accumulator.residual_matrix(series, GRID)
        warm_b = accumulator.residual_matrix(series, OTHER_GRID)
        assert np.array_equal(
            warm_a, StreamingSpectrumAccumulator().residual_matrix(series, GRID)
        )
        assert np.array_equal(
            warm_b,
            StreamingSpectrumAccumulator().residual_matrix(series, OTHER_GRID),
        )
        # 20 columns for each grid's matrix, one extension bump (GRID's
        # call grew the stored snapshots; OTHER_GRID's was an exact hit).
        assert accumulator.stats.columns_appended == 40

    def test_eviction_under_link_cap(self):
        accumulator = StreamingSpectrumAccumulator(max_links=1)
        accumulator.residual_matrix(make_series(azimuth=0.3, phase0=0.0), GRID)
        accumulator.residual_matrix(make_series(azimuth=0.3, phase0=1.0), GRID)
        assert len(accumulator) == 1
        assert accumulator.stats.evictions == 1

    def test_clear_counts_invalidations(self):
        accumulator = StreamingSpectrumAccumulator()
        accumulator.residual_matrix(make_series(azimuth=0.3), GRID)
        accumulator.clear()
        assert len(accumulator) == 0
        assert accumulator.stats.invalidations == 1

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            StreamingSpectrumAccumulator(max_links=0)

    @pytest.mark.slow
    @given(
        split=st.integers(12, 58),
        seed=st.integers(0, 50),
        azimuth=st.floats(0.0, 2.0 * np.pi),
    )
    @settings(max_examples=25, deadline=None)
    def test_any_split_point_stays_bit_identical(self, split, seed, azimuth):
        """Property: wherever the batch boundary lands, warm == cold."""
        series = make_series(azimuth=azimuth, noise_std=0.2, n=60, seed=seed)
        accumulator = StreamingSpectrumAccumulator()
        accumulator.residual_matrix(_prefix(series, split), GRID)
        warm = accumulator.residual_matrix(series, GRID)
        cold = StreamingSpectrumAccumulator().residual_matrix(series, GRID)
        assert np.array_equal(warm, cold)


def _trim(series, k):
    """The series a ``max_buffer`` head-trim leaves behind."""
    return dataclasses.replace(
        series, times=series.times[k:], phases=series.phases[k:]
    )


class TestHeadTrimRereference:
    """Ring-buffer head-trims slide the stored matrix; no cold rebuild."""

    def _wrapped_error(self, a, b):
        from repro.core.phase import wrap_phase_signed

        return float(np.max(np.abs(wrap_phase_signed(a - b))))

    def test_trim_rereferences_instead_of_cold_build(self):
        series = make_series(azimuth=1.3, noise_std=0.1, n=60, seed=9)
        accumulator = StreamingSpectrumAccumulator()
        accumulator.residual_matrix(series, GRID)
        trimmed = _trim(series, 15)
        warm = accumulator.residual_matrix(trimmed, GRID)
        cold = StreamingSpectrumAccumulator().residual_matrix(trimmed, GRID)
        assert accumulator.stats.trim_rereferences == 1
        assert accumulator.stats.cold_builds == 1  # only the original
        assert accumulator.stats.invalidations == 0
        assert len(accumulator) == 1  # old link replaced, not duplicated
        assert self._wrapped_error(warm, cold) < 1e-9
        # The new reference column is exactly zero, as in a cold build.
        assert np.all(warm[..., 0] == 0.0)

    def test_trim_plus_append_reuses_and_extends(self):
        """The fleet's steady state: head trimmed AND tail appended."""
        series = make_series(azimuth=0.7, noise_std=0.2, n=80, seed=4)
        accumulator = StreamingSpectrumAccumulator()
        accumulator.residual_matrix(_prefix(series, 60), GRID)
        shifted = _trim(series, 20)  # drops 20 head, appends 20 tail
        warm = accumulator.residual_matrix(shifted, GRID)
        cold = StreamingSpectrumAccumulator().residual_matrix(shifted, GRID)
        assert accumulator.stats.trim_rereferences == 1
        assert accumulator.stats.cold_builds == 1
        assert accumulator.stats.columns_appended == 20
        assert self._wrapped_error(warm, cold) < 1e-9

    def test_trimmed_spectrum_matches_reference_engine(self):
        series = make_series(azimuth=2.0, noise_std=0.1, n=60, seed=6)
        trimmed = _trim(series, 12)
        engine = StreamingEngine()
        engine.azimuth_spectrum(series, GRID, 0.14)
        warm = engine.azimuth_spectrum(trimmed, GRID, 0.14)
        expected = ReferenceEngine().azimuth_spectrum(trimmed, GRID, 0.14)
        assert engine.cache_stats()["streaming"]["trim_rereferences"] == 1
        assert np.allclose(warm.power, expected.power, atol=1e-9)
        assert abs(warm.peak_azimuth - expected.peak_azimuth) < 1e-9

    def test_tampered_overlap_still_rebuilds_cold(self):
        """A trim candidate with an edited overlap must not be adopted."""
        series = make_series(azimuth=1.1, noise_std=0.1, n=40, seed=3)
        accumulator = StreamingSpectrumAccumulator()
        accumulator.residual_matrix(series, GRID)
        tampered = _trim(series, 10)
        phases = tampered.phases.copy()
        phases[5] = np.mod(phases[5] + 0.3, 2.0 * np.pi)
        tampered = dataclasses.replace(tampered, phases=phases)
        accumulator.residual_matrix(tampered, GRID)
        assert accumulator.stats.trim_rereferences == 0
        assert accumulator.stats.cold_builds == 2

    def test_lagging_grid_matrix_dropped_then_lazily_rebuilt(self):
        """A per-grid matrix entirely inside the trimmed head is dropped
        and the lazy path rebuilds it on demand."""
        series = make_series(azimuth=1.9, noise_std=0.05, n=50, seed=2)
        accumulator = StreamingSpectrumAccumulator()
        accumulator.residual_matrix(_prefix(series, 10), OTHER_GRID)
        accumulator.residual_matrix(series, GRID)
        trimmed = _trim(series, 20)  # OTHER_GRID's 10 columns all trimmed
        accumulator.residual_matrix(trimmed, GRID)
        assert accumulator.stats.trim_rereferences == 1
        warm = accumulator.residual_matrix(trimmed, OTHER_GRID)
        cold = StreamingSpectrumAccumulator().residual_matrix(
            trimmed, OTHER_GRID
        )
        assert np.array_equal(warm, cold)  # full lazy rebuild is bit-exact

    @pytest.mark.slow
    @given(
        trim=st.integers(1, 40),
        append=st.integers(0, 19),
        seed=st.integers(0, 30),
    )
    @settings(max_examples=25, deadline=None)
    def test_any_trim_point_stays_within_budget(self, trim, append, seed):
        """Property: wherever the trim lands, sliding == cold rebuild to
        well inside the dense 1e-9 equivalence budget."""
        from repro.core.phase import wrap_phase_signed

        series = make_series(azimuth=0.9, noise_std=0.2, n=60, seed=seed)
        accumulator = StreamingSpectrumAccumulator()
        accumulator.residual_matrix(_prefix(series, 60 - append), GRID)
        shifted = _trim(series, trim)
        warm = accumulator.residual_matrix(shifted, GRID)
        cold = StreamingSpectrumAccumulator().residual_matrix(shifted, GRID)
        assert accumulator.stats.trim_rereferences == 1
        assert float(np.max(np.abs(wrap_phase_signed(warm - cold)))) < 1e-9


class TestStreamingEngine:
    def test_create_engine_resolves_streaming(self):
        engine = create_engine("streaming")
        assert isinstance(engine, StreamingEngine)
        assert engine.name == "streaming"

    def test_spectrum_bit_identical_to_reference(self):
        series = make_series(azimuth=2.2, noise_std=0.1, n=60, seed=4)
        expected = ReferenceEngine().azimuth_spectrum(series, GRID, 0.14)
        engine = StreamingEngine()
        engine.azimuth_spectrum(_prefix(series, 40), GRID, 0.14)
        actual = engine.azimuth_spectrum(series, GRID, 0.14)  # warm append
        assert np.array_equal(actual.power, expected.power)
        assert actual.peak_azimuth == expected.peak_azimuth
        assert actual.peak_power == expected.peak_power
        assert engine.cache_stats()["streaming"]["extensions"] == 1

    def test_invalidate_streams_drops_links(self):
        engine = StreamingEngine()
        engine.azimuth_spectrum(make_series(azimuth=1.0), GRID, 0.14)
        assert engine.cache_stats()["streaming"]["links"] == 1
        engine.invalidate_streams()
        assert engine.cache_stats()["streaming"]["links"] == 0

    def test_joint_delegates_to_base(self):
        from repro.core.spectrum import default_polar_grid

        series = make_series(azimuth=1.0, polar=0.2)
        polars = default_polar_grid(np.deg2rad(6.0))
        expected = ReferenceEngine().joint_spectrum(series, GRID, polars, 0.14)
        actual = StreamingEngine().joint_spectrum(series, GRID, polars, 0.14)
        assert np.array_equal(actual.power, expected.power)


class TestStreamingServer:
    @pytest.fixture(scope="class")
    def collected(self):
        scenario = paper_default_scenario(seed=11)
        batch, _reader = scenario.collect(Point3(0.5, 2.0, 0.0))
        reports = sorted(batch.reports, key=lambda r: r.reader_timestamp_us)
        cut = int(len(reports) * 0.7)
        return scenario, reports[:cut], reports[cut:]

    def test_ingest_locate_cycle_extends_and_matches_reference(
        self, collected
    ):
        scenario, first, second = collected

        streaming = LocalizationServer(
            scenario.scene.registry,
            scenario.config.pipeline,
            engine="streaming",
        )
        streaming.ingest("reader-1", first)
        streaming.locate_antenna_2d("reader-1")  # builds the link states
        streaming.ingest("reader-1", second)
        fix = streaming.locate_antenna_2d("reader-1")  # appends columns

        stats = streaming.system.engine.cache_stats()["streaming"]
        assert stats["extensions"] > 0
        assert stats["columns_appended"] > 0
        assert stats["invalidations"] == 0

        reference = LocalizationServer(
            scenario.scene.registry,
            scenario.config.pipeline,
            engine="reference",
        )
        reference.ingest("reader-1", first + second)
        expected = reference.locate_antenna_2d("reader-1")
        assert fix.position.x == expected.position.x
        assert fix.position.y == expected.position.y
        assert fix.residual == expected.residual

    def test_server_clear_invalidates_streams(self, collected):
        scenario, first, _second = collected
        server = LocalizationServer(
            scenario.scene.registry,
            scenario.config.pipeline,
            engine="streaming",
        )
        server.ingest("reader-1", first)
        server.locate_antenna_2d("reader-1")
        assert server.system.engine.cache_stats()["streaming"]["links"] > 0
        server.clear("reader-1")
        assert server.system.engine.cache_stats()["streaming"]["links"] == 0
