"""Golden wire-fixture regression pins (tests/fixtures/wire).

Three layers of pinning:

* the committed ``.bin`` bytes equal what the committed generator
  rebuilds (generator and fixtures cannot drift apart silently);
* the committed ``.hex`` dumps match the ``.bin`` bytes (the reviewable
  form stays honest);
* decoding the fixtures — object and columnar, whole and re-chunked —
  yields pinned report counts, EPCs and values.

If an intentional wire-format change lands, regenerate with
``PYTHONPATH=src python tests/fixtures/wire/generate_wire.py`` and
commit the drift with the format change.
"""

from __future__ import annotations

import hashlib
import importlib.util
from pathlib import Path

import pytest

from repro.hardware.llrp_stream import StreamingLLRPParser

FIXTURE_DIR = (
    Path(__file__).resolve().parents[1] / "fixtures" / "wire"
)
FIXTURE_NAMES = (
    "clean",
    "multi_batch",
    "vendor_missing",
    "unknown_param",
)

# sha256 of each committed .bin — the hard pin.  Regenerating after an
# intentional format change updates these alongside the fixtures.
PINNED_SHA256 = {
    "clean": (
        "239c15d3b9834d6f6f8f1c940a780005"
        "396a0976a47d69ffd65665c0fe8a8cf4"
    ),
    "multi_batch": (
        "13e5e38002bc5d1a4b7d95a72aa38904"
        "1f1ce97cab6987e56c6471baef865b88"
    ),
    "vendor_missing": (
        "579cc9d11ecfd073edc7105fc85e88e7"
        "6cde6ab8466c0c7408d736a1fc7bec64"
    ),
    "unknown_param": (
        "492bdcfb581b43583c163cfebb2eac62"
        "c5063b58aac06e3f916800633ac14915"
    ),
}


def _load_generator():
    spec = importlib.util.spec_from_file_location(
        "generate_wire", FIXTURE_DIR / "generate_wire.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def _wire(name: str) -> bytes:
    return (FIXTURE_DIR / f"{name}.bin").read_bytes()


class TestFixtureIntegrity:
    @pytest.mark.parametrize("name", FIXTURE_NAMES)
    def test_sha256_pinned(self, name):
        digest = hashlib.sha256(_wire(name)).hexdigest()
        assert digest == PINNED_SHA256[name], (
            f"{name}.bin drifted; if intentional, regenerate fixtures "
            f"and update PINNED_SHA256"
        )

    def test_generator_reproduces_committed_bytes(self):
        generator = _load_generator()
        for name, wire in generator.build_fixtures().items():
            assert wire == _wire(name), f"{name}.bin out of date"

    def test_hexdumps_match_binaries(self):
        generator = _load_generator()
        for name in FIXTURE_NAMES:
            committed = (FIXTURE_DIR / f"{name}.hex").read_text()
            assert committed == generator.hexdump(_wire(name))


class TestFixtureDecodes:
    def test_clean(self):
        parser = StreamingLLRPParser()
        batches = parser.feed(_wire("clean"))
        parser.close()
        assert [mid for mid, _ in batches] == [1, 2]
        assert [len(b) for _, b in batches] == [4, 4]
        first = batches[0][1].reports[0]
        assert first.epc == "E28011606000020600000000"
        assert first.antenna_port == 1
        assert first.reader_timestamp_us == 1_600_000_000_000_000

    def test_multi_batch_skips_keepalives(self):
        parser = StreamingLLRPParser()
        batches = parser.feed(_wire("multi_batch"))
        parser.close()
        assert [mid for mid, _ in batches] == [1, 2, 3]
        assert [len(b) for _, b in batches] == [3, 3, 2]
        assert parser.stats.frames_skipped == 2

    def test_vendor_missing_decodes_with_defaults(self):
        parser = StreamingLLRPParser()
        batches = parser.feed(_wire("vendor_missing"))
        parser.close()
        (entry,) = batches
        _mid, batch = entry
        assert len(batch) == 4
        assert all(r.phase_rad == 0.0 for r in batch.reports)
        assert all(r.host_timestamp_us == 0 for r in batch.reports)

    def test_unknown_param_is_skipped(self):
        parser = StreamingLLRPParser()
        batches = parser.feed(_wire("unknown_param"))
        parser.close()
        (entry,) = batches
        _mid, batch = entry
        assert len(batch) == 3

    @pytest.mark.parametrize("name", FIXTURE_NAMES)
    def test_columnar_differential_on_fixture(self, name):
        wire = _wire(name)
        object_parser = StreamingLLRPParser()
        object_batches = object_parser.feed(wire)
        object_parser.close()
        columnar_parser = StreamingLLRPParser()
        columnar_batches = columnar_parser.feed_columnar(wire)
        columnar_parser.close()
        assert len(object_batches) == len(columnar_batches)
        for (mid_o, batch), (mid_c, cols) in zip(
            object_batches, columnar_batches
        ):
            assert mid_o == mid_c
            assert cols.to_reports() == list(batch.reports)

    @pytest.mark.parametrize("name", FIXTURE_NAMES)
    @pytest.mark.parametrize("chunk", (1, 7, 64))
    def test_chunked_decode_matches_whole(self, name, chunk):
        wire = _wire(name)
        whole = StreamingLLRPParser()
        reference = [
            (mid, list(b.reports)) for mid, b in whole.feed(wire)
        ]
        fragmented = StreamingLLRPParser()
        got = []
        for i in range(0, len(wire), chunk):
            got.extend(
                (mid, list(b.reports))
                for mid, b in fragmented.feed(wire[i : i + chunk])
            )
        assert got == reference
