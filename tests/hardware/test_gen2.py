"""Tests for repro.hardware.gen2."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hardware.gen2 import (
    Gen2Config,
    InventoryEvent,
    expected_read_rate,
    simulate_inventory,
)


def _always(probability: float):
    return lambda epc, t: probability


class TestConfig:
    def test_invalid_q_range(self):
        with pytest.raises(ConfigurationError):
            Gen2Config(initial_q=9, max_q=8)

    def test_invalid_timing(self):
        with pytest.raises(ConfigurationError):
            Gen2Config(slot_duration_s=0.0)


class TestInventory:
    def test_events_within_duration(self, rng):
        result = simulate_inventory(["A", "B"], _always(0.9), 3.0, rng=rng)
        assert all(0.0 <= e.time_s <= 3.0 for e in result.events)

    def test_start_time_offset(self, rng):
        result = simulate_inventory(
            ["A"], _always(0.9), 2.0, rng=rng, start_time_s=100.0
        )
        assert all(100.0 <= e.time_s <= 102.0 for e in result.events)

    def test_timestamps_increase(self, rng):
        result = simulate_inventory(["A", "B", "C"], _always(0.8), 3.0, rng=rng)
        times = [e.time_s for e in result.events]
        assert times == sorted(times)

    def test_zero_probability_no_reads(self, rng):
        result = simulate_inventory(["A", "B"], _always(0.0), 2.0, rng=rng)
        assert result.events == []
        assert result.stats.singletons == 0

    def test_duplicate_epcs_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            simulate_inventory(["A", "A"], _always(0.5), 1.0, rng=rng)

    def test_invalid_duration(self, rng):
        with pytest.raises(ValueError):
            simulate_inventory(["A"], _always(0.5), 0.0, rng=rng)

    def test_stats_accounting(self, rng):
        result = simulate_inventory(
            ["A", "B", "C", "D"], _always(0.7), 5.0, rng=rng
        )
        stats = result.stats
        assert stats.slots == stats.singletons + stats.collisions + stats.empties
        assert stats.rounds > 0
        assert 0.0 < stats.efficiency <= 1.0

    def test_single_tag_never_collides(self, rng):
        result = simulate_inventory(["A"], _always(1.0), 3.0, rng=rng)
        assert result.stats.collisions == 0
        assert result.stats.singletons > 0

    def test_events_for_filters(self, rng):
        result = simulate_inventory(["A", "B"], _always(0.8), 3.0, rng=rng)
        a_events = result.events_for("A")
        assert all(e.epc == "A" for e in a_events)
        assert len(a_events) + len(result.events_for("B")) == len(result.events)

    def test_orientation_dependent_sampling(self, rng):
        """The paper's Fig 4b effect: tags answering with higher probability
        are read more often."""

        def biased(epc, t):
            return 0.9 if epc == "HOT" else 0.25

        result = simulate_inventory(["HOT", "COLD"], biased, 8.0, rng=rng)
        assert len(result.events_for("HOT")) > 1.5 * len(
            result.events_for("COLD")
        )

    def test_q_adapts_to_large_population(self, rng):
        """With 20 tags, an adapted frame keeps efficiency near 1/e."""
        epcs = [f"T{i}" for i in range(20)]
        result = simulate_inventory(epcs, _always(1.0), 10.0, rng=rng)
        assert 0.15 < result.stats.efficiency < 0.55

    def test_read_rate_reasonable(self, rng):
        """Two spinning tags at the default timing give tens of reads/s."""
        result = simulate_inventory(["A", "B"], _always(0.9), 10.0, rng=rng)
        per_tag_rate = len(result.events_for("A")) / 10.0
        assert per_tag_rate > 10.0


def test_expected_read_rate_monotone():
    assert expected_read_rate(1) > expected_read_rate(10)
    with pytest.raises(ValueError):
        expected_read_rate(0)
