"""Byte-level fuzzing of the wire decoders (CI slow job).

The contract under fuzz: any truncation or bit corruption of a valid
frame raises :class:`~repro.errors.ConfigurationError` (usually its
:class:`~repro.errors.WireProtocolError` subtype) or decodes cleanly —
never ``struct.error``, never ``IndexError``, never a hang.  And
whatever the object decoder does on a mangled input, the columnar
decoder does identically: same reports or the same typed error at the
same byte offset.
"""

from __future__ import annotations

import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hardware.llrp import ReportBatch, TagReportData
from repro.hardware.llrp_columnar import decode_ro_access_report_columnar
from repro.hardware.llrp_stream import FrameAccumulator, StreamingLLRPParser
from repro.hardware.llrp_wire import (
    decode_ro_access_report,
    decode_tag_report,
    encode_ro_access_report,
    encode_tag_report,
)

pytestmark = pytest.mark.slow

_FORBIDDEN = (struct.error, IndexError, KeyError, UnicodeError)


def _report(i: int) -> TagReportData:
    return TagReportData(
        epc=f"E20000000000000000{i:06X}",
        antenna_port=1 + i % 4,
        channel_index=1 + i % 16,
        reader_timestamp_us=3_000_000 + 1_009 * i,
        host_timestamp_us=3_000_040 + 1_009 * i,
        phase_rad=(i * 0.7) % 6.28,
        rssi_dbm=-60.0,
    )


def _frame(n: int = 5, message_id: int = 1) -> bytes:
    return encode_ro_access_report(
        ReportBatch([_report(i) for i in range(n)]), message_id
    )


def _decode_outcome(decoder, data: bytes):
    """(reports, None) on success, (None, (message, offset)) on error."""
    try:
        result = decoder(data)
    except ConfigurationError as exc:
        return None, (str(exc), getattr(exc, "offset", None))
    except _FORBIDDEN as exc:  # pragma: no cover - the bug being hunted
        pytest.fail(
            f"{decoder.__name__} leaked {type(exc).__name__}: {exc}"
        )
    _mid, decoded = result
    if hasattr(decoded, "to_reports"):
        return decoded.to_reports(), None
    return list(decoded.reports), None


class TestTruncationEveryOffset:
    def test_frame_truncated_at_every_length(self):
        """Exhaustive: every prefix decodes cleanly or raises typed."""
        frame = _frame(3)
        for cut in range(len(frame)):
            prefix = bytearray(frame[:cut])
            if cut >= 6:
                # Keep the header's length honest so the cut hits the
                # TLV layer, not just the outer length check.
                prefix[2:6] = struct.pack(">I", cut)
            for decoder in (
                decode_ro_access_report,
                decode_ro_access_report_columnar,
            ):
                try:
                    decoder(bytes(prefix))
                except ConfigurationError:
                    pass
                except _FORBIDDEN as exc:  # pragma: no cover
                    pytest.fail(
                        f"cut={cut}: leaked {type(exc).__name__}: {exc}"
                    )

    def test_param_body_truncation_names_parameter(self):
        body = encode_tag_report(_report(0))[4:]
        # Cut inside the AntennaID parameter body (EPC TLV is 16 bytes,
        # AntennaID header 4, so byte 21 is mid-body).
        cut = body[:21]
        patched = bytearray(cut)
        patched[16 + 2 : 16 + 4] = struct.pack(">H", len(cut) - 16)
        with pytest.raises(ConfigurationError, match="AntennaID"):
            decode_tag_report(bytes(patched))

    def test_truncation_differential(self):
        frame = _frame(4)
        for cut in range(10, len(frame)):
            prefix = bytearray(frame[:cut])
            prefix[2:6] = struct.pack(">I", cut)
            data = bytes(prefix)
            object_out = _decode_outcome(decode_ro_access_report, data)
            columnar_out = _decode_outcome(
                decode_ro_access_report_columnar, data
            )
            assert object_out == columnar_out, f"cut={cut}"


class TestBitFlips:
    def test_single_byte_corruption_differential(self):
        """Flip every byte in turn; both decoders must agree."""
        frame = _frame(2)
        for position in range(len(frame)):
            for flip in (0x01, 0x80, 0xFF):
                mutated = bytearray(frame)
                mutated[position] ^= flip
                data = bytes(mutated)
                object_out = _decode_outcome(
                    decode_ro_access_report, data
                )
                columnar_out = _decode_outcome(
                    decode_ro_access_report_columnar, data
                )
                assert object_out == columnar_out, (
                    f"position={position} flip={flip:#x}"
                )

    @given(
        st.integers(min_value=0, max_value=10_000),
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=10_000),
                st.integers(min_value=1, max_value=255),
            ),
            min_size=1,
            max_size=8,
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_random_corruption_never_leaks(self, seed, flips):
        frame = bytearray(_frame(3, message_id=seed % 1000 + 1))
        for position, mask in flips:
            frame[position % len(frame)] ^= mask
        data = bytes(frame)
        object_out = _decode_outcome(decode_ro_access_report, data)
        columnar_out = _decode_outcome(
            decode_ro_access_report_columnar, data
        )
        assert object_out == columnar_out

    @given(st.binary(min_size=0, max_size=400))
    @settings(max_examples=150, deadline=None)
    def test_pure_garbage_never_leaks(self, blob):
        _decode_outcome(decode_ro_access_report, blob)
        _decode_outcome(decode_ro_access_report_columnar, blob)


class TestStreamFuzz:
    def test_accumulator_survives_corrupted_stream(self):
        """Bit-flipped stream in resync mode: terminates, stays typed."""
        wire = bytearray(_frame(4) + _frame(4, message_id=2))
        rng = np.random.default_rng(11)
        for position in rng.integers(0, len(wire), size=20):
            wire[position] ^= int(rng.integers(1, 256))
        acc = FrameAccumulator(on_error="resync")
        try:
            for i in range(0, len(wire), 13):
                acc.feed(bytes(wire[i : i + 13]))
            acc.close()
        except _FORBIDDEN as exc:  # pragma: no cover
            pytest.fail(f"leaked {type(exc).__name__}: {exc}")
        assert acc.stats.bytes_fed == len(wire)

    def test_parser_raise_mode_is_typed(self):
        wire = bytearray(_frame(2))
        wire[0] = 0xFF  # destroy the version bits
        parser = StreamingLLRPParser(on_error="raise")
        with pytest.raises(ConfigurationError):
            parser.feed(bytes(wire))

    @given(
        st.binary(min_size=0, max_size=300),
        st.integers(min_value=1, max_value=50),
    )
    @settings(max_examples=100, deadline=None)
    def test_garbage_streams_terminate(self, blob, chunk_size):
        acc = FrameAccumulator(on_error="resync")
        for i in range(0, len(blob), chunk_size):
            acc.feed(blob[i : i + chunk_size])
        acc.close()
        assert acc.stats.bytes_fed == len(blob)
