"""Property tests of the wire path (hypothesis; CI slow job).

Two invariants the streaming ingest stack is built on:

* **round-trip** — encode→decode preserves every field exactly except
  phase and RSSI, which are quantized with documented bounds
  (phase within ``pi / PHASE_UNITS``, RSSI to whole dBm);
* **chunking invariance** — feeding a byte stream through
  :class:`FrameAccumulator` split at *any* fragmentation yields the
  identical frame sequence, with or without embedded garbage (resync).
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware.llrp import ReportBatch, TagReportData
from repro.hardware.llrp_columnar import decode_ro_access_report_columnar
from repro.hardware.llrp_stream import FrameAccumulator, StreamingLLRPParser
from repro.hardware.llrp_wire import (
    PHASE_UNITS,
    decode_phase,
    decode_ro_access_report,
    encode_phase,
    encode_ro_access_report,
)

pytestmark = pytest.mark.slow


def _epcs() -> st.SearchStrategy[str]:
    return st.binary(min_size=12, max_size=12).map(
        lambda b: b.hex().upper()
    )


def _reports() -> st.SearchStrategy[TagReportData]:
    return st.builds(
        TagReportData,
        epc=_epcs(),
        antenna_port=st.integers(min_value=0, max_value=0xFFFF),
        channel_index=st.integers(min_value=0, max_value=0xFFFF),
        reader_timestamp_us=st.integers(min_value=0, max_value=2**63 - 1),
        host_timestamp_us=st.integers(min_value=0, max_value=2**63 - 1),
        phase_rad=st.floats(
            min_value=-100.0, max_value=100.0, allow_nan=False
        ),
        rssi_dbm=st.floats(
            min_value=-128.0, max_value=127.0, allow_nan=False
        ).map(lambda v: float(int(v))),
    )


def _batches(max_size: int = 20) -> st.SearchStrategy[ReportBatch]:
    return st.lists(_reports(), min_size=0, max_size=max_size).map(
        ReportBatch
    )


def _split_at(wire: bytes, cuts) -> list:
    chunks = []
    last = 0
    for cut in sorted(cut % (len(wire) + 1) for cut in cuts):
        chunks.append(wire[last:cut])
        last = cut
    chunks.append(wire[last:])
    return chunks


class TestRoundTripProperties:
    @given(st.floats(min_value=-1000.0, max_value=1000.0, allow_nan=False))
    @settings(max_examples=200, deadline=None)
    def test_phase_quantization_bound(self, phase):
        recovered = decode_phase(encode_phase(phase))
        error = abs(math.remainder(recovered - phase, 2 * math.pi))
        assert error <= math.pi / PHASE_UNITS + 1e-12

    @given(_batches())
    @settings(max_examples=60, deadline=None)
    def test_batch_round_trip_within_quantization(self, batch):
        frame = encode_ro_access_report(batch, message_id=5)
        mid, decoded = decode_ro_access_report(frame)
        assert mid == 5
        assert len(decoded) == len(batch)
        for original, got in zip(batch.reports, decoded.reports):
            assert got.epc == original.epc
            assert got.antenna_port == original.antenna_port
            assert got.channel_index == original.channel_index
            assert got.reader_timestamp_us == original.reader_timestamp_us
            assert got.host_timestamp_us == original.host_timestamp_us
            assert got.rssi_dbm == original.rssi_dbm
            error = abs(
                math.remainder(
                    got.phase_rad - original.phase_rad, 2 * math.pi
                )
            )
            assert error <= math.pi / PHASE_UNITS + 1e-12

    @given(_batches())
    @settings(max_examples=60, deadline=None)
    def test_columnar_differential_on_random_batches(self, batch):
        frame = encode_ro_access_report(batch, message_id=2)
        _mid, expect = decode_ro_access_report(frame)
        _mid, cols = decode_ro_access_report_columnar(frame)
        assert cols.to_reports() == list(expect.reports)


class TestChunkingInvariance:
    @given(
        st.lists(_batches(max_size=6), min_size=1, max_size=5),
        st.lists(
            st.integers(min_value=0, max_value=10_000),
            min_size=0,
            max_size=40,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_frame_sequence_invariant(self, batches, cuts):
        frames = [
            encode_ro_access_report(batch, message_id=i + 1)
            for i, batch in enumerate(batches)
        ]
        wire = b"".join(frames)
        whole = FrameAccumulator()
        reference = whole.feed(wire)
        assert reference == frames

        fragmented = FrameAccumulator()
        got = []
        for chunk in _split_at(wire, cuts):
            got.extend(fragmented.feed(chunk))
        assert got == reference

    @given(
        st.lists(_batches(max_size=4), min_size=1, max_size=4),
        st.binary(min_size=1, max_size=60),
        st.lists(
            st.integers(min_value=0, max_value=10_000),
            min_size=0,
            max_size=30,
        ),
    )
    @settings(max_examples=60, deadline=None)
    def test_resync_sequence_invariant(self, batches, garbage, cuts):
        """Even with leading garbage the frame sequence is stable."""
        frames = [
            encode_ro_access_report(batch, message_id=i + 1)
            for i, batch in enumerate(batches)
        ]
        wire = garbage + b"".join(frames)
        whole = FrameAccumulator(on_error="resync")
        reference = whole.feed(wire)
        whole.close()

        fragmented = FrameAccumulator(on_error="resync")
        got = []
        for chunk in _split_at(wire, cuts):
            got.extend(fragmented.feed(chunk))
        fragmented.close()
        assert got == reference
        # Real frames after the garbage must all be recovered whenever
        # the garbage cannot alias a frame header that swallows them.
        assert len(reference) <= len(frames)

    @given(
        st.lists(_batches(max_size=5), min_size=1, max_size=4),
        st.lists(
            st.integers(min_value=0, max_value=10_000),
            min_size=0,
            max_size=30,
        ),
    )
    @settings(max_examples=40, deadline=None)
    def test_parser_batches_invariant(self, batches, cuts):
        frames = [
            encode_ro_access_report(batch, message_id=i + 1)
            for i, batch in enumerate(batches)
        ]
        wire = b"".join(frames)
        whole = StreamingLLRPParser()
        reference = [
            (mid, cols.to_reports())
            for mid, cols in whole.feed_columnar(wire)
        ]
        fragmented = StreamingLLRPParser()
        got = []
        for chunk in _split_at(wire, cuts):
            got.extend(
                (mid, cols.to_reports())
                for mid, cols in fragmented.feed_columnar(chunk)
            )
        assert got == reference
