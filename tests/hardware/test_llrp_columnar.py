"""Tests for repro.hardware.llrp_columnar (struct-of-arrays decode)."""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.errors import WireProtocolError
from repro.hardware.llrp import ReportBatch, TagReportData
from repro.hardware.llrp_columnar import (
    REGULAR_RECORD_BYTES,
    ColumnarReportBatch,
    decode_ro_access_report_columnar,
)
from repro.hardware.llrp_wire import (
    decode_ro_access_report,
    encode_ro_access_report,
    encode_tag_report,
)


def _report(i: int, **overrides) -> TagReportData:
    defaults = dict(
        epc=f"E20000000000000000{i:06X}",
        antenna_port=1 + i % 4,
        channel_index=1 + i % 16,
        reader_timestamp_us=2_000_000 + 997 * i,
        host_timestamp_us=2_000_040 + 997 * i,
        phase_rad=(i * 0.61) % 6.28,
        rssi_dbm=-70.0 + (i % 30),
    )
    defaults.update(overrides)
    return TagReportData(**defaults)


def _frame(reports, message_id: int = 1) -> bytes:
    return encode_ro_access_report(ReportBatch(list(reports)), message_id)


def _strip_custom(frame: bytes) -> bytes:
    """Remove each report's Custom parameter (vendor extension)."""
    body = frame[10:]
    out = []
    offset = 0
    while offset < len(body):
        _ptype, length = struct.unpack_from(">HH", body, offset)
        record = body[offset : offset + length]
        # Custom param is the trailing 22 bytes of the canonical record.
        inner = record[4:]
        kept = b""
        ioff = 0
        while ioff < len(inner):
            itype, ilen = struct.unpack_from(">HH", inner, ioff)
            if itype != 1023:
                kept += inner[ioff : ioff + ilen]
            ioff += ilen
        out.append(struct.pack(">HH", 240, 4 + len(kept)) + kept)
        offset += length
    new_body = b"".join(out)
    header = struct.pack(
        ">HII",
        struct.unpack_from(">H", frame, 0)[0],
        10 + len(new_body),
        struct.unpack_from(">I", frame, 6)[0],
    )
    return header + new_body


class TestFastPath:
    def test_record_size_is_canonical(self):
        assert len(encode_tag_report(_report(0))) == REGULAR_RECORD_BYTES

    def test_differential_identity(self):
        frame = _frame([_report(i) for i in range(120)])
        _mid, expect = decode_ro_access_report(frame)
        _mid, cols = decode_ro_access_report_columnar(frame)
        assert cols.to_reports() == list(expect.reports)

    def test_phase_bit_identical(self):
        frame = _frame([_report(i) for i in range(64)])
        _mid, expect = decode_ro_access_report(frame)
        _mid, cols = decode_ro_access_report_columnar(frame)
        expected = np.array([r.phase_rad for r in expect.reports])
        assert np.array_equal(cols.phase_rad, expected)

    def test_epc_table_dedups(self):
        reports = [
            _report(i, epc="E2000000000000000000AB00") for i in range(10)
        ] + [_report(i, epc="E2000000000000000000CD01") for i in range(5)]
        _mid, cols = decode_ro_access_report_columnar(_frame(reports))
        assert len(cols.epcs) == 2
        # Trailing 0x00 in the EPC must survive the byte plumbing.
        assert cols.epcs[0] == "E2000000000000000000AB00"
        assert cols.epc_index.tolist() == [0] * 10 + [1] * 5

    def test_message_id_passthrough(self):
        mid, _cols = decode_ro_access_report_columnar(
            _frame([_report(0)], message_id=77)
        )
        assert mid == 77

    def test_empty_frame(self):
        _mid, cols = decode_ro_access_report_columnar(_frame([]))
        assert len(cols) == 0
        assert cols.to_reports() == []


class TestGeneralPath:
    def test_vendor_extension_missing(self):
        frame = _strip_custom(_frame([_report(i) for i in range(8)]))
        _mid, expect = decode_ro_access_report(frame)
        _mid, cols = decode_ro_access_report_columnar(frame)
        assert cols.to_reports() == list(expect.reports)
        assert all(r.phase_rad == 0.0 for r in cols.to_reports())

    def test_mixed_regular_and_alien_param(self):
        base = _frame([_report(i) for i in range(4)])
        # Append an unknown top-level parameter: length stays honest, so
        # both decoders must skip it identically (general path).
        alien = struct.pack(">HH", 500, 8) + b"\xaa\xbb\xcc\xdd"
        frame = (
            base[:2]
            + struct.pack(">I", len(base) + len(alien))
            + base[6:]
            + alien
        )
        _mid, expect = decode_ro_access_report(frame)
        _mid, cols = decode_ro_access_report_columnar(frame)
        assert cols.to_reports() == list(expect.reports)

    def test_errors_match_object_path(self):
        frame = bytearray(_frame([_report(0)]))
        frame[-1:] = b""  # truncate one byte; keep header length honest
        frame[2:6] = struct.pack(">I", len(frame))
        object_error = columnar_error = None
        try:
            decode_ro_access_report(bytes(frame))
        except WireProtocolError as exc:
            object_error = (str(exc), exc.offset)
        try:
            decode_ro_access_report_columnar(bytes(frame))
        except WireProtocolError as exc:
            columnar_error = (str(exc), exc.offset)
        assert object_error is not None
        assert columnar_error == object_error

    def test_wrong_message_type_rejected(self):
        keepalive = struct.pack(">HII", (1 << 10) | 62, 10, 1)
        with pytest.raises(WireProtocolError, match="RO_ACCESS_REPORT"):
            decode_ro_access_report_columnar(keepalive)


class TestColumnarBatchOps:
    def test_from_reports_round_trip(self):
        reports = [_report(i) for i in range(30)]
        cols = ColumnarReportBatch.from_reports(reports)
        assert cols.to_reports() == reports

    def test_select_mask(self):
        reports = [_report(i) for i in range(10)]
        cols = ColumnarReportBatch.from_reports(reports)
        mask = np.asarray(cols.antenna_port == 2)
        picked = cols.select(mask)
        assert picked.to_reports() == [
            r for r in reports if r.antenna_port == 2
        ]

    def test_antenna_ports_first_appearance(self):
        reports = [
            _report(0, antenna_port=3),
            _report(1, antenna_port=1),
            _report(2, antenna_port=3),
            _report(3, antenna_port=2),
        ]
        cols = ColumnarReportBatch.from_reports(reports)
        assert cols.antenna_ports() == [3, 1, 2]

    def test_shape_validation(self):
        cols = ColumnarReportBatch.from_reports([_report(0)])
        with pytest.raises(ValueError, match="shape"):
            ColumnarReportBatch(
                epcs=cols.epcs,
                epc_index=cols.epc_index,
                antenna_port=np.empty(3, dtype=np.int64),
                channel_index=cols.channel_index,
                reader_timestamp_us=cols.reader_timestamp_us,
                host_timestamp_us=cols.host_timestamp_us,
                phase_rad=cols.phase_rad,
                rssi_dbm=cols.rssi_dbm,
            )
