"""Tests for repro.hardware.tags."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hardware.tags import (
    DEFAULT_MODEL_KEY,
    TABLE_I,
    get_model,
    make_epc,
    make_tag,
    make_tags,
    synthesize_orientation_profile,
)


class TestTableI:
    def test_five_models(self):
        assert len(TABLE_I) == 5

    def test_all_alien(self):
        assert all(m.company == "Alien" for m in TABLE_I.values())

    def test_default_model_exists(self):
        assert DEFAULT_MODEL_KEY in TABLE_I

    def test_lookup_case_insensitive(self):
        assert get_model("SQUIG") is TABLE_I["squig"]

    def test_unknown_model_raises(self):
        with pytest.raises(ConfigurationError):
            get_model("nonexistent")

    def test_orientation_pp_near_paper_value(self):
        """The fleet-average fluctuation should sit near the paper's 0.7 rad."""
        mean_pp = np.mean([m.orientation_pp_rad for m in TABLE_I.values()])
        assert 0.6 < mean_pp < 0.8


class TestEpcs:
    def test_unique(self):
        epcs = {make_epc() for _ in range(200)}
        assert len(epcs) == 200

    def test_format(self):
        epc = make_epc()
        assert epc.startswith("E200")
        assert len(epc) == 24
        int(epc, 16)  # valid hex


class TestOrientationProfiles:
    def test_peak_to_peak_matches_model(self, rng):
        model = get_model("squiggle")
        profile = synthesize_orientation_profile(model, rng)
        assert profile.series.peak_to_peak() == pytest.approx(
            model.orientation_pp_rad, rel=1e-6
        )

    def test_individuals_differ(self, rng):
        model = get_model("squiggle")
        a = synthesize_orientation_profile(model, rng)
        b = synthesize_orientation_profile(model, rng)
        grid = np.linspace(0, 2 * np.pi, 64)
        assert not np.allclose(a.offset(grid), b.offset(grid))


class TestTagInstances:
    def test_make_tag_fields(self, rng):
        tag = make_tag("short", rng)
        assert tag.model.name == "Short"
        assert 0.0 <= tag.diversity_rad < 2 * np.pi

    def test_effective_gain_range(self, rng):
        tag = make_tag(rng=rng)
        for rho in np.linspace(0, 2 * np.pi, 32):
            gain = tag.effective_gain(rho)
            assert tag.model.gain_floor - 1e-9 <= gain <= 1.0 + 1e-9

    def test_effective_gain_peaks_perpendicular(self, rng):
        tag = make_tag(rng=rng)
        assert tag.effective_gain(np.pi / 2) == pytest.approx(1.0)
        assert tag.effective_gain(0.0) == pytest.approx(tag.model.gain_floor)

    def test_make_tags_count_and_unique_epcs(self, rng):
        tags = make_tags(8, "square", rng)
        assert len(tags) == 8
        assert len({t.epc for t in tags}) == 8

    def test_make_tags_invalid_count(self, rng):
        with pytest.raises(ValueError):
            make_tags(0, rng=rng)
