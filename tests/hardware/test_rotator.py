"""Tests for repro.hardware.rotator."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.geometry import Point3
from repro.errors import ConfigurationError
from repro.hardware.rotator import (
    Mount,
    SpinningDisk,
    horizontal_disk,
    vertical_disk,
)


@pytest.fixture
def disk() -> SpinningDisk:
    return horizontal_disk(Point3(0.1, 0.0, 0.0), 0.10, 1.0)


class TestConstruction:
    def test_invalid_radius(self):
        with pytest.raises(ConfigurationError):
            horizontal_disk(Point3(0, 0, 0), 0.0, 1.0)

    def test_invalid_speed(self):
        with pytest.raises(ConfigurationError):
            horizontal_disk(Point3(0, 0, 0), 0.1, 0.0)

    def test_non_orthogonal_basis(self):
        with pytest.raises(ConfigurationError):
            SpinningDisk(
                Point3(0, 0, 0), 0.1, 1.0,
                basis_u=(1, 0, 0), basis_v=(1, 1, 0),
            )

    def test_basis_normalized(self):
        disk = SpinningDisk(
            Point3(0, 0, 0), 0.1, 1.0,
            basis_u=(2.0, 0, 0), basis_v=(0, 3.0, 0),
        )
        assert np.allclose(disk.basis_u, (1, 0, 0))
        assert np.allclose(disk.basis_v, (0, 1, 0))

    def test_period(self, disk):
        assert disk.period == pytest.approx(2 * math.pi)

    def test_is_horizontal(self, disk):
        assert disk.is_horizontal
        assert not vertical_disk(Point3(0, 0, 0), 0.1, 1.0).is_horizontal


class TestKinematics:
    def test_center_mount_stays_put(self, disk):
        center_disk = disk.with_mount(Mount.CENTER)
        for t in np.linspace(0, 10, 7):
            assert center_disk.tag_position(t) == disk.center

    def test_edge_mount_on_circle(self, disk):
        for t in np.linspace(0, 10, 13):
            position = disk.tag_position(t)
            assert disk.center.distance_to(position) == pytest.approx(0.10)
            assert position.z == pytest.approx(disk.center.z)

    def test_position_at_time_zero(self):
        disk = horizontal_disk(Point3(0, 0, 0), 0.1, 1.0, phase0=0.0)
        position = disk.tag_position(0.0)
        assert position.x == pytest.approx(0.1)
        assert position.y == pytest.approx(0.0)

    def test_phase0_rotates_start(self):
        disk = horizontal_disk(Point3(0, 0, 0), 0.1, 1.0, phase0=math.pi / 2)
        position = disk.tag_position(0.0)
        assert position.x == pytest.approx(0.0, abs=1e-12)
        assert position.y == pytest.approx(0.1)

    def test_vectorized_positions_match_scalar(self, disk):
        times = np.linspace(0, 5, 20)
        stacked = disk.tag_positions(times)
        for i, t in enumerate(times):
            assert np.allclose(stacked[i], disk.tag_position(t).as_array())

    def test_periodicity(self, disk):
        a = disk.tag_position(1.0)
        b = disk.tag_position(1.0 + disk.period)
        assert a.distance_to(b) < 1e-9

    def test_negative_speed_reverses(self):
        forward = horizontal_disk(Point3(0, 0, 0), 0.1, 1.0)
        backward = horizontal_disk(Point3(0, 0, 0), 0.1, -1.0)
        t = 0.5
        assert forward.tag_position(t).y == pytest.approx(
            -backward.tag_position(t).y
        )

    def test_vertical_disk_spans_z(self):
        disk = vertical_disk(Point3(0, 0, 0.5), 0.1, 1.0)
        quarter = disk.period / 4.0
        assert disk.tag_position(quarter).z == pytest.approx(0.6, abs=1e-9)
        assert disk.tag_position(3 * quarter).z == pytest.approx(0.4, abs=1e-9)
        zs = disk.tag_positions(np.linspace(0, disk.period, 100))[:, 2]
        assert np.all(zs <= 0.6 + 1e-9)
        assert np.all(zs >= 0.4 - 1e-9)

    @given(
        st.floats(min_value=0.0, max_value=20.0),
        st.floats(min_value=0.02, max_value=0.3),
        st.floats(min_value=0.2, max_value=5.0),
    )
    @settings(max_examples=30)
    def test_tag_always_on_track(self, t, radius, omega):
        disk = horizontal_disk(Point3(0.3, -0.2, 0.1), radius, omega)
        assert disk.center.distance_to(
            disk.tag_position(t)
        ) == pytest.approx(radius, rel=1e-9)


class TestOrientation:
    def test_orientation_definition(self):
        """rho = disk angle - bearing toward the reader."""
        disk = horizontal_disk(Point3(0, 0, 0), 0.1, 1.0, phase0=0.0)
        reader = Point3(0.0, 5.0, 0.0)  # nearly due north of the tag
        rho = disk.tag_orientation(0.0, reader)
        bearing = math.atan2(5.0, -0.1)
        assert rho == pytest.approx((0.0 - bearing) % (2 * math.pi))

    def test_orientations_vectorized(self, disk):
        reader = Point3(0.4, 2.0, 0.0)
        times = np.linspace(0, 5, 25)
        stacked = disk.tag_orientations(times, reader)
        for i, t in enumerate(times):
            assert stacked[i] == pytest.approx(
                disk.tag_orientation(t, reader), abs=1e-9
            )

    def test_orientation_advances_with_disk(self, disk):
        """Over one rotation the orientation sweeps ~2*pi (far reader)."""
        reader = Point3(0.0, 50.0, 0.0)
        rhos = disk.tag_orientations(
            np.linspace(0, disk.period, 200, endpoint=False), reader
        )
        unwrapped = np.unwrap(rhos)
        assert unwrapped[-1] - unwrapped[0] == pytest.approx(
            2 * math.pi, rel=0.05
        )

    def test_with_mount_preserves_geometry(self, disk):
        center = disk.with_mount(Mount.CENTER)
        assert center.center == disk.center
        assert center.radius == disk.radius
        assert center.mount is Mount.CENTER
        assert disk.mount is Mount.EDGE
