"""Tests for repro.hardware.llrp_wire (binary LLRP framing)."""

from __future__ import annotations

import math
import struct

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.hardware.llrp import ReportBatch, TagReportData
from repro.hardware.llrp_wire import (
    MSG_RO_ACCESS_REPORT,
    PHASE_UNITS,
    decode_phase,
    decode_ro_access_report,
    decode_tag_report,
    encode_phase,
    encode_ro_access_report,
    encode_tag_report,
    split_stream,
)


def _report(**overrides) -> TagReportData:
    defaults = dict(
        epc="E2000000000000000000ABCD",
        antenna_port=3,
        channel_index=11,
        reader_timestamp_us=1_234_567_890,
        host_timestamp_us=1_234_587_890,
        phase_rad=2.718,
        rssi_dbm=-57.0,
    )
    defaults.update(overrides)
    return TagReportData(**defaults)


class TestPhaseQuantization:
    def test_roundtrip_within_quantum(self):
        for phase in np.linspace(0, 2 * math.pi, 50, endpoint=False):
            recovered = decode_phase(encode_phase(float(phase)))
            error = abs(
                math.remainder(recovered - phase, 2 * math.pi)
            )
            assert error <= math.pi / PHASE_UNITS + 1e-12

    @given(st.floats(min_value=-50.0, max_value=50.0))
    @settings(max_examples=50)
    def test_decode_always_in_range(self, phase):
        recovered = decode_phase(encode_phase(phase))
        assert 0.0 <= recovered < 2 * math.pi

    def test_units_wrap(self):
        assert encode_phase(2 * math.pi) == 0


class TestTagReportRoundTrip:
    def test_roundtrip_fields(self):
        report = _report()
        encoded = encode_tag_report(report)
        param_type, length = struct.unpack_from(">HH", encoded, 0)
        assert param_type == 240
        assert length == len(encoded)
        decoded = decode_tag_report(encoded[4:])
        assert decoded.epc == report.epc
        assert decoded.antenna_port == report.antenna_port
        assert decoded.channel_index == report.channel_index
        assert decoded.reader_timestamp_us == report.reader_timestamp_us
        assert decoded.host_timestamp_us == report.host_timestamp_us

    def test_quantization_bounds(self):
        report = _report(phase_rad=1.23456, rssi_dbm=-57.4)
        decoded = decode_tag_report(encode_tag_report(report)[4:])
        assert decoded.phase_rad == pytest.approx(
            1.23456, abs=2 * math.pi / PHASE_UNITS
        )
        assert decoded.rssi_dbm == -57.0  # whole-dBm signed byte

    def test_rssi_clamped(self):
        decoded = decode_tag_report(
            encode_tag_report(_report(rssi_dbm=-200.0))[4:]
        )
        assert decoded.rssi_dbm == -128.0

    def test_bad_epc_rejected(self):
        with pytest.raises(ConfigurationError):
            encode_tag_report(_report(epc="ABCD"))

    def test_missing_epc_rejected(self):
        with pytest.raises(ConfigurationError):
            decode_tag_report(b"")


class TestMessageFraming:
    def test_message_roundtrip(self):
        batch = ReportBatch([_report(), _report(antenna_port=1, phase_rad=0.5)])
        frame = encode_ro_access_report(batch, message_id=42)
        message_id, decoded = decode_ro_access_report(frame)
        assert message_id == 42
        assert len(decoded) == 2
        assert decoded.reports[0].epc == batch.reports[0].epc

    def test_header_fields(self):
        frame = encode_ro_access_report(ReportBatch([]), message_id=7)
        header_word, length, message_id = struct.unpack_from(">HII", frame, 0)
        assert header_word & 0x3FF == MSG_RO_ACCESS_REPORT
        assert length == len(frame) == 10
        assert message_id == 7

    def test_truncated_rejected(self):
        frame = encode_ro_access_report(ReportBatch([_report()]))
        with pytest.raises(ConfigurationError):
            decode_ro_access_report(frame[:-3])

    def test_wrong_type_rejected(self):
        frame = bytearray(encode_ro_access_report(ReportBatch([])))
        header_word = (1 << 10) | 99  # some other message type
        frame[0:2] = struct.pack(">H", header_word)
        with pytest.raises(ConfigurationError):
            decode_ro_access_report(bytes(frame))

    def test_split_stream(self):
        a = encode_ro_access_report(ReportBatch([_report()]), message_id=1)
        b = encode_ro_access_report(
            ReportBatch([_report(antenna_port=2)]), message_id=2
        )
        frames = split_stream(a + b)
        assert len(frames) == 2
        assert decode_ro_access_report(frames[1])[0] == 2

    def test_split_stream_trailing_garbage(self):
        a = encode_ro_access_report(ReportBatch([]))
        with pytest.raises(ConfigurationError):
            split_stream(a + b"\x00\x01")

    def test_simulator_batch_survives_wire(self, calibrated_scenario_2d):
        """End-to-end: a simulated collection shipped over the wire still
        localizes (phase quantization is far below the noise floor)."""
        from repro.core.geometry import Point3

        scenario = calibrated_scenario_2d
        batch, reader = scenario.collect(Point3(0.4, 1.9, 0.0))
        frame = encode_ro_access_report(batch)
        _mid, decoded = decode_ro_access_report(frame)
        fix = scenario.system.locate_2d(decoded, 1)
        truth = reader.antenna(1).position.horizontal()
        assert fix.position.distance_to(truth) < 0.15
