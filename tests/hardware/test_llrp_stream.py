"""Tests for repro.hardware.llrp_stream (frame reassembly)."""

from __future__ import annotations

import struct

import numpy as np
import pytest

from repro.errors import ConfigurationError, WireProtocolError
from repro.hardware.llrp import ReportBatch, TagReportData
from repro.hardware.llrp_stream import (
    FrameAccumulator,
    StreamingLLRPParser,
)
from repro.hardware.llrp_wire import encode_ro_access_report


def _report(i: int, **overrides) -> TagReportData:
    defaults = dict(
        epc=f"E20000000000000000{i:06X}",
        antenna_port=1 + i % 4,
        channel_index=1 + i % 16,
        reader_timestamp_us=1_000_000 + 1_000 * i,
        host_timestamp_us=1_000_040 + 1_000 * i,
        phase_rad=(i * 0.37) % 6.28,
        rssi_dbm=-60.0 + (i % 20),
    )
    defaults.update(overrides)
    return TagReportData(**defaults)


def _frames(count: int, per_frame: int = 5) -> list:
    return [
        encode_ro_access_report(
            ReportBatch(
                [_report(f * per_frame + i) for i in range(per_frame)]
            ),
            message_id=f + 1,
        )
        for f in range(count)
    ]


def _keepalive(message_id: int = 9) -> bytes:
    # Type 62 (KEEPALIVE) header-only frame: valid framing, not decoded.
    return struct.pack(">HII", (1 << 10) | 62, 10, message_id)


class TestFrameAccumulator:
    def test_whole_frames_pass_through(self):
        frames = _frames(3)
        acc = FrameAccumulator()
        out = []
        for frame in frames:
            out.extend(acc.feed(frame))
        assert out == frames
        assert acc.pending_bytes == 0
        assert acc.stats.frames == 3

    def test_byte_at_a_time(self):
        frames = _frames(2)
        wire = b"".join(frames)
        acc = FrameAccumulator()
        out = []
        for i in range(len(wire)):
            out.extend(acc.feed(wire[i : i + 1]))
        assert out == frames

    def test_many_frames_in_one_chunk(self):
        frames = _frames(4)
        acc = FrameAccumulator()
        assert acc.feed(b"".join(frames)) == frames

    def test_split_inside_header(self):
        frames = _frames(1)
        wire = frames[0]
        acc = FrameAccumulator()
        assert acc.feed(wire[:4]) == []
        assert acc.pending_bytes == 4
        assert acc.feed(wire[4:]) == frames

    def test_random_chunking_matches_whole(self):
        frames = _frames(6, per_frame=3)
        wire = b"".join(frames)
        rng = np.random.default_rng(7)
        for _ in range(10):
            cuts = sorted(
                rng.integers(0, len(wire), size=12).tolist()
            )
            acc = FrameAccumulator()
            out = []
            last = 0
            for cut in cuts + [len(wire)]:
                out.extend(acc.feed(wire[last:cut]))
                last = cut
            assert out == frames

    def test_stream_offset_advances(self):
        frames = _frames(2)
        acc = FrameAccumulator()
        acc.feed(b"".join(frames))
        assert acc.stream_offset == sum(len(f) for f in frames)

    def test_bad_version_raises_with_offset(self):
        good = _frames(1)[0]
        bad = struct.pack(">HII", 0x7FFF, 20, 1) + b"\x00" * 10
        acc = FrameAccumulator()
        acc.feed(good)
        with pytest.raises(WireProtocolError) as excinfo:
            acc.feed(bad)
        assert excinfo.value.offset == len(good)
        assert str(len(good)) in str(excinfo.value)

    def test_oversized_length_raises(self):
        acc = FrameAccumulator(max_frame_bytes=1024)
        huge = struct.pack(">HII", (1 << 10) | 61, 40_000, 1)
        with pytest.raises(WireProtocolError, match="frame cap"):
            acc.feed(huge)

    def test_close_mid_frame_raises(self):
        frames = _frames(1)
        acc = FrameAccumulator()
        acc.feed(frames[0][:-3])
        with pytest.raises(WireProtocolError, match="mid-frame"):
            acc.close()

    def test_close_clean_is_silent(self):
        acc = FrameAccumulator()
        acc.feed(_frames(1)[0])
        acc.close()

    def test_never_raises_struct_error(self):
        acc = FrameAccumulator()
        with pytest.raises((WireProtocolError, ConfigurationError)):
            try:
                acc.feed(b"\xff" * 64)
                acc.close()
            except struct.error:  # pragma: no cover
                pytest.fail("leaked struct.error")

    def test_rejects_bad_policy(self):
        with pytest.raises(ConfigurationError):
            FrameAccumulator(on_error="ignore")
        with pytest.raises(ConfigurationError):
            FrameAccumulator(max_frame_bytes=2)


class TestResync:
    def test_recovers_after_garbage(self):
        frames = _frames(2)
        garbage = b"\xde\xad\xbe\xef" * 9 + b"\x01"
        acc = FrameAccumulator(on_error="resync")
        out = acc.feed(garbage + frames[0] + frames[1])
        assert out == frames
        assert acc.stats.resyncs >= 1
        assert acc.stats.bytes_skipped == len(garbage)

    def test_corrupt_frame_between_good_ones(self):
        frames = _frames(3)
        # Mangle the middle frame's version bits so its header is
        # implausible; the corrupted frame must never be emitted, and
        # the stream keeps terminating (resync may swallow trailing
        # frames when garbage aliases a plausible header — that is the
        # documented cost of the weak plausibility predicate).
        corrupted = b"\x00" + frames[1][1:]
        acc = FrameAccumulator(on_error="resync")
        out = acc.feed(frames[0] + corrupted + frames[2])
        acc.close()
        assert out[0] == frames[0]
        assert corrupted not in out
        assert acc.stats.resyncs >= 1

    def test_resync_counts_bytes(self):
        acc = FrameAccumulator(on_error="resync")
        acc.feed(b"\x00" * 40)
        acc.close()
        assert acc.stats.bytes_skipped == 40

    def test_close_in_resync_mode_swallows_tail(self):
        acc = FrameAccumulator(on_error="resync")
        acc.feed(_frames(1)[0][:-2])
        acc.close()  # no raise; tail counted as skipped
        assert acc.stats.bytes_skipped > 0


class TestStreamingLLRPParser:
    def test_decodes_batches(self):
        frames = _frames(3, per_frame=4)
        parser = StreamingLLRPParser()
        batches = parser.feed(b"".join(frames))
        assert [mid for mid, _ in batches] == [1, 2, 3]
        assert all(len(batch) == 4 for _, batch in batches)
        assert parser.stats.reports == 12

    def test_skips_keepalives(self):
        frames = _frames(2)
        wire = frames[0] + _keepalive() + frames[1]
        parser = StreamingLLRPParser()
        batches = parser.feed(wire)
        assert len(batches) == 2
        assert parser.stats.frames_skipped == 1

    def test_columnar_matches_object_path(self):
        frames = _frames(4, per_frame=6)
        wire = b"".join(frames)
        object_parser = StreamingLLRPParser()
        object_batches = object_parser.feed(wire)
        columnar_parser = StreamingLLRPParser()
        columnar_batches = columnar_parser.feed_columnar(wire)
        assert len(object_batches) == len(columnar_batches)
        for (mid_o, batch), (mid_c, cols) in zip(
            object_batches, columnar_batches
        ):
            assert mid_o == mid_c
            assert cols.to_reports() == list(batch.reports)

    def test_chunked_columnar_same_as_whole(self):
        frames = _frames(3, per_frame=5)
        wire = b"".join(frames)
        whole = StreamingLLRPParser()
        whole_batches = whole.feed_columnar(wire)
        chunked = StreamingLLRPParser()
        chunked_batches = []
        for i in range(0, len(wire), 7):
            chunked_batches.extend(
                chunked.feed_columnar(wire[i : i + 7])
            )
        assert len(whole_batches) == len(chunked_batches)
        for (mid_w, cols_w), (mid_c, cols_c) in zip(
            whole_batches, chunked_batches
        ):
            assert mid_w == mid_c
            assert cols_w.to_reports() == cols_c.to_reports()

    def test_close_propagates(self):
        parser = StreamingLLRPParser()
        parser.feed(_frames(1)[0][:5])
        with pytest.raises(WireProtocolError):
            parser.close()
