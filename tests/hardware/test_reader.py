"""Tests for repro.hardware.reader."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.geometry import Point3
from repro.errors import ConfigurationError
from repro.hardware.llrp import ROSpec
from repro.hardware.reader import (
    ReaderConfig,
    SimulatedReader,
    SpinningTagUnit,
    StaticTagUnit,
)
from repro.hardware.rotator import horizontal_disk
from repro.hardware.tags import make_tag
from repro.rf.antenna import make_antenna_port
from repro.rf.channel import BackscatterChannel
from repro.rf.noise import NOISELESS


@pytest.fixture
def units(rng):
    disk_a = horizontal_disk(Point3(-0.25, 0, 0), 0.10, 1.0)
    disk_b = horizontal_disk(Point3(0.25, 0, 0), 0.10, 1.0, phase0=1.0)
    return [
        SpinningTagUnit(disk=disk_a, tag=make_tag(rng=rng)),
        SpinningTagUnit(disk=disk_b, tag=make_tag(rng=rng)),
    ]


def _reader(rng, position=Point3(0.0, 2.0, 0.0), **kwargs):
    return SimulatedReader(
        antennas=[make_antenna_port(1, position, rng=rng)],
        channel=BackscatterChannel(noise=NOISELESS),
        rng=rng,
        rssi_bias_db=0.0,
        **kwargs,
    )


class TestConstruction:
    def test_needs_antenna(self, rng):
        with pytest.raises(ConfigurationError):
            SimulatedReader(antennas=[], rng=rng)

    def test_max_four_antennas(self, rng):
        antennas = [
            make_antenna_port(i, Point3(i * 0.3, 2.0, 0.0)) for i in range(1, 6)
        ]
        with pytest.raises(ConfigurationError):
            SimulatedReader(antennas=antennas, rng=rng)

    def test_duplicate_ports_rejected(self, rng):
        antennas = [
            make_antenna_port(1, Point3(0, 2, 0)),
            make_antenna_port(1, Point3(0.3, 2, 0)),
        ]
        with pytest.raises(ConfigurationError):
            SimulatedReader(antennas=antennas, rng=rng)

    def test_unknown_port_lookup(self, rng):
        reader = _reader(rng)
        with pytest.raises(ConfigurationError):
            reader.antenna(3)


class TestChannels:
    def test_fixed_channel(self, rng):
        reader = _reader(rng)
        indices = {reader.channel_index_at(t) for t in np.linspace(0, 100, 50)}
        assert len(indices) == 1

    def test_hopping_visits_many_channels(self, rng):
        reader = _reader(
            rng,
            config=ReaderConfig(frequency_hopping=True, hop_interval_s=0.5),
        )
        indices = {reader.channel_index_at(t) for t in np.linspace(0, 7.9, 200)}
        assert len(indices) == 16

    def test_wavelengths_in_band(self, rng):
        reader = _reader(rng)
        for channel in range(16):
            wavelength = reader.wavelength_for_channel(channel)
            assert 0.3240 < wavelength < 0.3258


class TestRun:
    def test_reports_have_valid_fields(self, rng, units):
        reader = _reader(rng)
        batch = reader.run(units, ROSpec(duration_s=5.0))
        assert len(batch) > 50
        for report in batch.reports:
            assert report.epc in {u.tag.epc for u in units}
            assert 0.0 <= report.phase_rad < 2 * math.pi
            assert report.rssi_dbm < 0.0
            assert report.host_timestamp_us >= report.reader_timestamp_us

    def test_reports_sorted_by_reader_time(self, rng, units):
        reader = _reader(rng)
        batch = reader.run(units, ROSpec(duration_s=3.0))
        times = [r.reader_timestamp_us for r in batch.reports]
        assert times == sorted(times)

    def test_phases_match_exact_geometry(self, rng, units):
        """Noiseless reports must equal the exact-distance phase plus the
        link diversity and orientation offset."""
        reader = _reader(rng)
        batch = reader.run(units, ROSpec(duration_s=3.0))
        unit = units[0]
        antenna = reader.antenna(1)
        wavelength = reader.wavelength_for_channel(
            reader.config.fixed_channel_index
        )
        diversity = reader.channel.link_diversity(antenna, unit.tag)
        for report in batch.filter_epc(unit.tag.epc).reports[:20]:
            t = report.reader_time_s
            distance = antenna.position.distance_to(unit.position(t))
            rho = unit.orientation(t, antenna.position)
            expected = (
                4 * math.pi * distance / wavelength
                + diversity
                + float(unit.tag.orientation_truth.offset(rho))
            ) % (2 * math.pi)
            assert report.phase_rad == pytest.approx(expected, abs=1e-6)

    def test_static_units_supported(self, rng):
        static = StaticTagUnit(
            tag=make_tag(rng=rng), location=Point3(0.5, 1.0, 0.0)
        )
        reader = _reader(rng)
        batch = reader.run([static], ROSpec(duration_s=2.0))
        assert len(batch) > 10

    def test_duplicate_epcs_rejected(self, rng, units):
        reader = _reader(rng)
        with pytest.raises(ConfigurationError):
            reader.run([units[0], units[0]], ROSpec(duration_s=1.0))

    def test_empty_field_rejected(self, rng):
        reader = _reader(rng)
        with pytest.raises(ConfigurationError):
            reader.run([], ROSpec(duration_s=1.0))

    def test_rssi_bias_applied(self, rng, units):
        biased = SimulatedReader(
            antennas=[make_antenna_port(1, Point3(0.0, 2.0, 0.0))],
            channel=BackscatterChannel(noise=NOISELESS),
            rng=np.random.default_rng(3),
            rssi_bias_db=10.0,
        )
        unbiased = SimulatedReader(
            antennas=[make_antenna_port(1, Point3(0.0, 2.0, 0.0))],
            channel=BackscatterChannel(noise=NOISELESS),
            rng=np.random.default_rng(3),
            rssi_bias_db=0.0,
        )
        batch_b = biased.run(units, ROSpec(duration_s=1.0))
        batch_u = unbiased.run(units, ROSpec(duration_s=1.0))
        mean_b = np.mean([r.rssi_dbm for r in batch_b.reports])
        mean_u = np.mean([r.rssi_dbm for r in batch_u.reports])
        assert mean_b - mean_u == pytest.approx(10.0, abs=0.5)

    def test_out_of_range_tag_unread(self, rng):
        far = StaticTagUnit(
            tag=make_tag(rng=rng), location=Point3(0.0, 200.0, 0.0)
        )
        reader = _reader(rng)
        batch = reader.run([far], ROSpec(duration_s=1.0))
        assert len(batch) == 0
