"""Tests for repro.hardware.llrp."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.hardware.llrp import ReportBatch, ROSpec, TagReportData


@pytest.fixture
def report() -> TagReportData:
    return TagReportData(
        epc="E2000000000000000000ABCD",
        antenna_port=2,
        channel_index=7,
        reader_timestamp_us=1_234_567,
        host_timestamp_us=1_254_567,
        phase_rad=3.14,
        rssi_dbm=-57.5,
    )


class TestTagReportData:
    def test_time_properties(self, report):
        assert report.reader_time_s == pytest.approx(1.234567)
        assert report.host_time_s == pytest.approx(1.254567)

    def test_dict_roundtrip(self, report):
        assert TagReportData.from_dict(report.to_dict()) == report

    def test_from_dict_coerces_types(self, report):
        data = report.to_dict()
        data["antenna_port"] = "2"
        data["phase_rad"] = "3.14"
        restored = TagReportData.from_dict(data)
        assert restored == report


class TestROSpec:
    def test_defaults(self):
        rospec = ROSpec()
        assert rospec.enable_phase
        assert rospec.report_every_read

    def test_invalid_duration(self):
        with pytest.raises(ConfigurationError):
            ROSpec(duration_s=0.0)

    def test_empty_ports(self):
        with pytest.raises(ConfigurationError):
            ROSpec(antenna_ports=())


class TestReportBatch:
    def _batch(self, report):
        other = TagReportData(
            epc="E2000000000000000000BEEF",
            antenna_port=1,
            channel_index=3,
            reader_timestamp_us=1_000_000,
            host_timestamp_us=1_020_000,
            phase_rad=1.0,
            rssi_dbm=-60.0,
        )
        return ReportBatch([report, other])

    def test_filter_epc(self, report):
        batch = self._batch(report)
        filtered = batch.filter_epc(report.epc)
        assert len(filtered) == 1
        assert filtered.reports[0] is report

    def test_filter_antenna(self, report):
        batch = self._batch(report)
        assert len(batch.filter_antenna(2)) == 1
        assert len(batch.filter_antenna(9)) == 0

    def test_epcs_preserve_order(self, report):
        batch = self._batch(report)
        assert batch.epcs() == [report.epc, "E2000000000000000000BEEF"]

    def test_sorted_by_reader_time(self, report):
        batch = self._batch(report).sorted_by_reader_time()
        times = [r.reader_timestamp_us for r in batch.reports]
        assert times == sorted(times)

    def test_json_roundtrip(self, report):
        batch = self._batch(report)
        restored = ReportBatch.from_json(batch.to_json())
        assert restored.reports == batch.reports

    def test_save_load(self, report, tmp_path):
        batch = self._batch(report)
        path = tmp_path / "batch.json"
        batch.save(path)
        assert ReportBatch.load(path).reports == batch.reports

    def test_extend(self, report):
        batch = ReportBatch()
        batch.extend([report])
        assert len(batch) == 1
