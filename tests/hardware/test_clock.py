"""Tests for repro.hardware.clock."""

from __future__ import annotations

import numpy as np
import pytest

from repro.hardware.clock import (
    ClockModel,
    microseconds_to_seconds,
    timestamps_to_microseconds,
)


class TestClockModel:
    def test_default_reader_clock_is_identity(self):
        clock = ClockModel()
        times = np.linspace(0, 10, 5)
        assert np.allclose(clock.reader_timestamps(times), times)

    def test_reader_drift(self):
        clock = ClockModel(reader_drift_ppm=100.0)
        stamped = clock.reader_timestamps(np.array([1000.0]))
        assert stamped[0] == pytest.approx(1000.1)

    def test_reader_offset(self):
        clock = ClockModel(reader_offset_s=5.0)
        assert clock.reader_timestamps(np.array([1.0]))[0] == pytest.approx(6.0)

    def test_host_latency_positive(self, rng):
        clock = ClockModel(latency_mean_s=0.02, latency_jitter_s=0.01)
        times = np.linspace(0, 10, 2000)
        host = clock.host_timestamps(times, rng)
        assert np.all(host >= times)

    def test_host_latency_mean(self, rng):
        clock = ClockModel(latency_mean_s=0.05, latency_jitter_s=0.0)
        times = np.zeros(100)
        host = clock.host_timestamps(times, rng)
        assert np.allclose(host, 0.05)

    def test_host_jitter_reorders_events(self, rng):
        """Jittery latency means host arrival order != emission order —
        the paper's reason to use reader timestamps."""
        clock = ClockModel(latency_mean_s=0.02, latency_jitter_s=0.015)
        times = np.linspace(0, 1, 200)  # 5 ms apart
        host = clock.host_timestamps(times, rng)
        assert np.any(np.diff(host) < 0)


class TestConversions:
    def test_roundtrip(self):
        times = np.array([0.0, 1.234567, 99.999999])
        assert np.allclose(
            microseconds_to_seconds(timestamps_to_microseconds(times)),
            times,
            atol=1e-6,
        )

    def test_integer_type(self):
        stamped = timestamps_to_microseconds(np.array([1.5]))
        assert stamped.dtype == np.int64
