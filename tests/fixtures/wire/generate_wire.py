"""Generate the golden binary wire fixtures used by ``tests/hardware``.

Run from the repo root:

    PYTHONPATH=src python tests/fixtures/wire/generate_wire.py

Produces four LLRP byte streams next to this script, each as ``.bin``
(the exact wire bytes) plus ``.hex`` (a reviewable hexdump committed
alongside, so fixture drift shows up in diffs):

* ``clean``          — two well-formed RO_ACCESS_REPORT frames in the
  canonical encoder layout (columnar fast path);
* ``multi_batch``    — three report frames with a KEEPALIVE between
  them (the parser must skip, not choke);
* ``vendor_missing`` — reports without the Impinj Custom parameter, so
  phase/host-time fall back to defaults (columnar general path);
* ``unknown_param``  — a frame carrying an unknown-but-well-formed
  top-level parameter that decoders must skip.

The fixtures are committed; regenerate only when the wire format
intentionally changes, and commit the resulting drift alongside the
format change.  ``tests/hardware/test_wire_golden.py`` both pins the
bytes and rebuilds them from this module, so generator and fixtures
cannot drift apart silently.
"""

from __future__ import annotations

import struct
from pathlib import Path

from repro.hardware.llrp import ReportBatch, TagReportData
from repro.hardware.llrp_wire import encode_ro_access_report

HERE = Path(__file__).resolve().parent


def _report(i: int) -> TagReportData:
    """Deterministic report stream (no RNG: fixtures must be stable)."""
    return TagReportData(
        epc=f"E2801160600002060000{i % 3:04X}",
        antenna_port=1 + i % 2,
        channel_index=1 + i % 16,
        reader_timestamp_us=1_600_000_000_000_000 + 2_500 * i,
        host_timestamp_us=1_600_000_000_000_040 + 2_500 * i,
        phase_rad=(i * 0.39269908169872414) % 6.283185307179586,
        rssi_dbm=-55.0 - (i % 8),
    )


def _frame(start: int, count: int, message_id: int) -> bytes:
    return encode_ro_access_report(
        ReportBatch([_report(start + i) for i in range(count)]),
        message_id=message_id,
    )


def _keepalive(message_id: int) -> bytes:
    return struct.pack(">HII", (1 << 10) | 62, 10, message_id)


def _strip_custom(frame: bytes) -> bytes:
    """Drop every report's Custom (vendor extension) parameter."""
    body = frame[10:]
    records = []
    offset = 0
    while offset < len(body):
        _ptype, length = struct.unpack_from(">HH", body, offset)
        inner = body[offset + 4 : offset + length]
        kept = b""
        ioff = 0
        while ioff < len(inner):
            itype, ilen = struct.unpack_from(">HH", inner, ioff)
            if itype != 1023:
                kept += inner[ioff : ioff + ilen]
            ioff += ilen
        records.append(struct.pack(">HH", 240, 4 + len(kept)) + kept)
        offset += length
    new_body = b"".join(records)
    return (
        frame[:2]
        + struct.pack(">I", 10 + len(new_body))
        + frame[6:10]
        + new_body
    )


def _append_unknown(frame: bytes, param_type: int = 777) -> bytes:
    """Append a well-formed but unknown top-level parameter."""
    alien = struct.pack(">HH", param_type, 10) + bytes(range(6))
    return (
        frame[:2]
        + struct.pack(">I", len(frame) + len(alien))
        + frame[6:]
        + alien
    )


def build_fixtures() -> dict:
    """Name -> wire bytes for every golden stream."""
    return {
        "clean": _frame(0, 4, 1) + _frame(4, 4, 2),
        "multi_batch": (
            _frame(0, 3, 1)
            + _keepalive(100)
            + _frame(3, 3, 2)
            + _keepalive(101)
            + _frame(6, 2, 3)
        ),
        "vendor_missing": _strip_custom(_frame(0, 4, 1)),
        "unknown_param": _append_unknown(_frame(0, 3, 1)),
    }


def hexdump(data: bytes) -> str:
    """Classic 16-byte-wide offset + hex dump (no ASCII gutter)."""
    lines = []
    for offset in range(0, len(data), 16):
        chunk = data[offset : offset + 16]
        lines.append(f"{offset:08x}  {chunk.hex(' ')}")
    return "\n".join(lines) + "\n"


def main() -> None:
    for name, wire in build_fixtures().items():
        (HERE / f"{name}.bin").write_bytes(wire)
        (HERE / f"{name}.hex").write_text(hexdump(wire))
        print(f"wrote {name}.bin ({len(wire)} bytes) and {name}.hex")


if __name__ == "__main__":
    main()
