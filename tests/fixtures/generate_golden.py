"""Generate the golden-trace fixtures used by ``tests/perf``.

Run from the repo root:

    PYTHONPATH=src python tests/fixtures/generate_golden.py

Produces ``golden_scenarios.npz`` next to this script: three recorded
3-disk x 2-channel collection scenarios —

* ``clean``     — far-field model + Gaussian phase noise;
* ``pi_slip``   — clean plus pi slips on a random 10% of snapshots (the
  reader's ambiguous I/Q demodulation);
* ``multipath`` — the direct path superposed with a wall reflection at
  0.35 relative amplitude.

For each scenario the file also records *golden outputs* computed with
the reference engine at generation time (per-disk fused peak azimuths
and the triangulated fix), so the equivalence suite doubles as a
regression pin: any drift of the reference path itself is caught, not
just reference/batched divergence.

The fixtures are committed; regenerate only when the reference
algorithm intentionally changes, and commit the resulting drift
alongside the algorithm change.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.constants import RELATIVE_PHASE_STD_RAD
from repro.core.geometry import Point2
from repro.core.locator import TagspinLocator2D
from repro.core.spectrum import (
    SnapshotSeries,
    combine_spectra,
    compute_r_profile,
    default_azimuth_grid,
)

DISK_CENTERS = [(-0.25, 0.0), (0.25, 0.0), (0.0, -0.45)]
WAVELENGTHS = [0.3245, 0.3255]
READER_POSE = (0.4, 1.9)
RADIUS = 0.10
ANGULAR_SPEEDS = [1.0, 1.1, 0.9]
PHASE0S = [0.0, 0.8, 2.1]
SNAPSHOTS = 90
NOISE_STD = 0.05
AZIMUTH_RESOLUTION_DEG = 0.5


def _tag_positions(times, center, omega, phase0):
    angles = omega * times + phase0
    return (
        center[0] + RADIUS * np.cos(angles),
        center[1] + RADIUS * np.sin(angles),
    )


def _path_phase(times, center, omega, phase0, source, wavelength):
    """Wrapped backscatter phase of the path tag <-> ``source``."""
    x, y = _tag_positions(times, center, omega, phase0)
    distance = np.hypot(source[0] - x, source[1] - y)
    return 4.0 * np.pi / wavelength * distance


def _scenario_phases(kind, times, disk, channel, rng):
    center = DISK_CENTERS[disk]
    omega = ANGULAR_SPEEDS[disk]
    phase0 = PHASE0S[disk]
    wavelength = WAVELENGTHS[channel]
    direct = _path_phase(times, center, omega, phase0, READER_POSE, wavelength)
    if kind == "multipath":
        # Wall reflection: image of the reader across the x axis.
        mirror = (READER_POSE[0], -READER_POSE[1])
        reflected = _path_phase(times, center, omega, phase0, mirror, wavelength)
        phases = np.angle(
            np.exp(1j * direct) + 0.35 * np.exp(1j * reflected)
        )
    else:
        phases = direct
    phases = phases + NOISE_STD * rng.standard_normal(times.size)
    if kind == "pi_slip":
        slips = rng.random(times.size) < 0.10
        phases = phases + np.pi * slips
    return np.mod(phases, 2.0 * np.pi)


def build_fixture() -> dict:
    arrays = {}
    grid = default_azimuth_grid(np.deg2rad(AZIMUTH_RESOLUTION_DEG))
    locator = TagspinLocator2D()
    for offset, kind in enumerate(("clean", "pi_slip", "multipath")):
        rng = np.random.default_rng(20160 + offset)
        peaks = []
        spectra = []
        for disk in range(len(DISK_CENTERS)):
            per_channel = []
            for channel in range(len(WAVELENGTHS)):
                period = 2.0 * np.pi / ANGULAR_SPEEDS[disk]
                times = np.sort(rng.uniform(0.0, 2.0 * period, SNAPSHOTS))
                phases = _scenario_phases(kind, times, disk, channel, rng)
                prefix = f"{kind}/d{disk}/c{channel}"
                arrays[f"{prefix}/times"] = times
                arrays[f"{prefix}/phases"] = phases
                series = SnapshotSeries(
                    times=times,
                    phases=phases,
                    wavelength=WAVELENGTHS[channel],
                    radius=RADIUS,
                    angular_speed=ANGULAR_SPEEDS[disk],
                    phase0=PHASE0S[disk],
                )
                per_channel.append(
                    compute_r_profile(
                        series, grid, sigma=RELATIVE_PHASE_STD_RAD
                    )
                )
            fused = combine_spectra(per_channel)
            spectra.append(fused)
            peaks.append(fused.peak_azimuth)
        fix = locator.locate(
            [Point2(*c) for c in DISK_CENTERS], spectra
        )
        arrays[f"{kind}/golden_peaks"] = np.array(peaks)
        arrays[f"{kind}/golden_fix"] = np.array(
            [fix.position.x, fix.position.y, fix.residual]
        )
    arrays["meta/centers"] = np.array(DISK_CENTERS)
    arrays["meta/wavelengths"] = np.array(WAVELENGTHS)
    arrays["meta/angular_speeds"] = np.array(ANGULAR_SPEEDS)
    arrays["meta/phase0s"] = np.array(PHASE0S)
    arrays["meta/radius"] = np.array(RADIUS)
    arrays["meta/pose"] = np.array(READER_POSE)
    arrays["meta/azimuth_resolution_deg"] = np.array(AZIMUTH_RESOLUTION_DEG)
    return arrays


def main() -> None:
    target = Path(__file__).parent / "golden_scenarios.npz"
    np.savez_compressed(target, **build_fixture())
    print(f"wrote {target} ({target.stat().st_size / 1024:.0f} KiB)")


if __name__ == "__main__":
    main()
