"""Tests for repro.rf.noise."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rf.noise import NOISELESS, NoiseModel


class TestNoiseModel:
    def test_noiseless_is_identity_mod_2pi(self, rng):
        phases = np.linspace(0, 10, 50)
        out = NOISELESS.corrupt_phase(phases, rng)
        assert np.allclose(out, np.mod(phases, 2 * np.pi))

    def test_phase_noise_statistics(self, rng):
        model = NoiseModel(phase_std_rad=0.1)
        phases = np.full(200_000, np.pi)
        noisy = model.corrupt_phase(phases, rng)
        residual = noisy - np.pi
        assert np.std(residual) == pytest.approx(0.1, rel=0.05)
        assert abs(np.mean(residual)) < 0.005

    def test_phase_output_wrapped(self, rng):
        model = NoiseModel(phase_std_rad=2.0)
        noisy = model.corrupt_phase(np.zeros(10_000), rng)
        assert np.all(noisy >= 0.0)
        assert np.all(noisy < 2 * np.pi)

    def test_pi_jumps_injected(self, rng):
        model = NoiseModel(phase_std_rad=0.0, pi_jump_probability=0.5)
        noisy = model.corrupt_phase(np.zeros(10_000), rng)
        jumps = np.isclose(noisy, np.pi)
        assert 0.4 < np.mean(jumps) < 0.6

    def test_rssi_quantization(self, rng):
        model = NoiseModel(rssi_std_db=0.0, rssi_quantum_db=0.5)
        noisy = model.corrupt_rssi(np.array([-53.26, -60.74]), rng)
        assert np.allclose(np.mod(noisy, 0.5), 0.0)

    def test_rssi_noise_statistics(self, rng):
        model = NoiseModel(rssi_std_db=1.0, rssi_quantum_db=0.0)
        noisy = model.corrupt_rssi(np.full(100_000, -55.0), rng)
        assert np.std(noisy + 55.0) == pytest.approx(1.0, rel=0.05)

    def test_invalid_sigma_rejected(self):
        with pytest.raises(ValueError):
            NoiseModel(phase_std_rad=-0.1)

    def test_invalid_probability_rejected(self):
        with pytest.raises(ValueError):
            NoiseModel(pi_jump_probability=1.5)
