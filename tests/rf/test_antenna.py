"""Tests for repro.rf.antenna."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.geometry import Point3
from repro.errors import ConfigurationError
from repro.rf.antenna import (
    AntennaPort,
    PanelAntenna,
    make_antenna_port,
    omni_antenna,
)


class TestPanelAntenna:
    def test_boresight_gain_zero(self):
        pattern = PanelAntenna(boresight_azimuth=0.7)
        assert pattern.relative_gain_db(0.7) == pytest.approx(0.0, abs=1e-9)

    def test_half_beamwidth_is_3db(self):
        pattern = PanelAntenna(boresight_azimuth=0.0, beamwidth=math.radians(70))
        gain = pattern.relative_gain_db(math.radians(35))
        assert gain == pytest.approx(-3.0, abs=0.05)

    def test_back_lobe_clamped(self):
        pattern = PanelAntenna(front_back_ratio_db=25.0)
        assert pattern.relative_gain_db(math.pi) == pytest.approx(-25.0)

    def test_pattern_symmetric(self):
        pattern = PanelAntenna(boresight_azimuth=0.0)
        assert pattern.relative_gain_db(0.4) == pytest.approx(
            pattern.relative_gain_db(-0.4)
        )

    def test_vectorized(self):
        pattern = PanelAntenna()
        gains = pattern.relative_gain_db(np.linspace(-np.pi, np.pi, 50))
        assert gains.shape == (50,)
        assert np.max(gains) <= 0.0 + 1e-9

    def test_steered_copy(self):
        pattern = PanelAntenna(boresight_azimuth=0.0)
        steered = pattern.steered(1.2)
        assert steered.boresight_azimuth == 1.2
        assert steered.beamwidth == pattern.beamwidth

    def test_invalid_beamwidth(self):
        with pytest.raises(ConfigurationError):
            PanelAntenna(beamwidth=0.0)

    def test_omni_is_flat_in_front(self):
        pattern = omni_antenna()
        spread = pattern.relative_gain_db(0.0) - pattern.relative_gain_db(1.0)
        assert spread < 2.0


class TestAntennaPort:
    def test_gain_toward_target(self):
        port = AntennaPort(
            port_id=1,
            position=Point3(0, 0, 0),
            pattern=PanelAntenna(boresight_azimuth=0.0),
        )
        on_axis = port.relative_gain_toward(Point3(2, 0, 0))
        off_axis = port.relative_gain_toward(Point3(0, 2, 0))
        assert on_axis > off_axis

    def test_make_antenna_port_faces_origin(self):
        port = make_antenna_port(1, Point3(0.0, 2.0, 0.0))
        assert port.pattern.boresight_azimuth == pytest.approx(-math.pi / 2)

    def test_make_antenna_port_diversity_drawn(self):
        rng = np.random.default_rng(1)
        port = make_antenna_port(1, Point3(1, 1, 0), rng=rng)
        assert 0.0 <= port.diversity_rad < 2 * math.pi
