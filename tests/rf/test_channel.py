"""Tests for repro.rf.channel."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.geometry import Point3
from repro.hardware.tags import make_tag
from repro.rf.antenna import AntennaPort, PanelAntenna
from repro.rf.channel import BackscatterChannel
from repro.rf.multipath import centered_room
from repro.rf.noise import NOISELESS, NoiseModel


@pytest.fixture
def antenna() -> AntennaPort:
    return AntennaPort(
        port_id=1,
        position=Point3(0.0, 2.0, 0.0),
        pattern=PanelAntenna(boresight_azimuth=-math.pi / 2),
        diversity_rad=1.0,
    )


@pytest.fixture
def tag(rng):
    return make_tag("squiggle", rng)


def _observe(channel, antenna, tag, rng, positions=None, n=50):
    if positions is None:
        positions = np.tile([0.0, 0.0, 0.0], (n, 1))
    orientations = np.full(positions.shape[0], np.pi / 2)
    wavelengths = np.full(positions.shape[0], 0.325)
    return channel.observe(antenna, tag, positions, orientations, wavelengths, rng)


class TestObserve:
    def test_phase_matches_geometry(self, antenna, tag, rng):
        channel = BackscatterChannel(
            noise=NOISELESS, include_orientation_effect=False
        )
        snapshot = _observe(channel, antenna, tag, rng, n=5)
        expected = np.mod(
            4 * np.pi * 2.0 / 0.325
            + channel.link_diversity(antenna, tag),
            2 * np.pi,
        )
        assert np.allclose(snapshot.measured_phases_rad, expected, atol=1e-9)

    def test_orientation_effect_injected(self, antenna, tag, rng):
        base = BackscatterChannel(noise=NOISELESS, include_orientation_effect=False)
        with_orientation = BackscatterChannel(noise=NOISELESS)
        positions = np.tile([0.0, 0.0, 0.0], (3, 1))
        orientations = np.array([0.3, 1.1, 2.0])
        wavelengths = np.full(3, 0.325)
        a = base.observe(antenna, tag, positions, orientations, wavelengths, rng)
        b = with_orientation.observe(
            antenna, tag, positions, orientations, wavelengths, rng
        )
        offsets = np.asarray(tag.orientation_truth.offset(orientations))
        measured_offsets = np.mod(
            b.measured_phases_rad - a.measured_phases_rad, 2 * np.pi
        )
        assert np.allclose(
            np.angle(np.exp(1j * (measured_offsets - offsets))), 0.0, atol=1e-9
        )

    def test_diversity_sum_mod_2pi(self, antenna, tag):
        channel = BackscatterChannel()
        expected = math.fmod(
            antenna.diversity_rad + tag.diversity_rad, 2 * math.pi
        )
        assert channel.link_diversity(antenna, tag) == pytest.approx(expected)

    def test_rssi_decreases_with_distance(self, antenna, tag, rng):
        channel = BackscatterChannel(noise=NOISELESS)
        near = _observe(
            channel, antenna, tag, rng,
            positions=np.tile([0.0, 1.0, 0.0], (5, 1)),
        )
        far = _observe(
            channel, antenna, tag, rng,
            positions=np.tile([0.0, -2.0, 0.0], (5, 1)),
        )
        assert np.mean(near.rssi_dbm) > np.mean(far.rssi_dbm)

    def test_energized_flag(self, antenna, tag, rng):
        channel = BackscatterChannel(noise=NOISELESS)
        snapshot = _observe(channel, antenna, tag, rng, n=3)
        assert np.all(snapshot.energized)

    def test_shape_validation(self, antenna, tag, rng):
        channel = BackscatterChannel()
        with pytest.raises(ValueError):
            channel.observe(
                antenna, tag, np.zeros((3, 2)), np.zeros(3), np.full(3, 0.3), rng
            )
        with pytest.raises(ValueError):
            channel.observe(
                antenna, tag, np.zeros((3, 3)), np.zeros(4), np.full(3, 0.3), rng
            )

    def test_multipath_changes_phase(self, antenna, tag, rng):
        clean = BackscatterChannel(noise=NOISELESS)
        multipath = BackscatterChannel(
            noise=NOISELESS, room=centered_room(9.0, 6.0)
        )
        a = _observe(clean, antenna, tag, rng, n=3)
        b = _observe(multipath, antenna, tag, rng, n=3)
        assert not np.allclose(a.measured_phases_rad, b.measured_phases_rad)


class TestReadProbability:
    def test_zero_when_unpowered(self, antenna, tag):
        channel = BackscatterChannel()
        probability = channel.read_probability(
            antenna, tag, Point3(0.0, -80.0, 0.0), np.pi / 2, 0.325
        )
        assert probability == 0.0

    def test_orientation_modulates(self, antenna, tag):
        channel = BackscatterChannel()
        facing = channel.read_probability(
            antenna, tag, Point3(0.0, 0.0, 0.0), np.pi / 2, 0.325
        )
        edge_on = channel.read_probability(
            antenna, tag, Point3(0.0, 0.0, 0.0), 0.0, 0.325
        )
        assert facing > edge_on > 0.0

    def test_probability_bounded(self, antenna, tag):
        channel = BackscatterChannel()
        for rho in np.linspace(0, 2 * np.pi, 16):
            p = channel.read_probability(
                antenna, tag, Point3(0.0, 0.0, 0.0), rho, 0.325
            )
            assert 0.0 <= p <= 1.0
