"""Tests for repro.rf.multipath."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.geometry import Point3
from repro.errors import ConfigurationError
from repro.rf.antenna import PanelAntenna
from repro.rf.multipath import (
    RoomModel,
    centered_room,
    frequency_profile,
    multipath_complex_gain,
    multipath_rays,
)


@pytest.fixture
def room() -> RoomModel:
    return centered_room(9.0, 6.0, reflection_coefficient=0.3)


class TestRoomModel:
    def test_centered_room_extents(self, room):
        assert room.x0 == -4.5 and room.x1 == 4.5
        assert room.y0 == -3.0 and room.y1 == 3.0

    def test_contains(self, room):
        assert room.contains(Point3(0, 0, 0))
        assert not room.contains(Point3(5.0, 0, 0))

    def test_invalid_extent(self):
        with pytest.raises(ConfigurationError):
            RoomModel(1.0, 0.0, 0.0, 1.0)

    def test_invalid_reflection(self):
        with pytest.raises(ConfigurationError):
            RoomModel(0, 1, 0, 1, reflection_coefficient=2.0)

    def test_wall_images_count_and_mirroring(self, room):
        images = room.wall_images(Point3(1.0, 2.0, 0.5))
        assert len(images) == 4
        assert images[0].x == pytest.approx(2 * room.x0 - 1.0)
        assert all(image.z == 0.5 for image in images)


class TestRays:
    def test_los_first_and_shortest(self, room):
        rays = multipath_rays(room, Point3(0, 0, 0), Point3(1, 1, 0))
        assert rays[0].amplitude == 1.0
        assert all(r.path_length >= rays[0].path_length for r in rays)

    def test_reflections_weaker(self, room):
        rays = multipath_rays(room, Point3(0, 0, 0), Point3(1, 1, 0))
        assert all(r.amplitude < 0.5 for r in rays[1:])

    def test_departure_azimuth_los(self, room):
        rays = multipath_rays(room, Point3(0, 0, 0), Point3(0, 2, 0))
        assert rays[0].departure_azimuth == pytest.approx(math.pi / 2)


class TestComplexGain:
    def test_no_reflection_is_unity(self):
        clean = centered_room(9.0, 6.0, reflection_coefficient=0.0)
        gain = multipath_complex_gain(
            clean, Point3(0, 0, 0), Point3(1, 1, 0), 0.325
        )
        assert gain == pytest.approx(1.0 + 0.0j)

    def test_gain_bounded(self, room):
        gain = multipath_complex_gain(
            room, Point3(0.3, -1.0, 0), Point3(1.5, 1.2, 0), 0.325
        )
        assert abs(gain) < 2.5

    def test_directional_pattern_suppresses_reflections(self, room):
        """A narrow-beam antenna pointed at the tag suppresses off-axis
        rays, pulling the composite gain back toward pure LoS."""
        reader, tag = Point3(0, -2.0, 0), Point3(0, 2.0, 0)
        omni = multipath_complex_gain(room, reader, tag, 0.325)
        narrow = PanelAntenna(
            boresight_azimuth=math.pi / 2, beamwidth=math.radians(30)
        )
        directional = multipath_complex_gain(
            room, reader, tag, 0.325, pattern_gain_db=narrow.relative_gain_db
        )
        assert abs(directional - 1.0) < abs(omni - 1.0)

    def test_gain_depends_on_wavelength(self, room):
        reader, tag = Point3(0.3, -1.0, 0), Point3(1.5, 1.2, 0)
        a = multipath_complex_gain(room, reader, tag, 0.3243)
        b = multipath_complex_gain(room, reader, tag, 0.3257)
        assert a != b


class TestFrequencyProfile:
    def test_shape(self, room):
        wavelengths = np.linspace(0.324, 0.326, 16)
        profile = frequency_profile(
            room, Point3(0, 0, 0), Point3(1, 1, 0), wavelengths
        )
        assert profile.shape == (16,)
        assert profile.dtype == complex

    def test_phase_slope_encodes_distance(self):
        """Across the band, the unwrapped phase slope grows with range."""
        clean = centered_room(9.0, 6.0, reflection_coefficient=0.0)
        wavelengths = np.linspace(0.324, 0.326, 16)
        near = frequency_profile(
            clean, Point3(0, 0, 0), Point3(0, 1, 0), wavelengths
        )
        far = frequency_profile(
            clean, Point3(0, 0, 0), Point3(0, 3, 0), wavelengths
        )
        near_slope = abs(np.polyfit(range(16), np.unwrap(np.angle(near)), 1)[0])
        far_slope = abs(np.polyfit(range(16), np.unwrap(np.angle(far)), 1)[0])
        assert far_slope > 2.0 * near_slope
