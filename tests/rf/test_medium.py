"""Tests for repro.rf.medium."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.rf.medium import (
    LinkBudget,
    dbm_to_milliwatt,
    free_space_path_loss_db,
    milliwatt_to_dbm,
)


class TestPathLoss:
    def test_reference_value(self):
        # FSPL at 1 m, 915 MHz-ish is ~31.7 dB.
        loss = free_space_path_loss_db(1.0, 0.325)
        assert loss == pytest.approx(31.74, abs=0.1)

    def test_doubling_distance_adds_6db(self):
        near = free_space_path_loss_db(1.0, 0.325)
        far = free_space_path_loss_db(2.0, 0.325)
        assert far - near == pytest.approx(6.02, abs=0.01)

    def test_near_field_clamped(self):
        assert free_space_path_loss_db(0.0, 0.325) == free_space_path_loss_db(
            0.01, 0.325
        )

    def test_vectorized(self):
        losses = free_space_path_loss_db(np.array([1.0, 2.0, 4.0]), 0.325)
        assert losses.shape == (3,)
        assert np.all(np.diff(losses) > 0)


class TestLinkBudget:
    def test_forward_power_monotone_in_distance(self):
        budget = LinkBudget()
        near = budget.forward_power_dbm(1.0, 0.325)
        far = budget.forward_power_dbm(4.0, 0.325)
        assert near > far

    def test_backscatter_below_forward(self):
        budget = LinkBudget()
        assert budget.backscatter_power_dbm(2.0, 0.325) < (
            budget.forward_power_dbm(2.0, 0.325)
        )

    def test_backscatter_falls_40db_per_decade(self):
        budget = LinkBudget()
        near = budget.backscatter_power_dbm(1.0, 0.325)
        far = budget.backscatter_power_dbm(10.0, 0.325)
        assert near - far == pytest.approx(40.0, abs=0.1)

    def test_tag_energized_close(self):
        budget = LinkBudget()
        assert budget.tag_energized(2.0, 0.325)

    def test_tag_dead_far(self):
        budget = LinkBudget()
        assert not budget.tag_energized(50.0, 0.325)

    def test_pattern_gains_applied(self):
        budget = LinkBudget()
        boresight = budget.forward_power_dbm(2.0, 0.325, reader_gain_db=0.0)
        offaxis = budget.forward_power_dbm(2.0, 0.325, reader_gain_db=-10.0)
        assert boresight - offaxis == pytest.approx(10.0)

    def test_decodable_threshold(self):
        budget = LinkBudget()
        assert budget.decodable(budget.reader_sensitivity_dbm)
        assert not budget.decodable(budget.reader_sensitivity_dbm - 0.1)


class TestUnitConversions:
    def test_dbm_to_mw_reference(self):
        assert dbm_to_milliwatt(0.0) == pytest.approx(1.0)
        assert dbm_to_milliwatt(30.0) == pytest.approx(1000.0)

    @given(st.floats(min_value=-100, max_value=50))
    @settings(max_examples=30)
    def test_roundtrip(self, dbm):
        assert milliwatt_to_dbm(dbm_to_milliwatt(dbm)) == pytest.approx(
            dbm, abs=1e-9
        )
