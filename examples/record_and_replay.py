"""Record a measurement session to JSON and replay it offline.

A field technician captures one inventory pass next to the spinning tags;
the JSON recording (LLRP reports + registry geometry + ground truth) can be
re-processed later — with different pipeline settings, for regression
testing, or to debug a bad fix — without the hardware.

Run:  python examples/record_and_replay.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import PipelineConfig, TagspinSystem, paper_default_scenario
from repro.core.geometry import Point3
from repro.sim.recording import SessionRecording


def main() -> None:
    # --- capture -----------------------------------------------------
    scenario = paper_default_scenario(seed=5)
    scenario.run_orientation_prelude()
    truth = Point3(-0.35, 2.05, 0.0)
    batch, _reader = scenario.collect(truth)

    recording = SessionRecording(
        batch=batch,
        registry_records=list(scenario.scene.registry),
        truth=truth,
        label="dock-door calibration, bay 7",
    )
    path = Path(tempfile.gettempdir()) / "tagspin_session.json"
    recording.save(path)
    print(f"recorded {len(batch)} reports -> {path} "
          f"({path.stat().st_size / 1024:.0f} KiB)")

    # --- replay ------------------------------------------------------
    loaded = SessionRecording.load(path)
    registry = loaded.build_registry()
    print(f"replaying session {loaded.label!r} "
          f"({len(loaded.registry_records)} spinning tags)")

    # The recording carries the fitted orientation profiles, so replays
    # reproduce the fully calibrated pipeline — and can also re-run the
    # same data through alternative configurations.
    for label, config in [
        ("calibrated pipeline", PipelineConfig()),
        ("no orientation cal.", PipelineConfig(orientation_calibration=False)),
        (
            "traditional profile Q",
            PipelineConfig(use_enhanced_profile=False),
        ),
    ]:
        system = TagspinSystem(registry, config)
        fix = system.locate_2d(loaded.batch, antenna_port=1)
        assert loaded.truth is not None
        error = fix.position.distance_to(loaded.truth.horizontal())
        print(f"  {label:22s}: ({fix.position.x:+.3f}, "
              f"{fix.position.y:+.3f}) m, error {error * 100:.2f} cm")


if __name__ == "__main__":
    main()
