"""Warehouse scenario: calibrate a four-antenna portal in one campaign.

The paper's motivation: tag-localization deployments need every reader
antenna's position, and taping a laser rangefinder to four ceiling antennas
is slow and error-prone.  Here a Speedway-class reader with four antennas
(a dock-door portal) interrogates the two spinning infrastructure tags;
the central localization server ingests the single LLRP stream and
calibrates *all four* antenna positions at once.

Run:  python examples/warehouse_multi_antenna.py
"""

from __future__ import annotations

from repro import paper_default_scenario
from repro.core.geometry import Point3
from repro.server.service import LocalizationServer


def main() -> None:
    scenario = paper_default_scenario(seed=7)
    scenario.run_orientation_prelude()

    # The portal: antenna port 1 at the given pose, ports 2-4 spaced 40 cm
    # along the dock door.
    portal_pose = Point3(-0.8, 2.1, 0.0)
    print("collecting one inventory pass over all four antenna ports...")
    batch, reader = scenario.collect(portal_pose, num_antennas=4)
    print(f"  {len(batch)} LLRP tag reports")

    # Stream the reports to the central localization server.
    server = LocalizationServer(
        scenario.scene.registry, scenario.config.pipeline
    )
    server.ingest("portal-reader", batch.reports)

    print("\nper-antenna calibration results:")
    fixes = server.locate_all_2d("portal-reader")
    worst = 0.0
    for port in sorted(fixes):
        truth = reader.antenna(port).position.horizontal()
        fix = fixes[port]
        error_cm = fix.position.distance_to(truth) * 100
        worst = max(worst, error_cm)
        print(
            f"  antenna {port}: estimate=({fix.position.x:+.3f}, "
            f"{fix.position.y:+.3f}) m  truth=({truth.x:+.3f}, "
            f"{truth.y:+.3f}) m  error={error_cm:.2f} cm"
        )
    print(
        f"\nall four antennas calibrated from one campaign; "
        f"worst error {worst:.2f} cm (manual taping: ~minutes per antenna "
        f"and decimeter-level mistakes)"
    )


if __name__ == "__main__":
    main()
