"""3D antenna calibration, the z ambiguity, and the vertical-disk fix.

The reader antenna hangs above the desk plane.  Two horizontally spinning
tags recover (x, y) and |z| but cannot sign z — the power profile has two
symmetric peaks (Fig 8 of the paper).  The paper resolves this with a
dead-space prior; its future-work proposal — a third tag spinning in a
*vertical* plane — resolves it from physics alone.  This example shows all
three: the ambiguity, the prior, and the vertical disk.

Run:  python examples/three_d_calibration.py
"""

from __future__ import annotations

import numpy as np

from repro import paper_default_scenario
from repro.core.geometry import Point3
from repro.core.oriented import resolve_z_with_vertical_disk
from repro.core.spectrum import SnapshotSeries
from repro.hardware.llrp import ROSpec
from repro.hardware.reader import SpinningTagUnit
from repro.hardware.rotator import vertical_disk
from repro.hardware.tags import make_tag


def main() -> None:
    scenario = paper_default_scenario(seed=3, three_d=True)
    scenario.run_orientation_prelude()

    truth = Point3(0.45, 1.95, 0.62)
    fix, error = scenario.locate_3d(truth)

    print(f"true reader position : ({truth.x:.3f}, {truth.y:.3f}, {truth.z:.3f}) m")
    print("\nthe two mirror candidates from the horizontal disks:")
    for candidate in fix.candidates:
        print(f"  ({candidate.x:+.3f}, {candidate.y:+.3f}, {candidate.z:+.3f}) m")
    print(
        f"\nwith the dead-space prior (z above the desk) the server picks: "
        f"({fix.position.x:+.3f}, {fix.position.y:+.3f}, "
        f"{fix.position.z:+.3f}) m"
    )
    assert error.z is not None
    print(
        f"errors: x {error.x * 100:.2f} cm, y {error.y * 100:.2f} cm, "
        f"z {error.z * 100:.2f} cm, combined {error.combined * 100:.2f} cm"
    )

    # --- the future-work extension: a vertically spinning third tag -----
    print("\nadding a vertically spinning third tag (prior-free resolve):")
    rng = np.random.default_rng(30)
    disk = vertical_disk(Point3(0.0, 0.4, 0.0), 0.10, 1.0)
    unit = SpinningTagUnit(disk=disk, tag=make_tag(rng=rng))
    reader = scenario.make_reader(truth)
    batch = reader.run([unit], ROSpec(duration_s=2 * disk.period))
    reports = batch.filter_epc(unit.tag.epc).sorted_by_reader_time()
    series = SnapshotSeries(
        times=np.array([r.reader_time_s for r in reports.reports]),
        phases=np.array([r.phase_rad for r in reports.reports]),
        wavelength=reader.wavelength_for_channel(
            reader.config.fixed_channel_index
        ),
        radius=disk.radius,
        angular_speed=disk.angular_speed,
        phase0=disk.phase0,
    )
    chosen = resolve_z_with_vertical_disk(
        fix.candidates, disk.center, series, disk.basis_u, disk.basis_v
    )
    print(
        f"  vertical disk votes for ({chosen.x:+.3f}, {chosen.y:+.3f}, "
        f"{chosen.z:+.3f}) m  -> "
        f"{'correct' if abs(chosen.z - truth.z) < abs(-chosen.z - truth.z) else 'wrong'}"
    )


if __name__ == "__main__":
    main()
