"""Quickstart: calibrate a reader antenna's position with two spinning tags.

Builds the paper's default deployment (two disks 50 cm apart on a desk,
10 cm radius, ALN-9640 tags), runs the one-off orientation-calibration
prelude, then localizes the reader from a pose of your choice.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import paper_default_scenario
from repro.core.geometry import Point2

def main() -> None:
    # 1. Deploy the infrastructure: two spinning tags + registry + server.
    scenario = paper_default_scenario(seed=42)
    print("deployed spinning tags:")
    for record in scenario.scene.registry:
        center = record.disk.center
        print(
            f"  {record.epc}  center=({center.x:+.2f}, {center.y:+.2f}) m  "
            f"radius={record.disk.radius * 100:.0f} cm  "
            f"omega={record.disk.angular_speed:.1f} rad/s"
        )

    # 2. One-off prelude: fit each tag's phase-orientation profile by
    #    spinning it at the disk center with the reader at a known pose.
    scenario.run_orientation_prelude()
    print("\norientation profiles fitted (Fourier series, order 3)")

    # 3. Put the reader anywhere and localize it from the tag phases.
    truth = Point2(0.62, 1.85)
    fix, error = scenario.locate_2d(truth)

    print(f"\ntrue reader position : ({truth.x:.3f}, {truth.y:.3f}) m")
    print(
        f"Tagspin estimate     : ({fix.position.x:.3f}, "
        f"{fix.position.y:.3f}) m"
    )
    print(f"error                : {error.combined * 100:.2f} cm")
    print(f"confidence           : {fix.confidence:.2f}")


if __name__ == "__main__":
    main()
