"""Track a handheld reader moving past the spinning-tag infrastructure.

A technician carries the reader in stop-and-go fashion (each stop collects
two disk rotations of phase data).  Each stop yields a Tagspin fix; a
constant-velocity Kalman filter fuses the fixes into a smooth trajectory
and coasts through the occasional bad fix.

Run:  python examples/mobile_reader_tracking.py
"""

from __future__ import annotations

import numpy as np

from repro import paper_default_scenario
from repro.core.geometry import Point2
from repro.core.tracking import ReaderTracker


def main() -> None:
    scenario = paper_default_scenario(seed=23)
    scenario.run_orientation_prelude()
    tracker = ReaderTracker(accel_std=0.1)

    # The technician walks a shallow arc in front of the disks.
    waypoints = [
        Point2(-1.2 + 0.4 * i, 1.6 + 0.12 * np.sin(0.9 * i)) for i in range(7)
    ]

    print(f"{'t [s]':>6} | {'truth':>18} | {'track':>18} | err [cm] | note")
    print("-" * 72)
    errors = []
    for step, waypoint in enumerate(waypoints):
        fix, _err = scenario.locate_2d(waypoint)
        point = tracker.ingest(step * 15.0, fix)
        error_cm = point.position.distance_to(waypoint) * 100
        errors.append(error_cm)
        note = "REJECTED (coasting)" if point.rejected else ""
        print(
            f"{point.time_s:>6.0f} | ({waypoint.x:+.2f}, {waypoint.y:+.2f}) m"
            f"{'':>2} | ({point.position.x:+.2f}, {point.position.y:+.2f}) m"
            f"{'':>2} | {error_cm:>8.2f} | {note}"
        )

    print(
        f"\nmean tracking error {np.mean(errors):.2f} cm over "
        f"{len(waypoints)} stops; final velocity estimate "
        f"({tracker.track[-1].velocity[0]:+.3f}, "
        f"{tracker.track[-1].velocity[1]:+.3f}) m/s"
    )


if __name__ == "__main__":
    main()
