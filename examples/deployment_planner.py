"""Plan a spinning-tag deployment before installing anything.

Given the room and candidate disk layouts, the planner predicts the
localization accuracy everywhere in the surveillance region from first
principles (phase noise -> bearing error -> triangulation dilution), so the
operator can choose disk spacing and count *before* mounting hardware —
then the simulator validates the prediction.

Run:  python examples/deployment_planner.py
"""

from __future__ import annotations

import numpy as np

from repro import DeploymentSpec, ScenarioConfig, TagspinScenario
from repro.core.geometry import Point2, Point3
from repro.sim.planning import (
    PlannedDisk,
    accuracy_map,
    predicted_rmse,
    recommend_center_distance,
)


def main() -> None:
    # 1. Which two-disk baseline should we use for coverage at ~2 m depth?
    target = Point2(0.0, 2.0)
    best, rmse = recommend_center_distance(
        target, candidate_distances=[0.2, 0.3, 0.5, 0.8]
    )
    print(
        f"recommended disk-center distance for {target}: "
        f"{best * 100:.0f} cm (predicted RMSE {rmse * 100:.2f} cm)"
    )

    # 2. Predicted accuracy map for the paper's default 50 cm layout.
    disks = [PlannedDisk(Point2(-0.25, 0.0)), PlannedDisk(Point2(0.25, 0.0))]
    grid = accuracy_map(disks, (-2.0, 2.0), (0.5, 3.0), resolution=0.5)
    print("\npredicted RMSE map [cm] (rows: y, cols: x):")
    header = "      " + " ".join(f"{x:+5.1f}" for x in grid.xs)
    print(header)
    for i, y in enumerate(grid.ys):
        cells = " ".join(
            f"{v * 100:5.1f}" if np.isfinite(v) else "    -"
            for v in grid.rmse[i]
        )
        print(f"y={y:+4.1f} {cells}")
    print(
        f"\ncoverage with predicted RMSE <= 5 cm: "
        f"{grid.coverage_fraction(0.05) * 100:.0f}% of the region"
    )

    # 3. Validate the prediction against the full simulator at three poses.
    scenario = TagspinScenario(ScenarioConfig(deployment=DeploymentSpec(), seed=17))
    scenario.run_orientation_prelude()
    print("\nprediction vs simulation:")
    for pose in [Point2(0.4, 1.5), Point2(-0.8, 2.2), Point2(1.2, 2.8)]:
        predicted = predicted_rmse(pose, disks)
        _fix, error = scenario.locate_2d(pose)
        print(
            f"  {pose}: predicted {predicted * 100:5.2f} cm, "
            f"simulated {error.combined * 100:5.2f} cm"
        )


if __name__ == "__main__":
    main()
