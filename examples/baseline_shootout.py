"""Shootout: Tagspin vs the four baseline localization systems.

Every system localizes the same reader poses on the same simulated
multipath office: Tagspin from its two spinning tags; LandMARC from RSSI
fingerprints of a 12-tag reference grid; AntLoc from a rotating-antenna
RSS scan; PinIt from DTW-matched SAR angular profiles; BackPos from
calibrated pairwise phase differences.

Run:  python examples/baseline_shootout.py      (takes ~1 minute)
"""

from __future__ import annotations

from repro import paper_default_scenario
from repro.sim.comparison import BaselineComparison, format_comparison_table


def main() -> None:
    print("deploying infrastructure (2 spinning tags + 12 reference tags)...")
    comparison = BaselineComparison(paper_default_scenario(seed=99), seed=100)

    print("one-off deployment calibration (orientation prelude, BackPos offsets)...")
    comparison.calibrate()

    print("running 8 random reader poses through all five systems...\n")
    results = comparison.run(trials=8)
    print(format_comparison_table(results))

    tagspin = next(r for r in results if r.name == "Tagspin")
    print(
        f"\nTagspin mean error: {tagspin.summary().mean * 100:.2f} cm — "
        f"the paper reports ~4.6 cm (2D) on real COTS hardware."
    )


if __name__ == "__main__":
    main()
