"""Operations view: wire-format ingestion, health checks, localization.

A realistic server-side flow: the reader streams binary LLRP
RO_ACCESS_REPORT frames over TCP; the operations console decodes them,
runs the deployment health monitor against the registry (catching stalled
disks and stale registry entries before they corrupt fixes), and only then
answers position queries.

Run:  python examples/operations_console.py
"""

from __future__ import annotations

from dataclasses import replace

from repro import paper_default_scenario
from repro.core.geometry import Point3
from repro.hardware.llrp_wire import (
    decode_ro_access_report,
    encode_ro_access_report,
    split_stream,
)
from repro.server.health import DeploymentMonitor, format_health_table
from repro.server.registry import SpinningTagRecord, TagRegistry
from repro.server.service import LocalizationServer


def main() -> None:
    scenario = paper_default_scenario(seed=31)
    scenario.run_orientation_prelude()
    truth = Point3(0.55, 1.75, 0.0)
    batch, _reader = scenario.collect(truth)

    # --- the reader side: frame the reports as binary LLRP --------------
    wire = encode_ro_access_report(batch, message_id=1001)
    print(f"reader streamed {len(batch)} reads as {len(wire)} bytes of LLRP")

    # --- the server side: decode, health-check, localize ----------------
    frames = split_stream(wire)
    _message_id, decoded = decode_ro_access_report(frames[0])
    print(f"console decoded {len(decoded)} reads from {len(frames)} frame(s)\n")

    monitor = DeploymentMonitor(scenario.scene.registry)
    print("deployment health:")
    print(format_health_table(list(monitor.check_all(decoded).values())))

    server = LocalizationServer(
        scenario.scene.registry, scenario.config.pipeline
    )
    server.ingest("dock-reader", decoded.reports)
    fix = server.locate_antenna_2d("dock-reader", 1)
    print(
        f"\nantenna fix: ({fix.position.x:+.3f}, {fix.position.y:+.3f}) m, "
        f"error {fix.position.distance_to(truth.horizontal()) * 100:.2f} cm"
    )

    # --- what a stale registry looks like to the monitor ----------------
    print("\nnow suppose someone swapped disk 1's motor (1.5x speed) and")
    print("forgot to update the registry:")
    stale = TagRegistry()
    for record in scenario.scene.registry:
        wrong = replace(record.disk, angular_speed=record.disk.angular_speed * 1.5)
        stale.register(
            SpinningTagRecord(
                epc=record.epc,
                disk=wrong,
                model_key=record.model_key,
                orientation_profile=record.orientation_profile,
            )
        )
    stale_monitor = DeploymentMonitor(stale)
    print(format_health_table(list(stale_monitor.check_all(decoded).values())))
    print("\nthe weak-spectrum-peak flags fire before any bad fix ships.")


if __name__ == "__main__":
    main()
