"""The full story: calibrate the antennas, then locate tags with them.

Tag localization is why reader calibration matters.  This example deploys
a four-antenna reader at positions unknown to the server, calibrates all
four with Tagspin's spinning tags, then locates five target tags with a
phase-based localizer — comparing the downstream accuracy against ground
truth antenna positions and against manual tape-measure calibration.

Run:  python examples/close_the_loop.py
"""

from __future__ import annotations

from repro.apps.closed_loop import (
    ClosedLoopExperiment,
    format_closed_loop_table,
)
from repro.sim.scenario import paper_default_scenario


def main() -> None:
    scenario = paper_default_scenario(seed=77)
    scenario.run_orientation_prelude()
    experiment = ClosedLoopExperiment(scenario, seed=78)

    print("step 1: Tagspin calibrates the four antennas from two spinning tags")
    estimates = experiment.calibrate_antennas()
    for port in sorted(estimates):
        truth = experiment.antenna_truth[port]
        error_cm = estimates[port].distance_to(truth) * 100
        print(
            f"  antenna {port}: ({estimates[port].x:+.3f}, "
            f"{estimates[port].y:+.3f}) m  (error {error_cm:.2f} cm)"
        )

    print("\nstep 2: locate five target tags with each antenna-position source")
    results = experiment.run()
    print(format_closed_loop_table(results))

    truth = results[0].tag_mean_error
    tagspin = results[1].tag_mean_error
    print(
        f"\nTagspin's automatic calibration costs only "
        f"{(tagspin - truth) * 100:+.1f} cm of downstream tag accuracy vs "
        f"perfect knowledge — and zero tape measures."
    )


if __name__ == "__main__":
    main()
