"""Defense-in-depth robustness layer.

Real report streams are dirty: LLRP connections retransmit (duplicates),
multi-threaded collectors reorder arrivals, demodulators slip by pi,
EMI bursts randomize phases and disk motors stall.  This package screens
the stream before the pipeline sees it and scores each disk's evidence
before the locator trusts it:

* :mod:`repro.robustness.validation` — per-stream report screening and
  quarantine accounting (:class:`ReportValidator`);
* :mod:`repro.robustness.gating` — per-disk spectrum quality scoring and
  gating policy (:class:`GatingPolicy`, :class:`DiskQuality`);
* :mod:`repro.robustness.diagnostics` — structured fix diagnostics
  (:class:`FixDiagnostics`, :class:`DegradationState`).
"""

from repro.robustness.diagnostics import (
    DegradationState,
    DiskExclusion,
    FixDiagnostics,
    PipelineDiagnostics,
)
from repro.robustness.gating import (
    GATE_BROAD_PEAK,
    GATE_HIGH_RESIDUAL,
    GATE_NO_DATA,
    GATE_POOR_COVERAGE,
    GATE_WEAK_PEAK,
    DiskQuality,
    GatingPolicy,
    score_disk,
)
from repro.robustness.validation import (
    QuarantineStats,
    ReportValidator,
    ValidationConfig,
)

__all__ = [
    "DegradationState",
    "DiskExclusion",
    "DiskQuality",
    "FixDiagnostics",
    "GATE_BROAD_PEAK",
    "GATE_HIGH_RESIDUAL",
    "GATE_NO_DATA",
    "GATE_POOR_COVERAGE",
    "GATE_WEAK_PEAK",
    "GatingPolicy",
    "PipelineDiagnostics",
    "QuarantineStats",
    "ReportValidator",
    "ValidationConfig",
    "score_disk",
]
