"""Report validation and quarantine at the server's ingest boundary.

COTS readers and their transport stack corrupt streams in recognizable
ways; each gets a dedicated screen here, applied *before* the reports
reach a stream buffer:

* **duplicates** — LLRP-over-TCP retransmits and naive client retries
  deliver the same read twice; an exact re-read (same EPC, antenna,
  channel and reader timestamp) carries no new information and biases
  any estimator that assumes independent samples.
* **out-of-range fields** — a corrupted 12-bit phase word, a garbage RSSI
  or a channel index beyond the regulatory hop table indicate framing
  errors; such reports are rejected wholesale since no field can be
  trusted once one is provably wrong.
* **out-of-order arrival** — multi-threaded collectors reorder reports.
  Order itself is repairable (the pipeline sorts by reader timestamp),
  so reordered reports are accepted but counted: a rising count signals
  transport congestion before it becomes data loss.
* **pi slips** — Impinj demodulators occasionally lock half a cycle off,
  offsetting the reported phase by exactly pi.  Between consecutive
  same-channel reads of a slowly spinning tag the legitimate phase change
  is small, so an abrupt ~pi jump marks a slip boundary; the validator
  tracks the slip state per (tag, channel) link and folds affected
  phases back by pi.

Everything rejected or repaired is tallied in :class:`QuarantineStats`
so the serving layer can expose degradation instead of hiding it.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Deque, Dict, Iterable, List, Set, Tuple

import numpy as np

from repro.constants import NUM_CHANNELS
from repro.core.phase import wrap_phase, wrap_phase_signed
from repro.hardware.llrp import TagReportData
from repro.obs.metrics import get_registry, telemetry_enabled

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (hardware->robustness)
    from repro.hardware.llrp_columnar import ColumnarReportBatch

TWO_PI = 2.0 * math.pi

#: Screen outcomes that partition ``received`` (stats field -> label).
_SCREEN_RESULTS = (
    ("accepted", "accepted"),
    ("duplicates", "duplicate"),
    ("phase_out_of_range", "phase_out_of_range"),
    ("rssi_out_of_range", "rssi_out_of_range"),
    ("bad_channel", "bad_channel"),
    ("bad_timestamp", "bad_timestamp"),
)

#: Repairs applied to reports that are *kept* (not part of the partition).
_REPAIR_KINDS = (("reordered", "reordered"), ("pi_slips_repaired", "pi_slip"))


@dataclass(frozen=True)
class ValidationConfig:
    """Thresholds of the ingest screens."""

    #: Allowed phase range upper bound [rad]; reader phase words encode
    #: [0, 2*pi), so anything at or beyond 2*pi (plus slack for float
    #: round-trip) is a framing error.
    max_phase_rad: float = TWO_PI + 1e-9
    #: Plausible RSSI window for passive backscatter [dBm].
    rssi_min_dbm: float = -105.0
    rssi_max_dbm: float = 5.0
    #: Number of valid frequency channels.
    num_channels: int = NUM_CHANNELS
    #: Half-width of the pi-slip detection band [rad]: a phase jump within
    #: ``pi +- tolerance`` flips the slip state.  Must exceed the phase
    #: noise but stay below pi minus the largest legitimate inter-read
    #: change, which for the paper's slow disks is well under 1 rad.
    pi_slip_tolerance_rad: float = 0.7
    #: Maximum gap [s] between consecutive same-channel reads for the slip
    #: detector to act; across longer gaps a ~pi change can be legitimate
    #: rotation, so the detector resets instead of classifying.
    pi_slip_max_gap_s: float = 0.25
    #: Enable the pi-slip detector (disable for fast disks where the
    #: inter-read phase change approaches pi).
    repair_pi_slips: bool = True
    #: Per-tag memory of recently seen reader timestamps for deduplication.
    dedup_memory: int = 8192


@dataclass
class QuarantineStats:
    """Per-stream accounting of what the validator did."""

    received: int = 0
    accepted: int = 0
    duplicates: int = 0
    phase_out_of_range: int = 0
    rssi_out_of_range: int = 0
    bad_channel: int = 0
    bad_timestamp: int = 0
    reordered: int = 0
    pi_slips_repaired: int = 0

    @property
    def quarantined(self) -> int:
        """Reports rejected outright (repaired/reordered ones are kept)."""
        return (
            self.duplicates
            + self.phase_out_of_range
            + self.rssi_out_of_range
            + self.bad_channel
            + self.bad_timestamp
        )

    @property
    def quarantine_ratio(self) -> float:
        return self.quarantined / self.received if self.received else 0.0

    def as_dict(self) -> Dict[str, int]:
        return {
            "received": self.received,
            "accepted": self.accepted,
            "duplicates": self.duplicates,
            "phase_out_of_range": self.phase_out_of_range,
            "rssi_out_of_range": self.rssi_out_of_range,
            "bad_channel": self.bad_channel,
            "bad_timestamp": self.bad_timestamp,
            "reordered": self.reordered,
            "pi_slips_repaired": self.pi_slips_repaired,
        }

    def snapshot(self) -> "QuarantineStats":
        return QuarantineStats(**self.as_dict())


@dataclass
class _SlipState:
    """Pi-slip tracking state of one (tag, channel) link."""

    last_time_s: float
    last_phase: float
    slipped: bool = False


@dataclass
class _DedupState:
    """Bounded memory of recently seen reader timestamps of one tag."""

    seen: Set[Tuple[int, int, int]] = field(default_factory=set)
    order: Deque[Tuple[int, int, int]] = field(default_factory=deque)


class ReportValidator:
    """Screens one report stream; stateful across :meth:`process` calls.

    One validator instance guards one (reader, antenna) stream — the
    dedup memory, ordering watermark and slip states are per-link by
    construction, so a validator must not be shared between streams.
    """

    def __init__(self, config: ValidationConfig | None = None) -> None:
        self.config = config if config is not None else ValidationConfig()
        self.stats = QuarantineStats()
        self._dedup: Dict[str, _DedupState] = {}
        self._watermark_us: Dict[str, int] = {}
        self._slip: Dict[Tuple[str, int], _SlipState] = {}

    # ------------------------------------------------------------------
    def process(self, reports: Iterable[TagReportData]) -> List[TagReportData]:
        """Validate a chunk of reports; returns the accepted (repaired) ones.

        The chunk is screened report-by-report (range checks, dedup,
        ordering watermark), then the survivors are run through the
        pi-slip detector per (tag, channel) series in timestamp order.
        The returned list preserves timestamp order.
        """
        before = self.stats.as_dict()
        screened: List[TagReportData] = []
        for report in reports:
            self.stats.received += 1
            if self._screen(report):
                screened.append(report)
        screened.sort(key=lambda r: r.reader_timestamp_us)
        if self.config.repair_pi_slips:
            screened = self._repair_pi_slips(screened)
        self.stats.accepted += len(screened)
        self._publish_metrics(before)
        return screened

    def process_columnar(
        self, cols: "ColumnarReportBatch"
    ) -> List[TagReportData]:
        """Columnar fast screen; identical output and stats to :meth:`process`.

        The four stateless range screens (timestamp, channel, phase,
        RSSI) run as vectorized masks over the columns — with the same
        precedence as :meth:`_screen`, so every rejected report lands in
        the same counter bucket.  Only the survivors are materialized as
        objects for the stateful screens (dedup, ordering watermark,
        pi-slip repair), which must see reports one at a time in arrival
        order.
        """
        cfg = self.config
        n = len(cols)
        before = self.stats.as_dict()
        self.stats.received += n
        if n == 0:
            self._publish_metrics(before)
            return []
        # Unsigned timestamp columns (wire decode) cannot be negative.
        def _negative(column: np.ndarray) -> np.ndarray:
            if column.dtype.kind == "u":
                return np.zeros(column.shape, dtype=bool)
            return column < 0

        bad_ts = _negative(cols.reader_timestamp_us) | _negative(
            cols.host_timestamp_us
        )
        self.stats.bad_timestamp += int(bad_ts.sum())
        alive = ~bad_ts
        bad_channel = alive & ~(
            (cols.channel_index >= 0)
            & (cols.channel_index < cfg.num_channels)
        )
        self.stats.bad_channel += int(bad_channel.sum())
        alive &= ~bad_channel
        bad_phase = alive & ~(
            np.isfinite(cols.phase_rad)
            & (cols.phase_rad >= 0.0)
            & (cols.phase_rad < cfg.max_phase_rad)
        )
        self.stats.phase_out_of_range += int(bad_phase.sum())
        alive &= ~bad_phase
        bad_rssi = alive & ~(
            np.isfinite(cols.rssi_dbm)
            & (cols.rssi_dbm >= cfg.rssi_min_dbm)
            & (cols.rssi_dbm <= cfg.rssi_max_dbm)
        )
        self.stats.rssi_out_of_range += int(bad_rssi.sum())
        alive &= ~bad_rssi

        screened: List[TagReportData] = []
        for report in cols.select(alive).to_reports():
            if self._is_duplicate(report):
                self.stats.duplicates += 1
                continue
            watermark = self._watermark_us.get(report.epc)
            if (
                watermark is not None
                and report.reader_timestamp_us < watermark
            ):
                self.stats.reordered += 1
            else:
                self._watermark_us[report.epc] = report.reader_timestamp_us
            screened.append(report)
        screened.sort(key=lambda r: r.reader_timestamp_us)
        if cfg.repair_pi_slips:
            screened = self._repair_pi_slips(screened)
        self.stats.accepted += len(screened)
        self._publish_metrics(before)
        return screened

    def _publish_metrics(self, before: Dict[str, int]) -> None:
        """Push this call's stat deltas into the metrics registry.

        Batch-level (one pass over ~8 counters per ingest call), so the
        columnar path's per-report cost stays zero.  The registry totals
        partition exactly like :class:`QuarantineStats`:
        ``received == sum(tagspin_validator_reports_total{result=*})``.
        """
        if not telemetry_enabled():
            return
        after = self.stats.as_dict()
        registry = get_registry()
        for stat_key, label in _SCREEN_RESULTS:
            delta = after[stat_key] - before[stat_key]
            if delta:
                registry.counter(
                    "tagspin_validator_reports_total",
                    "Ingest screen outcomes; results partition every "
                    "received report.",
                    result=label,
                ).inc(delta)
        for stat_key, label in _REPAIR_KINDS:
            delta = after[stat_key] - before[stat_key]
            if delta:
                registry.counter(
                    "tagspin_validator_repairs_total",
                    "Repairs applied to accepted reports (kept, not "
                    "quarantined).",
                    kind=label,
                ).inc(delta)

    # ------------------------------------------------------------------
    # Per-report screens
    # ------------------------------------------------------------------
    def _screen(self, report: TagReportData) -> bool:
        cfg = self.config
        if report.reader_timestamp_us < 0 or report.host_timestamp_us < 0:
            self.stats.bad_timestamp += 1
            return False
        if not 0 <= report.channel_index < cfg.num_channels:
            self.stats.bad_channel += 1
            return False
        if (
            not math.isfinite(report.phase_rad)
            or report.phase_rad < 0.0
            or report.phase_rad >= cfg.max_phase_rad
        ):
            self.stats.phase_out_of_range += 1
            return False
        if (
            not math.isfinite(report.rssi_dbm)
            or not cfg.rssi_min_dbm <= report.rssi_dbm <= cfg.rssi_max_dbm
        ):
            self.stats.rssi_out_of_range += 1
            return False
        if self._is_duplicate(report):
            self.stats.duplicates += 1
            return False
        watermark = self._watermark_us.get(report.epc)
        if watermark is not None and report.reader_timestamp_us < watermark:
            # Repairable: the pipeline re-sorts by reader timestamp, so the
            # report is kept — but a rising count flags transport trouble.
            self.stats.reordered += 1
        else:
            self._watermark_us[report.epc] = report.reader_timestamp_us
        return True

    def _is_duplicate(self, report: TagReportData) -> bool:
        state = self._dedup.setdefault(report.epc, _DedupState())
        key = (
            report.reader_timestamp_us,
            report.antenna_port,
            report.channel_index,
        )
        if key in state.seen:
            return True
        state.seen.add(key)
        state.order.append(key)
        if len(state.order) > self.config.dedup_memory:
            state.seen.discard(state.order.popleft())
        return False

    # ------------------------------------------------------------------
    # Pi-slip repair
    # ------------------------------------------------------------------
    def _repair_pi_slips(
        self, reports: List[TagReportData]
    ) -> List[TagReportData]:
        cfg = self.config
        band_lo = math.pi - cfg.pi_slip_tolerance_rad
        repaired: List[TagReportData] = []
        for report in reports:
            key = (report.epc, report.channel_index)
            state = self._slip.get(key)
            time_s = report.reader_time_s
            if (
                state is None
                or time_s - state.last_time_s > cfg.pi_slip_max_gap_s
                or time_s < state.last_time_s
            ):
                # First read of the link, or the gap is too long for the
                # small-change assumption: (re)anchor without classifying.
                self._slip[key] = _SlipState(time_s, report.phase_rad)
                repaired.append(report)
                continue
            adjusted = report.phase_rad - (math.pi if state.slipped else 0.0)
            delta = abs(wrap_phase_signed(adjusted - state.last_phase))
            if delta >= band_lo:
                # An abrupt ~pi jump: the demodulator's half-cycle lock
                # flipped between the previous read and this one.
                state.slipped = not state.slipped
                adjusted = report.phase_rad - (
                    math.pi if state.slipped else 0.0
                )
            if state.slipped:
                report = TagReportData(
                    epc=report.epc,
                    antenna_port=report.antenna_port,
                    channel_index=report.channel_index,
                    reader_timestamp_us=report.reader_timestamp_us,
                    host_timestamp_us=report.host_timestamp_us,
                    phase_rad=float(wrap_phase(adjusted)),
                    rssi_dbm=report.rssi_dbm,
                )
                self.stats.pi_slips_repaired += 1
            state.last_time_s = time_s
            state.last_phase = float(wrap_phase(adjusted))
            repaired.append(report)
        return repaired
