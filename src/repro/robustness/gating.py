"""Per-disk spectrum quality scoring and gating.

A localization fix is only as good as its worst disk: one stalled motor
or jammed link yields a garbage bearing that the least-squares
intersection happily averages into the answer.  Before triangulating,
each disk's evidence is scored on four axes:

* **peak power** — the spectrum peak of a matching model approaches 1;
  a collapsed peak means the registry model no longer explains the
  phases (stale record, heavy noise).
* **sharpness** — the ratio of peak to mean spectrum power.  A short
  rotation arc (stalled disk) still *fits* many directions, producing a
  high but broad peak; sharpness exposes that degeneracy where raw peak
  power does not.
* **phase residual** — RMS of the wrapped difference between measured
  relative phases and the far-field model evaluated at the winning
  angle.  Explodes under EMI bursts and pi-slip storms even when a peak
  still forms.
* **rotation coverage** — fraction of rim-angle bins visited by the
  reads, computed from the registry's disk kinematics; the direct
  detector of a stalled motor.

Disks failing any gate are excluded when enough survivors remain
(``min_disks_kept``); with only two disks the gate degrades to a
flag — the fix still computes, but its diagnostics mark it suspect.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.phase import relative_phase_model, wrap_phase_signed
from repro.core.spectrum import AngleSpectrum, JointSpectrum, SnapshotSeries
from repro.server.registry import SpinningTagRecord

#: Gate reason codes (string-matched by operators and tests; the coverage
#: code deliberately matches the health monitor's issue code).
GATE_WEAK_PEAK = "weak-spectrum-peak"
GATE_BROAD_PEAK = "broad-spectrum-peak"
GATE_HIGH_RESIDUAL = "high-phase-residual"
GATE_POOR_COVERAGE = "poor-rotation-coverage"
GATE_NO_DATA = "insufficient-reads"


def starved_quality(epc: str) -> DiskQuality:
    """Quality record for a disk whose series could not even be extracted
    (too few reads on every channel) — always excluded, never kept."""
    return DiskQuality(
        epc=epc,
        peak_power=0.0,
        sharpness=0.0,
        residual_rms_rad=float("inf"),
        rotation_coverage=0.0,
        gate_reasons=(GATE_NO_DATA,),
    )


@dataclass(frozen=True)
class GatingPolicy:
    """Thresholds deciding whether a disk's spectrum is trustworthy."""

    min_peak_power: float = 0.3
    min_sharpness: float = 1.3
    max_residual_rms_rad: float = 2.2
    min_coverage: float = 0.6
    coverage_bins: int = 16
    #: Never gate below this many disks; with exactly this many left the
    #: gate only flags (localization needs >= 2 bearings regardless).
    min_disks_kept: int = 2
    #: Triangulation residual [m] beyond which the enhanced profile R is
    #: suspected mis-calibrated and the pipeline retries with Q.
    fallback_residual_m: float = 0.25


@dataclass(frozen=True)
class DiskQuality:
    """Quality score of one disk's evidence for one fix."""

    epc: str
    peak_power: float
    sharpness: float
    residual_rms_rad: float
    rotation_coverage: float
    gate_reasons: Tuple[str, ...]

    @property
    def passed(self) -> bool:
        return not self.gate_reasons


def rotation_coverage(
    record: SpinningTagRecord,
    times: np.ndarray,
    bins: int = 16,
) -> float:
    """Fraction of rim-angle bins visited, per the registry's kinematics."""
    if times.size == 0:
        return 0.0
    angles = np.mod(
        record.disk.phase0 + record.disk.angular_speed * np.asarray(times),
        2.0 * math.pi,
    )
    visited = np.floor(angles / (2.0 * math.pi) * bins)
    return float(np.unique(visited).size) / bins


def phase_residual_rms(
    series_list: Sequence[SnapshotSeries],
    azimuth: float,
    polar: float = 0.0,
) -> float:
    """RMS wrapped residual of measured vs modeled relative phases [rad]."""
    residuals: List[np.ndarray] = []
    for series in series_list:
        model = relative_phase_model(
            series.times,
            series.wavelength,
            series.radius,
            series.angular_speed,
            azimuth,
            polar,
            phase0=series.phase0,
        )
        residuals.append(
            np.asarray(wrap_phase_signed(series.relative_phases() - model))
        )
    stacked = np.concatenate(residuals) if residuals else np.array([0.0])
    return float(np.sqrt(np.mean(np.square(stacked))))


def score_disk(
    record: SpinningTagRecord,
    series_list: Sequence[SnapshotSeries],
    spectrum: AngleSpectrum | JointSpectrum,
    policy: Optional[GatingPolicy] = None,
) -> DiskQuality:
    """Score one disk's spectrum against the gating policy."""
    policy = policy if policy is not None else GatingPolicy()
    mean_power = float(np.mean(spectrum.power))
    sharpness = spectrum.peak_power / max(mean_power, 1e-12)
    polar = (
        spectrum.peak_polar if isinstance(spectrum, JointSpectrum) else 0.0
    )
    residual = phase_residual_rms(
        series_list, spectrum.peak_azimuth, polar
    )
    times = (
        np.concatenate([s.times for s in series_list])
        if series_list
        else np.array([])
    )
    coverage = rotation_coverage(record, times, policy.coverage_bins)

    reasons: List[str] = []
    if spectrum.peak_power < policy.min_peak_power:
        reasons.append(GATE_WEAK_PEAK)
    if sharpness < policy.min_sharpness:
        reasons.append(GATE_BROAD_PEAK)
    if residual > policy.max_residual_rms_rad:
        reasons.append(GATE_HIGH_RESIDUAL)
    if coverage < policy.min_coverage:
        reasons.append(GATE_POOR_COVERAGE)
    return DiskQuality(
        epc=record.epc,
        peak_power=float(spectrum.peak_power),
        sharpness=float(sharpness),
        residual_rms_rad=residual,
        rotation_coverage=coverage,
        gate_reasons=tuple(reasons),
    )


def select_disks(
    qualities: Sequence[DiskQuality],
    policy: Optional[GatingPolicy] = None,
) -> Tuple[List[str], List[DiskQuality]]:
    """Partition disks into (kept EPCs, excluded qualities).

    Failing disks are dropped worst-first (most gate reasons, then lowest
    sharpness) but never below ``policy.min_disks_kept`` total.
    """
    policy = policy if policy is not None else GatingPolicy()
    failing = sorted(
        (q for q in qualities if not q.passed),
        key=lambda q: (-len(q.gate_reasons), q.sharpness),
    )
    keep = {q.epc for q in qualities}
    excluded: List[DiskQuality] = []
    for quality in failing:
        if len(keep) - 1 < policy.min_disks_kept:
            break
        keep.discard(quality.epc)
        excluded.append(quality)
    kept = [q.epc for q in qualities if q.epc in keep]
    return kept, excluded
