"""Structured diagnostics attached to every fix.

A production fix without provenance is a liability: when the answer is
wrong, the operator needs to know *which* evidence produced it and what
the pipeline discarded along the way.  :class:`PipelineDiagnostics`
records what the gated pipeline did for one localization;
:class:`FixDiagnostics` wraps it with the serving-layer context
(quarantine counters, retries, health, degradation verdict).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Mapping, Tuple

from repro.robustness.gating import DiskQuality
from repro.robustness.validation import QuarantineStats


class DegradationState(str, Enum):
    """Machine-readable service state of one reader-antenna stream."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    FAILED = "failed"


@dataclass(frozen=True)
class DiskExclusion:
    """One disk removed from a fix, with the gate reasons that removed it."""

    epc: str
    reasons: Tuple[str, ...]


@dataclass(frozen=True)
class PipelineDiagnostics:
    """What the gated pipeline did while computing one fix."""

    #: EPCs whose spectra were triangulated.
    disks_used: Tuple[str, ...]
    #: Disks excluded by the quality gate.
    disks_excluded: Tuple[DiskExclusion, ...]
    #: Per-disk quality scores (including excluded disks).
    qualities: Tuple[DiskQuality, ...]
    #: "R" (enhanced) or "Q" (traditional) — which profile produced the fix.
    profile_used: str
    #: True when the R -> Q fallback fired because residuals exploded.
    fallback_applied: bool
    #: Triangulation residual of the returned fix [m].
    residual_m: float

    @property
    def degraded(self) -> bool:
        """The pipeline deviated from the clean path for this fix."""
        return (
            bool(self.disks_excluded)
            or self.fallback_applied
            or any(not q.passed for q in self.qualities)
        )


@dataclass(frozen=True)
class FixDiagnostics:
    """Full provenance of one fix served by the resilient server."""

    reader_name: str
    antenna_port: int
    pipeline: PipelineDiagnostics
    quarantine: QuarantineStats
    degradation: DegradationState
    #: 1 = first attempt succeeded; >1 counts retry rounds.
    attempts: int
    confidence: float
    #: Health-monitor issues per EPC at the last monitor pass (empty
    #: tuple = healthy; stream may not have been monitored yet).
    health_issues: Mapping[str, Tuple[str, ...]] = field(default_factory=dict)

    @property
    def disks_used(self) -> Tuple[str, ...]:
        return self.pipeline.disks_used

    @property
    def disks_excluded(self) -> Tuple[DiskExclusion, ...]:
        return self.pipeline.disks_excluded

    def summary(self) -> Dict[str, object]:
        """Flat, log-friendly rendering of the record."""
        return {
            "reader": self.reader_name,
            "antenna": self.antenna_port,
            "degradation": self.degradation.value,
            "disks_used": list(self.pipeline.disks_used),
            "disks_excluded": {
                e.epc: list(e.reasons) for e in self.pipeline.disks_excluded
            },
            "profile": self.pipeline.profile_used,
            "fallback_applied": self.pipeline.fallback_applied,
            "residual_m": self.pipeline.residual_m,
            "attempts": self.attempts,
            "confidence": self.confidence,
            "quarantine": self.quarantine.as_dict(),
            "health_issues": {
                epc: list(issues) for epc, issues in self.health_issues.items()
            },
        }
