"""Scene construction: rooms, disk deployments and reference-tag grids.

A *scene* bundles the physical world the simulator evaluates in: the office
room, the spinning-tag infrastructure, optional static reference tags (for
the baseline systems) and the reader antennas.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.constants import (
    DEFAULT_ANGULAR_SPEED_RAD_S,
    DEFAULT_CENTER_DISTANCE_M,
    DEFAULT_DISK_RADIUS_M,
    ROOM_LENGTH_M,
    ROOM_WIDTH_M,
)
from repro.core.geometry import Point2, Point3
from repro.errors import ConfigurationError
from repro.hardware.reader import SpinningTagUnit, StaticTagUnit
from repro.hardware.rotator import horizontal_disk
from repro.hardware.tags import make_tag
from repro.rf.multipath import RoomModel, centered_room
from repro.server.registry import SpinningTagRecord, TagRegistry


@dataclass(frozen=True)
class DeploymentSpec:
    """Parameters of the spinning-tag infrastructure."""

    disk_centers: Tuple[Point3, ...] = (
        Point3(-DEFAULT_CENTER_DISTANCE_M / 2.0, 0.0, 0.0),
        Point3(DEFAULT_CENTER_DISTANCE_M / 2.0, 0.0, 0.0),
    )
    disk_radius: float = DEFAULT_DISK_RADIUS_M
    angular_speed: float = DEFAULT_ANGULAR_SPEED_RAD_S
    tag_model: str = "squiggle"

    def __post_init__(self) -> None:
        if len(self.disk_centers) < 1:
            raise ConfigurationError("need at least one disk")
        for i, a in enumerate(self.disk_centers):
            for b in self.disk_centers[i + 1 :]:
                if a.distance_to(b) < 2.0 * self.disk_radius:
                    raise ConfigurationError(
                        "disks overlap: centers closer than two radii"
                    )


@dataclass
class Scene:
    """The simulated world."""

    room: RoomModel
    registry: TagRegistry
    spinning_units: List[SpinningTagUnit]
    reference_units: List[StaticTagUnit] = field(default_factory=list)

    def all_units(self) -> List:
        return list(self.spinning_units) + list(self.reference_units)

    def spinning_unit_for(self, epc: str) -> SpinningTagUnit:
        for unit in self.spinning_units:
            if unit.tag.epc == epc:
                return unit
        raise ConfigurationError(f"no spinning unit with EPC {epc}")


def default_room() -> RoomModel:
    """The paper's office room, centered on the deployment origin."""
    return centered_room(ROOM_WIDTH_M, ROOM_LENGTH_M)


def build_scene(
    spec: DeploymentSpec = DeploymentSpec(),
    rng: Optional[np.random.Generator] = None,
    room: Optional[RoomModel] = None,
    stagger_phase: bool = True,
) -> Scene:
    """Construct the spinning-tag infrastructure described by ``spec``.

    Each disk gets a freshly manufactured tag of ``spec.tag_model`` and a
    registry record.  ``stagger_phase`` offsets each disk's starting angle
    so simultaneous peaks (and the resulting correlated sampling) are
    avoided, as a real deployment naturally would.
    """
    rng = rng if rng is not None else np.random.default_rng()
    registry = TagRegistry()
    units: List[SpinningTagUnit] = []
    for index, center in enumerate(spec.disk_centers):
        phase0 = (
            float(rng.uniform(0.0, 2.0 * math.pi)) if stagger_phase else 0.0
        )
        disk = horizontal_disk(
            center=center,
            radius=spec.disk_radius,
            angular_speed=spec.angular_speed,
            phase0=phase0,
        )
        tag = make_tag(spec.tag_model, rng)
        registry.register(
            SpinningTagRecord(epc=tag.epc, disk=disk, model_key=spec.tag_model)
        )
        units.append(SpinningTagUnit(disk=disk, tag=tag))
    return Scene(
        room=room if room is not None else default_room(),
        registry=registry,
        spinning_units=units,
    )


def reference_grid(
    rows: int,
    columns: int,
    spacing: float,
    origin: Point3 = Point3(0.0, 1.0, 0.0),
    tag_model: str = "squiggle",
    rng: Optional[np.random.Generator] = None,
) -> List[StaticTagUnit]:
    """A grid of static reference tags (LandMARC/PinIt-style infrastructure).

    The grid spans ``rows x columns`` tags, ``spacing`` meters apart,
    centered on ``origin``.
    """
    if rows < 1 or columns < 1:
        raise ValueError("grid must have positive dimensions")
    if spacing <= 0:
        raise ValueError("spacing must be positive")
    rng = rng if rng is not None else np.random.default_rng()
    units = []
    for i in range(rows):
        for j in range(columns):
            x = origin.x + (j - (columns - 1) / 2.0) * spacing
            y = origin.y + (i - (rows - 1) / 2.0) * spacing
            units.append(
                StaticTagUnit(
                    tag=make_tag(tag_model, rng),
                    location=Point3(x, y, origin.z),
                )
            )
    return units


def sample_reader_positions_2d(
    count: int,
    rng: np.random.Generator,
    x_range: Tuple[float, float] = (-2.5, 2.5),
    y_range: Tuple[float, float] = (1.0, 2.6),
    min_disk_distance: float = 0.6,
    disk_centers: Sequence[Point3] = (),
) -> List[Point2]:
    """Random reader poses across the surveillance plane.

    Positions too close to a disk violate the far-field assumption
    (``D >> r``) and are rejected, mirroring the paper's deployment where
    the reader stands "several meters away".
    """
    positions: List[Point2] = []
    attempts = 0
    while len(positions) < count:
        attempts += 1
        if attempts > 100 * count:
            raise ConfigurationError("could not sample enough reader positions")
        candidate = Point2(
            float(rng.uniform(*x_range)), float(rng.uniform(*y_range))
        )
        if all(
            candidate.distance_to(c.horizontal()) >= min_disk_distance
            for c in disk_centers
        ):
            positions.append(candidate)
    return positions


def sample_reader_positions_3d(
    count: int,
    rng: np.random.Generator,
    x_range: Tuple[float, float] = (-2.5, 2.5),
    y_range: Tuple[float, float] = (1.0, 2.6),
    z_range: Tuple[float, float] = (0.1, 1.2),
    min_disk_distance: float = 0.6,
    disk_centers: Sequence[Point3] = (),
) -> List[Point3]:
    """Random 3D reader poses above the disk plane."""
    planar = sample_reader_positions_2d(
        count, rng, x_range, y_range, min_disk_distance, disk_centers
    )
    return [
        Point3(p.x, p.y, float(rng.uniform(*z_range))) for p in planar
    ]
