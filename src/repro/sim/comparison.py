"""Head-to-head comparison of Tagspin against the four baselines (VII-B).

The paper quotes the published accuracy of LandMARC, AntLoc, PinIt and
BackPos; here the comparison is run *live* — every system localizes the
same reader poses on the same simulated physical substrate:

* **Tagspin** uses the two spinning tags.
* **LandMARC** uses a grid of static reference tags and RSSI fingerprints.
* **AntLoc** physically rotates the reader's directional antenna and
  triangulates bearings to the reference tags.
* **PinIt** DTW-matches frequency-domain profiles of the reference tags
  (collected with frequency hopping, in a multipath room).
* **BackPos** uses calibrated pairwise phase differences of the reference
  tags (hyperbolic positioning).

All systems run in the *same multipath office* (image-method wall
reflections) — the paper's deployment was a real office, and multipath is
precisely what separates the systems: the SAR-style profiles (Tagspin,
PinIt) tolerate it, RSS-pattern methods (LandMARC, AntLoc) and raw phase
differences (BackPos) degrade.  BackPos is additionally restricted to four
reference tags, matching the four antennas of the published system.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

import numpy as np

from repro.baselines.antloc import AntlocLocalizer, bearing_from_scan, run_antenna_scan
from repro.baselines.backpos import BackposLocalizer
from repro.baselines.base import BaselineFix
from repro.baselines.landmarc import LandmarcLocalizer
from repro.baselines.pinit import PinitLocalizer
from repro.core.geometry import Point2, Point3
from repro.errors import InsufficientDataError, TagspinError
from repro.hardware.clock import ClockModel
from repro.hardware.llrp import ROSpec
from repro.hardware.reader import ReaderConfig, SimulatedReader
from repro.rf.antenna import AntennaPort, PanelAntenna
from repro.rf.channel import BackscatterChannel
from repro.rf.multipath import RoomModel
from repro.sim.metrics import ErrorCollection, ErrorSample, ErrorSummary
from repro.sim.scenario import TagspinScenario
from repro.sim.scene import reference_grid, sample_reader_positions_2d


@dataclass
class SystemResult:
    """Error samples of one system across the comparison poses."""

    name: str
    errors: ErrorCollection = field(default_factory=ErrorCollection)
    failures: int = 0

    def summary(self) -> ErrorSummary:
        return self.errors.summary()


class BaselineComparison:
    """Runs every system over the same random reader poses."""

    def __init__(
        self,
        scenario: TagspinScenario,
        grid_rows: int = 3,
        grid_columns: int = 4,
        grid_spacing: float = 0.8,
        seed: int = 7,
    ) -> None:
        self.scenario = scenario
        self.rng = np.random.default_rng(seed)
        self.reference_units = reference_grid(
            grid_rows,
            grid_columns,
            grid_spacing,
            origin=Point3(0.0, 1.6, 0.0),
            rng=self.rng,
        )
        # Everyone, Tagspin included, lives in the same multipath office.
        # The effective reflection coefficient is set below the bare-wall
        # figure because every system here uses circularly polarized reader
        # antennas: a specular bounce reverses the CP handedness, so
        # single-bounce paths suffer the antenna's cross-pol rejection.
        base = scenario.scene.room
        self.room = RoomModel(
            base.x0, base.x1, base.y0, base.y1, reflection_coefficient=0.2
        )
        noise = scenario.config.noise
        self.channel = BackscatterChannel(noise=noise, room=self.room)
        scenario.channel.room = self.room

        self.landmarc = LandmarcLocalizer(self.reference_units)
        corners = [
            self.reference_units[0],
            self.reference_units[grid_columns - 1],
            self.reference_units[(grid_rows - 1) * grid_columns],
            self.reference_units[grid_rows * grid_columns - 1],
        ]
        # BackPos gets five well-spread references — close to the published
        # system's four antennas (four corners leave residual lobe aliasing
        # that the real system's feasible-region constraint rules out; the
        # fifth reference plays that role here, alongside the RSSI-grade
        # prior passed at locate time).
        middle_row = grid_rows // 2
        self.backpos = BackposLocalizer(
            corners + [self.reference_units[middle_row * grid_columns]]
        )
        self.pinit = PinitLocalizer(self.reference_units, room=self.room)
        # AntLoc likewise worked with a handful of tags and a coarse
        # mechanical scan (published accuracy ~tens of cm).
        self.antloc = AntlocLocalizer(corners)
        self._antloc_units = corners
        self._antloc_steps = 8

    # ------------------------------------------------------------------
    # Collection helpers
    # ------------------------------------------------------------------
    def _make_reader(
        self,
        position: Point2,
        hopping: bool,
        boresight: Optional[float] = None,
        rssi_bias_db: Optional[float] = None,
    ) -> SimulatedReader:
        pattern = (
            PanelAntenna(boresight_azimuth=boresight)
            if boresight is not None
            else PanelAntenna(
                boresight_azimuth=math.atan2(-position.y, -position.x),
                beamwidth=math.radians(170.0),
                front_back_ratio_db=3.0,
            )
        )
        antenna = AntennaPort(
            port_id=1,
            position=Point3(position.x, position.y, 0.0),
            pattern=pattern,
            diversity_rad=float(self.rng.uniform(0.0, 2.0 * math.pi)),
        )
        return SimulatedReader(
            antennas=[antenna],
            channel=self.channel,
            clock=ClockModel(),
            config=ReaderConfig(
                frequency_hopping=hopping, hop_interval_s=0.2
            ),
            rng=self.rng,
            rssi_bias_db=rssi_bias_db,
        )

    def _collect_aperture(self, position: Point2, dwell_s: float = 1.5):
        """PinIt's collection: one antenna moved along a 4-position slider.

        One physical antenna means one shared diversity constant across the
        aperture positions — the property PinIt's relative phases rely on.
        """
        shared_diversity = float(self.rng.uniform(0.0, 2.0 * math.pi))
        omni = PanelAntenna(
            boresight_azimuth=math.atan2(-position.y, -position.x),
            beamwidth=math.radians(170.0),
            front_back_ratio_db=3.0,
        )
        antennas = [
            AntennaPort(
                port_id=index + 1,
                position=Point3(position.x + dx, position.y, 0.0),
                pattern=omni,
                diversity_rad=shared_diversity,
            )
            for index, dx in enumerate(self.pinit.aperture_offsets)
        ]
        reader = SimulatedReader(
            antennas=antennas,
            channel=self.channel,
            clock=ClockModel(),
            config=ReaderConfig(frequency_hopping=False),
            rng=self.rng,
        )
        ports = tuple(range(1, len(antennas) + 1))
        return reader.run(
            self.reference_units,
            ROSpec(duration_s=dwell_s, antenna_ports=ports),
        )

    def _collect_fixed(self, position: Point2, duration_s: float = 2.0):
        reader = self._make_reader(position, hopping=False)
        return reader.run(self.reference_units, ROSpec(duration_s=duration_s))

    def _collect_hopping(self, position: Point2, duration_s: float = 6.5):
        reader = self._make_reader(position, hopping=True)
        return reader.run(self.reference_units, ROSpec(duration_s=duration_s))

    def _antloc_bearings(self, position: Point2) -> Dict[str, float]:
        # One physical reader rotates its antenna, so the absolute RSSI
        # bias is constant across the whole scan.
        scan_bias = float(self.rng.normal(0.0, 2.0))

        def factory(boresight: float) -> SimulatedReader:
            return self._make_reader(
                position,
                hopping=False,
                boresight=boresight,
                rssi_bias_db=scan_bias,
            )

        boresights = np.linspace(
            0.0, 2.0 * math.pi, self._antloc_steps, endpoint=False
        )
        scan = run_antenna_scan(factory, self._antloc_units, boresights)
        bearings = {}
        for epc, rssi in scan.rssi.items():
            try:
                bearings[epc] = bearing_from_scan(scan.boresights, rssi)
            except InsufficientDataError:
                continue
        return bearings

    # ------------------------------------------------------------------
    # The comparison
    # ------------------------------------------------------------------
    def calibrate(self, known_pose: Optional[Point2] = None) -> None:
        """One-off deployment calibration: Tagspin's orientation prelude and
        BackPos's pairwise offsets, both from a known reader pose."""
        pose = (
            known_pose
            if known_pose is not None
            else self.scenario.config.calibration_pose.horizontal()
        )
        self.scenario.run_orientation_prelude()
        batch = self._collect_hopping(pose, duration_s=6.0)
        self.backpos.calibrate_offsets(batch, pose)

    def run(
        self, poses: Optional[Sequence[Point2]] = None, trials: int = 10
    ) -> List[SystemResult]:
        if poses is None:
            centers = [u.disk.center for u in self.scenario.scene.spinning_units]
            poses = sample_reader_positions_2d(
                trials, self.rng, disk_centers=centers
            )
        results = {
            name: SystemResult(name=name)
            for name in ["Tagspin", "LandMARC", "AntLoc", "PinIt", "BackPos"]
        }
        for pose in poses:
            self._run_tagspin(pose, results["Tagspin"])
            coarse_fix = self._run_baseline(
                results["LandMARC"],
                pose,
                lambda: self.landmarc.locate(self._collect_fixed(pose)),
            )
            self._run_baseline(
                results["AntLoc"], pose, lambda: self._antloc_fix(pose)
            )
            self._run_baseline(
                results["PinIt"],
                pose,
                lambda: self.pinit.locate(self._collect_aperture(pose)),
            )
            # BackPos's feasible-region prior comes from the RSSI-grade fix.
            prior = coarse_fix.position if coarse_fix is not None else None
            self._run_baseline(
                results["BackPos"],
                pose,
                lambda: self.backpos.locate(
                    self._collect_hopping(pose), prior_center=prior
                ),
            )
        return list(results.values())

    def _antloc_fix(self, pose: Point2) -> BaselineFix:
        self.antloc.set_bearings(self._antloc_bearings(pose))
        return self.antloc.locate_from_bearings()

    def _run_tagspin(self, pose: Point2, result: SystemResult) -> None:
        try:
            _fix, error = self.scenario.locate_2d(pose)
        except TagspinError:
            result.failures += 1
            return
        result.errors.add(error)

    def _run_baseline(
        self,
        result: SystemResult,
        pose: Point2,
        runner: Callable[[], BaselineFix],
    ) -> Optional[BaselineFix]:
        try:
            fix = runner()
        except TagspinError:
            result.failures += 1
            return None
        result.errors.add(
            ErrorSample(
                x=abs(fix.position.x - pose.x), y=abs(fix.position.y - pose.y)
            )
        )
        return fix


def format_comparison_table(results: Sequence[SystemResult]) -> str:
    """Render the VII-B comparison with improvement factors over Tagspin."""
    tagspin = next(r for r in results if r.name == "Tagspin")
    tagspin_mean = tagspin.summary().mean
    lines = [
        f"{'system':>10} | mean_cm | std_cm | p90_cm | factor_vs_tagspin | fails"
    ]
    lines.append("-" * len(lines[0]))
    for result in results:
        stats = result.summary().as_centimeters()
        factor = result.summary().mean / tagspin_mean
        lines.append(
            f"{result.name:>10} | {stats['mean_cm']:>7.2f} | "
            f"{stats['std_cm']:>6.2f} | {stats['p90_cm']:>6.2f} | "
            f"{factor:>17.2f} | {result.failures:>5d}"
        )
    return "\n".join(lines)
