"""Evaluation metrics: error distances, CDFs and summary statistics.

The paper's basic metric is the *error distance* — the Euclidean distance
between the estimated and true position — reported per axis and combined,
as a mean with standard deviation and as CDFs (Figs 10-12).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class ErrorSample:
    """Per-axis and combined error of one localization trial [m]."""

    x: float
    y: float
    z: Optional[float] = None

    @property
    def combined(self) -> float:
        parts = [self.x, self.y] + ([self.z] if self.z is not None else [])
        return float(np.sqrt(np.sum(np.square(parts))))


@dataclass(frozen=True)
class Cdf:
    """Empirical CDF of a sample of non-negative values."""

    values: np.ndarray
    probabilities: np.ndarray

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "Cdf":
        values = np.sort(np.asarray(samples, dtype=float))
        if values.size == 0:
            raise ValueError("cannot build a CDF from no samples")
        probabilities = np.arange(1, values.size + 1) / values.size
        return cls(values, probabilities)

    def percentile(self, p: float) -> float:
        """Value at probability ``p`` (0 < p <= 1)."""
        if not 0.0 < p <= 1.0:
            raise ValueError("p must be in (0, 1]")
        index = int(np.searchsorted(self.probabilities, p, side="left"))
        index = min(index, self.values.size - 1)
        return float(self.values[index])

    def probability_below(self, value: float) -> float:
        """Fraction of samples <= ``value``."""
        return float(np.searchsorted(self.values, value, side="right")
                     / self.values.size)


@dataclass(frozen=True)
class ErrorSummary:
    """Summary statistics the paper tables report."""

    mean: float
    std: float
    median: float
    p90: float
    minimum: float
    maximum: float
    count: int

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "ErrorSummary":
        values = np.asarray(samples, dtype=float)
        if values.size == 0:
            raise ValueError("cannot summarize no samples")
        return cls(
            mean=float(np.mean(values)),
            std=float(np.std(values)),
            median=float(np.median(values)),
            p90=float(np.percentile(values, 90)),
            minimum=float(np.min(values)),
            maximum=float(np.max(values)),
            count=int(values.size),
        )

    def as_centimeters(self) -> Dict[str, float]:
        """Presentation helper: all length stats converted to cm."""
        return {
            "mean_cm": self.mean * 100.0,
            "std_cm": self.std * 100.0,
            "median_cm": self.median * 100.0,
            "p90_cm": self.p90 * 100.0,
            "min_cm": self.minimum * 100.0,
            "max_cm": self.maximum * 100.0,
            "count": self.count,
        }


@dataclass
class ErrorCollection:
    """Accumulates :class:`ErrorSample` across trials."""

    samples: List[ErrorSample] = field(default_factory=list)

    def add(self, sample: ErrorSample) -> None:
        self.samples.append(sample)

    def __len__(self) -> int:
        return len(self.samples)

    def axis(self, name: str) -> np.ndarray:
        if name == "combined":
            return np.array([s.combined for s in self.samples])
        values = [getattr(s, name) for s in self.samples]
        if any(v is None for v in values):
            raise ValueError(f"axis {name!r} missing in some samples")
        return np.asarray(values, dtype=float)

    def summary(self, axis: str = "combined") -> ErrorSummary:
        return ErrorSummary.from_samples(self.axis(axis))

    def cdf(self, axis: str = "combined") -> Cdf:
        return Cdf.from_samples(self.axis(axis))


def improvement_factor(baseline_mean: float, improved_mean: float) -> float:
    """How many times smaller the improved error is (paper's 'x' factors)."""
    if improved_mean <= 0:
        raise ValueError("improved mean must be positive")
    return baseline_mean / improved_mean
