"""Recording and replaying measurement sessions.

A *session recording* bundles everything needed to re-run localization
offline: the LLRP report stream, the registry contents and the ground-truth
reader pose.  Useful for regression tests, debugging and for sharing
captured campaigns (the JSON format is stable and versioned).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.core.calibration import FourierSeries, OrientationProfile
from repro.core.geometry import Point3
from repro.errors import ConfigurationError
from repro.hardware.llrp import ReportBatch, TagReportData
from repro.hardware.rotator import SpinningDisk
from repro.server.registry import SpinningTagRecord, TagRegistry

FORMAT_VERSION = 1


def _profile_to_dict(profile: Optional[OrientationProfile]) -> Optional[Dict]:
    if profile is None:
        return None
    return {
        "a0": profile.series.a0,
        "cosine": list(profile.series.cosine),
        "sine": list(profile.series.sine),
    }


def _profile_from_dict(data: Optional[Dict]) -> Optional[OrientationProfile]:
    if data is None:
        return None
    import numpy as np

    return OrientationProfile(
        FourierSeries(
            a0=float(data["a0"]),
            cosine=np.asarray(data["cosine"], dtype=float),
            sine=np.asarray(data["sine"], dtype=float),
        )
    )


def _disk_to_dict(disk: SpinningDisk) -> Dict:
    return {
        "center": [disk.center.x, disk.center.y, disk.center.z],
        "radius": disk.radius,
        "angular_speed": disk.angular_speed,
        "phase0": disk.phase0,
        "mount": disk.mount.value,
        "basis_u": list(disk.basis_u),
        "basis_v": list(disk.basis_v),
    }


def _disk_from_dict(data: Dict) -> SpinningDisk:
    from repro.hardware.rotator import Mount

    return SpinningDisk(
        center=Point3(*data["center"]),
        radius=float(data["radius"]),
        angular_speed=float(data["angular_speed"]),
        phase0=float(data["phase0"]),
        mount=Mount(data["mount"]),
        basis_u=tuple(data["basis_u"]),
        basis_v=tuple(data["basis_v"]),
    )


@dataclass
class SessionRecording:
    """A replayable capture of one measurement session.

    The registry snapshot includes each tag's fitted orientation profile
    (when present) — it is server state, and replays need it to reproduce
    the calibrated pipeline exactly.
    """

    batch: ReportBatch
    registry_records: List[SpinningTagRecord]
    truth: Optional[Point3] = None
    label: str = ""

    def to_dict(self) -> Dict:
        return {
            "version": FORMAT_VERSION,
            "label": self.label,
            "truth": (
                [self.truth.x, self.truth.y, self.truth.z]
                if self.truth is not None
                else None
            ),
            "registry": [
                {
                    "epc": record.epc,
                    "model_key": record.model_key,
                    "disk": _disk_to_dict(record.disk),
                    "orientation_profile": _profile_to_dict(
                        record.orientation_profile
                    ),
                }
                for record in self.registry_records
            ],
            "reports": [report.to_dict() for report in self.batch.reports],
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SessionRecording":
        version = data.get("version")
        if version != FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported recording version {version!r}"
            )
        truth = data.get("truth")
        return cls(
            batch=ReportBatch(
                [TagReportData.from_dict(item) for item in data["reports"]]
            ),
            registry_records=[
                SpinningTagRecord(
                    epc=item["epc"],
                    disk=_disk_from_dict(item["disk"]),
                    model_key=item.get("model_key", "squiggle"),
                    orientation_profile=_profile_from_dict(
                        item.get("orientation_profile")
                    ),
                )
                for item in data["registry"]
            ],
            truth=Point3(*truth) if truth is not None else None,
            label=data.get("label", ""),
        )

    def build_registry(self) -> TagRegistry:
        registry = TagRegistry()
        for record in self.registry_records:
            registry.register(record)
        return registry

    def save(self, path: str | Path) -> None:
        Path(path).write_text(json.dumps(self.to_dict()))

    @classmethod
    def load(cls, path: str | Path) -> "SessionRecording":
        return cls.from_dict(json.loads(Path(path).read_text()))
