"""Fault injection on report streams.

Real deployments fail in ways the clean simulator never shows: readers
drop reports under load, interference bursts randomize phases for a spell,
disk motors stall, cables cut a tag's reads entirely.  These transforms
inject such faults into a recorded :class:`ReportBatch` so tests and
benchmarks can verify two properties of the stack:

* the pipeline either still produces an accurate fix or raises
  :class:`~repro.errors.InsufficientDataError` — it must not silently emit
  a wild position; and
* the deployment monitor (`repro.server.health`) flags the fault.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.hardware.llrp import ReportBatch, TagReportData
from repro.hardware.rotator import SpinningDisk


def drop_reads(
    batch: ReportBatch,
    fraction: float,
    rng: np.random.Generator,
    epc: Optional[str] = None,
) -> ReportBatch:
    """Randomly drop ``fraction`` of the reads (optionally of one tag)."""
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError("fraction must be in [0, 1]")
    kept: List[TagReportData] = []
    for report in batch.reports:
        if (epc is None or report.epc == epc) and rng.random() < fraction:
            continue
        kept.append(report)
    return ReportBatch(kept)


def silence_tag(batch: ReportBatch, epc: str) -> ReportBatch:
    """Remove every read of one tag (detuned tag / torn antenna)."""
    return ReportBatch([r for r in batch.reports if r.epc != epc])


def jam_window(
    batch: ReportBatch,
    start_s: float,
    end_s: float,
    rng: np.random.Generator,
) -> ReportBatch:
    """Randomize the phase of reads inside a time window (EMI burst)."""
    if end_s <= start_s:
        raise ConfigurationError("end_s must exceed start_s")
    transformed: List[TagReportData] = []
    for report in batch.reports:
        if start_s <= report.reader_time_s <= end_s:
            report = TagReportData(
                epc=report.epc,
                antenna_port=report.antenna_port,
                channel_index=report.channel_index,
                reader_timestamp_us=report.reader_timestamp_us,
                host_timestamp_us=report.host_timestamp_us,
                phase_rad=float(rng.uniform(0.0, 2.0 * math.pi)),
                rssi_dbm=report.rssi_dbm,
            )
        transformed.append(report)
    return ReportBatch(transformed)


def stall_disk(
    batch: ReportBatch,
    disk: SpinningDisk,
    epc: str,
    stuck_fraction: float = 0.12,
) -> ReportBatch:
    """Keep only the reads from a small slice of the rotation.

    Approximates a stalled motor: the tag keeps answering, but always from
    (nearly) the same rim angle, destroying the synthetic aperture.
    """
    if not 0.0 < stuck_fraction <= 1.0:
        raise ConfigurationError("stuck_fraction must be in (0, 1]")
    period = disk.period
    kept: List[TagReportData] = []
    for report in batch.reports:
        if report.epc != epc:
            kept.append(report)
            continue
        if (report.reader_time_s % period) < stuck_fraction * period:
            kept.append(report)
    return ReportBatch(kept)


def bias_timestamps(
    batch: ReportBatch, drift_ppm: float
) -> ReportBatch:
    """Apply a clock-drift error to the reader timestamps.

    Models a reader whose crystal drifted since the disk controller was
    synchronized: the server's disk-angle model slowly walks away from the
    physical disk.
    """
    transformed: List[TagReportData] = []
    scale = 1.0 + drift_ppm * 1e-6
    for report in batch.reports:
        transformed.append(
            TagReportData(
                epc=report.epc,
                antenna_port=report.antenna_port,
                channel_index=report.channel_index,
                # round, not int: truncation would swallow sub-ppm drifts
                # entirely for small timestamps and bias all others low.
                reader_timestamp_us=round(report.reader_timestamp_us * scale),
                host_timestamp_us=report.host_timestamp_us,
                phase_rad=report.phase_rad,
                rssi_dbm=report.rssi_dbm,
            )
        )
    return ReportBatch(transformed)


def skew_clock(batch: ReportBatch, offset_us: int) -> ReportBatch:
    """Shift every reader timestamp by a constant offset.

    Models clock *skew* between readers sharing one deployment (each
    reader free-runs from a different power-up instant), as opposed to
    :func:`bias_timestamps`' proportional *drift*.  Because the disks'
    reference phases are anchored to the deployment clock, a constant
    offset rotates every disk's apparent phase by ``angular_speed *
    offset`` and biases the skewed stream's fix — *unless* the offset is
    a whole number of disk rotations, which is phase-consistent and must
    leave fixes untouched.  The fleet chaos harness exercises both arms.
    """
    offset_us = int(offset_us)
    transformed: List[TagReportData] = []
    for report in batch.reports:
        shifted = report.reader_timestamp_us + offset_us
        if shifted < 0:
            raise ConfigurationError(
                f"offset_us={offset_us} drives reader timestamp "
                f"{report.reader_timestamp_us} negative"
            )
        transformed.append(
            TagReportData(
                epc=report.epc,
                antenna_port=report.antenna_port,
                channel_index=report.channel_index,
                reader_timestamp_us=shifted,
                host_timestamp_us=report.host_timestamp_us,
                phase_rad=report.phase_rad,
                rssi_dbm=report.rssi_dbm,
            )
        )
    return ReportBatch(transformed)


def duplicate_reports(
    batch: ReportBatch,
    fraction: float,
    rng: np.random.Generator,
) -> ReportBatch:
    """Deliver ``fraction`` of the reports twice (LLRP/TCP retransmission).

    Each duplicate arrives immediately after its original, as a
    retransmitting transport would deliver it.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError("fraction must be in [0, 1]")
    delivered: List[TagReportData] = []
    for report in batch.reports:
        delivered.append(report)
        if rng.random() < fraction:
            delivered.append(report)
    return ReportBatch(delivered)


def shuffle_reports(
    batch: ReportBatch, rng: np.random.Generator
) -> ReportBatch:
    """Permute the delivery order (multi-threaded collector reordering).

    Timestamps stay attached to their reads — only the *arrival order*
    is scrambled, which is what a congested transport actually does.
    """
    order = rng.permutation(len(batch.reports))
    return ReportBatch([batch.reports[i] for i in order])


def pi_slips(
    batch: ReportBatch,
    probability: float,
    rng: np.random.Generator,
    epc: Optional[str] = None,
) -> ReportBatch:
    """Offset random reads' phases by +pi (demodulator half-cycle slips)."""
    if not 0.0 <= probability <= 1.0:
        raise ConfigurationError("probability must be in [0, 1]")
    transformed: List[TagReportData] = []
    for report in batch.reports:
        if (epc is None or report.epc == epc) and rng.random() < probability:
            report = TagReportData(
                epc=report.epc,
                antenna_port=report.antenna_port,
                channel_index=report.channel_index,
                reader_timestamp_us=report.reader_timestamp_us,
                host_timestamp_us=report.host_timestamp_us,
                phase_rad=float((report.phase_rad + math.pi) % (2.0 * math.pi)),
                rssi_dbm=report.rssi_dbm,
            )
        transformed.append(report)
    return ReportBatch(transformed)


def corrupt_quantization(
    batch: ReportBatch,
    fraction: float,
    rng: np.random.Generator,
) -> ReportBatch:
    """Corrupt the 12-bit phase word of ``fraction`` of the reports.

    Impinj readers encode phase as a 12-bit angle (1/4096 of a circle) in
    a 16-bit field; a framing error that leaks the upper bits yields a
    code in [4096, 8192) — a decoded phase in [2*pi, 4*pi), provably out
    of range.  The report validator must reject these.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError("fraction must be in [0, 1]")
    transformed: List[TagReportData] = []
    for report in batch.reports:
        if rng.random() < fraction:
            bad_code = int(rng.integers(4096, 8192))
            report = TagReportData(
                epc=report.epc,
                antenna_port=report.antenna_port,
                channel_index=report.channel_index,
                reader_timestamp_us=report.reader_timestamp_us,
                host_timestamp_us=report.host_timestamp_us,
                phase_rad=bad_code / 4096.0 * 2.0 * math.pi,
                rssi_dbm=report.rssi_dbm,
            )
        transformed.append(report)
    return ReportBatch(transformed)


def chain(
    batch: ReportBatch,
    *transforms: Callable[[ReportBatch], ReportBatch],
) -> ReportBatch:
    """Apply fault transforms in sequence."""
    for transform in transforms:
        batch = transform(batch)
    return batch
