"""Fault injection on report streams.

Real deployments fail in ways the clean simulator never shows: readers
drop reports under load, interference bursts randomize phases for a spell,
disk motors stall, cables cut a tag's reads entirely.  These transforms
inject such faults into a recorded :class:`ReportBatch` so tests and
benchmarks can verify two properties of the stack:

* the pipeline either still produces an accurate fix or raises
  :class:`~repro.errors.InsufficientDataError` — it must not silently emit
  a wild position; and
* the deployment monitor (`repro.server.health`) flags the fault.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.hardware.llrp import ReportBatch, TagReportData
from repro.hardware.rotator import SpinningDisk


def drop_reads(
    batch: ReportBatch,
    fraction: float,
    rng: np.random.Generator,
    epc: Optional[str] = None,
) -> ReportBatch:
    """Randomly drop ``fraction`` of the reads (optionally of one tag)."""
    if not 0.0 <= fraction <= 1.0:
        raise ConfigurationError("fraction must be in [0, 1]")
    kept: List[TagReportData] = []
    for report in batch.reports:
        if (epc is None or report.epc == epc) and rng.random() < fraction:
            continue
        kept.append(report)
    return ReportBatch(kept)


def silence_tag(batch: ReportBatch, epc: str) -> ReportBatch:
    """Remove every read of one tag (detuned tag / torn antenna)."""
    return ReportBatch([r for r in batch.reports if r.epc != epc])


def jam_window(
    batch: ReportBatch,
    start_s: float,
    end_s: float,
    rng: np.random.Generator,
) -> ReportBatch:
    """Randomize the phase of reads inside a time window (EMI burst)."""
    if end_s <= start_s:
        raise ConfigurationError("end_s must exceed start_s")
    transformed: List[TagReportData] = []
    for report in batch.reports:
        if start_s <= report.reader_time_s <= end_s:
            report = TagReportData(
                epc=report.epc,
                antenna_port=report.antenna_port,
                channel_index=report.channel_index,
                reader_timestamp_us=report.reader_timestamp_us,
                host_timestamp_us=report.host_timestamp_us,
                phase_rad=float(rng.uniform(0.0, 2.0 * math.pi)),
                rssi_dbm=report.rssi_dbm,
            )
        transformed.append(report)
    return ReportBatch(transformed)


def stall_disk(
    batch: ReportBatch,
    disk: SpinningDisk,
    epc: str,
    stuck_fraction: float = 0.12,
) -> ReportBatch:
    """Keep only the reads from a small slice of the rotation.

    Approximates a stalled motor: the tag keeps answering, but always from
    (nearly) the same rim angle, destroying the synthetic aperture.
    """
    if not 0.0 < stuck_fraction <= 1.0:
        raise ConfigurationError("stuck_fraction must be in (0, 1]")
    period = disk.period
    kept: List[TagReportData] = []
    for report in batch.reports:
        if report.epc != epc:
            kept.append(report)
            continue
        if (report.reader_time_s % period) < stuck_fraction * period:
            kept.append(report)
    return ReportBatch(kept)


def bias_timestamps(
    batch: ReportBatch, drift_ppm: float
) -> ReportBatch:
    """Apply a clock-drift error to the reader timestamps.

    Models a reader whose crystal drifted since the disk controller was
    synchronized: the server's disk-angle model slowly walks away from the
    physical disk.
    """
    transformed: List[TagReportData] = []
    scale = 1.0 + drift_ppm * 1e-6
    for report in batch.reports:
        transformed.append(
            TagReportData(
                epc=report.epc,
                antenna_port=report.antenna_port,
                channel_index=report.channel_index,
                reader_timestamp_us=int(report.reader_timestamp_us * scale),
                host_timestamp_us=report.host_timestamp_us,
                phase_rad=report.phase_rad,
                rssi_dbm=report.rssi_dbm,
            )
        )
    return ReportBatch(transformed)


def chain(
    batch: ReportBatch,
    *transforms: Callable[[ReportBatch], ReportBatch],
) -> ReportBatch:
    """Apply fault transforms in sequence."""
    for transform in transforms:
        batch = transform(batch)
    return batch
