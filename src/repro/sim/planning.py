"""Deployment planning: predicted accuracy maps for disk placement.

Before installing the spinning-tag infrastructure, an operator wants to
know how well a given disk layout will localize readers across the room.
This module predicts that from first principles:

* the **bearing error** of one disk follows from the phase-noise level, the
  disk radius and the snapshot count (a Cramér–Rao-style scaling: the
  azimuth enters the phase through ``4*pi*r/lambda * cos(omega t - phi)``,
  so the per-snapshot Fisher information is ``(4*pi*r/lambda)^2 *
  sin^2(...) / sigma^2`` and averaging the sine over a full rotation gives
  the 1/2 factor);
* the **position covariance** follows from intersecting two (or more)
  noisy bearings — the classical triangulation dilution: each bearing
  constrains the position transverse to its line with standard deviation
  ``D_k * sigma_phi``, and the information matrices add.

The predictions are *a priori* (no data needed) and validated against the
simulator by the geometry ablation benchmark.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.constants import (
    DEFAULT_WAVELENGTH_M,
    PHASE_NOISE_STD_RAD,
)
from repro.core.geometry import Point2
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PlannedDisk:
    """One disk of a planned deployment."""

    center: Point2
    radius: float = 0.10

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ConfigurationError("disk radius must be positive")


def bearing_error_std(
    radius: float,
    snapshots: int,
    phase_std: float = PHASE_NOISE_STD_RAD,
    wavelength: float = DEFAULT_WAVELENGTH_M,
) -> float:
    """Predicted azimuth-estimate standard deviation [rad] for one disk.

    CRB-style: ``sigma_phi = sigma_theta / (4*pi*r/lambda) * sqrt(2/n)``.
    The sqrt(2) comes from averaging ``sin^2`` over a uniform rotation.
    """
    if radius <= 0 or snapshots < 2:
        raise ValueError("radius must be positive and snapshots >= 2")
    sensitivity = 4.0 * math.pi * radius / wavelength
    return phase_std / sensitivity * math.sqrt(2.0 / snapshots)


def position_covariance(
    target: Point2,
    disks: Sequence[PlannedDisk],
    sigma_phi: Sequence[float],
) -> np.ndarray:
    """2x2 covariance of the triangulated position at ``target``.

    Each disk contributes information ``1 / (D_k * sigma_phi_k)^2`` along
    the direction transverse to its bearing; the total information matrix
    is inverted to a covariance.  Raises when the geometry is degenerate
    (all bearings parallel).
    """
    if len(disks) < 2 or len(disks) != len(sigma_phi):
        raise ValueError("need >= 2 disks with one sigma each")
    information = np.zeros((2, 2))
    for disk, sigma in zip(disks, sigma_phi):
        if sigma <= 0:
            raise ValueError("sigma_phi must be positive")
        dx = target.x - disk.center.x
        dy = target.y - disk.center.y
        distance = math.hypot(dx, dy)
        if distance < 1e-9:
            continue  # on top of a disk: that disk constrains nothing
        # Unit vector transverse to the bearing.
        transverse = np.array([-dy, dx]) / distance
        weight = 1.0 / (distance * sigma) ** 2
        information += weight * np.outer(transverse, transverse)
    if np.linalg.cond(information) > 1e12:
        raise ConfigurationError("degenerate geometry: bearings parallel")
    return np.linalg.inv(information)


def predicted_rmse(
    target: Point2,
    disks: Sequence[PlannedDisk],
    snapshots: int = 250,
    phase_std: float = PHASE_NOISE_STD_RAD,
    wavelength: float = DEFAULT_WAVELENGTH_M,
) -> float:
    """Predicted RMS position error [m] at ``target`` for a disk layout."""
    sigmas = [
        bearing_error_std(d.radius, snapshots, phase_std, wavelength)
        for d in disks
    ]
    covariance = position_covariance(target, disks, sigmas)
    return float(math.sqrt(np.trace(covariance)))


@dataclass(frozen=True)
class AccuracyMap:
    """Predicted RMSE over a grid of candidate reader positions."""

    xs: np.ndarray
    ys: np.ndarray
    rmse: np.ndarray  # shape (len(ys), len(xs)); NaN where degenerate

    def at(self, target: Point2) -> float:
        """Predicted RMSE at the grid point nearest ``target``."""
        i = int(np.argmin(np.abs(self.ys - target.y)))
        j = int(np.argmin(np.abs(self.xs - target.x)))
        return float(self.rmse[i, j])

    def coverage_fraction(self, threshold: float) -> float:
        """Fraction of the mapped region with predicted RMSE <= threshold."""
        valid = np.isfinite(self.rmse)
        if not np.any(valid):
            return 0.0
        return float(np.mean(self.rmse[valid] <= threshold))


def accuracy_map(
    disks: Sequence[PlannedDisk],
    x_range: Tuple[float, float],
    y_range: Tuple[float, float],
    resolution: float = 0.25,
    snapshots: int = 250,
    phase_std: float = PHASE_NOISE_STD_RAD,
    wavelength: float = DEFAULT_WAVELENGTH_M,
    min_disk_distance: float = 0.3,
) -> AccuracyMap:
    """Predicted-RMSE map over the surveillance region.

    Points closer than ``min_disk_distance`` to a disk (far-field breaks
    down) or with degenerate geometry are NaN.
    """
    xs = np.arange(x_range[0], x_range[1] + resolution / 2, resolution)
    ys = np.arange(y_range[0], y_range[1] + resolution / 2, resolution)
    rmse = np.full((ys.size, xs.size), np.nan)
    for i, y in enumerate(ys):
        for j, x in enumerate(xs):
            target = Point2(float(x), float(y))
            if any(
                target.distance_to(d.center) < min_disk_distance
                for d in disks
            ):
                continue
            try:
                rmse[i, j] = predicted_rmse(
                    target, disks, snapshots, phase_std, wavelength
                )
            except ConfigurationError:
                continue
    return AccuracyMap(xs=xs, ys=ys, rmse=rmse)


def recommend_center_distance(
    coverage_target: Point2,
    candidate_distances: Sequence[float],
    radius: float = 0.10,
    snapshots: int = 250,
    **kwargs,
) -> Tuple[float, float]:
    """Pick the two-disk center distance minimizing RMSE at a target point.

    Returns ``(best_distance, predicted_rmse)``.  Mirrors the paper's
    Fig 12a conclusion: wider baselines help until space runs out.
    """
    if not candidate_distances:
        raise ValueError("no candidate distances")
    best_distance, best_rmse = None, math.inf
    for distance in candidate_distances:
        disks = [
            PlannedDisk(Point2(-distance / 2.0, 0.0), radius),
            PlannedDisk(Point2(distance / 2.0, 0.0), radius),
        ]
        try:
            rmse = predicted_rmse(
                coverage_target, disks, snapshots, **kwargs
            )
        except ConfigurationError:
            continue
        if rmse < best_rmse:
            best_distance, best_rmse = distance, rmse
    if best_distance is None:
        raise ConfigurationError("no candidate produced a usable geometry")
    return float(best_distance), float(best_rmse)
