"""Scenario construction, experiment running and metrics."""
