"""Experiment running: seeded trial batches and parameter sweeps.

The evaluation section repeats every configuration over many random reader
poses and reports error statistics; :func:`run_trials_2d` /
:func:`run_trials_3d` implement that loop, and :func:`sweep` runs it across
a parameter axis (Fig 12's panels).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.geometry import Point2, Point3
from repro.errors import AmbiguityError, InsufficientDataError
from repro.sim.metrics import ErrorCollection, ErrorSummary
from repro.sim.scenario import TagspinScenario
from repro.sim.scene import (
    sample_reader_positions_2d,
    sample_reader_positions_3d,
)


@dataclass
class TrialBatch:
    """Outcome of a batch of localization trials."""

    errors: ErrorCollection
    failures: int = 0

    @property
    def trials(self) -> int:
        return len(self.errors) + self.failures

    def summary(self, axis: str = "combined") -> ErrorSummary:
        return self.errors.summary(axis)


def run_trials_2d(
    scenario: TagspinScenario,
    positions: Optional[Sequence[Point2]] = None,
    trials: int = 20,
    seed: int = 100,
    calibrate: bool = True,
) -> TrialBatch:
    """Localize the reader from ``trials`` random (or given) 2D poses.

    Trials that fail with a recoverable :class:`TagspinError` (too few
    reads, degenerate geometry) are counted as failures rather than
    aborting the batch — matching how a measurement campaign treats them.
    """
    if calibrate and _needs_prelude(scenario):
        scenario.run_orientation_prelude()
    if positions is None:
        rng = np.random.default_rng(seed)
        centers = [u.disk.center for u in scenario.scene.spinning_units]
        positions = sample_reader_positions_2d(
            trials, rng, disk_centers=centers
        )
    batch = TrialBatch(errors=ErrorCollection())
    for position in positions:
        try:
            _fix, error = scenario.locate_2d(position)
        except (AmbiguityError, InsufficientDataError):
            batch.failures += 1
            continue
        batch.errors.add(error)
    return batch


def run_trials_3d(
    scenario: TagspinScenario,
    positions: Optional[Sequence[Point3]] = None,
    trials: int = 20,
    seed: int = 100,
    calibrate: bool = True,
) -> TrialBatch:
    """Localize the reader from ``trials`` random (or given) 3D poses."""
    if calibrate and _needs_prelude(scenario):
        scenario.run_orientation_prelude()
    if positions is None:
        rng = np.random.default_rng(seed)
        centers = [u.disk.center for u in scenario.scene.spinning_units]
        positions = sample_reader_positions_3d(
            trials, rng, disk_centers=centers
        )
    batch = TrialBatch(errors=ErrorCollection())
    for position in positions:
        try:
            _fix, error = scenario.locate_3d(position)
        except (AmbiguityError, InsufficientDataError):
            batch.failures += 1
            continue
        batch.errors.add(error)
    return batch


def _needs_prelude(scenario: TagspinScenario) -> bool:
    """True when orientation calibration is enabled but no profiles exist."""
    if not scenario.config.pipeline.orientation_calibration:
        return False
    return any(
        record.orientation_profile is None
        for record in scenario.scene.registry
    )


@dataclass(frozen=True)
class SweepPoint:
    """One point of a parameter sweep."""

    value: float
    summary: ErrorSummary
    failures: int


def sweep(
    values: Sequence[float],
    scenario_factory: Callable[[float], TagspinScenario],
    trials: int = 12,
    seed: int = 100,
    three_d: bool = False,
) -> List[SweepPoint]:
    """Evaluate localization accuracy across a parameter axis.

    ``scenario_factory`` builds a fresh scenario for each parameter value;
    every point is evaluated over the same number of random poses (with the
    same seed, so the pose sets are comparable across points).
    """
    points: List[SweepPoint] = []
    for value in values:
        scenario = scenario_factory(value)
        runner = run_trials_3d if three_d else run_trials_2d
        batch = runner(scenario, trials=trials, seed=seed)
        points.append(
            SweepPoint(
                value=float(value),
                summary=batch.summary(),
                failures=batch.failures,
            )
        )
    return points


def format_sweep_table(
    points: Sequence[SweepPoint],
    value_label: str,
    value_scale: float = 1.0,
) -> str:
    """Render a sweep as the text table the benchmarks print."""
    lines = [f"{value_label:>16} | mean_cm | std_cm | p90_cm | fails"]
    lines.append("-" * len(lines[0]))
    for point in points:
        stats = point.summary.as_centimeters()
        lines.append(
            f"{point.value * value_scale:>16.1f} | "
            f"{stats['mean_cm']:>7.2f} | {stats['std_cm']:>6.2f} | "
            f"{stats['p90_cm']:>6.2f} | {point.failures:>5d}"
        )
    return "\n".join(lines)
