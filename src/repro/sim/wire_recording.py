"""Binary wire-level capture and replay of measurement sessions.

:mod:`repro.sim.recording` stores *decoded* reports as JSON — ideal for
inspection, useless for load testing: replaying it exercises none of
the framing, decoding or validation the wire path performs at ingest.
A :class:`WireRecording` instead stores the session as the reader
transport would have delivered it: length-prefixed binary LLRP frames
with per-frame capture offsets, plus the registry snapshot and ground
truth needed to re-serve the deployment.  Replaying one drives the
entire ingest stack — frame reassembly, columnar decode, validation,
fleet serving — at a configurable multiple of the captured pacing.

File layout (all integers big-endian)::

    8 bytes   magic  b"TSPNWIRE"
    u16       format version (1)
    u32       header length
    bytes     header JSON: label, truth, registry snapshot (the same
              disk/profile serializers recording.py uses)
    u32       frame count
    then per frame:
    u64       capture offset [microseconds since session start]
    u32       frame length
    bytes     the raw LLRP frame

The format is versioned alongside ``sim/recording.py``; loaders raise
typed errors (never ``struct.error``) on truncated or foreign files.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, List, Optional, Tuple

from repro.core.geometry import Point3
from repro.errors import ConfigurationError, WireProtocolError
from repro.hardware.llrp import ReportBatch, TagReportData
from repro.hardware.llrp_wire import encode_ro_access_report
from repro.server.registry import SpinningTagRecord, TagRegistry
from repro.sim.recording import (
    _disk_from_dict,
    _disk_to_dict,
    _profile_from_dict,
    _profile_to_dict,
)

WIRE_MAGIC = b"TSPNWIRE"
WIRE_FORMAT_VERSION = 1

#: Default reports per RO_ACCESS_REPORT frame when capturing a batch —
#: the order of magnitude COTS readers use for immediate reporting.
DEFAULT_REPORTS_PER_FRAME = 50


@dataclass(frozen=True)
class RecordedFrame:
    """One captured LLRP frame with its session-relative capture time."""

    offset_us: int
    payload: bytes

    def __post_init__(self) -> None:
        if self.offset_us < 0:
            raise ConfigurationError(
                f"frame capture offset must be non-negative, "
                f"got {self.offset_us}"
            )


@dataclass
class WireRecording:
    """A replayable wire-level capture of one measurement session."""

    frames: List[RecordedFrame] = field(default_factory=list)
    registry_records: List[SpinningTagRecord] = field(default_factory=list)
    truth: Optional[Point3] = None
    label: str = ""

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------
    @classmethod
    def capture(
        cls,
        batch: ReportBatch,
        registry_records: List[SpinningTagRecord],
        truth: Optional[Point3] = None,
        label: str = "",
        reports_per_frame: int = DEFAULT_REPORTS_PER_FRAME,
    ) -> "WireRecording":
        """Frame a report batch as the reader would have streamed it.

        Reports are ordered by reader timestamp and grouped into
        RO_ACCESS_REPORT frames of ``reports_per_frame``; each frame's
        capture offset is its last report's reader time relative to the
        session start (a frame leaves the reader when its newest read
        completes it).
        """
        if reports_per_frame < 1:
            raise ConfigurationError(
                f"reports_per_frame must be positive, "
                f"got {reports_per_frame}"
            )
        ordered = batch.sorted_by_reader_time().reports
        start_us = ordered[0].reader_timestamp_us if ordered else 0
        frames: List[RecordedFrame] = []
        for index in range(0, len(ordered), reports_per_frame):
            chunk: List[TagReportData] = ordered[
                index : index + reports_per_frame
            ]
            frames.append(
                RecordedFrame(
                    offset_us=chunk[-1].reader_timestamp_us - start_us,
                    payload=encode_ro_access_report(
                        ReportBatch(chunk),
                        message_id=len(frames) + 1,
                    ),
                )
            )
        return cls(
            frames=frames,
            registry_records=list(registry_records),
            truth=truth,
            label=label,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.frames)

    @property
    def total_bytes(self) -> int:
        return sum(len(frame.payload) for frame in self.frames)

    @property
    def duration_s(self) -> float:
        """Captured span from session start to the last frame."""
        if not self.frames:
            return 0.0
        return max(frame.offset_us for frame in self.frames) / 1e6

    def build_registry(self) -> TagRegistry:
        registry = TagRegistry()
        for record in self.registry_records:
            registry.register(record)
        return registry

    def decode_columnar_batches(self) -> list:
        """Decode every frame once into columnar batches.

        The sharded fleet bench fans one recording out to M deployments
        across N workers; decoding per deployment would charge the LLRP
        parse M times to every configuration.  This decodes each frame
        exactly once (streaming parser, so fragmented captures work) and
        returns the resulting
        :class:`~repro.hardware.llrp_columnar.ColumnarReportBatch` list,
        ready for repeated ``offer_columnar`` fan-out.
        """
        from repro.hardware.llrp_stream import StreamingLLRPParser

        parser = StreamingLLRPParser()
        batches = []
        for frame in self.frames:
            for _mid, cols in parser.feed_columnar(frame.payload):
                if len(cols):
                    batches.append(cols)
        parser.close()
        return batches

    # ------------------------------------------------------------------
    # Replay pacing
    # ------------------------------------------------------------------
    def replay_schedule(
        self, speed: float = 1.0
    ) -> Iterator[Tuple[float, bytes]]:
        """Yield ``(delay_s, frame_bytes)`` pairs paced at ``speed``x.

        ``delay_s`` is how long to wait *after the previous frame*
        before sending this one; at 1000x a one-hour capture replays in
        3.6 seconds.  Frames are replayed in capture order regardless
        of offset monotonicity.
        """
        if not speed > 0.0:
            raise ConfigurationError(
                f"replay speed must be positive, got {speed}"
            )
        previous_us = 0
        for frame in self.frames:
            gap_us = max(0, frame.offset_us - previous_us)
            previous_us = max(previous_us, frame.offset_us)
            yield gap_us / 1e6 / speed, frame.payload

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def _header_dict(self) -> dict:
        return {
            "label": self.label,
            "truth": (
                [self.truth.x, self.truth.y, self.truth.z]
                if self.truth is not None
                else None
            ),
            "registry": [
                {
                    "epc": record.epc,
                    "model_key": record.model_key,
                    "disk": _disk_to_dict(record.disk),
                    "orientation_profile": _profile_to_dict(
                        record.orientation_profile
                    ),
                }
                for record in self.registry_records
            ],
        }

    def to_bytes(self) -> bytes:
        header = json.dumps(self._header_dict()).encode("utf-8")
        parts = [
            WIRE_MAGIC,
            struct.pack(">HI", WIRE_FORMAT_VERSION, len(header)),
            header,
            struct.pack(">I", len(self.frames)),
        ]
        for frame in self.frames:
            parts.append(
                struct.pack(">QI", frame.offset_us, len(frame.payload))
            )
            parts.append(frame.payload)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, data: bytes) -> "WireRecording":
        view = memoryview(data)
        if len(view) < len(WIRE_MAGIC) + 6:
            raise WireProtocolError(
                "truncated wire recording preamble", offset=0
            )
        if bytes(view[: len(WIRE_MAGIC)]) != WIRE_MAGIC:
            raise WireProtocolError(
                f"not a wire recording (magic "
                f"{bytes(view[:len(WIRE_MAGIC)])!r})",
                offset=0,
            )
        offset = len(WIRE_MAGIC)
        version, header_len = struct.unpack_from(">HI", view, offset)
        offset += 6
        if version != WIRE_FORMAT_VERSION:
            raise ConfigurationError(
                f"unsupported wire recording version {version!r}"
            )
        if offset + header_len + 4 > len(view):
            raise WireProtocolError(
                "truncated wire recording header", offset=offset
            )
        try:
            header = json.loads(bytes(view[offset : offset + header_len]))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise WireProtocolError(
                f"corrupt wire recording header: {exc}", offset=offset
            ) from None
        offset += header_len
        (frame_count,) = struct.unpack_from(">I", view, offset)
        offset += 4
        frames: List[RecordedFrame] = []
        for _ in range(frame_count):
            if offset + 12 > len(view):
                raise WireProtocolError(
                    "truncated wire recording frame header", offset=offset
                )
            offset_us, length = struct.unpack_from(">QI", view, offset)
            offset += 12
            if offset + length > len(view):
                raise WireProtocolError(
                    f"truncated wire recording frame body "
                    f"({length} bytes declared)",
                    offset=offset,
                )
            frames.append(
                RecordedFrame(
                    offset_us=offset_us,
                    payload=bytes(view[offset : offset + length]),
                )
            )
            offset += length
        if offset != len(view):
            raise WireProtocolError(
                "trailing bytes after last recorded frame", offset=offset
            )
        truth = header.get("truth")
        return cls(
            frames=frames,
            registry_records=[
                SpinningTagRecord(
                    epc=item["epc"],
                    disk=_disk_from_dict(item["disk"]),
                    model_key=item.get("model_key", "squiggle"),
                    orientation_profile=_profile_from_dict(
                        item.get("orientation_profile")
                    ),
                )
                for item in header.get("registry", [])
            ],
            truth=Point3(*truth) if truth is not None else None,
            label=header.get("label", ""),
        )

    def save(self, path: "str | Path") -> None:
        Path(path).write_bytes(self.to_bytes())

    @classmethod
    def load(cls, path: "str | Path") -> "WireRecording":
        return cls.from_bytes(Path(path).read_bytes())
