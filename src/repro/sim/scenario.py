"""Canonical experiment scenarios.

:class:`TagspinScenario` wires a scene, a simulated reader and the
localization pipeline into the exact procedures the paper runs:

* the *orientation-calibration prelude* (tag at disk center, known reader
  pose, fit the phase-orientation Fourier series);
* data collection (tag on the rim, reader at the pose under test);
* 2D / 3D localization and error measurement.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

import numpy as np

from repro.constants import DEFAULT_NUM_ROTATIONS
from repro.core.calibration import OrientationCalibrator
from repro.core.geometry import (
    Point2,
    Point3,
    euclidean_error_2d,
    euclidean_error_3d,
)
from repro.core.locator import Fix2D, Fix3D
from repro.core.pipeline import PipelineConfig, TagspinSystem
from repro.errors import InsufficientDataError
from repro.hardware.clock import ClockModel
from repro.hardware.llrp import ReportBatch, ROSpec
from repro.hardware.reader import (
    ReaderConfig,
    SimulatedReader,
    SpinningTagUnit,
)
from repro.hardware.rotator import Mount
from repro.rf.antenna import AntennaPort, make_antenna_port
from repro.rf.channel import BackscatterChannel
from repro.rf.noise import NoiseModel
from repro.sim.metrics import ErrorSample
from repro.sim.scene import DeploymentSpec, Scene, build_scene


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything that defines one experimental condition."""

    deployment: DeploymentSpec = field(default_factory=DeploymentSpec)
    pipeline: PipelineConfig = field(default_factory=PipelineConfig)
    noise: NoiseModel = field(default_factory=NoiseModel)
    reader_config: ReaderConfig = field(default_factory=ReaderConfig)
    clock: ClockModel = field(default_factory=ClockModel)
    #: Duration of one data collection [s]; None = rotations * disk period.
    duration_s: Optional[float] = None
    num_rotations: float = DEFAULT_NUM_ROTATIONS
    #: Known reader pose used during the orientation-calibration prelude.
    calibration_pose: Point3 = Point3(0.0, 1.8, 0.0)
    seed: int = 0

    def collection_duration(self) -> float:
        if self.duration_s is not None:
            return self.duration_s
        period = 2.0 * math.pi / abs(self.deployment.angular_speed)
        return self.num_rotations * period


class TagspinScenario:
    """A reusable experimental setup bound to one scene."""

    def __init__(self, config: ScenarioConfig = ScenarioConfig()) -> None:
        self.config = config
        self.rng = np.random.default_rng(config.seed)
        self.scene: Scene = build_scene(config.deployment, self.rng)
        self.channel = BackscatterChannel(noise=config.noise)
        self.system = TagspinSystem(self.scene.registry, config.pipeline)

    # ------------------------------------------------------------------
    # Reader construction
    # ------------------------------------------------------------------
    def make_reader(
        self,
        position: Point3,
        num_antennas: int = 1,
        antenna_spacing: float = 0.4,
    ) -> SimulatedReader:
        """A reader whose antennas sit at/near ``position``.

        Antenna port 1 is exactly at ``position``; additional ports (up to
        four, for the antenna-diversity experiment) are offset along x.
        Each antenna draws its own hardware diversity constant.
        """
        antennas: List[AntennaPort] = []
        for port in range(1, num_antennas + 1):
            offset = (port - 1) * antenna_spacing
            antennas.append(
                make_antenna_port(
                    port_id=port,
                    position=Point3(position.x + offset, position.y, position.z),
                    rng=self.rng,
                )
            )
        return SimulatedReader(
            antennas=antennas,
            channel=self.channel,
            clock=self.config.clock,
            config=self.config.reader_config,
            rng=self.rng,
        )

    # ------------------------------------------------------------------
    # Orientation-calibration prelude (Section III-B, Step 1)
    # ------------------------------------------------------------------
    def run_orientation_prelude(
        self,
        fourier_order: int = 3,
        rotations: float = 4.0,
        pose: Optional[Point3] = None,
    ) -> None:
        """Fit each spinning tag's phase-orientation profile.

        The tag is re-mounted at the disk *center* and spun with the reader
        at a known pose; phase variation is then pure orientation effect,
        fitted with a Fourier series and stored in the registry.
        """
        pose = pose if pose is not None else self.config.calibration_pose
        calibrator = OrientationCalibrator(fourier_order=fourier_order)
        reader = self.make_reader(pose)
        for unit in self.scene.spinning_units:
            center_disk = unit.disk.with_mount(Mount.CENTER)
            center_unit = SpinningTagUnit(disk=center_disk, tag=unit.tag)
            duration = rotations * center_disk.period
            batch = reader.run([center_unit], ROSpec(duration_s=duration))
            reports = batch.filter_epc(unit.tag.epc).sorted_by_reader_time()
            if len(reports) < 2 * fourier_order + 1:
                raise InsufficientDataError(
                    f"prelude collected only {len(reports)} reads for "
                    f"{unit.tag.epc}"
                )
            times = np.array([r.reader_time_s for r in reports.reports])
            phases = np.array([r.phase_rad for r in reports.reports])
            orientations = np.array(
                [
                    center_disk.tag_orientation(t, reader.antenna(1).position)
                    for t in times
                ]
            )
            profile = calibrator.fit_from_center_spin(orientations, phases)
            self.scene.registry.set_orientation_profile(unit.tag.epc, profile)

    # ------------------------------------------------------------------
    # Data collection and localization
    # ------------------------------------------------------------------
    def collect(
        self,
        reader_position: Point3,
        num_antennas: int = 1,
        duration_s: Optional[float] = None,
    ) -> Tuple[ReportBatch, SimulatedReader]:
        """Inventory the spinning tags from ``reader_position``."""
        reader = self.make_reader(reader_position, num_antennas)
        duration = (
            duration_s if duration_s is not None
            else self.config.collection_duration()
        )
        rospec = ROSpec(
            duration_s=duration,
            antenna_ports=tuple(range(1, num_antennas + 1)),
        )
        batch = reader.run(self.scene.spinning_units, rospec)
        return batch, reader

    def locate_2d(
        self, reader_position: Point2, antenna_port: int = 1
    ) -> Tuple[Fix2D, ErrorSample]:
        """One full 2D localization trial; returns the fix and its error."""
        pose = Point3(reader_position.x, reader_position.y, 0.0)
        batch, reader = self.collect(pose)
        fix = self.system.locate_2d(batch, antenna_port)
        truth = reader.antenna(antenna_port).position.horizontal()
        ex, ey, _combined = euclidean_error_2d(fix.position, truth)
        return fix, ErrorSample(x=ex, y=ey)

    def locate_3d(
        self, reader_position: Point3, antenna_port: int = 1
    ) -> Tuple[Fix3D, ErrorSample]:
        """One full 3D localization trial; returns the fix and its error."""
        batch, reader = self.collect(reader_position)
        fix = self.system.locate_3d(batch, antenna_port)
        truth = reader.antenna(antenna_port).position
        ex, ey, ez, _combined = euclidean_error_3d(fix.position, truth)
        return fix, ErrorSample(x=ex, y=ey, z=ez)

    def with_pipeline(self, pipeline: PipelineConfig) -> "TagspinScenario":
        """A sibling scenario sharing the scene but using another pipeline.

        Used by controlled comparisons (e.g. with/without orientation
        calibration) so both arms see identical hardware ground truth.
        """
        sibling = object.__new__(TagspinScenario)
        sibling.config = replace(self.config, pipeline=pipeline)
        sibling.rng = self.rng
        sibling.scene = self.scene
        sibling.channel = self.channel
        sibling.system = TagspinSystem(self.scene.registry, pipeline)
        return sibling


def paper_default_scenario(
    seed: int = 0, three_d: bool = False
) -> TagspinScenario:
    """The paper's default setup.

    Two disks 50 cm apart on the desk plane (heights -9.5 cm below the
    reader plane in the 3D experiments), 10 cm radius, default tag model.
    """
    if three_d:
        deployment = DeploymentSpec(
            disk_centers=(
                Point3(-0.25, 0.0, -0.095),
                Point3(0.25, 0.0, -0.095),
            )
        )
        pipeline = PipelineConfig(z_min=-0.095, z_max=2.0)
    else:
        deployment = DeploymentSpec()
        pipeline = PipelineConfig()
    config = ScenarioConfig(deployment=deployment, pipeline=pipeline, seed=seed)
    return TagspinScenario(config)
