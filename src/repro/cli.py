"""Command-line interface: ``tagspin <command>`` (or ``python -m repro``).

Commands
--------
``locate2d`` / ``locate3d``
    Run one simulated localization at a given reader pose and print the
    fix, the error and the per-disk bearings.
``trials``
    Run a batch of random poses and print the error statistics.
``compare``
    Run the Tagspin-vs-baselines comparison table.
``tags``
    Print the Table I tag-model registry.
``plan``
    Print the predicted-accuracy map for a two-disk layout.
``health``
    Simulate a collection and print the deployment health table.
``diagnose``
    Simulate a collection with an optional injected fault, run it through
    the resilient server and print the fix with its full diagnostics.
``bench-engine``
    Time the spectrum engines (reference vs batched vs parallel vs
    adaptive vs harmonic) over a synthetic multi-disk deployment and
    print the scaling table; ``--streaming`` adds the cold-vs-append
    streaming microbenchmark and ``--tolerance`` sets the adaptive
    engines' angular tolerance.  ``--json`` writes the full
    ``tagspin-bench/1`` document, including every engine's cache
    hit/miss/eviction counters and the harmonic engine's
    truncation-order statistics.
``serve``
    Run a supervised fleet serving session over a simulated report
    stream: several deployment actors ingest chunked traffic, serve
    fixes and checkpoint; ``--kill`` crashes one actor mid-stream to
    demonstrate the warm restart, ``--chaos`` runs the fault-injection
    suite instead and exits nonzero on any SLO violation.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

from repro.core.geometry import Point2, Point3
from repro.hardware.tags import TABLE_I
from repro.sim.comparison import BaselineComparison, format_comparison_table
from repro.sim.runner import run_trials_2d, run_trials_3d
from repro.sim.scenario import paper_default_scenario


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0, help="simulation seed")


def _cmd_locate2d(args: argparse.Namespace) -> int:
    scenario = paper_default_scenario(seed=args.seed)
    scenario.run_orientation_prelude()
    fix, error = scenario.locate_2d(Point2(args.x, args.y))
    print(f"true pose : ({args.x:.3f}, {args.y:.3f}) m")
    print(f"estimate  : ({fix.position.x:.3f}, {fix.position.y:.3f}) m")
    print(f"error     : {error.combined * 100:.2f} cm "
          f"(x {error.x * 100:.2f}, y {error.y * 100:.2f})")
    print(f"residual  : {fix.residual * 100:.3f} cm, "
          f"confidence {fix.confidence:.3f}")
    return 0


def _cmd_locate3d(args: argparse.Namespace) -> int:
    scenario = paper_default_scenario(seed=args.seed, three_d=True)
    scenario.run_orientation_prelude()
    fix, error = scenario.locate_3d(Point3(args.x, args.y, args.z))
    print(f"true pose : ({args.x:.3f}, {args.y:.3f}, {args.z:.3f}) m")
    print(
        f"estimate  : ({fix.position.x:.3f}, {fix.position.y:.3f}, "
        f"{fix.position.z:.3f}) m"
    )
    print(
        f"mirror    : ({fix.mirror.x:.3f}, {fix.mirror.y:.3f}, "
        f"{fix.mirror.z:.3f}) m"
    )
    assert error.z is not None
    print(
        f"error     : {error.combined * 100:.2f} cm "
        f"(x {error.x * 100:.2f}, y {error.y * 100:.2f}, z {error.z * 100:.2f})"
    )
    return 0


def _cmd_trials(args: argparse.Namespace) -> int:
    scenario = paper_default_scenario(seed=args.seed, three_d=args.three_d)
    runner = run_trials_3d if args.three_d else run_trials_2d
    batch = runner(scenario, trials=args.trials, seed=args.seed + 100)
    stats = batch.summary().as_centimeters()
    label = "3D" if args.three_d else "2D"
    print(f"{label} localization over {batch.trials} poses "
          f"({batch.failures} failures):")
    for key, value in stats.items():
        print(f"  {key:>10}: {value:.2f}" if key != "count" else
              f"  {key:>10}: {int(value)}")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    comparison = BaselineComparison(
        paper_default_scenario(seed=args.seed), seed=args.seed + 1
    )
    comparison.calibrate()
    results = comparison.run(trials=args.trials)
    print(format_comparison_table(results))
    return 0


def _cmd_tags(_args: argparse.Namespace) -> int:
    header = (
        f"{'key':>10} | {'model':>9} | {'name':>10} | {'chip':>8} | "
        f"{'size (mm)':>13} | pp [rad]"
    )
    print(header)
    print("-" * len(header))
    for key, model in TABLE_I.items():
        size = f"{model.size_mm[0]:.1f}x{model.size_mm[1]:.1f}"
        print(
            f"{key:>10} | {model.model_number:>9} | {model.name:>10} | "
            f"{model.chip:>8} | {size:>13} | {model.orientation_pp_rad:.2f}"
        )
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    from repro.core.geometry import Point2 as P2
    from repro.sim.planning import PlannedDisk, accuracy_map

    half = args.distance / 2.0
    disks = [PlannedDisk(P2(-half, 0.0)), PlannedDisk(P2(half, 0.0))]
    grid = accuracy_map(
        disks, (-2.0, 2.0), (0.5, 3.0), resolution=args.resolution
    )
    print(f"predicted RMSE map [cm], disks {args.distance * 100:.0f} cm apart:")
    print("      " + " ".join(f"{x:+5.1f}" for x in grid.xs))
    for i, y in enumerate(grid.ys):
        cells = " ".join(
            f"{v * 100:5.1f}" if np.isfinite(v) else "    -"
            for v in grid.rmse[i]
        )
        print(f"y={y:+4.1f} {cells}")
    print(
        f"coverage with RMSE <= 5 cm: "
        f"{grid.coverage_fraction(0.05) * 100:.0f}%"
    )
    return 0


def _cmd_health(args: argparse.Namespace) -> int:
    from repro.core.geometry import Point3
    from repro.server.health import DeploymentMonitor, format_health_table

    scenario = paper_default_scenario(seed=args.seed)
    scenario.run_orientation_prelude()
    batch, _reader = scenario.collect(Point3(args.x, args.y, 0.0))
    monitor = DeploymentMonitor(scenario.scene.registry)
    print(format_health_table(list(monitor.check_all(batch).values())))
    return 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    from repro.core.geometry import Point3
    from repro.server.health import format_health_table
    from repro.server.resilience import ResilientLocalizationServer
    from repro.sim import faults
    from repro.sim.scenario import ScenarioConfig, TagspinScenario
    from repro.sim.scene import DeploymentSpec

    if args.disks < 2:
        print("diagnose: --disks must be >= 2 (triangulation needs two "
              "bearings)", file=sys.stderr)
        return 2
    if args.disks == 2:
        spec = DeploymentSpec()
    else:
        # Spread extra disks on a small arc so every pair keeps a usable
        # triangulation baseline.
        centers = [
            Point3(
                0.7 * np.cos(np.pi * (0.25 + 0.5 * i / (args.disks - 1))),
                0.7 * np.sin(np.pi * (0.25 + 0.5 * i / (args.disks - 1))) - 0.7,
                0.0,
            )
            for i in range(args.disks)
        ]
        spec = DeploymentSpec(disk_centers=tuple(centers))
    scenario = TagspinScenario(ScenarioConfig(deployment=spec, seed=args.seed))
    scenario.run_orientation_prelude()
    pose = Point3(args.x, args.y, 0.0)
    batch, reader = scenario.collect(pose)
    rng = np.random.default_rng(args.seed + 1)

    target_epc = scenario.scene.registry.epcs()[0]
    if args.fault == "stall":
        disk = scenario.scene.registry.get(target_epc).disk
        batch = faults.stall_disk(batch, disk, target_epc)
    elif args.fault == "jam":
        batch = faults.jam_window(batch, 1.0, 4.0, rng)
    elif args.fault == "pi-slips":
        batch = faults.pi_slips(batch, 0.15, rng)
    elif args.fault == "duplicates":
        batch = faults.duplicate_reports(batch, 0.3, rng)
    elif args.fault == "corrupt":
        batch = faults.corrupt_quantization(batch, 0.2, rng)

    server = ResilientLocalizationServer(
        scenario.scene.registry, scenario.config.pipeline
    )
    server.ingest("reader-1", batch.reports)
    fix, diagnostics = server.locate_antenna_2d_diagnosed("reader-1")
    truth = reader.antenna(1).position.horizontal()

    print(f"fault       : {args.fault}")
    print(f"true pose   : ({args.x:.3f}, {args.y:.3f}) m")
    print(f"estimate    : ({fix.position.x:.3f}, {fix.position.y:.3f}) m")
    print(f"error       : {fix.position.distance_to(truth) * 100:.2f} cm")
    print(f"degradation : {diagnostics.degradation.value}")
    print(f"profile     : {diagnostics.pipeline.profile_used}"
          + (" (fallback)" if diagnostics.pipeline.fallback_applied else ""))
    print(f"disks used  : {', '.join(diagnostics.disks_used)}")
    for exclusion in diagnostics.disks_excluded:
        print(f"excluded    : {exclusion.epc} ({', '.join(exclusion.reasons)})")
    quarantine = diagnostics.quarantine
    print(
        f"quarantine  : {quarantine.quarantined}/{quarantine.received} rejected,"
        f" {quarantine.pi_slips_repaired} pi-slips repaired,"
        f" {quarantine.reordered} reordered"
    )
    print()
    monitor_batch = server.batch_for("reader-1", 1)
    print(format_health_table(
        list(server.monitor.check_all(monitor_batch).values())
    ))
    return 0


def _cmd_bench_engine(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.perf.bench import (
        format_results,
        format_streaming,
        results_to_json,
        run_engine_scaling,
        run_streaming_microbench,
    )

    overrides = {}
    if args.snapshots is not None:
        overrides["snapshots"] = args.snapshots
    results = run_engine_scaling(
        scales=args.scales,
        engines=args.engines,
        rounds=args.rounds,
        seed=args.seed,
        tolerance=args.tolerance,
        **overrides,
    )
    print(format_results(results))
    streaming = None
    if args.streaming:
        streaming = run_streaming_microbench(seed=args.seed)
        print()
        print(format_streaming(streaming))
    if args.json is not None:
        path = Path(args.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(results_to_json(results, streaming=streaming))
        print(f"wrote {path}")
    return 0


def _format_metrics_table(snapshot: dict, deployment_ids: List[str]) -> str:
    """Compact per-deployment telemetry table from a metrics snapshot.

    Reads only the public ``tagspin-metrics/1`` surface — the same
    numbers a Prometheus scrape would see — so the status output stays
    exact across worker restarts (dead incarnations are already folded
    into the snapshot).
    """
    from repro.obs.exposition import (
        histogram_quantile,
        histogram_totals,
        sample_value,
    )

    header = (
        f"{'deployment':>14} | {'delivered':>9} | {'accepted':>8} | "
        f"{'shed':>5} | {'pending':>7} | {'fixes ok/err':>12}"
    )
    lines = [header, "-" * len(header)]
    for deployment_id in deployment_ids:
        labels = {"deployment": deployment_id}
        delivered = sample_value(
            snapshot, "tagspin_reports_delivered_total", labels
        )
        accepted = sample_value(
            snapshot, "tagspin_reports_accepted_total", labels
        )
        shed = sample_value(snapshot, "tagspin_reports_shed_total", labels)
        pending = sample_value(snapshot, "tagspin_mailbox_pending", labels)
        ok = sample_value(
            snapshot, "tagspin_fixes_total",
            {"deployment": deployment_id, "outcome": "ok"},
        )
        errors = sample_value(
            snapshot, "tagspin_fixes_total",
            {"deployment": deployment_id, "outcome": "error"},
        ) + sample_value(
            snapshot, "tagspin_fixes_total",
            {"deployment": deployment_id, "outcome": "deadline"},
        )
        lines.append(
            f"{deployment_id:>14} | {int(delivered):>9} | "
            f"{int(accepted):>8} | {int(shed):>5} | {int(pending):>7} | "
            f"{int(ok):>9}/{int(errors)}"
        )
    totals = histogram_totals(snapshot, "tagspin_fix_seconds")
    if totals["count"]:
        p50 = histogram_quantile(totals, 0.5) * 1e3
        p99 = histogram_quantile(totals, 0.99) * 1e3
        lines.append(
            f"fix latency: {totals['count']} fixes, "
            f"p50 <= {p50:.1f} ms, p99 <= {p99:.1f} ms"
        )
    return "\n".join(lines)


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio
    import time
    from pathlib import Path

    from repro.core.geometry import Point3
    from repro.fleet.actor import ActorConfig
    from repro.fleet.chaos import ChaosConfig, run_chaos_suite
    from repro.fleet.checkpoint import (
        JsonCheckpointStore,
        MemoryCheckpointStore,
    )
    from repro.fleet.events import EventLog
    from repro.fleet.supervisor import FleetSupervisor, SupervisorPolicy
    from repro.server.resilience import ResilientLocalizationServer

    scenario = paper_default_scenario(seed=args.seed)
    scenario.run_orientation_prelude()

    if args.chaos:
        report = run_chaos_suite(ChaosConfig(seed=args.seed), scenario=scenario)
        for outcome in report.outcomes:
            marker = "PASS" if outcome.passed else "FAIL"
            print(f"{marker} {outcome.name}: {outcome.slo}")
        print(
            "chaos suite: "
            + ("all SLOs met" if report.passed else "SLO VIOLATED")
        )
        return 0 if report.passed else 1

    pose = Point3(args.x, args.y, 0.0)
    batch, reader = scenario.collect(pose)
    truth = reader.antenna(1).position.horizontal()
    registry = scenario.scene.registry
    pipeline = scenario.config.pipeline

    if args.workers:
        return _serve_sharded(args, scenario, batch, truth)

    store = (
        JsonCheckpointStore(Path(args.checkpoint_dir))
        if args.checkpoint_dir
        else MemoryCheckpointStore()
    )
    events = EventLog()
    supervisor = FleetSupervisor(
        policy=SupervisorPolicy(), events=events, store=store
    )

    def factory() -> ResilientLocalizationServer:
        return ResilientLocalizationServer(
            registry, pipeline, engine="streaming"
        )

    ids = [f"deployment-{i:02d}" for i in range(args.deployments)]

    async def wait_serving(deployment_id: str, incarnation: int = 0) -> None:
        while True:
            actor = supervisor.actor(deployment_id)
            if (
                actor is not None
                and actor.running
                and actor.incarnation >= incarnation
            ):
                return
            await asyncio.sleep(0.005)

    async def session() -> None:
        for deployment_id in ids:
            supervisor.add_deployment(
                deployment_id,
                factory,
                ActorConfig(checkpoint_every=args.checkpoint_every),
            )
        for deployment_id in ids:
            await wait_serving(deployment_id)

        reports = batch.reports
        chunks = [
            list(reports[i : i + args.chunk_size])
            for i in range(0, len(reports), args.chunk_size)
        ]
        kill_at = len(chunks) // 2 if args.kill else -1
        for index, chunk in enumerate(chunks):
            if index == kill_at:
                print(f"-- crashing {ids[0]} mid-stream --")
                await supervisor.checkpoint(ids[0])
                supervisor.kill(ids[0])
                await wait_serving(ids[0], incarnation=1)
            for deployment_id in ids:
                supervisor.offer(deployment_id, "reader-1", chunk)
        while any(
            supervisor.actor(i) is None
            or supervisor.actor(i).mailbox.pending_reports
            for i in ids
        ):
            await asyncio.sleep(0.005)

        for deployment_id in ids:
            start = time.perf_counter()
            fix, _diag = await supervisor.locate_2d(deployment_id, "reader-1")
            elapsed_ms = (time.perf_counter() - start) * 1e3
            actor = supervisor.actor(deployment_id)
            warm = " (warm-restored)" if actor.stats.warm_restored else ""
            print(
                f"{deployment_id}: fix ({fix.position.x:.3f}, "
                f"{fix.position.y:.3f}) m, error "
                f"{fix.position.distance_to(truth) * 100:.2f} cm, "
                f"{elapsed_ms:.0f} ms, incarnation "
                f"{actor.incarnation}{warm}"
            )
            acct = supervisor.accounting(deployment_id)
            print(
                f"  ledger: offered {acct['offered']}, delivered "
                f"{acct['delivered']}, accepted {acct['accepted']}, "
                f"quarantined {acct['quarantined']}, shed {acct['shed']}, "
                f"lost in crash {acct['lost_in_crash']}"
            )
        await supervisor.stop()

    asyncio.run(session())
    print()
    print(_format_metrics_table(supervisor.metrics_snapshot(), ids))
    print(
        "events: "
        + ", ".join(
            f"{kind} x{count}"
            for kind, count in sorted(events.counts().items())
        )
    )
    return 0


def _serve_sharded(args: argparse.Namespace, scenario, batch, truth) -> int:
    """``tagspin serve --workers N``: the multi-process sharded fleet.

    Same session shape as the in-process path — add deployments, stream
    the collected batch in chunks, fix each deployment — but ingest
    crosses process boundaries through the shared-memory columnar
    transport, and ``--kill`` SIGKILLs a whole *worker process*
    mid-stream to demonstrate the cross-process warm restart.
    """
    import time

    import numpy as np

    from repro.fleet.actor import ActorConfig
    from repro.fleet.sharding import ShardedFleet
    from repro.fleet.worker import DeploymentSpec
    from repro.hardware.llrp_columnar import ColumnarReportBatch

    records = tuple(scenario.scene.registry)
    pipeline = scenario.config.pipeline
    ids = [f"deployment-{i:02d}" for i in range(args.deployments)]
    fleet = ShardedFleet(
        workers=args.workers, checkpoint_dir=args.checkpoint_dir
    )
    fleet.start()
    try:
        for deployment_id in ids:
            fleet.add_deployment(DeploymentSpec(
                deployment_id=deployment_id,
                registry_records=records,
                pipeline=pipeline,
                engine="streaming",
                actor_config=ActorConfig(
                    checkpoint_every=args.checkpoint_every
                ),
            ))
        cols = ColumnarReportBatch.from_reports(batch.reports)
        chunks = [
            cols.select(np.arange(i, min(i + args.chunk_size, len(cols))))
            for i in range(0, len(cols), args.chunk_size)
        ]
        kill_at = len(chunks) // 2 if args.kill else -1
        for index, chunk in enumerate(chunks):
            if index == kill_at:
                victim_shard = fleet.shard_of(ids[0])
                print(
                    f"-- SIGKILLing worker {victim_shard} "
                    f"(owns {ids[0]}) mid-stream --"
                )
                fleet.checkpoint(ids[0])
                fleet.kill_worker(victim_shard)
                receipts = fleet.restart_shard(victim_shard)
                restored = ", ".join(
                    f"{r['deployment_id']}"
                    f"{' (warm)' if r['warm_restored'] else ''}"
                    for r in receipts
                )
                print(f"-- shard {victim_shard} restarted: {restored} --")
            for deployment_id in ids:
                fleet.offer_columnar(deployment_id, "reader-1", chunk)
        fleet.drain(timeout_s=120.0)

        for deployment_id in ids:
            start = time.perf_counter()
            fix, _diag = fleet.locate_2d_sync(deployment_id, "reader-1")
            elapsed_ms = (time.perf_counter() - start) * 1e3
            shard = fleet.shard_of(deployment_id)
            print(
                f"{deployment_id} [worker {shard}]: fix "
                f"({fix.position.x:.3f}, {fix.position.y:.3f}) m, error "
                f"{fix.position.distance_to(truth) * 100:.2f} cm, "
                f"{elapsed_ms:.0f} ms"
            )
            acct = fleet.accounting(deployment_id)
            print(
                f"  ledger: offered {acct['offered']}, delivered "
                f"{acct['delivered']}, accepted {acct['accepted']}, "
                f"quarantined {acct['quarantined']}, shed {acct['shed']}, "
                f"lost in crash {acct['lost_in_crash']}"
            )
        for info in fleet.worker_info():
            print(
                f"worker {info['index']}: pid {info['pid']}, "
                f"{len(info.get('deployments', []))} deployment(s), "
                f"{info['ring_fallbacks']} ring fallback(s)"
            )
        snapshot = fleet.metrics_snapshot()
    finally:
        fleet.close()
    print()
    print(_format_metrics_table(snapshot, ids))
    print(
        "events: "
        + ", ".join(
            f"{kind} x{count}"
            for kind, count in sorted(fleet.worker_events().items())
        )
    )
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    """``tagspin metrics``: run a short sharded session and dump telemetry.

    Streams one simulated collection through a multi-process fleet
    (optionally SIGKILLing and restarting a worker mid-stream), takes a
    fleet-wide ``tagspin-metrics/1`` snapshot — exact across the kill —
    and emits it as Prometheus text and/or versioned JSON.  The ledger
    reconciliation is printed to stderr so the exposition on stdout
    stays machine-readable.
    """
    import json as json_module

    import numpy as np

    from repro.core.geometry import Point3
    from repro.fleet.sharding import ShardedFleet
    from repro.fleet.worker import DeploymentSpec
    from repro.hardware.llrp_columnar import ColumnarReportBatch
    from repro.obs.exposition import sample_value, to_prometheus

    scenario = paper_default_scenario(seed=args.seed)
    scenario.run_orientation_prelude()
    batch, _reader = scenario.collect(Point3(args.x, args.y, 0.0))
    records = tuple(scenario.scene.registry)
    ids = [f"deployment-{i:02d}" for i in range(args.deployments)]

    fleet = ShardedFleet(workers=args.workers, request_timeout_s=120.0)
    fleet.start()
    try:
        for deployment_id in ids:
            fleet.add_deployment(DeploymentSpec(
                deployment_id=deployment_id,
                registry_records=records,
                pipeline=scenario.config.pipeline,
                engine="streaming",
            ))
        cols = ColumnarReportBatch.from_reports(batch.reports)
        chunks = [
            cols.select(np.arange(i, min(i + args.chunk_size, len(cols))))
            for i in range(0, len(cols), args.chunk_size)
        ]
        kill_at = len(chunks) // 2 if args.kill else -1
        for index, chunk in enumerate(chunks):
            if index == kill_at:
                victim_shard = fleet.shard_of(ids[0])
                print(
                    f"-- SIGKILL worker {victim_shard} mid-stream --",
                    file=sys.stderr,
                )
                fleet.drain(timeout_s=120.0)
                fleet.checkpoint(ids[0])
                fleet.kill_worker(victim_shard)
                fleet.restart_shard(victim_shard)
            for deployment_id in ids:
                fleet.offer_columnar(deployment_id, "reader-1", chunk)
        fleet.drain(timeout_s=120.0)
        for deployment_id in ids:
            fleet.locate_2d_sync(deployment_id, "reader-1")
        snapshot = fleet.metrics_snapshot()
        mismatched = 0
        for deployment_id in ids:
            ledger = fleet.accounting(deployment_id)
            counted = sample_value(
                snapshot,
                "tagspin_reports_delivered_total",
                {"deployment": deployment_id},
            )
            if counted != ledger["delivered"]:
                mismatched += 1
                print(
                    f"MISMATCH {deployment_id}: counter {counted:g} != "
                    f"ledger {ledger['delivered']}",
                    file=sys.stderr,
                )
        print(
            f"reconciled {len(ids)} deployments across "
            f"{args.workers} workers"
            + (" (1 SIGKILL + restart)" if args.kill else "")
            + f": {len(ids) - mismatched} exact, {mismatched} mismatched",
            file=sys.stderr,
        )
    finally:
        fleet.close()

    if args.format in ("prom", "both"):
        sys.stdout.write(to_prometheus(snapshot))
    if args.format in ("json", "both"):
        sys.stdout.write(json_module.dumps(snapshot, indent=2) + "\n")
    if args.out is not None:
        from pathlib import Path

        path = Path(args.out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json_module.dumps(snapshot, indent=2) + "\n")
        print(f"wrote {path}", file=sys.stderr)
    return 0 if mismatched == 0 else 1


def _cmd_replay(args: argparse.Namespace) -> int:
    import asyncio

    from repro.core.geometry import Point3
    from repro.fleet.wire_ingest import replay_into_supervisor
    from repro.sim.wire_recording import WireRecording

    if args.record:
        scenario = paper_default_scenario(seed=args.seed)
        scenario.run_orientation_prelude()
        truth = Point3(args.x, args.y, 0.0)
        batch, _reader = scenario.collect(truth)
        recording = WireRecording.capture(
            batch,
            list(scenario.scene.registry),
            truth=truth,
            label=f"paper-default seed={args.seed}",
        )
        recording.save(args.path)
        print(f"recorded  : {args.path}")
        print(f"frames    : {len(recording)}")
        print(f"reports   : {len(batch.reports)}")
        print(f"wire bytes: {recording.total_bytes}")
        print(f"duration  : {recording.duration_s:.2f} s captured")
        return 0

    recording = WireRecording.load(args.path)
    label = recording.label or "(unlabelled)"
    print(f"replaying : {args.path} [{label}]")
    print(
        f"frames    : {len(recording)} "
        f"({recording.total_bytes} wire bytes, "
        f"{recording.duration_s:.2f} s captured, {args.speed:g}x)"
    )
    outcome = asyncio.run(
        replay_into_supervisor(
            recording,
            speed=args.speed,
            decode=args.decode,
            fragment_bytes=args.fragment,
            deployments=args.deployments,
        )
    )
    if args.deployments > 1:
        # Fan-out replay: one capture cloned across M deployments, each
        # with its own loopback stream; every clone must agree.
        for index, result in enumerate(outcome):
            fix = result.fix
            line = (
                f"clone-{index:03d}: ({fix.position.x:.3f}, "
                f"{fix.position.y:.3f}) m from "
                f"{result.reports_offered} reports"
            )
            if recording.truth is not None:
                line += f", error {result.error_m * 100:.2f} cm"
            print(line)
        positions = {
            (round(r.fix.position.x, 12), round(r.fix.position.y, 12))
            for r in outcome
        }
        print(
            f"fan-out   : {len(outcome)} deployments, "
            + ("all fixes identical" if len(positions) == 1
               else f"{len(positions)} DISTINCT fixes")
        )
        return 0 if len(positions) == 1 else 1
    result = outcome
    stats = result.stream_stats
    print(
        f"ingested  : {result.reports_offered} reports in "
        f"{stats['batches']} batches ({args.decode} decode); "
        f"{stats['resyncs']} resyncs, {stats['bytes_skipped']} "
        f"bytes skipped"
    )
    fix = result.fix
    print(f"estimate  : ({fix.position.x:.3f}, {fix.position.y:.3f}) m")
    if recording.truth is not None:
        truth2 = recording.truth.horizontal()
        print(f"recorded  : ({truth2.x:.3f}, {truth2.y:.3f}) m truth")
        print(f"error     : {result.error_m * 100:.2f} cm")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="tagspin",
        description="Tagspin RFID reader localization (ICDCS 2016 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    p2 = subparsers.add_parser("locate2d", help="one 2D localization")
    p2.add_argument("x", type=float, help="reader x [m]")
    p2.add_argument("y", type=float, help="reader y [m]")
    _add_common(p2)
    p2.set_defaults(func=_cmd_locate2d)

    p3 = subparsers.add_parser("locate3d", help="one 3D localization")
    p3.add_argument("x", type=float)
    p3.add_argument("y", type=float)
    p3.add_argument("z", type=float)
    _add_common(p3)
    p3.set_defaults(func=_cmd_locate3d)

    pt = subparsers.add_parser("trials", help="random-pose error statistics")
    pt.add_argument("--trials", type=int, default=20)
    pt.add_argument("--three-d", action="store_true")
    _add_common(pt)
    pt.set_defaults(func=_cmd_trials)

    pc = subparsers.add_parser("compare", help="Tagspin vs baselines")
    pc.add_argument("--trials", type=int, default=8)
    _add_common(pc)
    pc.set_defaults(func=_cmd_compare)

    pg = subparsers.add_parser("tags", help="print the Table I tag models")
    pg.set_defaults(func=_cmd_tags)

    pp = subparsers.add_parser("plan", help="predicted-accuracy map")
    pp.add_argument("--distance", type=float, default=0.5,
                    help="disk-center distance [m]")
    pp.add_argument("--resolution", type=float, default=0.5,
                    help="map grid resolution [m]")
    pp.set_defaults(func=_cmd_plan)

    ph = subparsers.add_parser("health", help="deployment health table")
    ph.add_argument("--x", type=float, default=0.4, help="reader x [m]")
    ph.add_argument("--y", type=float, default=1.9, help="reader y [m]")
    _add_common(ph)
    ph.set_defaults(func=_cmd_health)

    pd = subparsers.add_parser(
        "diagnose", help="resilient-server fix with fault injection"
    )
    pd.add_argument(
        "--fault",
        choices=["none", "stall", "jam", "pi-slips", "duplicates", "corrupt"],
        default="none",
        help="fault to inject into the simulated stream",
    )
    pd.add_argument("--disks", type=int, default=3,
                    help="number of spinning disks (>= 2)")
    pd.add_argument("--x", type=float, default=0.4, help="reader x [m]")
    pd.add_argument("--y", type=float, default=1.9, help="reader y [m]")
    _add_common(pd)
    pd.set_defaults(func=_cmd_diagnose)

    pb = subparsers.add_parser(
        "bench-engine",
        help="time the spectrum engines over a synthetic deployment",
    )
    pb.add_argument(
        "--scales",
        nargs="+",
        choices=["small", "medium", "large"],
        default=["medium"],
        help="scenario scales to run (default: medium)",
    )
    pb.add_argument(
        "--engines",
        nargs="+",
        default=["reference", "batched", "parallel", "adaptive", "harmonic"],
        help="engines to time (reference, batched, parallel, "
        "parallel-thread, parallel-process, adaptive, "
        "adaptive-harmonic, streaming, harmonic, harmonic+native)",
    )
    pb.add_argument("--rounds", type=int, default=3,
                    help="localization fixes per scenario")
    pb.add_argument("--snapshots", type=int, default=None,
                    help="override snapshots per series")
    pb.add_argument("--tolerance", type=float, default=None,
                    help="adaptive engine angular tolerance [rad] "
                    "(default 1e-3)")
    pb.add_argument("--streaming", action="store_true",
                    help="also run the cold-vs-append streaming "
                    "microbenchmark")
    pb.add_argument("--json", default=None,
                    help="write machine-readable timings to this path")
    _add_common(pb)
    pb.set_defaults(func=_cmd_bench_engine)

    ps = subparsers.add_parser(
        "serve",
        help="supervised fleet serving session over a simulated stream",
    )
    ps.add_argument("--deployments", type=int, default=2,
                    help="number of supervised deployments")
    ps.add_argument("--workers", type=int, default=0,
                    help="shard the fleet across this many worker "
                    "processes (0 = in-process supervisor); ingest "
                    "crosses via shared-memory columnar transport")
    ps.add_argument("--chunk-size", type=int, default=100,
                    help="reports per offered ingest batch")
    ps.add_argument("--checkpoint-every", type=int, default=2,
                    help="auto-checkpoint every N ingest batches "
                    "(0 disables)")
    ps.add_argument("--checkpoint-dir", default=None,
                    help="persist checkpoints as JSON under this directory "
                    "(default: in-memory)")
    ps.add_argument("--kill", action="store_true",
                    help="crash one actor mid-stream to demonstrate the "
                    "supervised warm restart")
    ps.add_argument("--chaos", action="store_true",
                    help="run the chaos suite instead; exit nonzero on any "
                    "SLO violation")
    ps.add_argument("--x", type=float, default=0.4, help="reader x [m]")
    ps.add_argument("--y", type=float, default=1.9, help="reader y [m]")
    _add_common(ps)
    ps.set_defaults(func=_cmd_serve)

    pm = subparsers.add_parser(
        "metrics",
        help="run a short sharded session and dump the telemetry "
        "snapshot (Prometheus text / tagspin-metrics/1 JSON)",
    )
    pm.add_argument("--workers", type=int, default=2,
                    help="worker processes to shard across (>= 1)")
    pm.add_argument("--deployments", type=int, default=4,
                    help="number of deployments to stream")
    pm.add_argument("--chunk-size", type=int, default=200,
                    help="reports per offered ingest batch")
    pm.add_argument("--kill", action="store_true",
                    help="SIGKILL + restart one worker mid-stream; the "
                    "snapshot must stay exact across the fold")
    pm.add_argument("--format", choices=("prom", "json", "both"),
                    default="prom", help="exposition format on stdout")
    pm.add_argument("--out", default=None,
                    help="also write the JSON snapshot to this path")
    pm.add_argument("--x", type=float, default=0.4, help="reader x [m]")
    pm.add_argument("--y", type=float, default=1.9, help="reader y [m]")
    _add_common(pm)
    pm.set_defaults(func=_cmd_metrics)

    pr = subparsers.add_parser(
        "replay",
        help="capture or replay a binary wire recording through the fleet",
    )
    pr.add_argument("path", help="wire recording file (.tswire)")
    pr.add_argument("--record", action="store_true",
                    help="simulate a session and capture it to PATH "
                    "instead of replaying")
    pr.add_argument("--speed", type=float, default=100.0,
                    help="replay pacing multiple of the captured timing "
                    "(1-1000x typical)")
    pr.add_argument("--decode", choices=("columnar", "object"),
                    default="columnar", help="wire decode path")
    pr.add_argument("--deployments", type=int, default=1,
                    help="clone the recording across M synthetic "
                    "deployments (fan-out load shape; fixes must agree)")
    pr.add_argument("--fragment", type=int, default=1400,
                    help="split frames into writes of this many bytes "
                    "to exercise reassembly (MTU-ish default)")
    pr.add_argument("--x", type=float, default=0.4,
                    help="reader x [m] when recording")
    pr.add_argument("--y", type=float, default=1.9,
                    help="reader y [m] when recording")
    _add_common(pr)
    pr.set_defaults(func=_cmd_replay)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
