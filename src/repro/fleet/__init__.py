"""Fleet serving tier: supervised deployment actors over asyncio.

The paper's "central localization server" is a single in-process object;
this package is what lets one process serve *thousands* of deployments
(disk sets) with robustness as the organizing principle:

* :mod:`repro.fleet.events` — structured actor-lifecycle events;
* :mod:`repro.fleet.backpressure` — bounded ingest mailboxes with
  high-water-mark load shedding and exact shed accounting;
* :mod:`repro.fleet.actor` — one :class:`DeploymentActor` per deployment
  id, wrapping a :class:`~repro.server.resilience
  .ResilientLocalizationServer`, serializing ingest and fixes, and
  bounding every solve with a deadline budget;
* :mod:`repro.fleet.supervisor` — restart-with-backoff supervision and
  per-deployment circuit breakers;
* :mod:`repro.fleet.checkpoint` — periodic snapshot/restore of stream
  buffers and degradation state so restarts warm-start instead of
  rebuilding cold;
* :mod:`repro.fleet.chaos` — the fault-injection harness asserting the
  tier's recovery SLOs;
* :mod:`repro.fleet.sharding` / :mod:`repro.fleet.worker` — the
  multi-core tier: hash-sharded worker *processes* (a full supervisor
  per shard) with zero-copy columnar ingest over shared memory.
"""

from repro.fleet.actor import ActorConfig, ActorStats, DeploymentActor
from repro.fleet.backpressure import (
    BoundedMailbox,
    ColumnarIngestMessage,
    ShedStats,
)
from repro.fleet.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointStore,
    DeploymentCheckpoint,
    JsonCheckpointStore,
    MemoryCheckpointStore,
)
from repro.fleet.chaos import ChaosConfig, ChaosReport, run_chaos_suite
from repro.fleet.events import (
    EVENT_ACTOR_CRASHED,
    EVENT_ACTOR_RESTARTED,
    EVENT_ACTOR_STARTED,
    EVENT_ACTOR_STOPPED,
    EVENT_BREAKER_CLOSED,
    EVENT_BREAKER_HALF_OPEN,
    EVENT_BREAKER_OPENED,
    EVENT_CHECKPOINT_CORRUPT,
    EVENT_CHECKPOINT_RESTORED,
    EVENT_CHECKPOINT_SAVED,
    EVENT_FIX_DEADLINE,
    EVENT_REPORTS_SHED,
    EVENT_WORKER_KILLED,
    EVENT_WORKER_LOST,
    EVENT_WORKER_RESTARTED,
    EVENT_WORKER_STARTED,
    EVENT_WORKER_STOPPED,
    EventLog,
    FleetEvent,
)
from repro.fleet.sharding import ShardedFleet, ShmRing, shard_for
from repro.fleet.supervisor import (
    BreakerState,
    FleetSupervisor,
    SupervisorPolicy,
)
from repro.fleet.worker import (
    DeploymentSpec,
    WorkerOptions,
    apply_thread_limits,
    thread_pin_env,
)

__all__ = [
    "ActorConfig",
    "ActorStats",
    "DeploymentActor",
    "BoundedMailbox",
    "ShedStats",
    "CHECKPOINT_SCHEMA",
    "CheckpointStore",
    "DeploymentCheckpoint",
    "JsonCheckpointStore",
    "MemoryCheckpointStore",
    "ChaosConfig",
    "ChaosReport",
    "run_chaos_suite",
    "EventLog",
    "FleetEvent",
    "EVENT_ACTOR_CRASHED",
    "EVENT_ACTOR_RESTARTED",
    "EVENT_ACTOR_STARTED",
    "EVENT_ACTOR_STOPPED",
    "EVENT_BREAKER_CLOSED",
    "EVENT_BREAKER_HALF_OPEN",
    "EVENT_BREAKER_OPENED",
    "EVENT_CHECKPOINT_CORRUPT",
    "EVENT_CHECKPOINT_RESTORED",
    "EVENT_CHECKPOINT_SAVED",
    "EVENT_FIX_DEADLINE",
    "EVENT_REPORTS_SHED",
    "EVENT_WORKER_KILLED",
    "EVENT_WORKER_LOST",
    "EVENT_WORKER_RESTARTED",
    "EVENT_WORKER_STARTED",
    "EVENT_WORKER_STOPPED",
    "ColumnarIngestMessage",
    "BreakerState",
    "FleetSupervisor",
    "SupervisorPolicy",
    "DeploymentSpec",
    "ShardedFleet",
    "ShmRing",
    "WorkerOptions",
    "apply_thread_limits",
    "shard_for",
    "thread_pin_env",
]
