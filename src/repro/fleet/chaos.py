"""Chaos harness for the fleet serving tier.

Four fleet-level fault scenarios, each composed with the RF/transport
faults from :mod:`repro.sim.faults` and each asserting a recovery SLO
rather than just "it didn't crash":

* **actor-kill** — crash the actor mid-serving; fixes must resume within
  ``recovery_fix_budget`` offer+fix cycles, the restarted actor must
  warm-start from its checkpoint, and (with a streaming engine) the
  post-restart fixes must ride the accumulator's append path.
* **ingest-flood** — overload the mailbox with bystander-heavy traffic;
  shedding must target bystander reports first and the report ledger
  must reconcile exactly (``offered == shed + pending + delivered +
  lost``) — overload may lose data, never accounting.
* **checkpoint-corruption** — tear the stored checkpoint, then crash the
  actor; recovery must degrade to a cold start (corrupt event emitted,
  no garbage restored) and still serve fixes from fresh data.
* **clock-skew** — serve one deployment from two readers whose clocks
  disagree by seconds, one of them also duplicating and reordering its
  delivery; per-stream fixes must agree and the validator ledger must
  absorb the duplicates exactly.

``run_chaos_suite`` is synchronous (it owns its event loop via
:func:`asyncio.run`) so pytest, the benchmark and the CLI can all call
it directly.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.core.geometry import Point3
from repro.errors import TagspinError
from repro.fleet.actor import ActorConfig
from repro.fleet.checkpoint import MemoryCheckpointStore
from repro.fleet.events import (
    EVENT_CHECKPOINT_CORRUPT,
    EVENT_REPORTS_SHED,
    EventLog,
)
from repro.fleet.supervisor import FleetSupervisor, SupervisorPolicy
from repro.hardware.llrp import ReportBatch, TagReportData
from repro.perf.engine import EngineSpec
from repro.server.resilience import ResilientLocalizationServer, RetryPolicy
from repro.sim import faults
from repro.sim.scenario import TagspinScenario, paper_default_scenario

#: Reader pose used for every chaos collection.
CHAOS_POSE = Point3(0.4, 1.9, 0.0)


@dataclass(frozen=True)
class ChaosConfig:
    """Tuning of one chaos run."""

    seed: int = 7
    engine: EngineSpec = "streaming"
    #: SLO: fixes must succeed within this many offer+fix cycles after a
    #: fault clears.
    recovery_fix_budget: int = 3
    #: Reports per offered chunk (streamed ingestion granularity).
    chunk_size: int = 250
    #: Mailbox high-water mark used by the flood scenario.
    flood_high_water: int = 400
    #: Whole disk rotations of reader-clock skew injected by the skew
    #: scenario.  A whole-rotation offset is phase-consistent, so the
    #: skewed reader's fix must agree with the unskewed one; the same
    #: scenario also drives a *fractionally* skewed reader, whose fix is
    #: physically biased and only has to keep serving.
    skew_rotations: int = 3
    #: Fix positions of phase-consistently skewed readers must agree
    #: within this [m].
    skew_agreement_m: float = 0.05


@dataclass
class ScenarioOutcome:
    """Result of one chaos scenario."""

    name: str
    passed: bool
    slo: str
    details: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "passed": self.passed,
            "slo": self.slo,
            "details": dict(self.details),
        }


@dataclass
class ChaosReport:
    """Aggregate result of a chaos suite run."""

    outcomes: List[ScenarioOutcome] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(outcome.passed for outcome in self.outcomes)

    def outcome(self, name: str) -> ScenarioOutcome:
        for candidate in self.outcomes:
            if candidate.name == name:
                return candidate
        raise KeyError(name)

    def as_dict(self) -> dict:
        return {
            "passed": self.passed,
            "scenarios": [outcome.as_dict() for outcome in self.outcomes],
        }


# ----------------------------------------------------------------------
# Shared plumbing
# ----------------------------------------------------------------------
class _Harness:
    """One deployment under supervision, fed from a simulated collection."""

    def __init__(
        self,
        scenario: TagspinScenario,
        batch: ReportBatch,
        config: ChaosConfig,
        high_water: int = 1_000_000,
    ) -> None:
        self.scenario = scenario
        self.batch = batch
        self.config = config
        self.events = EventLog()
        self.store = MemoryCheckpointStore()
        self.supervisor = FleetSupervisor(
            policy=SupervisorPolicy(
                max_restarts=10,
                restart_window_s=300.0,
                backoff=RetryPolicy(
                    max_attempts=1_000_000,
                    backoff_base_s=0.005,
                    backoff_max_s=0.02,
                ),
                open_cooldown_s=0.05,
                stability_probe_s=0.05,
            ),
            events=self.events,
            store=self.store,
        )
        pipeline = scenario.config.pipeline
        registry = scenario.scene.registry
        engine = config.engine

        def server_factory() -> ResilientLocalizationServer:
            return ResilientLocalizationServer(
                registry, pipeline, engine=engine
            )

        self.deployment_id = "chaos-deployment"
        self.offered_total = 0
        self.supervisor.add_deployment(
            self.deployment_id,
            server_factory,
            ActorConfig(high_water_mark=high_water),
        )

    def chunks(self, batch: Optional[ReportBatch] = None) -> List[List[TagReportData]]:
        reports = (batch or self.batch).reports
        size = self.config.chunk_size
        return [
            list(reports[i : i + size]) for i in range(0, len(reports), size)
        ]

    def offer(self, reader_name: str, reports: List[TagReportData]) -> int:
        self.offered_total += len(reports)
        return self.supervisor.offer(self.deployment_id, reader_name, reports)

    async def drain(self, timeout_s: float = 10.0) -> None:
        """Wait until the live actor's mailbox is empty."""

        def drained() -> bool:
            actor = self.supervisor.actor(self.deployment_id)
            return actor is not None and actor.mailbox.pending_reports == 0

        await _wait_for(drained, timeout_s)

    async def fix(self, reader_name: str = "r1"):
        return await self.supervisor.locate_2d(
            self.deployment_id, reader_name
        )

    def accounting(self) -> dict:
        return self.supervisor.accounting(self.deployment_id)

    def reconciles(self) -> Tuple[bool, dict]:
        """Check the exact report ledger invariant."""
        acct = self.accounting()
        ok = (
            self.offered_total
            == acct["offered"] + acct["rejected_open"]
            and acct["offered"]
            == acct["shed"]
            + acct["pending"]
            + acct["delivered"]
            + acct["lost_in_crash"]
            and acct["delivered"]
            == acct["received"] + acct["rejected_invalid"]
            and acct["received"] == acct["accepted"] + acct["quarantined"]
        )
        return ok, acct

    async def shutdown(self) -> None:
        await self.supervisor.stop()


async def _wait_for(
    predicate: Callable[[], bool], timeout_s: float
) -> None:
    deadline = time.monotonic() + timeout_s
    while not predicate():
        if time.monotonic() > deadline:
            raise TimeoutError("chaos harness: condition not reached in time")
        await asyncio.sleep(0.005)


def _streaming_stats(harness: _Harness) -> Optional[dict]:
    actor = harness.supervisor.actor(harness.deployment_id)
    if actor is None:
        return None
    stats = actor.server.system.engine.cache_stats()
    return stats.get("streaming")


async def _recover_fixes(
    harness: _Harness,
    pending_chunks: List[List[TagReportData]],
    reader_name: str = "r1",
) -> Tuple[int, object]:
    """Offer+fix cycles until a fix succeeds; returns (cycles, fix)."""
    budget = harness.config.recovery_fix_budget
    last_error: Optional[Exception] = None
    for cycle in range(1, budget + 1):
        if pending_chunks:
            harness.offer(reader_name, pending_chunks.pop(0))
            await harness.drain()
        try:
            fix, _diag = await harness.fix(reader_name)
            return cycle, fix
        except TagspinError as exc:
            last_error = exc
    raise AssertionError(
        f"no fix within {budget} recovery cycles: {last_error!r}"
    )


# ----------------------------------------------------------------------
# Scenarios
# ----------------------------------------------------------------------
async def _run_actor_kill(
    scenario: TagspinScenario, batch: ReportBatch, config: ChaosConfig
) -> ScenarioOutcome:
    harness = _Harness(scenario, batch, config)
    details: Dict[str, object] = {}
    try:
        chunks = harness.chunks()
        half = max(1, len(chunks) // 2)
        await _wait_for(
            lambda: harness.supervisor.actor(harness.deployment_id)
            is not None,
            5.0,
        )
        for chunk in chunks[:half]:
            harness.offer("r1", chunk)
        await harness.drain()
        await harness.fix()  # baseline fix + builds streaming state
        await harness.supervisor.checkpoint(harness.deployment_id)
        pre_kill = _streaming_stats(harness)

        harness.supervisor.kill(harness.deployment_id)
        await _wait_for(
            lambda: (
                harness.supervisor.actor(harness.deployment_id) is not None
                and harness.supervisor.actor(
                    harness.deployment_id
                ).incarnation
                > 0
                and harness.supervisor.actor(harness.deployment_id).running
            ),
            10.0,
        )
        actor = harness.supervisor.actor(harness.deployment_id)
        warm = actor.stats.warm_restored
        restored = actor.stats.restored_reports
        cycles, _fix = await _recover_fixes(harness, chunks[half:])
        post = _streaming_stats(harness)
        ledger_ok, acct = harness.reconciles()
        append_path_ok = True
        if pre_kill is not None and post is not None:
            # Warm restore + priming means serving fixes after new data
            # extend the accumulator instead of rebuilding history.
            append_path_ok = post["extensions"] >= 1
            details["post_restart_streaming"] = post
        details.update(
            {
                "warm_restored": warm,
                "restored_reports": restored,
                "recovery_cycles": cycles,
                "ledger": acct,
            }
        )
        passed = (
            warm
            and restored > 0
            and cycles <= config.recovery_fix_budget
            and append_path_ok
            and ledger_ok
        )
        return ScenarioOutcome(
            name="actor-kill",
            passed=passed,
            slo=(
                f"fix within {config.recovery_fix_budget} cycles of a crash, "
                f"warm-started from checkpoint, ledger exact"
            ),
            details=details,
        )
    finally:
        await harness.shutdown()


async def _run_ingest_flood(
    scenario: TagspinScenario, batch: ReportBatch, config: ChaosConfig
) -> ScenarioOutcome:
    harness = _Harness(
        scenario, batch, config, high_water=config.flood_high_water
    )
    details: Dict[str, object] = {}
    try:
        await _wait_for(
            lambda: harness.supervisor.actor(harness.deployment_id)
            is not None,
            5.0,
        )
        # Interleave calibration traffic with 2x bystander traffic (tags
        # the registry does not know), then flood without yielding so
        # the mailbox sees the whole burst at once.
        bystanders = [
            replace(report, epc=f"BYSTANDER-{i % 17:04d}")
            for i, report in enumerate(batch.reports)
        ]
        for chunk in harness.chunks():
            harness.offer("r1", chunk)
        for i in range(0, len(bystanders), config.chunk_size):
            harness.offer("r1", bystanders[i : i + config.chunk_size])
        shed_events = harness.events.count(EVENT_REPORTS_SHED)
        await harness.drain()
        cycles, _fix = await _recover_fixes(harness, [])
        ledger_ok, acct = harness.reconciles()
        actor = harness.supervisor.actor(harness.deployment_id)
        shed_stats = actor.mailbox.stats
        details.update(
            {
                "ledger": acct,
                "shed_events": shed_events,
                "shed_bystander": shed_stats.shed_bystander,
                "shed_infrastructure": shed_stats.shed_infrastructure,
                "recovery_cycles": cycles,
            }
        )
        passed = (
            acct["shed"] > 0
            and shed_events > 0
            and shed_stats.shed_bystander > 0
            and ledger_ok
            and cycles <= config.recovery_fix_budget
        )
        return ScenarioOutcome(
            name="ingest-flood",
            passed=passed,
            slo=(
                "overload sheds bystander reports first, every shed report "
                "is counted, and fixes keep serving"
            ),
            details=details,
        )
    finally:
        await harness.shutdown()


async def _run_checkpoint_corruption(
    scenario: TagspinScenario, batch: ReportBatch, config: ChaosConfig
) -> ScenarioOutcome:
    harness = _Harness(scenario, batch, config)
    details: Dict[str, object] = {}
    try:
        chunks = harness.chunks()
        half = max(1, len(chunks) // 2)
        await _wait_for(
            lambda: harness.supervisor.actor(harness.deployment_id)
            is not None,
            5.0,
        )
        for chunk in chunks[:half]:
            harness.offer("r1", chunk)
        await harness.drain()
        await harness.supervisor.checkpoint(harness.deployment_id)
        harness.store.corrupt(harness.deployment_id)
        harness.supervisor.kill(harness.deployment_id)
        await _wait_for(
            lambda: (
                harness.supervisor.actor(harness.deployment_id) is not None
                and harness.supervisor.actor(
                    harness.deployment_id
                ).incarnation
                > 0
                and harness.supervisor.actor(harness.deployment_id).running
            ),
            10.0,
        )
        actor = harness.supervisor.actor(harness.deployment_id)
        corrupt_events = harness.events.count(EVENT_CHECKPOINT_CORRUPT)
        cold = not actor.stats.warm_restored
        cycles, _fix = await _recover_fixes(harness, chunks[half:])
        ledger_ok, acct = harness.reconciles()
        details.update(
            {
                "corrupt_events": corrupt_events,
                "cold_started": cold,
                "recovery_cycles": cycles,
                "ledger": acct,
            }
        )
        passed = (
            corrupt_events >= 1
            and cold
            and cycles <= config.recovery_fix_budget
            and ledger_ok
        )
        return ScenarioOutcome(
            name="checkpoint-corruption",
            passed=passed,
            slo=(
                "a torn checkpoint downgrades recovery to a cold start "
                "(never restores garbage) and fixes still resume"
            ),
            details=details,
        )
    finally:
        await harness.shutdown()


async def _run_clock_skew(
    scenario: TagspinScenario, batch: ReportBatch, config: ChaosConfig
) -> ScenarioOutcome:
    harness = _Harness(scenario, batch, config)
    details: Dict[str, object] = {}
    try:
        await _wait_for(
            lambda: harness.supervisor.actor(harness.deployment_id)
            is not None,
            5.0,
        )
        rng = np.random.default_rng(config.seed)
        registry = scenario.scene.registry
        speed = max(
            registry.get(epc).disk.angular_speed for epc in registry.epcs()
        )
        period_us = 2.0 * np.pi / speed * 1e6
        consistent_us = int(round(config.skew_rotations * period_us))
        fractional_us = int(round((config.skew_rotations + 0.5) * period_us))
        skewed = faults.chain(
            batch,
            lambda b: faults.skew_clock(b, consistent_us),
            lambda b: faults.duplicate_reports(b, 0.10, rng),
            lambda b: faults.shuffle_reports(b, rng),
        )
        for chunk in harness.chunks():
            harness.offer("r1", chunk)
        await harness.drain()
        # The skewed readers deliver their whole (reordered) collection
        # in one batch: the validator re-sorts within the batch.
        harness.offer("r2", list(skewed.reports))
        harness.offer(
            "r3", list(faults.skew_clock(batch, fractional_us).reports)
        )
        await harness.drain()
        fix1, _ = await harness.fix("r1")
        fix2, _ = await harness.fix("r2")
        fix3, _ = await harness.fix("r3")  # biased, but must still serve
        disagreement = fix1.position.distance_to(fix2.position)
        fractional_bias = fix1.position.distance_to(fix3.position)
        ledger_ok, acct = harness.reconciles()
        details.update(
            {
                "consistent_skew_us": consistent_us,
                "fractional_skew_us": fractional_us,
                "disagreement_m": disagreement,
                "fractional_bias_m": fractional_bias,
                "duplicates_quarantined": acct["quarantined"],
                "ledger": acct,
            }
        )
        passed = (
            disagreement <= config.skew_agreement_m
            and np.isfinite(fractional_bias)
            and acct["quarantined"] > 0
            and ledger_ok
        )
        return ScenarioOutcome(
            name="clock-skew",
            passed=passed,
            slo=(
                f"a reader skewed by {config.skew_rotations} whole disk "
                f"rotations (plus duplication and reordering) agrees "
                f"within {config.skew_agreement_m} m; a fractionally "
                f"skewed reader degrades but keeps serving; duplicates "
                f"land in the quarantine ledger"
            ),
            details=details,
        )
    finally:
        await harness.shutdown()


_SCENARIOS = {
    "actor-kill": _run_actor_kill,
    "ingest-flood": _run_ingest_flood,
    "checkpoint-corruption": _run_checkpoint_corruption,
    "clock-skew": _run_clock_skew,
}


async def _run_suite(
    config: ChaosConfig,
    scenario: TagspinScenario,
    batch: ReportBatch,
    names: List[str],
) -> ChaosReport:
    report = ChaosReport()
    for name in names:
        report.outcomes.append(await _SCENARIOS[name](scenario, batch, config))
    return report


def run_chaos_suite(
    config: Optional[ChaosConfig] = None,
    scenario: Optional[TagspinScenario] = None,
    scenarios: Optional[List[str]] = None,
) -> ChaosReport:
    """Run the chaos scenarios and return their SLO outcomes.

    ``scenario`` may be a pre-calibrated :class:`TagspinScenario` (tests
    reuse a session fixture to avoid re-running the calibration
    prelude); by default a paper-default scenario is built from
    ``config.seed``.  ``scenarios`` selects a subset by name.
    """
    config = config if config is not None else ChaosConfig()
    if scenario is None:
        scenario = paper_default_scenario(seed=config.seed)
        scenario.run_orientation_prelude()
    names = scenarios if scenarios is not None else sorted(_SCENARIOS)
    unknown = set(names) - set(_SCENARIOS)
    if unknown:
        raise KeyError(f"unknown chaos scenarios: {sorted(unknown)}")
    batch, _reader = scenario.collect(CHAOS_POSE)
    return asyncio.run(_run_suite(config, scenario, batch, names))
