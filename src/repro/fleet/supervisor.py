"""Restart supervision and per-deployment circuit breakers.

:class:`FleetSupervisor` runs one supervision task per deployment.  When
an actor crashes, the supervisor drains its mailbox (counting every
undelivered report — crash loss is accounted, never silent), folds the
dead incarnation's counters into the deployment's lifetime ledger, waits
out a full-jitter exponential backoff (reusing
:class:`~repro.server.resilience.RetryPolicy`), and starts a fresh
incarnation that warm-starts from the last checkpoint.

A deployment that keeps crashing trips its **circuit breaker**: more
than ``max_restarts`` crashes inside ``restart_window_s`` moves the
breaker to OPEN — ingest is rejected outright (counted) and fixes raise
:class:`~repro.errors.ActorUnavailableError` instead of feeding a crash
loop.  After ``open_cooldown_s`` the breaker goes HALF_OPEN and one
probe incarnation starts; surviving ``stability_probe_s`` closes the
breaker and clears the crash history, while another crash reopens it.
Every transition is a structured event.
"""

from __future__ import annotations

import asyncio
import enum
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Awaitable, Callable, Deque, Dict, Optional, Sequence

from repro.errors import ActorUnavailableError, ConfigurationError
from repro.fleet.actor import ActorConfig, DeploymentActor, ServerFactory
from repro.fleet.checkpoint import CheckpointStore
from repro.fleet.events import (
    EVENT_ACTOR_CRASHED,
    EVENT_ACTOR_RESTARTED,
    EVENT_ACTOR_STARTED,
    EVENT_ACTOR_STOPPED,
    EVENT_BREAKER_CLOSED,
    EVENT_BREAKER_HALF_OPEN,
    EVENT_BREAKER_OPENED,
    EVENT_INGEST_REJECTED,
    EventLog,
)
from repro.hardware.llrp import TagReportData
from repro.server.resilience import RetryPolicy


class BreakerState(enum.Enum):
    """Circuit state of one deployment."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass(frozen=True)
class SupervisorPolicy:
    """Restart and circuit-breaker tuning."""

    #: Crashes tolerated inside ``restart_window_s`` before the breaker
    #: opens (the (N+1)-th crash in the window trips it).
    max_restarts: int = 3
    restart_window_s: float = 60.0
    #: Backoff between restarts; give it a ``jitter_rng`` in production
    #: so a correlated outage doesn't restart every deployment in phase.
    backoff: RetryPolicy = field(
        default_factory=lambda: RetryPolicy(
            max_attempts=1_000_000, backoff_base_s=0.05, backoff_max_s=5.0
        )
    )
    #: OPEN-state cooldown before the half-open probe incarnation.
    open_cooldown_s: float = 1.0
    #: A probe incarnation surviving this long closes the breaker.
    stability_probe_s: float = 0.25


@dataclass
class _Ledger:
    """Lifetime report accounting of one deployment (all incarnations)."""

    offered: int = 0
    shed: int = 0
    delivered: int = 0
    pending: int = 0
    received: int = 0
    accepted: int = 0
    quarantined: int = 0
    rejected_invalid: int = 0
    rejected_open: int = 0
    lost_in_crash: int = 0

    def add_incarnation(self, accounting: dict) -> None:
        self.offered += accounting["offered"]
        self.shed += accounting["shed"]
        self.delivered += accounting["delivered"]
        self.received += accounting["received"]
        self.accepted += accounting["accepted"]
        self.quarantined += accounting["quarantined"]
        self.rejected_invalid += accounting["rejected_invalid"]

    def as_dict(self) -> dict:
        return {
            "offered": self.offered,
            "shed": self.shed,
            "delivered": self.delivered,
            "pending": self.pending,
            "received": self.received,
            "accepted": self.accepted,
            "quarantined": self.quarantined,
            "rejected_invalid": self.rejected_invalid,
            "rejected_open": self.rejected_open,
            "lost_in_crash": self.lost_in_crash,
        }


@dataclass
class _Deployment:
    deployment_id: str
    server_factory: ServerFactory
    actor_config: ActorConfig
    actor: Optional[DeploymentActor] = None
    task: Optional["asyncio.Task"] = None
    breaker: BreakerState = BreakerState.CLOSED
    incarnation: int = 0
    crash_times: Deque[float] = field(default_factory=deque)
    ledger: _Ledger = field(default_factory=_Ledger)
    stopping: bool = False


class FleetSupervisor:
    """Supervises many deployment actors inside one event loop.

    ``clock`` and ``sleep`` are injection points (tests pass stubs to
    drive the crash window and cooldowns deterministically).
    """

    def __init__(
        self,
        policy: Optional[SupervisorPolicy] = None,
        events: Optional[EventLog] = None,
        store: Optional[CheckpointStore] = None,
        clock: Callable[[], float] = time.monotonic,
        sleep: Optional[Callable[[float], Awaitable[None]]] = None,
    ) -> None:
        self.policy = policy if policy is not None else SupervisorPolicy()
        self.events = events if events is not None else EventLog()
        self.store = store
        self._clock = clock
        self._sleep = sleep if sleep is not None else asyncio.sleep
        self._deployments: Dict[str, _Deployment] = {}

    # ------------------------------------------------------------------
    # Fleet membership
    # ------------------------------------------------------------------
    def add_deployment(
        self,
        deployment_id: str,
        server_factory: ServerFactory,
        actor_config: Optional[ActorConfig] = None,
    ) -> None:
        """Register and immediately start one deployment."""
        if deployment_id in self._deployments:
            raise ConfigurationError(
                f"deployment {deployment_id!r} already registered"
            )
        deployment = _Deployment(
            deployment_id=deployment_id,
            server_factory=server_factory,
            actor_config=(
                actor_config if actor_config is not None else ActorConfig()
            ),
        )
        self._deployments[deployment_id] = deployment
        deployment.task = asyncio.ensure_future(self._supervise(deployment))

    def deployment_ids(self) -> Sequence[str]:
        return sorted(self._deployments)

    async def stop(self) -> None:
        """Stop every actor cleanly and wait for supervision to finish."""
        for deployment in self._deployments.values():
            deployment.stopping = True
            if deployment.actor is not None and deployment.actor.running:
                try:
                    await deployment.actor.stop()
                except ActorUnavailableError:
                    pass  # crashed while stopping; supervision exits anyway
        for deployment in self._deployments.values():
            if deployment.task is not None:
                try:
                    await deployment.task
                except asyncio.CancelledError:
                    pass

    # ------------------------------------------------------------------
    # Supervision loop
    # ------------------------------------------------------------------
    async def _supervise(self, deployment: _Deployment) -> None:
        while not deployment.stopping:
            actor = DeploymentActor(
                deployment.deployment_id,
                deployment.server_factory,
                config=deployment.actor_config,
                events=self.events,
                store=self.store,
                incarnation=deployment.incarnation,
            )
            deployment.actor = actor
            self.events.emit(
                deployment.deployment_id,
                EVENT_ACTOR_STARTED
                if deployment.incarnation == 0
                else EVENT_ACTOR_RESTARTED,
                incarnation=deployment.incarnation,
                warm=actor.stats.warm_restored,
            )
            run_task = asyncio.ensure_future(actor.run())
            if deployment.breaker is BreakerState.HALF_OPEN:
                done, _pending = await asyncio.wait(
                    {run_task}, timeout=self.policy.stability_probe_s
                )
                if not done:
                    self._close_breaker(deployment)
            try:
                await run_task
            except asyncio.CancelledError:
                self._collect(deployment, actor, crashed=True)
                raise
            except Exception as exc:
                self._collect(deployment, actor, crashed=True)
                self.events.emit(
                    deployment.deployment_id,
                    EVENT_ACTOR_CRASHED,
                    incarnation=deployment.incarnation,
                    error=repr(exc),
                )
                deployment.incarnation += 1
                await self._crash_backoff(deployment)
                continue
            # Clean exit.
            self._collect(deployment, actor, crashed=False)
            self.events.emit(
                deployment.deployment_id,
                EVENT_ACTOR_STOPPED,
                incarnation=deployment.incarnation,
            )
            return

    def _collect(
        self, deployment: _Deployment, actor: DeploymentActor, crashed: bool
    ) -> None:
        """Fold a finished incarnation into the lifetime ledger."""
        deployment.actor = None
        accounting = actor.accounting()
        lost, commands = actor.mailbox.drain()
        for command in commands:
            if command.future is not None and not command.future.done():
                command.future.set_exception(
                    ActorUnavailableError(
                        f"deployment {deployment.deployment_id!r} actor "
                        f"{'crashed' if crashed else 'stopped'} before "
                        f"serving this request"
                    )
                )
        if crashed:
            # Delivered-but-unvalidated reports died with the actor too
            # (a crash mid-ingest); fold them into the same bucket.
            in_flight = (
                accounting["delivered"]
                - accounting["received"]
                - accounting["rejected_invalid"]
            )
            deployment.ledger.lost_in_crash += lost + max(0, in_flight)
            accounting["delivered"] -= max(0, in_flight)
        else:
            # Undelivered at clean shutdown: still pending, still counted.
            deployment.ledger.pending += lost
        deployment.ledger.add_incarnation(accounting)

    async def _crash_backoff(self, deployment: _Deployment) -> None:
        now = self._clock()
        window = deployment.crash_times
        window.append(now)
        while window and now - window[0] > self.policy.restart_window_s:
            window.popleft()
        if (
            deployment.breaker is BreakerState.HALF_OPEN
            or len(window) > self.policy.max_restarts
        ):
            await self._open_breaker(deployment)
            return
        await self._sleep(self.policy.backoff.delay(len(window)))

    async def _open_breaker(self, deployment: _Deployment) -> None:
        deployment.breaker = BreakerState.OPEN
        self.events.emit(
            deployment.deployment_id,
            EVENT_BREAKER_OPENED,
            crashes_in_window=len(deployment.crash_times),
        )
        await self._sleep(self.policy.open_cooldown_s)
        deployment.breaker = BreakerState.HALF_OPEN
        self.events.emit(deployment.deployment_id, EVENT_BREAKER_HALF_OPEN)

    def _close_breaker(self, deployment: _Deployment) -> None:
        deployment.breaker = BreakerState.CLOSED
        deployment.crash_times.clear()
        self.events.emit(deployment.deployment_id, EVENT_BREAKER_CLOSED)

    # ------------------------------------------------------------------
    # Serving API
    # ------------------------------------------------------------------
    def _deployment(self, deployment_id: str) -> _Deployment:
        try:
            return self._deployments[deployment_id]
        except KeyError:
            raise ConfigurationError(
                f"unknown deployment {deployment_id!r}"
            ) from None

    def offer(
        self,
        deployment_id: str,
        reader_name: str,
        reports: Sequence[TagReportData],
    ) -> int:
        """Route a report batch to one deployment; returns enqueued count.

        With the breaker OPEN (or the actor between incarnations) the
        batch is rejected and counted — callers see the loss immediately
        instead of discovering it at fix time.
        """
        deployment = self._deployment(deployment_id)
        actor = deployment.actor
        if deployment.breaker is BreakerState.OPEN or actor is None:
            deployment.ledger.rejected_open += len(reports)
            self.events.emit(
                deployment_id,
                EVENT_INGEST_REJECTED,
                reader_name=reader_name,
                reports=len(reports),
                error=f"breaker {deployment.breaker.value}"
                if deployment.breaker is BreakerState.OPEN
                else "actor restarting",
            )
            return 0
        return actor.offer(reader_name, reports)

    def offer_columnar(
        self,
        deployment_id: str,
        reader_name: str,
        cols,
    ) -> int:
        """Route a columnar batch to one deployment; returns kept rows.

        Same breaker/restart semantics as :meth:`offer`; the batch stays
        columnar end-to-end (mailbox, actor, vectorized validation).
        """
        deployment = self._deployment(deployment_id)
        actor = deployment.actor
        if deployment.breaker is BreakerState.OPEN or actor is None:
            deployment.ledger.rejected_open += len(cols)
            self.events.emit(
                deployment_id,
                EVENT_INGEST_REJECTED,
                reader_name=reader_name,
                reports=len(cols),
                error=f"breaker {deployment.breaker.value}"
                if deployment.breaker is BreakerState.OPEN
                else "actor restarting",
            )
            return 0
        return actor.offer_columnar(reader_name, cols)

    async def locate_2d(
        self, deployment_id: str, reader_name: str, antenna_port: int = 1
    ):
        """2D fix + diagnostics from one deployment's actor."""
        deployment = self._deployment(deployment_id)
        actor = deployment.actor
        if deployment.breaker is BreakerState.OPEN or actor is None:
            raise ActorUnavailableError(
                f"deployment {deployment_id!r} is not serving "
                f"(breaker {deployment.breaker.value})"
            )
        return await actor.request_fix(reader_name, antenna_port)

    async def checkpoint(self, deployment_id: str) -> int:
        deployment = self._deployment(deployment_id)
        actor = deployment.actor
        if actor is None:
            raise ActorUnavailableError(
                f"deployment {deployment_id!r} has no live actor"
            )
        return await actor.request_checkpoint()

    def kill(
        self, deployment_id: str, error: Optional[Exception] = None
    ) -> None:
        """Chaos hook: crash one deployment's current actor."""
        actor = self._deployment(deployment_id).actor
        if actor is None:
            raise ActorUnavailableError(
                f"deployment {deployment_id!r} has no live actor to kill"
            )
        actor.inject_crash(error)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def breaker_state(self, deployment_id: str) -> BreakerState:
        return self._deployment(deployment_id).breaker

    def actor(self, deployment_id: str) -> Optional[DeploymentActor]:
        return self._deployment(deployment_id).actor

    def accounting(self, deployment_id: str) -> dict:
        """Lifetime report ledger: dead incarnations plus the live one.

        The invariant the chaos harness asserts:
        ``offered == shed + pending + delivered + lost_in_crash`` and
        ``delivered == received + rejected_invalid`` with
        ``received == accepted + quarantined`` — every offered report is
        in exactly one bucket.  (``rejected_open`` counts batches turned
        away before they were ever offered to a mailbox.)
        """
        deployment = self._deployment(deployment_id)
        totals = _Ledger(**deployment.ledger.as_dict())
        if deployment.actor is not None:
            live = deployment.actor.accounting()
            totals.add_incarnation(live)
            totals.pending += live["pending"]
        return totals.as_dict()

    def metrics_snapshot(self) -> dict:
        """This process's ``tagspin-metrics/1`` registry snapshot.

        The in-process twin of
        :meth:`~repro.fleet.sharding.ShardedFleet.metrics_snapshot` —
        actors share the process-wide registry, so one snapshot covers
        every deployment.
        """
        from repro.obs.metrics import get_registry

        return get_registry().snapshot()
