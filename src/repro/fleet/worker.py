"""Worker-process body of the sharded fleet.

:func:`worker_main` is the ``multiprocessing`` entry point
:class:`~repro.fleet.sharding.ShardedFleet` spawns once per shard.  Each
worker runs a complete :class:`~repro.fleet.supervisor.FleetSupervisor`
event loop — restart-with-backoff, circuit breakers, checkpointing and
the exact report ledger all keep working *per shard* — and serves its
parent over one duplex pipe:

* control requests (``add``/``locate``/``checkpoint``/``sync``/…)
  carry a request id and get a ``("reply", rid, ok, payload)``;
* ingest (``offer`` / ``offer_cols`` / ``offer_cols_inline``) is
  fire-and-forget, but every offer is acknowledged with a
  ``("ledger", deployment_id, accounting, metrics)`` snapshot — the
  exact report ledger plus this process's metrics-registry snapshot —
  so the parent can fold exact cross-incarnation accounting *and*
  telemetry even when this process is SIGKILLed mid-stream (both ride
  the same message, so the folded metrics are always consistent with
  the folded ledger);
* ``offer_cols`` rows arrive through the shared-memory ring
  (:meth:`~repro.hardware.llrp_columnar.ColumnarReportBatch
  .unpack_from` — one copy out, no pickling) and the slot is released
  back to the parent with ``("release", offset)`` immediately.

**Thread-pool pinning.**  Workers must not oversubscribe cores: N
workers each letting BLAS/numba spawn ``os.cpu_count()`` threads for the
harmonic engine's ``exp``/``einsum`` accumulate is the profiling
follow-up ROADMAP item 3 warns about.  The parent therefore exports
``OMP_NUM_THREADS=…`` etc. *before* spawning (the only reliable moment —
BLAS reads them at import), and :func:`apply_thread_limits` additionally
applies ``threadpoolctl`` runtime limits here when that package is
importable.
"""

from __future__ import annotations

import asyncio
import os
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Tuple

#: Environment variables that cap the common native thread pools.  Set
#: by the parent before spawn so BLAS/OpenMP/numba read them at import.
THREAD_ENV_VARS = (
    "OMP_NUM_THREADS",
    "OPENBLAS_NUM_THREADS",
    "MKL_NUM_THREADS",
    "NUMEXPR_NUM_THREADS",
    "VECLIB_MAXIMUM_THREADS",
    "NUMBA_NUM_THREADS",
)


def thread_pin_env(threads: int) -> dict:
    """The environment a worker must inherit to pin its native pools."""
    if threads < 1:
        raise ValueError("threads must be positive")
    return {name: str(threads) for name in THREAD_ENV_VARS}


def apply_thread_limits(threads: int) -> dict:
    """Best-effort runtime pinning inside the worker; returns status.

    The env vars (set pre-spawn by the parent) are the load-bearing
    mechanism; ``threadpoolctl`` is applied on top when importable so
    pools that were already initialized get capped too.
    """
    status = {
        "threads": threads,
        "env": {
            name: os.environ.get(name) for name in THREAD_ENV_VARS
        },
        "threadpoolctl": False,
    }
    try:
        import threadpoolctl
    except ImportError:
        return status
    try:
        threadpoolctl.threadpool_limits(limits=threads)
        status["threadpoolctl"] = True
    except Exception:  # pragma: no cover - defensive
        pass
    return status


@dataclass(frozen=True)
class WorkerOptions:
    """Picklable configuration shipped to each worker at spawn."""

    #: Supervision policy of the in-worker :class:`FleetSupervisor`.
    policy: object = None
    #: Directory of the shared :class:`JsonCheckpointStore` (file-based
    #: so checkpoints survive the worker process itself).
    checkpoint_dir: str = ""
    #: Native threads each worker may use (BLAS/numba pinning).
    threads: int = 1
    #: Seconds to wait for a freshly added actor to start serving.
    add_deadline_s: float = 15.0


@dataclass(frozen=True)
class DeploymentSpec:
    """Picklable recipe for building one deployment inside a worker.

    Carries data, not objects-with-state: registry records and pipeline
    config are frozen dataclasses, and ``engine`` is a
    :func:`~repro.perf.engine.create_engine` name (engine *instances*
    hold caches/pools and never cross the process boundary).
    """

    deployment_id: str
    registry_records: Tuple = ()
    pipeline: object = None
    engine: Optional[str] = "streaming"
    actor_config: object = None


@dataclass
class _WorkerState:
    """Mutable per-process serving state."""

    supervisor: object
    events: object
    servers: dict = field(default_factory=dict)
    pin_status: dict = field(default_factory=dict)


def _build_factory(spec: DeploymentSpec, state: _WorkerState):
    from repro.core.pipeline import PipelineConfig
    from repro.server.registry import TagRegistry
    from repro.server.resilience import ResilientLocalizationServer

    registry = TagRegistry()
    for record in spec.registry_records:
        registry.register(record)
    pipeline = (
        spec.pipeline if spec.pipeline is not None else PipelineConfig()
    )

    def factory() -> "ResilientLocalizationServer":
        server = ResilientLocalizationServer(
            registry, pipeline, engine=spec.engine
        )
        # Remember the newest incarnation's server so lifecycle hooks
        # (engine stats, close) reach the live engine.
        state.servers[spec.deployment_id] = server
        return server

    return factory


async def _wait_actor_running(supervisor, deployment_id, deadline_s):
    deadline = time.monotonic() + deadline_s
    while True:
        actor = supervisor.actor(deployment_id)
        if actor is not None and actor.running:
            return
        if time.monotonic() > deadline:
            raise TimeoutError(
                f"actor for {deployment_id!r} did not start within "
                f"{deadline_s}s"
            )
        await asyncio.sleep(0.002)


async def _serve(conn, index: int, shm_name: str, options: WorkerOptions,
                 pin_status: dict) -> None:
    from multiprocessing import shared_memory

    from repro.fleet.checkpoint import (
        JsonCheckpointStore,
        MemoryCheckpointStore,
    )
    from repro.fleet.events import EVENT_INGEST_REJECTED, EventLog
    from repro.fleet.supervisor import FleetSupervisor, SupervisorPolicy
    from repro.hardware.llrp_columnar import ColumnarReportBatch

    loop = asyncio.get_running_loop()
    shm = None
    if shm_name:
        try:
            # track=False (3.13+) keeps the child's resource tracker from
            # double-unlinking the parent-owned segment.
            shm = shared_memory.SharedMemory(name=shm_name, track=False)
        except TypeError:  # pragma: no cover - Python < 3.13
            shm = shared_memory.SharedMemory(name=shm_name)
    store = (
        JsonCheckpointStore(Path(options.checkpoint_dir))
        if options.checkpoint_dir
        else MemoryCheckpointStore()
    )
    events = EventLog()
    policy = (
        options.policy if options.policy is not None else SupervisorPolicy()
    )
    supervisor = FleetSupervisor(policy=policy, events=events, store=store)
    state = _WorkerState(
        supervisor=supervisor, events=events, pin_status=pin_status
    )

    queue: "asyncio.Queue" = asyncio.Queue()
    background: set = set()

    def spawn_task(coro) -> None:
        task = asyncio.ensure_future(coro)
        background.add(task)
        task.add_done_callback(background.discard)

    def pump() -> None:
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                loop.call_soon_threadsafe(queue.put_nowait, None)
                return
            loop.call_soon_threadsafe(queue.put_nowait, message)

    threading.Thread(
        target=pump, name=f"shard-{index}-pump", daemon=True
    ).start()

    def send(message) -> None:
        try:
            conn.send(message)
        except (BrokenPipeError, OSError):  # parent gone; keep draining
            pass

    def reply(rid, ok, payload) -> None:
        try:
            conn.send(("reply", rid, ok, payload))
        except (BrokenPipeError, OSError):
            pass
        except Exception as exc:  # unpicklable payload: still answer
            send(("reply", rid, False, RuntimeError(
                f"worker reply not picklable: {exc!r}"
            )))

    def ledger_ack(deployment_id: str) -> None:
        send((
            "ledger",
            deployment_id,
            supervisor.accounting(deployment_id),
            metrics_snapshot(),
        ))

    def metrics_snapshot() -> dict:
        from repro.obs.metrics import get_registry

        return get_registry().snapshot()

    def reject_ingest(deployment_id: str, reader_name: str,
                      exc: BaseException) -> None:
        """Record a failed fire-and-forget ingest without dying.

        An exception out of an ingest branch would otherwise escape the
        serve loop and take down every deployment on this shard.
        Control requests reply with their error; ingest has no reply, so
        the failure is recorded as an event (and the ledger snapshot is
        refreshed when the deployment is known).
        """
        events.emit(
            deployment_id,
            EVENT_INGEST_REJECTED,
            reader_name=reader_name,
            error=repr(exc),
        )
        try:
            ledger_ack(deployment_id)
        except Exception:  # unknown deployment (e.g. restart race)
            pass

    def engine_stats() -> dict:
        stats = {}
        for deployment_id, server in state.servers.items():
            try:
                stats[deployment_id] = server.engine_cache_stats()
            except Exception:  # pragma: no cover - defensive
                continue
        return stats

    async def handle_request(message) -> bool:
        """Process one control request; True means keep serving."""
        kind, rid = message[0], message[1]
        try:
            if kind == "add":
                spec: DeploymentSpec = message[2]
                supervisor.add_deployment(
                    spec.deployment_id,
                    _build_factory(spec, state),
                    spec.actor_config,
                )
                await _wait_actor_running(
                    supervisor, spec.deployment_id, options.add_deadline_s
                )
                actor = supervisor.actor(spec.deployment_id)
                reply(rid, True, {
                    "deployment_id": spec.deployment_id,
                    "warm_restored": bool(actor.stats.warm_restored),
                })
            elif kind == "locate":
                _, _, deployment_id, reader_name, antenna_port = message

                async def run_locate() -> None:
                    try:
                        result = await supervisor.locate_2d(
                            deployment_id, reader_name, antenna_port
                        )
                    except Exception as exc:
                        reply(rid, False, exc)
                        return
                    # A fix observed every batch before it (actor FIFO);
                    # refresh the parent's crash-fold snapshot to match.
                    ledger_ack(deployment_id)
                    reply(rid, True, result)

                # Fixes run concurrently with later ingest (the actor
                # serializes against its own mailbox; the worker loop
                # must not block on the solve).
                spawn_task(run_locate())
            elif kind == "checkpoint":
                deployment_id = message[2]

                async def run_checkpoint() -> None:
                    try:
                        seq = await supervisor.checkpoint(deployment_id)
                    except Exception as exc:
                        reply(rid, False, exc)
                        return
                    # Everything the checkpoint captured was delivered;
                    # without this ack a kill right after a checkpoint
                    # folds those (safely persisted) reports as lost.
                    ledger_ack(deployment_id)
                    reply(rid, True, seq)

                spawn_task(run_checkpoint())
            elif kind == "sync":
                reply(rid, True, {
                    deployment_id: supervisor.accounting(deployment_id)
                    for deployment_id in supervisor.deployment_ids()
                })
            elif kind == "engine_stats":
                reply(rid, True, engine_stats())
            elif kind == "actor_stats":
                deployment_id = message[2]
                actor = supervisor.actor(deployment_id)
                reply(rid, True, {
                    "incarnation": (
                        actor.incarnation if actor is not None else None
                    ),
                    "running": actor is not None and actor.running,
                    "warm_restored": (
                        actor.stats.warm_restored
                        if actor is not None
                        else False
                    ),
                    "stats": (
                        actor.stats.as_dict() if actor is not None else {}
                    ),
                    "breaker": supervisor.breaker_state(
                        deployment_id
                    ).value,
                })
            elif kind == "events":
                reply(rid, True, events.counts())
            elif kind == "metrics":
                reply(rid, True, metrics_snapshot())
            elif kind == "info":
                reply(rid, True, {
                    "pid": os.getpid(),
                    "index": index,
                    "pin": state.pin_status,
                    "deployments": list(supervisor.deployment_ids()),
                })
            elif kind == "kill":
                deployment_id = message[2]
                supervisor.kill(deployment_id)
                reply(rid, True, None)
            elif kind == "stop":
                for deployment_id in supervisor.deployment_ids():
                    try:
                        await supervisor.checkpoint(deployment_id)
                    except Exception:
                        pass  # breaker open / no actor: ledger still final
                stats = engine_stats()
                await supervisor.stop()
                for server in state.servers.values():
                    try:
                        server.close()
                    except Exception:  # pragma: no cover - defensive
                        pass
                reply(rid, True, {
                    "ledgers": {
                        deployment_id: supervisor.accounting(deployment_id)
                        for deployment_id in supervisor.deployment_ids()
                    },
                    "engine_stats": stats,
                    "events": events.counts(),
                    "metrics": metrics_snapshot(),
                })
                return False
            else:
                reply(rid, False, ValueError(
                    f"unknown worker request {kind!r}"
                ))
        except Exception as exc:
            reply(rid, False, exc)
        return True

    try:
        while True:
            message = await queue.get()
            if message is None:
                # Parent pipe closed without a stop: shut down quietly
                # (the parent is gone or crashed; nothing to reply to).
                await supervisor.stop()
                break
            kind = message[0]
            if kind == "offer":
                _, deployment_id, reader_name, reports = message
                try:
                    supervisor.offer(deployment_id, reader_name, reports)
                    ledger_ack(deployment_id)
                except Exception as exc:
                    reject_ingest(deployment_id, reader_name, exc)
            elif kind == "offer_cols":
                _, deployment_id, reader_name, slot_offset, meta = message
                try:
                    try:
                        cols = ColumnarReportBatch.unpack_from(
                            shm.buf, meta, offset=slot_offset, copy=True
                        )
                    finally:
                        # Release unconditionally (even on corrupt
                        # meta): the copy detached us from the segment,
                        # and a slot the parent never gets back wedges
                        # the ring's FIFO.
                        send(("release", slot_offset))
                    supervisor.offer_columnar(
                        deployment_id, reader_name, cols
                    )
                    ledger_ack(deployment_id)
                except Exception as exc:
                    reject_ingest(deployment_id, reader_name, exc)
            elif kind == "offer_cols_inline":
                _, deployment_id, reader_name, cols = message
                try:
                    supervisor.offer_columnar(
                        deployment_id, reader_name, cols
                    )
                    ledger_ack(deployment_id)
                except Exception as exc:
                    reject_ingest(deployment_id, reader_name, exc)
            else:
                keep_serving = await handle_request(message)
                if not keep_serving:
                    break
    finally:
        if shm is not None:
            shm.close()


def worker_main(conn, index: int, shm_name: str,
                options: WorkerOptions) -> None:
    """Entry point of one shard's worker process (spawn-safe)."""
    from repro.obs.metrics import refresh_from_env

    # Spawned children must honor the parent's TAGSPIN_DISABLE_TELEMETRY
    # even under fork (where module state was inherited pre-toggle).
    refresh_from_env()
    pin_status = apply_thread_limits(options.threads)
    try:
        asyncio.run(_serve(conn, index, shm_name, options, pin_status))
    finally:
        try:
            conn.close()
        except OSError:  # pragma: no cover - defensive
            pass
