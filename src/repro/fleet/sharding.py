"""Hash-sharded multi-process fleet front-end.

:class:`ShardedFleet` scales the fault-tolerant serving tier past one
core: it spawns ``workers`` processes (``spawn`` start method; one
duplex pipe each), routes every deployment to
``blake2b(deployment_id) % workers`` (*stable* — Python's salted
``hash()`` would route differently in every process), and runs a full
:class:`~repro.fleet.supervisor.FleetSupervisor` inside each worker, so
restart-with-backoff, circuit breakers and checkpoint/restore keep
working per shard.

**Owner affinity.**  The streaming spectrum engine warm-starts only on
*exact-prefix* appends, so every report for a deployment must land on
the one worker that owns its accumulator state.  The hash route
guarantees that; it is also why work stealing is deliberately absent.

**Zero-copy columnar transport.**  ``offer_columnar`` packs the batch's
arrays into a per-worker ``multiprocessing.shared_memory`` ring
(:class:`ShmRing`, a bip-buffer) and sends only a tiny
``(offset, metadata)`` tuple down the pipe; the worker copies the rows
out with ``np.frombuffer`` views and acks a ``release``.  When the ring
is full (consumer behind) the batch falls back to inline pickling —
counted, never dropped.

**Exact cross-incarnation ledger.**  Every offer the worker processes
is acknowledged with a full accounting snapshot.  The parent tracks how
many reports it *dispatched* per deployment; when a worker dies
(chaos SIGKILL, shutdown overrun), reports dispatched but never
acknowledged are folded into ``lost_in_crash``, keeping
``offered == shed + pending + delivered + lost_in_crash`` exact across
process incarnations — the same invariant the in-process chaos harness
asserts, now across ``kill -9``.

**Exact cross-incarnation metrics.**  The same ledger acks carry each
worker's :mod:`repro.obs` metrics-registry snapshot; dead incarnations
fold into ``_metrics_folds`` exactly like the report ledger, so
:meth:`ShardedFleet.metrics_snapshot` stays exact across SIGKILL +
restart cycles (counters and histograms merge element-wise; see
:func:`repro.obs.exposition.merge_snapshots`).
"""

from __future__ import annotations

import asyncio
import hashlib
import itertools
import multiprocessing
import os
import shutil
import tempfile
import threading
import time
from collections import deque
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from multiprocessing import shared_memory
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, WorkerUnavailableError
from repro.fleet.events import (
    EVENT_INGEST_REJECTED,
    EVENT_WORKER_KILLED,
    EVENT_WORKER_LOST,
    EVENT_WORKER_RESTARTED,
    EVENT_WORKER_STARTED,
    EVENT_WORKER_STOPPED,
    EventLog,
)
from repro.fleet.supervisor import SupervisorPolicy
from repro.fleet.worker import (
    DeploymentSpec,
    WorkerOptions,
    thread_pin_env,
    worker_main,
)
from repro.hardware.llrp_columnar import ColumnarReportBatch

#: Default per-worker shared-memory ring capacity (bytes).
DEFAULT_RING_BYTES = 1 << 22

#: Ledger keys, in the order the fold code walks them.
_LEDGER_KEYS = (
    "offered",
    "shed",
    "delivered",
    "pending",
    "received",
    "accepted",
    "quarantined",
    "rejected_invalid",
    "rejected_open",
    "lost_in_crash",
)


def _zero_ledger() -> dict:
    return {key: 0 for key in _LEDGER_KEYS}


def shard_for(deployment_id: str, workers: int) -> int:
    """Stable shard index of a deployment (salt-free blake2b)."""
    if workers < 1:
        raise ValueError("workers must be positive")
    digest = hashlib.blake2b(
        deployment_id.encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") % workers


class ShmRing:
    """Parent-side bip-buffer allocator over one shared-memory segment.

    Allocation and release are both parent-side (the worker only *acks*
    releases over the pipe), so no cross-process locking is needed: the
    pipe's FIFO ordering guarantees releases arrive in allocation order,
    which is exactly the discipline a bip-buffer requires.  A process-
    local lock is still required — ``alloc`` runs on the offering thread
    while ``release`` runs on the per-worker reader thread, and a lost
    update on ``_used`` would either hand out bytes overlapping an
    in-flight slot (silent data corruption) or strand the ring in
    permanent pickle fallback.
    """

    def __init__(self, nbytes: int = DEFAULT_RING_BYTES) -> None:
        if nbytes < 64:
            raise ValueError("ring too small")
        self.capacity = nbytes
        self._shm = shared_memory.SharedMemory(create=True, size=nbytes)
        self._lock = threading.Lock()
        self._head = 0
        self._used = 0
        self._inflight: Deque[Tuple[int, int, int]] = deque()

    @property
    def name(self) -> str:
        return self._shm.name

    @property
    def buf(self):
        return self._shm.buf

    @property
    def used(self) -> int:
        return self._used

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    def alloc(self, size: int) -> Optional[int]:
        """Reserve ``size`` contiguous bytes; None when the ring is full."""
        size = max(8, (size + 7) & ~7)
        if size > self.capacity:
            return None
        with self._lock:
            pad = 0
            offset = self._head
            if offset + size > self.capacity:
                # Wrap: the skipped tail bytes stay accounted until
                # release.
                pad = self.capacity - offset
                offset = 0
            if size + pad > self.capacity - self._used:
                return None
            self._inflight.append((offset, size, pad))
            self._used += size + pad
            self._head = (offset + size) % self.capacity
            return offset

    def release(self, offset: int) -> None:
        """Free the oldest slot (FIFO); ``offset`` cross-checks protocol."""
        with self._lock:
            if not self._inflight:
                raise ValueError("release with no slot in flight")
            slot_offset, size, pad = self._inflight.popleft()
            if slot_offset != offset:
                self._inflight.appendleft((slot_offset, size, pad))
                raise ValueError(
                    f"out-of-order release: expected {slot_offset}, "
                    f"got {offset}"
                )
            self._used -= size + pad

    def cancel(self, offset: int) -> bool:
        """Undo the *newest* allocation (it was never shipped).

        Used when the pipe send fails after a successful :meth:`alloc`:
        the worker will never ack a release for that slot, so the parent
        must take the bytes back itself or the accounting leaks until
        the ring degrades to permanent pickle fallback.  Only the most
        recent slot can be cancelled (anything older may already be in
        flight); returns False when ``offset`` is not that slot.
        """
        with self._lock:
            if not self._inflight or self._inflight[-1][0] != offset:
                return False
            slot_offset, size, pad = self._inflight.pop()
            self._used -= size + pad
            # Rewind the head to where this alloc found it (the slot
            # start, or the pre-wrap tail when the alloc wrapped).
            self._head = (
                self.capacity - pad if pad else slot_offset
            ) % self.capacity
            return True

    def close(self, unlink: bool = True) -> None:
        with self._lock:
            self._inflight.clear()
            self._used = 0
        try:
            self._shm.close()
        except OSError:  # pragma: no cover - defensive
            pass
        if unlink:
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass


@dataclass
class _Route:
    """Parent-side bookkeeping of one deployment."""

    spec: DeploymentSpec
    shard: int
    #: Reports handed to the worker this process incarnation.
    dispatched: int = 0
    #: Ledger folded from dead worker incarnations.
    folds: dict = field(default_factory=_zero_ledger)
    #: Reports rejected parent-side while the worker was down.
    rejected_down: int = 0


class _WorkerHandle:
    """Everything the parent tracks about one worker process."""

    def __init__(self, index: int) -> None:
        self.index = index
        self.process: Optional[multiprocessing.Process] = None
        self.conn = None
        self.ring: Optional[ShmRing] = None
        self.reader: Optional[threading.Thread] = None
        self.send_lock = threading.Lock()
        self.pending: Dict[int, Future] = {}
        self.last_ledger: Dict[str, dict] = {}
        #: Latest metrics-registry snapshot piggybacked on a ledger ack;
        #: the crash-fold source when this incarnation dies uncleanly.
        self.last_metrics: Optional[dict] = None
        self.alive = False
        self.stopping = False
        self.final: Optional[dict] = None
        self.ring_fallbacks = 0

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None


class ShardedFleet:
    """Multi-core fleet: N worker processes behind one hash router."""

    def __init__(
        self,
        workers: int = 2,
        policy: Optional[SupervisorPolicy] = None,
        events: Optional[EventLog] = None,
        checkpoint_dir: Optional[str] = None,
        ring_bytes: int = DEFAULT_RING_BYTES,
        threads_per_worker: int = 1,
        request_timeout_s: float = 30.0,
        start_method: str = "spawn",
    ) -> None:
        if workers < 1:
            raise ValueError("workers must be positive")
        self.workers = workers
        self.policy = policy
        self.events = events if events is not None else EventLog()
        self.ring_bytes = ring_bytes
        self.threads_per_worker = threads_per_worker
        self.request_timeout_s = request_timeout_s
        self._ctx = multiprocessing.get_context(start_method)
        self._owns_checkpoint_dir = checkpoint_dir is None
        # Always file-backed: checkpoints must outlive worker processes
        # for the cross-process warm restart to exist at all.
        self.checkpoint_dir = (
            checkpoint_dir
            if checkpoint_dir is not None
            else tempfile.mkdtemp(prefix="tagspin-fleet-")
        )
        self._workers = [_WorkerHandle(i) for i in range(workers)]
        self._routes: Dict[str, _Route] = {}
        #: Metrics snapshots folded from dead worker incarnations (the
        #: telemetry analogue of the per-route ledger folds).
        self._metrics_folds: Optional[dict] = None
        self._rid = itertools.count(1)
        self._events_lock = threading.Lock()
        self._started = False
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for handle in self._workers:
            self._spawn(handle)

    def __enter__(self) -> "ShardedFleet":
        self.start()
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    def _spawn(self, handle: _WorkerHandle) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        handle.ring = ShmRing(self.ring_bytes)
        handle.conn = parent_conn
        handle.pending = {}
        handle.last_ledger = {}
        handle.last_metrics = None
        handle.stopping = False
        handle.final = None
        options = WorkerOptions(
            policy=self.policy,
            checkpoint_dir=self.checkpoint_dir,
            threads=self.threads_per_worker,
        )
        process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, handle.index, handle.ring.name, options),
            name=f"tagspin-shard-{handle.index}",
            daemon=True,
        )
        # Export the pinning env *before* spawn: the child reads these at
        # numpy/BLAS import time, long before worker_main runs.
        saved = {
            name: os.environ.get(name)
            for name in thread_pin_env(self.threads_per_worker)
        }
        os.environ.update(thread_pin_env(self.threads_per_worker))
        try:
            process.start()
        finally:
            for name, value in saved.items():
                if value is None:
                    os.environ.pop(name, None)
                else:
                    os.environ[name] = value
        child_conn.close()  # parent's copy; child holds the real end
        handle.process = process
        handle.alive = True
        handle.reader = threading.Thread(
            target=self._reader_loop,
            args=(handle,),
            name=f"shard-{handle.index}-reader",
            daemon=True,
        )
        handle.reader.start()
        self._emit(
            f"worker-{handle.index}", EVENT_WORKER_STARTED, pid=process.pid
        )

    def _emit(self, deployment_id: str, kind: str, **details) -> None:
        with self._events_lock:
            self.events.emit(deployment_id, kind, **details)

    # ------------------------------------------------------------------
    # Pipe plumbing
    # ------------------------------------------------------------------
    def _reader_loop(self, handle: _WorkerHandle) -> None:
        conn = handle.conn
        while True:
            try:
                message = conn.recv()
            except (EOFError, OSError):
                break
            kind = message[0]
            if kind == "reply":
                future = handle.pending.pop(message[1], None)
                if future is not None:
                    future.set_result((message[2], message[3]))
            elif kind == "ledger":
                handle.last_ledger[message[1]] = message[2]
                if len(message) > 3:
                    handle.last_metrics = message[3]
            elif kind == "release":
                if handle.ring is not None:
                    try:
                        handle.ring.release(message[1])
                    except ValueError:  # pragma: no cover - protocol bug
                        pass
        handle.alive = False
        for rid in list(handle.pending):
            future = handle.pending.pop(rid, None)
            if future is not None and not future.done():
                future.set_exception(
                    WorkerUnavailableError(
                        f"worker {handle.index} exited with this request "
                        f"outstanding"
                    )
                )
        if not handle.stopping and not self._closed:
            self._emit(
                f"worker-{handle.index}",
                EVENT_WORKER_LOST,
                pid=handle.pid,
            )

    def _send(self, handle: _WorkerHandle, message) -> None:
        if not handle.alive:
            raise WorkerUnavailableError(
                f"worker {handle.index} is not running"
            )
        try:
            with handle.send_lock:
                handle.conn.send(message)
        except (BrokenPipeError, OSError) as exc:
            handle.alive = False
            raise WorkerUnavailableError(
                f"worker {handle.index} pipe broke: {exc}"
            ) from exc

    def _request_future(self, handle: _WorkerHandle, kind: str,
                        *args) -> Tuple[int, Future]:
        rid = next(self._rid)
        future: Future = Future()
        handle.pending[rid] = future
        try:
            self._send(handle, (kind, rid, *args))
        except WorkerUnavailableError:
            handle.pending.pop(rid, None)
            raise
        return rid, future

    def _request(self, handle: _WorkerHandle, kind: str, *args,
                 timeout: Optional[float] = None):
        rid, future = self._request_future(handle, kind, *args)
        try:
            ok, payload = future.result(
                timeout if timeout is not None else self.request_timeout_s
            )
        except FutureTimeoutError:
            handle.pending.pop(rid, None)
            raise WorkerUnavailableError(
                f"worker {handle.index} request {kind!r} timed out"
            ) from None
        if not ok:
            if isinstance(payload, BaseException):
                raise payload
            raise WorkerUnavailableError(str(payload))
        return payload

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_of(self, deployment_id: str) -> int:
        return shard_for(deployment_id, self.workers)

    def _route(self, deployment_id: str) -> _Route:
        try:
            return self._routes[deployment_id]
        except KeyError:
            raise ConfigurationError(
                f"unknown deployment {deployment_id!r}"
            ) from None

    def _handle(self, deployment_id: str) -> _WorkerHandle:
        return self._workers[self._route(deployment_id).shard]

    def deployment_ids(self) -> Sequence[str]:
        return sorted(self._routes)

    # ------------------------------------------------------------------
    # Fleet membership
    # ------------------------------------------------------------------
    def add_deployment(self, spec: DeploymentSpec) -> dict:
        """Register one deployment on its hash-owned shard.

        Blocks until the worker's actor is serving; returns the worker's
        add receipt (includes ``warm_restored``).
        """
        if not self._started:
            self.start()
        if spec.deployment_id in self._routes:
            raise ConfigurationError(
                f"deployment {spec.deployment_id!r} already registered"
            )
        shard = self.shard_of(spec.deployment_id)
        receipt = self._request(self._workers[shard], "add", spec)
        self._routes[spec.deployment_id] = _Route(spec=spec, shard=shard)
        return receipt

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def offer(self, deployment_id: str, reader_name: str,
              reports: Sequence) -> int:
        """Route an object-path batch (pickled over the pipe)."""
        route = self._route(deployment_id)
        handle = self._workers[route.shard]
        count = len(reports)
        try:
            self._send(
                handle, ("offer", deployment_id, reader_name, list(reports))
            )
        except WorkerUnavailableError:
            self._reject_down(route, deployment_id, reader_name, count)
            return 0
        route.dispatched += count
        return count

    def offer_columnar(self, deployment_id: str, reader_name: str,
                       cols: ColumnarReportBatch) -> int:
        """Route a columnar batch through shared memory (zero-copy).

        Falls back to inline pickling when the ring has no room — the
        batch is never dropped parent-side; ``ring_fallbacks`` counts
        how often the consumer fell behind.
        """
        route = self._route(deployment_id)
        handle = self._workers[route.shard]
        count = len(cols)
        try:
            offset = (
                handle.ring.alloc(cols.packed_nbytes())
                if handle.alive and handle.ring is not None
                else None
            )
            if offset is None:
                handle.ring_fallbacks += 1
                self._send(
                    handle,
                    ("offer_cols_inline", deployment_id, reader_name, cols),
                )
            else:
                try:
                    meta = cols.pack_into(handle.ring.buf, offset)
                    self._send(
                        handle,
                        ("offer_cols", deployment_id, reader_name, offset,
                         meta),
                    )
                except BaseException:
                    # The worker never saw this slot, so it will never
                    # ack a release — take the bytes back here or the
                    # ring accounting leaks across incarnations.
                    if handle.ring is not None:
                        handle.ring.cancel(offset)
                    raise
        except WorkerUnavailableError:
            self._reject_down(route, deployment_id, reader_name, count)
            return 0
        route.dispatched += count
        return count

    def _reject_down(self, route: _Route, deployment_id: str,
                     reader_name: str, count: int) -> None:
        route.rejected_down += count
        self._emit(
            deployment_id,
            EVENT_INGEST_REJECTED,
            reader_name=reader_name,
            reports=count,
            error=f"worker {route.shard} down",
        )

    # ------------------------------------------------------------------
    # Serving API
    # ------------------------------------------------------------------
    def locate_2d_sync(self, deployment_id: str, reader_name: str,
                       antenna_port: int = 1):
        """2D fix + diagnostics from the owning worker (blocking)."""
        return self._request(
            self._handle(deployment_id),
            "locate",
            deployment_id,
            reader_name,
            antenna_port,
        )

    async def locate_2d(self, deployment_id: str, reader_name: str,
                        antenna_port: int = 1):
        return await asyncio.to_thread(
            self.locate_2d_sync, deployment_id, reader_name, antenna_port
        )

    def checkpoint(self, deployment_id: str) -> int:
        return self._request(
            self._handle(deployment_id), "checkpoint", deployment_id
        )

    def actor_stats(self, deployment_id: str) -> dict:
        return self._request(
            self._handle(deployment_id), "actor_stats", deployment_id
        )

    def kill_deployment_actor(self, deployment_id: str) -> None:
        """Chaos hook: crash one actor *inside* its worker (in-process
        supervision — restart/backoff/breaker — handles it there)."""
        self._request(self._handle(deployment_id), "kill", deployment_id)

    def drain(self, timeout_s: float = 30.0,
              poll_s: float = 0.01) -> None:
        """Block until every dispatched report is fully accounted.

        Polls each live worker's accounting until, per deployment,
        nothing is pending and ``offered + rejected_open`` matches what
        the parent dispatched (i.e. nothing is still in the pipe or
        mailbox).  Deployments on dead workers are skipped — their fate
        is already folded.
        """
        deadline = time.monotonic() + timeout_s
        while True:
            settled = True
            for handle in self._workers:
                if not handle.alive:
                    continue
                try:
                    ledgers = self._request(handle, "sync")
                except WorkerUnavailableError:
                    # Died mid-drain: skip it, like any other dead
                    # worker — its fate is folded on kill/restart.
                    continue
                handle.last_ledger.update(ledgers)
                for deployment_id, snap in ledgers.items():
                    route = self._routes.get(deployment_id)
                    if route is None:
                        continue
                    seen = snap["offered"] + snap["rejected_open"]
                    if snap["pending"] or seen < route.dispatched:
                        settled = False
            if settled:
                return
            if time.monotonic() > deadline:
                raise TimeoutError(
                    f"fleet did not drain within {timeout_s}s"
                )
            time.sleep(poll_s)

    # ------------------------------------------------------------------
    # Accounting
    # ------------------------------------------------------------------
    def accounting(self, deployment_id: str) -> dict:
        """Lifetime ledger across *worker* incarnations.

        Live worker state (fresh ``sync`` when reachable, else the last
        ledger ack) plus everything folded from dead incarnations, plus
        parent-side rejections while the worker was down.  The chaos
        invariant ``offered == shed + pending + delivered +
        lost_in_crash`` holds exactly, even after ``kill -9``.
        """
        route = self._route(deployment_id)
        handle = self._workers[route.shard]
        totals = dict(route.folds)
        snap: Optional[dict] = None
        if handle.alive:
            try:
                ledgers = self._request(handle, "sync")
                handle.last_ledger.update(ledgers)
                snap = ledgers.get(deployment_id)
            except WorkerUnavailableError:
                snap = handle.last_ledger.get(deployment_id)
        if snap is not None:
            for key in _LEDGER_KEYS:
                totals[key] += snap[key]
        totals["rejected_open"] += route.rejected_down
        return totals

    def _fold_worker(self, handle: _WorkerHandle, crashed: bool) -> None:
        """Fold a finished worker incarnation into parent-side ledgers.

        ``crashed`` means the final ledger acks may predate reports
        still in the pipe: those in-transit reports were offered (the
        parent dispatched them) and lost (no process ever saw them), so
        they land in both ``offered`` and ``lost_in_crash`` — exactly
        the buckets that keep the invariant balanced.

        The incarnation's metrics snapshot folds alongside the ledger:
        a clean stop reports its final registry state, a crash falls
        back to the snapshot that rode the last ledger ack — the same
        consistency point the ledger fold itself uses.  ``last_metrics``
        is consumed so the incarnation is folded exactly once.
        """
        from repro.obs.exposition import merge_snapshots

        snapshot = None
        if handle.final is not None:
            snapshot = handle.final.get("metrics")
        if snapshot is None:
            snapshot = handle.last_metrics
        if snapshot is not None:
            self._metrics_folds = merge_snapshots(
                [self._metrics_folds, snapshot]
            )
        handle.last_metrics = None
        for deployment_id, route in self._routes.items():
            if route.shard != handle.index:
                continue
            snap = handle.last_ledger.pop(
                deployment_id, None
            ) or _zero_ledger()
            in_transit = max(
                0,
                route.dispatched
                - snap["offered"]
                - snap["rejected_open"],
            )
            folds = route.folds
            folds["offered"] += snap["offered"] + in_transit
            folds["shed"] += snap["shed"]
            folds["delivered"] += snap["delivered"]
            folds["received"] += snap["received"]
            folds["accepted"] += snap["accepted"]
            folds["quarantined"] += snap["quarantined"]
            folds["rejected_invalid"] += snap["rejected_invalid"]
            folds["rejected_open"] += snap["rejected_open"]
            if crashed:
                folds["lost_in_crash"] += (
                    snap["lost_in_crash"] + snap["pending"] + in_transit
                )
            else:
                folds["pending"] += snap["pending"]
                folds["lost_in_crash"] += snap["lost_in_crash"] + in_transit
            route.dispatched = 0

    # ------------------------------------------------------------------
    # Metrics (exact across worker incarnations)
    # ------------------------------------------------------------------
    def metrics_snapshot(self) -> dict:
        """Fleet-wide ``tagspin-metrics/1`` snapshot, exact across
        worker restarts.

        Merges, point-in-time (nothing here mutates fold state, so
        repeated calls never double-count):

        * the parent process's own registry (router/event metrics),
        * every dead incarnation's fold (collected by
          :meth:`_fold_worker`, per-incarnation like the report ledger),
        * every live worker's current registry (a ``metrics`` request;
          the last ledger-ack snapshot when the request fails), and
        * the last-acked snapshot of a dead-but-not-yet-folded worker
          (uncommanded death before :meth:`restart_shard`).
        """
        from repro.obs.exposition import merge_snapshots
        from repro.obs.metrics import get_registry

        parts: List[Optional[dict]] = [
            get_registry().snapshot(),
            self._metrics_folds,
        ]
        for handle in self._workers:
            if handle.alive:
                try:
                    parts.append(self._request(handle, "metrics"))
                except WorkerUnavailableError:
                    parts.append(handle.last_metrics)
            else:
                # Folded incarnations were consumed (last_metrics is
                # None); an unfolded uncommanded death still holds its
                # last acked snapshot.
                parts.append(handle.last_metrics)
        return merge_snapshots(parts)

    # ------------------------------------------------------------------
    # Engine statistics (aggregated across workers)
    # ------------------------------------------------------------------
    def engine_stats(self) -> dict:
        """Per-deployment engine cache stats, merged across workers.

        Process fan-out used to zero these counters in the bench JSON;
        workers now report their live engines and the parent merges with
        :func:`~repro.perf.engine.merge_cache_stats`.
        """
        from repro.perf.engine import merge_cache_stats

        per_deployment: Dict[str, List[dict]] = {}
        for handle in self._workers:
            if not handle.alive:
                payload = (handle.final or {}).get("engine_stats", {})
            else:
                try:
                    payload = self._request(handle, "engine_stats")
                except WorkerUnavailableError:
                    continue
            for deployment_id, stats in payload.items():
                per_deployment.setdefault(deployment_id, []).append(stats)
        return {
            deployment_id: merge_cache_stats(stats_list)
            for deployment_id, stats_list in per_deployment.items()
        }

    def worker_info(self) -> List[dict]:
        info = []
        for handle in self._workers:
            if handle.alive:
                try:
                    payload = self._request(handle, "info")
                except WorkerUnavailableError:
                    payload = {}
            else:
                payload = {}
            info.append({
                "index": handle.index,
                "pid": handle.pid,
                "alive": handle.alive,
                "ring_fallbacks": handle.ring_fallbacks,
                "ring_inflight": (
                    handle.ring.inflight if handle.ring is not None else 0
                ),
                **payload,
            })
        return info

    def worker_events(self) -> dict:
        """Merged event counts: parent log + every reachable worker."""
        counts = dict(self.events.counts())
        for handle in self._workers:
            if handle.alive:
                try:
                    payload = self._request(handle, "events")
                except WorkerUnavailableError:
                    continue
            else:
                payload = (handle.final or {}).get("events", {})
            for kind, count in payload.items():
                counts[kind] = counts.get(kind, 0) + count
        return counts

    # ------------------------------------------------------------------
    # Chaos / recovery
    # ------------------------------------------------------------------
    def kill_worker(self, index: int) -> None:
        """Chaos hook: SIGKILL one worker process and fold its ledger."""
        handle = self._workers[index]
        if handle.process is None or handle.process.exitcode is not None:
            raise WorkerUnavailableError(
                f"worker {index} has no live process to kill"
            )
        handle.stopping = True  # suppress the worker-lost event
        handle.process.kill()
        handle.process.join(10.0)
        if handle.reader is not None:
            handle.reader.join(5.0)
        self._fold_worker(handle, crashed=True)
        self._teardown_handle(handle)
        self._emit(
            f"worker-{index}",
            EVENT_WORKER_KILLED,
            pid=handle.pid,
            reason="chaos",
        )

    def restart_shard(self, index: int) -> List[dict]:
        """Respawn a dead worker and re-add its deployments.

        Actors warm-start from the shared file-backed checkpoint store;
        the receipts' ``warm_restored`` flags say whether they did.
        """
        handle = self._workers[index]
        if handle.alive:
            raise ConfigurationError(
                f"worker {index} is still running; kill it first"
            )
        if handle.ring is not None:
            # Uncommanded death (reader saw EOF; nothing folded yet):
            # settle the dead incarnation's ledger and release its
            # shared-memory segment before spawning the replacement,
            # else the segment leaks, ``dispatched`` keeps the dead
            # incarnation's count and drain() can never settle.
            if handle.process is not None:
                handle.process.join(10.0)
            if handle.reader is not None:
                handle.reader.join(5.0)
            self._fold_worker(handle, crashed=True)
            self._teardown_handle(handle)
        self._spawn(handle)
        self._emit(
            f"worker-{index}",
            EVENT_WORKER_RESTARTED,
            pid=handle.pid,
        )
        receipts = []
        for deployment_id in self.deployment_ids():
            route = self._routes[deployment_id]
            if route.shard != index:
                continue
            receipts.append(self._request(handle, "add", route.spec))
        return receipts

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self, deadline_s: float = 15.0) -> dict:
        """Graceful stop: checkpoint + stop every worker, join with a
        deadline, SIGKILL (with a structured event) on overrun.

        Idempotent; leaves no orphan processes behind either way.
        Returns a summary of which workers stopped cleanly.
        """
        if self._closed:
            return {"clean": [], "killed": [], "already_closed": True}
        self._closed = True
        deadline = time.monotonic() + deadline_s
        summary = {"clean": [], "killed": []}
        stop_futures: Dict[int, Future] = {}
        for handle in self._workers:
            handle.stopping = True
            if not handle.alive:
                continue
            try:
                _rid, future = self._request_future(handle, "stop")
                stop_futures[handle.index] = future
            except WorkerUnavailableError:
                continue
        for handle in self._workers:
            future = stop_futures.get(handle.index)
            if future is not None:
                try:
                    ok, payload = future.result(
                        max(0.05, deadline - time.monotonic())
                    )
                    if ok:
                        handle.final = payload
                        handle.last_ledger.update(payload["ledgers"])
                except (FutureTimeoutError, WorkerUnavailableError):
                    pass
            if handle.process is None:
                continue
            handle.process.join(max(0.0, deadline - time.monotonic()))
            if handle.process.exitcode is None:
                handle.process.kill()
                self._emit(
                    f"worker-{handle.index}",
                    EVENT_WORKER_KILLED,
                    pid=handle.pid,
                    reason="shutdown-deadline-overrun",
                    deadline_s=deadline_s,
                )
                handle.process.join(5.0)
                summary["killed"].append(handle.index)
                crashed = True
            else:
                crashed = handle.final is None
                if not crashed:
                    summary["clean"].append(handle.index)
                    self._emit(
                        f"worker-{handle.index}",
                        EVENT_WORKER_STOPPED,
                        pid=handle.pid,
                    )
            if handle.reader is not None:
                handle.reader.join(5.0)
            self._fold_worker(handle, crashed=crashed)
            self._teardown_handle(handle)
        if self._owns_checkpoint_dir:
            shutil.rmtree(self.checkpoint_dir, ignore_errors=True)
        return summary

    async def aclose(self, deadline_s: float = 15.0) -> dict:
        """Async graceful shutdown (see :meth:`close`)."""
        return await asyncio.to_thread(self.close, deadline_s)

    def _teardown_handle(self, handle: _WorkerHandle) -> None:
        handle.alive = False
        if handle.conn is not None:
            try:
                handle.conn.close()
            except OSError:  # pragma: no cover - defensive
                pass
            handle.conn = None
        if handle.ring is not None:
            handle.ring.close(unlink=True)
            handle.ring = None
