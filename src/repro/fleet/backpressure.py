"""Bounded ingest mailboxes with load shedding and exact accounting.

Each deployment actor owns one :class:`BoundedMailbox`.  Report batches
and control commands share a single FIFO (so a fix request observes
every batch offered before it), but only *reports* count against the
high-water mark and only reports are ever shed — commands are
infrastructure and always survive.

The shedding policy is the one the ISSUE names: when an ingest flood
pushes the pending-report count over the high-water mark, the oldest
*non-infrastructure* reports (tags absent from the spinning-tag
registry — ordinary inventory traffic the pipeline would filter anyway)
are dropped first; only if the backlog is still over the mark after all
bystander traffic is gone do the oldest calibration reports go too.
Every shed report increments a counter — the accounting invariant
``offered == enqueued_delivered + pending + shed`` is checked by the
chaos harness and must hold exactly; silent loss is the one failure
mode this tier refuses to have.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional, Tuple

import numpy as np

from repro.hardware.llrp import TagReportData
from repro.hardware.llrp_columnar import ColumnarReportBatch

#: Default pending-report high-water mark per deployment.
DEFAULT_HIGH_WATER = 10_000


@dataclass
class ShedStats:
    """Lifetime accounting of one mailbox."""

    #: Reports ever offered to the mailbox.
    offered: int = 0
    #: Reports delivered to the consumer via :meth:`BoundedMailbox.get`.
    delivered: int = 0
    #: Reports shed (all causes).
    shed: int = 0
    #: Shed reports whose EPC was outside the spinning-tag registry.
    shed_bystander: int = 0
    #: Shed reports of registered spinning tags (only under extreme flood).
    shed_infrastructure: int = 0
    #: Number of offers that triggered shedding.
    shed_episodes: int = 0

    def as_dict(self) -> dict:
        return {
            "offered": self.offered,
            "delivered": self.delivered,
            "shed": self.shed,
            "shed_bystander": self.shed_bystander,
            "shed_infrastructure": self.shed_infrastructure,
            "shed_episodes": self.shed_episodes,
        }


@dataclass
class IngestMessage:
    """A batch of reports offered by one reader."""

    reader_name: str
    reports: List[TagReportData]


@dataclass
class ColumnarIngestMessage:
    """A columnar batch offered by one reader (shm or wire transport).

    Counts against the high-water mark row-for-row like
    :class:`IngestMessage`; shedding slices rows off with vectorized
    masks instead of per-report Python loops.
    """

    reader_name: str
    cols: ColumnarReportBatch


@dataclass
class CommandMessage:
    """A control-plane message; never counted against the high-water mark."""

    kind: str
    payload: object = None
    future: Optional["asyncio.Future"] = field(default=None, repr=False)


class BoundedMailbox:
    """Single-consumer FIFO of ingest batches and commands.

    ``high_water`` bounds the number of *pending reports* (not batches);
    :meth:`offer` never blocks and never raises on overload — it sheds
    per the policy above and reports what it did, because a flooding
    reader must degrade one deployment's data, not stall the event loop
    or crash the actor.
    """

    def __init__(
        self,
        high_water: int = DEFAULT_HIGH_WATER,
        is_infrastructure: Optional[
            Callable[[TagReportData], bool]
        ] = None,
        is_infrastructure_epc: Optional[Callable[[str], bool]] = None,
    ) -> None:
        if high_water < 1:
            raise ValueError("high_water must be positive")
        self.high_water = high_water
        if is_infrastructure is None and is_infrastructure_epc is not None:
            is_infrastructure = lambda r: is_infrastructure_epc(r.epc)  # noqa: E731
        self._is_infrastructure = is_infrastructure or (lambda _r: True)
        # Columnar shedding classifies whole EPC-table slots at once;
        # without an EPC-level predicate every columnar row counts as
        # infrastructure (the conservative default, matching the object
        # path's ``lambda _r: True``).
        self._is_infrastructure_epc = is_infrastructure_epc
        self._items: Deque[object] = deque()
        self._pending_reports = 0
        self._available = asyncio.Event()
        self.stats = ShedStats()

    # ------------------------------------------------------------------
    # Producer side
    # ------------------------------------------------------------------
    def offer(
        self, reader_name: str, reports: List[TagReportData]
    ) -> Tuple[int, int]:
        """Enqueue a batch, shedding on overflow; returns (kept, shed)."""
        reports = list(reports)
        self.stats.offered += len(reports)
        message = IngestMessage(reader_name, reports)
        self._items.append(message)
        self._pending_reports += len(reports)
        shed = 0
        if self._pending_reports > self.high_water:
            shed = self._shed_to_high_water()
        self._available.set()
        # Shedding may have hit older batches rather than this one; what
        # "kept" means to the caller is how much of *its* batch survived.
        return len(message.reports), shed

    def offer_columnar(
        self, reader_name: str, cols: ColumnarReportBatch
    ) -> Tuple[int, int]:
        """Enqueue a columnar batch, shedding on overflow; (kept, shed).

        The columnar twin of :meth:`offer`: rows count against the
        high-water mark exactly like object reports and share the same
        two-pass shedding policy, but overload trims rows with
        vectorized masks (:meth:`ColumnarReportBatch.select`) instead of
        rebuilding Python lists.
        """
        self.stats.offered += len(cols)
        message = ColumnarIngestMessage(reader_name, cols)
        self._items.append(message)
        self._pending_reports += len(cols)
        shed = 0
        if self._pending_reports > self.high_water:
            shed = self._shed_to_high_water()
        self._available.set()
        return len(message.cols), shed

    def put_command(self, message: CommandMessage) -> None:
        self._items.append(message)
        self._available.set()

    def _shed_to_high_water(self) -> int:
        """Drop pending reports down to the mark; oldest bystanders first."""
        self.stats.shed_episodes += 1
        shed_total = 0
        # Pass 1: oldest non-infrastructure reports across all batches.
        for item in self._items:
            if self._pending_reports <= self.high_water:
                break
            if isinstance(item, ColumnarIngestMessage):
                shed_total += self._shed_columnar_bystanders(item)
                continue
            if not isinstance(item, IngestMessage):
                continue
            kept: List[TagReportData] = []
            for report in item.reports:
                if (
                    self._pending_reports > self.high_water
                    and not self._is_infrastructure(report)
                ):
                    self._pending_reports -= 1
                    shed_total += 1
                    self.stats.shed_bystander += 1
                else:
                    kept.append(report)
            item.reports = kept
        # Pass 2: still flooded by calibration traffic itself — shed the
        # oldest infrastructure reports too (counted separately; this is
        # the "extreme flood" signature operators alert on).
        for item in self._items:
            if self._pending_reports <= self.high_water:
                break
            if isinstance(item, ColumnarIngestMessage):
                excess = min(
                    len(item.cols),
                    self._pending_reports - self.high_water,
                )
                if excess:
                    item.cols = item.cols.select(
                        np.arange(excess, len(item.cols))
                    )
                    self._pending_reports -= excess
                    shed_total += excess
                    self.stats.shed_infrastructure += excess
                continue
            if not isinstance(item, IngestMessage):
                continue
            excess = min(
                len(item.reports),
                self._pending_reports - self.high_water,
            )
            if excess:
                del item.reports[:excess]
                self._pending_reports -= excess
                shed_total += excess
                self.stats.shed_infrastructure += excess
        self.stats.shed += shed_total
        return shed_total

    def _shed_columnar_bystanders(self, item: ColumnarIngestMessage) -> int:
        """Drop this batch's oldest non-infrastructure rows, vectorized."""
        if self._is_infrastructure_epc is None or not len(item.cols):
            return 0
        infrastructure_slots = np.fromiter(
            (self._is_infrastructure_epc(epc) for epc in item.cols.epcs),
            dtype=bool,
            count=len(item.cols.epcs),
        )
        bystander_rows = np.flatnonzero(
            ~infrastructure_slots[item.cols.epc_index]
        )
        need = self._pending_reports - self.high_water
        drop = bystander_rows[:need]
        if not drop.size:
            return 0
        keep_mask = np.ones(len(item.cols), dtype=bool)
        keep_mask[drop] = False
        item.cols = item.cols.select(keep_mask)
        dropped = int(drop.size)
        self._pending_reports -= dropped
        self.stats.shed_bystander += dropped
        return dropped

    # ------------------------------------------------------------------
    # Consumer side
    # ------------------------------------------------------------------
    async def get(self) -> object:
        """Next message (FIFO); empty ingest husks left by shedding are
        skipped transparently."""
        while True:
            while not self._items:
                self._available.clear()
                await self._available.wait()
            item = self._items.popleft()
            if isinstance(item, IngestMessage):
                if not item.reports:
                    continue  # fully shed; nothing to deliver
                self._pending_reports -= len(item.reports)
                self.stats.delivered += len(item.reports)
            elif isinstance(item, ColumnarIngestMessage):
                if not len(item.cols):
                    continue  # fully shed; nothing to deliver
                self._pending_reports -= len(item.cols)
                self.stats.delivered += len(item.cols)
            return item

    # ------------------------------------------------------------------
    # Introspection / teardown
    # ------------------------------------------------------------------
    @property
    def pending_reports(self) -> int:
        return self._pending_reports

    def drain(self) -> Tuple[int, List[CommandMessage]]:
        """Empty the mailbox; returns (undelivered reports, commands).

        Called by the supervisor when an actor dies so nothing is lost
        *silently*: undelivered reports are counted as crash losses and
        pending commands get their futures failed.
        """
        lost = self._pending_reports
        commands = [
            item for item in self._items if isinstance(item, CommandMessage)
        ]
        self._items.clear()
        self._pending_reports = 0
        return lost, commands

    def __len__(self) -> int:
        return len(self._items)
