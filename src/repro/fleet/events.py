"""Structured fleet lifecycle events.

Every state transition the serving tier makes — actor starts, crashes,
restarts, breaker trips, checkpoint saves, shed reports — is recorded as
a :class:`FleetEvent` in a bounded :class:`EventLog` rather than printed
or silently dropped.  Operators (and the chaos harness) reason about
recovery by replaying this log; tests assert on it instead of scraping
output.

Events carry a monotonically increasing sequence number instead of a
wall-clock timestamp: the log's *order* is the contract, and keeping
wall time out of the record keeps chaos runs deterministic.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Mapping, Optional

from repro.obs.metrics import get_registry

EVENT_ACTOR_STARTED = "actor-started"
EVENT_ACTOR_STOPPED = "actor-stopped"
EVENT_ACTOR_CRASHED = "actor-crashed"
EVENT_ACTOR_RESTARTED = "actor-restarted"
EVENT_BREAKER_OPENED = "breaker-opened"
EVENT_BREAKER_HALF_OPEN = "breaker-half-open"
EVENT_BREAKER_CLOSED = "breaker-closed"
EVENT_CHECKPOINT_SAVED = "checkpoint-saved"
EVENT_CHECKPOINT_RESTORED = "checkpoint-restored"
EVENT_CHECKPOINT_CORRUPT = "checkpoint-corrupt"
EVENT_FIX_DEADLINE = "fix-deadline-exceeded"
EVENT_REPORTS_SHED = "reports-shed"
EVENT_INGEST_REJECTED = "ingest-rejected"
# Sharded-fleet worker-process lifecycle (emitted by the parent with the
# shard index in the detail; ``deployment_id`` is the synthetic
# ``worker-<index>`` id so the log stays one flat stream).
EVENT_WORKER_STARTED = "worker-started"
EVENT_WORKER_STOPPED = "worker-stopped"
EVENT_WORKER_LOST = "worker-lost"
EVENT_WORKER_KILLED = "worker-killed"
EVENT_WORKER_RESTARTED = "worker-restarted"

#: Default bound on retained events; old events roll off, counts persist.
DEFAULT_CAPACITY = 4096


@dataclass(frozen=True)
class FleetEvent:
    """One lifecycle transition of one deployment."""

    seq: int
    deployment_id: str
    kind: str
    detail: Mapping[str, object] = field(default_factory=dict)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        extras = " ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.seq}] {self.deployment_id} {self.kind} {extras}".strip()


class EventLog:
    """Bounded, subscribable record of fleet events.

    The deque holds the most recent ``capacity`` events; per-kind counts
    are kept separately and never roll off, so accounting checks stay
    exact even after the log wraps.
    """

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._events: Deque[FleetEvent] = deque(maxlen=capacity)
        self._counts: Dict[str, int] = {}
        self._seq = 0
        self._subscribers: List[Callable[[FleetEvent], None]] = []
        self._subscriber_errors = 0

    def emit(
        self, deployment_id: str, kind: str, **detail: object
    ) -> FleetEvent:
        self._seq += 1
        event = FleetEvent(
            seq=self._seq,
            deployment_id=deployment_id,
            kind=kind,
            detail=dict(detail),
        )
        self._events.append(event)
        self._counts[kind] = self._counts.get(kind, 0) + 1
        # Bridge into the metrics registry: every event kind is a
        # counter, so chaos SLOs and dashboards read one surface.
        get_registry().counter(
            "tagspin_fleet_events_total",
            "Fleet lifecycle events by kind (EventLog bridge).",
            kind=kind,
        ).inc()
        for subscriber in list(self._subscribers):
            # A raising subscriber must never propagate out of emit():
            # emit() runs inside actors and supervisors, and an observer
            # bug would otherwise kill the component being observed.
            try:
                subscriber(event)
            except Exception:
                self._subscriber_errors += 1
                get_registry().counter(
                    "tagspin_event_subscriber_errors_total",
                    "Exceptions raised (and contained) by EventLog "
                    "subscribers.",
                ).inc()
        return event

    def subscribe(self, callback: Callable[[FleetEvent], None]) -> None:
        """Register a callback invoked synchronously on every emit.

        Exceptions the callback raises are contained and counted in
        :attr:`subscriber_errors` — they never propagate to the emitter.
        """
        self._subscribers.append(callback)

    def unsubscribe(self, callback: Callable[[FleetEvent], None]) -> bool:
        """Remove a subscriber; returns False when it was not registered."""
        try:
            self._subscribers.remove(callback)
            return True
        except ValueError:
            return False

    @property
    def subscriber_errors(self) -> int:
        """Lifetime count of contained subscriber exceptions."""
        return self._subscriber_errors

    def events(
        self,
        deployment_id: Optional[str] = None,
        kind: Optional[str] = None,
    ) -> List[FleetEvent]:
        """Retained events, optionally filtered, oldest first."""
        return [
            event
            for event in self._events
            if (deployment_id is None or event.deployment_id == deployment_id)
            and (kind is None or event.kind == kind)
        ]

    def count(self, kind: str) -> int:
        """Lifetime count of one event kind (survives log wrap)."""
        return self._counts.get(kind, 0)

    def counts(self) -> Dict[str, int]:
        return dict(self._counts)

    def __len__(self) -> int:
        return len(self._events)
