"""Asyncio wire ingest endpoint and recording replay for the fleet tier.

This is the missing transport between raw reader TCP streams and the
fleet serving tier: a :class:`WireIngestEndpoint` accepts connections,
reassembles LLRP frames from arbitrary chunk fragments, decodes
``RO_ACCESS_REPORT`` batches (columnar by default) and offers the
reports to one :class:`~repro.fleet.supervisor.FleetSupervisor`
deployment.  :func:`replay_into_supervisor` closes the loop for load
and regression testing: it serves a :class:`~repro.sim.wire_recording
.WireRecording` through a loopback socket at 1x–1000x of the captured
pacing and returns the fix the fleet produced, alongside the recorded
ground truth.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.pipeline import PipelineConfig
from repro.errors import ConfigurationError, WireProtocolError
from repro.fleet.supervisor import FleetSupervisor
from repro.hardware.llrp_stream import StreamingLLRPParser, StreamStats
from repro.obs.metrics import get_registry, telemetry_enabled
from repro.server.resilience import ResilientLocalizationServer
from repro.sim.wire_recording import WireRecording

#: Read size for the endpoint's receive loop.
DEFAULT_READ_BYTES = 1 << 16


@dataclass
class ConnectionReport:
    """Outcome of one ingest connection."""

    stats: StreamStats
    reports_offered: int = 0
    reports_enqueued: int = 0
    error: Optional[str] = None


class WireIngestEndpoint:
    """TCP server feeding decoded wire batches into one deployment.

    Each connection gets its own :class:`StreamingLLRPParser`, so
    interleaved readers cannot corrupt each other's reassembly state.
    Decoded reports are offered to the supervisor's mailbox — the
    endpoint inherits the fleet tier's backpressure (overload sheds,
    it never buffers unboundedly).
    """

    def __init__(
        self,
        supervisor: FleetSupervisor,
        deployment_id: str,
        reader_name: str,
        decode: str = "columnar",
        on_error: str = "resync",
        read_bytes: int = DEFAULT_READ_BYTES,
    ) -> None:
        if decode not in ("columnar", "object"):
            raise ConfigurationError(
                f"decode must be 'columnar' or 'object', got {decode!r}"
            )
        if read_bytes < 1:
            raise ConfigurationError(
                f"read_bytes must be positive, got {read_bytes}"
            )
        self.supervisor = supervisor
        self.deployment_id = deployment_id
        self.reader_name = reader_name
        self.decode = decode
        self.on_error = on_error
        self.read_bytes = read_bytes
        self.connections: List[ConnectionReport] = []
        self._server: Optional[asyncio.AbstractServer] = None
        self._handlers: List[asyncio.Future] = []

    # ------------------------------------------------------------------
    async def start(
        self, host: str = "127.0.0.1", port: int = 0
    ) -> Tuple[str, int]:
        """Bind and listen; returns the bound ``(host, port)``."""
        if self._server is not None:
            raise ConfigurationError("endpoint already started")
        self._server = await asyncio.start_server(
            self._accept, host=host, port=port
        )
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def stop(self) -> None:
        """Stop listening and wait for in-flight connections."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.drain()

    async def drain(self) -> None:
        """Wait until every accepted connection has been fully ingested."""
        while self._handlers:
            pending = [task for task in self._handlers if not task.done()]
            if not pending:
                break
            await asyncio.wait(pending)

    # ------------------------------------------------------------------
    def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.ensure_future(self._handle(reader, writer))
        self._handlers.append(task)

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> ConnectionReport:
        parser = StreamingLLRPParser(on_error=self.on_error)
        report = ConnectionReport(stats=parser.stats)
        self.connections.append(report)
        try:
            while True:
                chunk = await reader.read(self.read_bytes)
                if not chunk:
                    parser.close()
                    break
                self._offer(parser, chunk, report)
        except WireProtocolError as exc:
            # on_error="raise": a corrupt stream drops the connection
            # with a diagnostic instead of poisoning the deployment.
            report.error = str(exc)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        return report

    def _offer(
        self,
        parser: StreamingLLRPParser,
        chunk: bytes,
        report: ConnectionReport,
    ) -> None:
        if self.decode == "columnar":
            batches = [
                cols.to_reports()
                for _mid, cols in parser.feed_columnar(chunk)
            ]
        else:
            batches = [batch.reports for _mid, batch in parser.feed(chunk)]
        for reports in batches:
            if not reports:
                continue
            report.reports_offered += len(reports)
            report.reports_enqueued += self.supervisor.offer(
                self.deployment_id, self.reader_name, reports
            )
        if telemetry_enabled():
            registry = get_registry()
            registry.counter(
                "tagspin_wire_bytes_total",
                "Raw LLRP bytes consumed off the wire.",
                deployment=self.deployment_id,
            ).inc(len(chunk))
            frames = len(batches)
            if frames:
                registry.counter(
                    "tagspin_wire_frames_total",
                    "Complete LLRP report frames decoded off the wire.",
                    deployment=self.deployment_id,
                ).inc(frames)
            offered = sum(len(reports) for reports in batches)
            if offered:
                registry.counter(
                    "tagspin_wire_reports_total",
                    "Tag reports decoded from wire frames and offered "
                    "to the supervisor.",
                    deployment=self.deployment_id,
                ).inc(offered)

    # ------------------------------------------------------------------
    @property
    def stats(self) -> StreamStats:
        """Aggregate stream counters across every connection so far."""
        total = StreamStats()
        for connection in self.connections:
            for key, value in connection.stats.as_dict().items():
                setattr(total, key, getattr(total, key) + value)
        return total


async def replay_frames(
    recording: WireRecording,
    writer: asyncio.StreamWriter,
    speed: float = 1.0,
    fragment_bytes: Optional[int] = None,
) -> int:
    """Stream a recording's frames into ``writer`` at ``speed``x pacing.

    ``fragment_bytes`` deliberately splits every frame into smaller
    writes so the replay also exercises the receiver's reassembly —
    a load test that only ever sends whole frames is too polite.
    Returns the number of bytes written.
    """
    if fragment_bytes is not None and fragment_bytes < 1:
        raise ConfigurationError(
            f"fragment_bytes must be positive, got {fragment_bytes}"
        )
    written = 0
    for delay_s, frame in recording.replay_schedule(speed):
        if delay_s > 0.0:
            await asyncio.sleep(delay_s)
        step = fragment_bytes if fragment_bytes is not None else len(frame)
        for start in range(0, len(frame), max(1, step)):
            writer.write(frame[start : start + step])
            await writer.drain()
        written += len(frame)
    return written


@dataclass
class ReplayResult:
    """What came out of replaying one recording through the fleet."""

    fix: object
    diagnostics: object
    truth: Optional[object]
    reports_offered: int
    reports_enqueued: int
    stream_stats: dict = field(default_factory=dict)

    @property
    def error_m(self) -> Optional[float]:
        """Replayed-fix error against the recorded ground truth [m]."""
        if self.truth is None:
            return None
        return self.fix.position.distance_to(self.truth.horizontal())


def clone_deployment_ids(deployment_id: str, deployments: int) -> List[str]:
    """The synthetic deployment ids a fan-out replay clones onto.

    ``deployments=1`` keeps the plain ``deployment_id`` (back-compat);
    ``M > 1`` yields ``{deployment_id}-000 … {deployment_id}-{M-1}`` —
    the same naming the sharded bench uses, so hash routing spreads the
    clones across workers.
    """
    if deployments < 1:
        raise ConfigurationError(
            f"deployments must be positive, got {deployments}"
        )
    if deployments == 1:
        return [deployment_id]
    return [f"{deployment_id}-{i:03d}" for i in range(deployments)]


async def replay_into_supervisor(
    recording: WireRecording,
    speed: float = 100.0,
    decode: str = "columnar",
    reader_name: str = "reader-1",
    antenna_port: int = 1,
    pipeline: Optional[PipelineConfig] = None,
    engine: Optional[str] = None,
    fragment_bytes: Optional[int] = None,
    deployment_id: str = "replay",
    deployments: int = 1,
):
    """Serve a recording through a loopback fleet and return its fix.

    Builds a :class:`FleetSupervisor` from the recording's registry
    snapshot, streams every captured frame over a real socket at
    ``speed``x, waits for ingest to drain, and asks each deployment for
    a 2D fix on ``(reader_name, antenna_port)``.

    ``deployments=M`` clones the one recording across M synthetic
    deployments (each with its own endpoint, loopback connection and
    concurrent frame stream) — the multi-deployment load shape the
    sharded fleet bench replays, without needing M captures.  Returns a
    single :class:`ReplayResult` for ``M == 1`` (back-compat) and a
    list of M results otherwise.
    """
    registry = recording.build_registry()
    config = pipeline if pipeline is not None else PipelineConfig()
    deployment_ids = clone_deployment_ids(deployment_id, deployments)

    def server_factory() -> ResilientLocalizationServer:
        return ResilientLocalizationServer(registry, config, engine=engine)

    supervisor = FleetSupervisor()
    endpoints: List[WireIngestEndpoint] = []
    for clone_id in deployment_ids:
        supervisor.add_deployment(clone_id, server_factory)
        endpoints.append(
            WireIngestEndpoint(
                supervisor, clone_id, reader_name, decode=decode
            )
        )
    results: List[ReplayResult] = []
    try:
        writers: List[asyncio.StreamWriter] = []
        for endpoint in endpoints:
            host, port = await endpoint.start()
            _reader, writer = await asyncio.open_connection(host, port)
            writers.append(writer)
        await asyncio.gather(*(
            replay_frames(
                recording, writer, speed=speed,
                fragment_bytes=fragment_bytes,
            )
            for writer in writers
        ))
        for writer in writers:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass
        for endpoint in endpoints:
            await endpoint.drain()
        for clone_id, endpoint in zip(deployment_ids, endpoints):
            fix, diagnostics = await supervisor.locate_2d(
                clone_id, reader_name, antenna_port
            )
            results.append(ReplayResult(
                fix=fix,
                diagnostics=diagnostics,
                truth=recording.truth,
                reports_offered=sum(
                    c.reports_offered for c in endpoint.connections
                ),
                reports_enqueued=sum(
                    c.reports_enqueued for c in endpoint.connections
                ),
                stream_stats=endpoint.stats.as_dict(),
            ))
    finally:
        for endpoint in endpoints:
            await endpoint.stop()
        await supervisor.stop()
    if deployments == 1:
        return results[0]
    return results
