"""Checkpoint/restore of per-deployment serving state.

A :class:`DeploymentCheckpoint` snapshots everything a restarted actor
needs to *warm-start* instead of rebuilding from nothing: the per-stream
report buffers (byte-for-byte, so the streaming accumulator's
exact-prefix check accepts the restored series), the validator
quarantine counters, and the last known degradation state per stream.

Checkpoints serialize to a versioned JSON document
(``schema: tagspin-checkpoint/1``) through a pluggable
:class:`CheckpointStore`.  Corruption is a first-class case:
:meth:`DeploymentCheckpoint.from_json` raises
:class:`~repro.errors.CheckpointError` on any structural damage, and the
actor answers it by cold-starting — a bad checkpoint must never poison a
recovery, only slow it down.
"""

from __future__ import annotations

import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.errors import CheckpointError
from repro.hardware.llrp import TagReportData
from repro.robustness.diagnostics import DegradationState
from repro.server.resilience import ResilientLocalizationServer
from repro.server.service import StreamKey

CHECKPOINT_SCHEMA = "tagspin-checkpoint/1"

_REPORT_FIELDS = (
    "epc",
    "antenna_port",
    "channel_index",
    "reader_timestamp_us",
    "host_timestamp_us",
    "phase_rad",
    "rssi_dbm",
)


def _report_to_row(report: TagReportData) -> list:
    return [getattr(report, name) for name in _REPORT_FIELDS]


def _report_from_row(row: object) -> TagReportData:
    if not isinstance(row, list) or len(row) != len(_REPORT_FIELDS):
        raise CheckpointError(f"malformed report row: {row!r}")
    try:
        return TagReportData(
            epc=str(row[0]),
            antenna_port=int(row[1]),
            channel_index=int(row[2]),
            reader_timestamp_us=int(row[3]),
            host_timestamp_us=int(row[4]),
            phase_rad=float(row[5]),
            rssi_dbm=float(row[6]),
        )
    except (TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed report row: {row!r}") from exc


@dataclass
class DeploymentCheckpoint:
    """Restorable snapshot of one deployment's serving state."""

    deployment_id: str
    seq: int
    streams: Dict[StreamKey, List[TagReportData]] = field(default_factory=dict)
    quarantine: Dict[StreamKey, Dict[str, int]] = field(default_factory=dict)
    degradation: Dict[StreamKey, str] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Capture / restore
    # ------------------------------------------------------------------
    @classmethod
    def capture(
        cls,
        deployment_id: str,
        server: ResilientLocalizationServer,
        seq: int,
    ) -> "DeploymentCheckpoint":
        streams = server.snapshot_streams()
        return cls(
            deployment_id=deployment_id,
            seq=seq,
            streams=streams,
            quarantine={
                key: server.quarantine_stats(*key).as_dict()
                for key in streams
            },
            degradation={
                key: state.value
                for key, state in server.degradation_states().items()
            },
        )

    def restore_into(self, server: ResilientLocalizationServer) -> None:
        """Load the snapshot into a fresh server.

        Buffers are replaced wholesale (preserving exact report order, so
        a later append extends the streaming accumulator instead of
        forcing a cold rebuild) and degradation states carry over.
        Validator counters restart at zero — the validators' duplicate
        windows died with the old process, and pretending otherwise would
        double-count; cross-incarnation totals are the supervisor's job.
        """
        server.restore_streams(self.streams)
        server.restore_degradation(
            {
                key: DegradationState(value)
                for key, value in self.degradation.items()
            }
        )

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(
            {
                "schema": CHECKPOINT_SCHEMA,
                "deployment_id": self.deployment_id,
                "seq": self.seq,
                "streams": [
                    {
                        "reader_name": key[0],
                        "antenna_port": key[1],
                        "reports": [_report_to_row(r) for r in reports],
                    }
                    for key, reports in sorted(self.streams.items())
                ],
                "quarantine": [
                    {
                        "reader_name": key[0],
                        "antenna_port": key[1],
                        "stats": stats,
                    }
                    for key, stats in sorted(self.quarantine.items())
                ],
                "degradation": [
                    {
                        "reader_name": key[0],
                        "antenna_port": key[1],
                        "state": state,
                    }
                    for key, state in sorted(self.degradation.items())
                ],
            }
        )

    @classmethod
    def from_json(cls, text: str) -> "DeploymentCheckpoint":
        try:
            doc = json.loads(text)
        except (TypeError, ValueError) as exc:
            raise CheckpointError(f"checkpoint is not valid JSON: {exc}") from exc
        if not isinstance(doc, dict):
            raise CheckpointError("checkpoint document is not an object")
        if doc.get("schema") != CHECKPOINT_SCHEMA:
            raise CheckpointError(
                f"unsupported checkpoint schema {doc.get('schema')!r} "
                f"(expected {CHECKPOINT_SCHEMA!r})"
            )
        try:
            deployment_id = str(doc["deployment_id"])
            seq = int(doc["seq"])
            streams: Dict[StreamKey, List[TagReportData]] = {}
            for entry in doc["streams"]:
                key = (str(entry["reader_name"]), int(entry["antenna_port"]))
                streams[key] = [_report_from_row(r) for r in entry["reports"]]
            quarantine: Dict[StreamKey, Dict[str, int]] = {}
            for entry in doc.get("quarantine", []):
                key = (str(entry["reader_name"]), int(entry["antenna_port"]))
                quarantine[key] = {
                    str(k): int(v) for k, v in entry["stats"].items()
                }
            degradation: Dict[StreamKey, str] = {}
            for entry in doc.get("degradation", []):
                key = (str(entry["reader_name"]), int(entry["antenna_port"]))
                state = str(entry["state"])
                DegradationState(state)  # rejects unknown states
                degradation[key] = state
        except CheckpointError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"checkpoint missing or malformed field: {exc}"
            ) from exc
        return cls(
            deployment_id=deployment_id,
            seq=seq,
            streams=streams,
            quarantine=quarantine,
            degradation=degradation,
        )

    def report_count(self) -> int:
        return sum(len(reports) for reports in self.streams.values())


class CheckpointStore:
    """Interface of a deployment-checkpoint backing store."""

    def save(self, deployment_id: str, payload: str) -> None:
        raise NotImplementedError

    def load(self, deployment_id: str) -> Optional[str]:
        """Stored payload, or ``None`` if no checkpoint exists."""
        raise NotImplementedError

    def delete(self, deployment_id: str) -> None:
        raise NotImplementedError


class MemoryCheckpointStore(CheckpointStore):
    """In-process store for tests and the chaos harness.

    :meth:`corrupt` damages a stored payload in place — the harness uses
    it to prove a torn checkpoint degrades recovery to a cold start
    instead of crashing or restoring garbage.
    """

    def __init__(self) -> None:
        self._payloads: Dict[str, str] = {}
        self.saves = 0
        self.loads = 0

    def save(self, deployment_id: str, payload: str) -> None:
        self._payloads[deployment_id] = payload
        self.saves += 1

    def load(self, deployment_id: str) -> Optional[str]:
        self.loads += 1
        return self._payloads.get(deployment_id)

    def delete(self, deployment_id: str) -> None:
        self._payloads.pop(deployment_id, None)

    def corrupt(self, deployment_id: str) -> None:
        """Truncate the stored payload mid-document (torn write)."""
        payload = self._payloads.get(deployment_id)
        if payload is not None:
            self._payloads[deployment_id] = payload[: len(payload) // 2]


class JsonCheckpointStore(CheckpointStore):
    """One JSON file per deployment under ``root``, written atomically.

    The write goes to a temp file in the same directory followed by
    :func:`os.replace`, so a crash mid-save leaves the previous
    checkpoint intact rather than a torn file.
    """

    def __init__(self, root: Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def _path(self, deployment_id: str) -> Path:
        if not deployment_id or "/" in deployment_id or deployment_id.startswith("."):
            raise CheckpointError(
                f"deployment id {deployment_id!r} is not a safe file name"
            )
        return self.root / f"{deployment_id}.checkpoint.json"

    def save(self, deployment_id: str, payload: str) -> None:
        path = self._path(deployment_id)
        fd, tmp_name = tempfile.mkstemp(
            dir=str(self.root), prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                handle.write(payload)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def load(self, deployment_id: str) -> Optional[str]:
        path = self._path(deployment_id)
        try:
            return path.read_text()
        except FileNotFoundError:
            return None

    def delete(self, deployment_id: str) -> None:
        path = self._path(deployment_id)
        try:
            path.unlink()
        except FileNotFoundError:
            pass
