"""One supervised actor per deployment.

A :class:`DeploymentActor` owns one
:class:`~repro.server.resilience.ResilientLocalizationServer` and a
:class:`~repro.fleet.backpressure.BoundedMailbox`, and processes both
report batches and fix requests strictly in arrival order on the event
loop — the underlying server is not thread-safe, and serialization
through one mailbox is what makes it safe to multiplex thousands of
deployments in a single process.

Two protections bound each actor's blast radius:

* **Deadline budgets** — a fix solve runs on a worker thread under
  ``asyncio.wait_for``; if it exceeds ``fix_deadline_s`` the *caller*
  gets :class:`~repro.errors.FixDeadlineError` immediately while the
  actor quietly waits out the stray thread (never letting it race a
  subsequent ingest).  A pathological deployment degrades itself, not
  the event loop.
* **Checkpointing** — every ``checkpoint_every`` ingest batches the
  actor snapshots its serving state through a
  :class:`~repro.fleet.checkpoint.CheckpointStore`; after a crash the
  next incarnation warm-starts from the snapshot and a priming fix
  rebuilds the streaming accumulator, so post-restart fixes ride the
  append path instead of recomputing history.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence

from repro.errors import (
    ConfigurationError,
    FixDeadlineError,
    TagspinError,
)
from repro.fleet.backpressure import (
    DEFAULT_HIGH_WATER,
    BoundedMailbox,
    ColumnarIngestMessage,
    CommandMessage,
    IngestMessage,
)
from repro.fleet.checkpoint import (
    CheckpointStore,
    DeploymentCheckpoint,
)
from repro.fleet.events import (
    EVENT_CHECKPOINT_CORRUPT,
    EVENT_CHECKPOINT_RESTORED,
    EVENT_CHECKPOINT_SAVED,
    EVENT_FIX_DEADLINE,
    EVENT_INGEST_REJECTED,
    EVENT_REPORTS_SHED,
    EventLog,
)
from repro.hardware.llrp import TagReportData
from repro.obs.metrics import get_registry
from repro.server.resilience import ResilientLocalizationServer

#: Builds a fresh (empty) server for one deployment incarnation.
ServerFactory = Callable[[], ResilientLocalizationServer]


@dataclass(frozen=True)
class ActorConfig:
    """Tuning knobs of one deployment actor."""

    #: Pending-report bound of the ingest mailbox.
    high_water_mark: int = DEFAULT_HIGH_WATER
    #: Wall-clock budget per fix; ``None`` disables the deadline.
    fix_deadline_s: Optional[float] = None
    #: Auto-checkpoint every N ingest batches; 0 disables.
    checkpoint_every: int = 0
    #: Run a priming fix after a checkpoint restore so the streaming
    #: accumulator is rebuilt once, up front, instead of on the first
    #: serving fix.
    prime_on_restore: bool = True


@dataclass
class ActorStats:
    """Counters of one actor incarnation (the supervisor accumulates
    totals across incarnations)."""

    #: Reports the server accepted into buffers (validator-approved).
    accepted: int = 0
    #: Reports delivered to the server whose whole batch was rejected as
    #: misconfigured (bad stream key) — never buffered, never silent.
    rejected_invalid: int = 0
    fixes_served: int = 0
    fixes_failed: int = 0
    deadline_misses: int = 0
    checkpoints_saved: int = 0
    #: Reports restored from a checkpoint (outside offer accounting).
    restored_reports: int = 0
    warm_restored: bool = False

    def as_dict(self) -> dict:
        return {
            "accepted": self.accepted,
            "rejected_invalid": self.rejected_invalid,
            "fixes_served": self.fixes_served,
            "fixes_failed": self.fixes_failed,
            "deadline_misses": self.deadline_misses,
            "checkpoints_saved": self.checkpoints_saved,
            "restored_reports": self.restored_reports,
            "warm_restored": self.warm_restored,
        }


class _CrashInjected(Exception):
    """Wrapper marking a chaos-injected crash (unwrapped before raising)."""


class DeploymentActor:
    """Serializes one deployment's ingest and fixes behind a mailbox."""

    def __init__(
        self,
        deployment_id: str,
        server_factory: ServerFactory,
        config: Optional[ActorConfig] = None,
        events: Optional[EventLog] = None,
        store: Optional[CheckpointStore] = None,
        incarnation: int = 0,
    ) -> None:
        self.deployment_id = deployment_id
        self.config = config if config is not None else ActorConfig()
        self.events = events if events is not None else EventLog()
        self.store = store
        self.incarnation = incarnation
        self.server = server_factory()
        self.stats = ActorStats()
        self.mailbox = BoundedMailbox(
            high_water=self.config.high_water_mark,
            is_infrastructure_epc=lambda epc: epc in self.server.registry,
        )
        self._checkpoint_seq = 0
        self._batches_since_checkpoint = 0
        self._running = False
        # Prebound per-deployment metrics: label resolution happens once
        # here, so the ingest/fix hot paths only pay an inc()/set().
        registry = get_registry()
        self._m_delivered = registry.counter(
            "tagspin_reports_delivered_total",
            "Reports delivered from the mailbox to the serving tier "
            "(matches the ledger's 'delivered').",
            deployment=deployment_id,
        )
        self._m_accepted = registry.counter(
            "tagspin_reports_accepted_total",
            "Reports the validator accepted into serving buffers.",
            deployment=deployment_id,
        )
        self._m_shed = registry.counter(
            "tagspin_reports_shed_total",
            "Reports shed by mailbox backpressure.",
            deployment=deployment_id,
        )
        self._m_pending = registry.gauge(
            "tagspin_mailbox_pending",
            "Reports currently queued in the actor mailbox.",
            deployment=deployment_id,
        )
        self._m_fixes = {
            outcome: registry.counter(
                "tagspin_fixes_total",
                "Fix requests served by outcome.",
                deployment=deployment_id,
                outcome=outcome,
            )
            for outcome in ("ok", "error", "deadline")
        }

    # ------------------------------------------------------------------
    # Producer-facing API (call from the event loop thread)
    # ------------------------------------------------------------------
    def offer(
        self, reader_name: str, reports: Sequence[TagReportData]
    ) -> int:
        """Offer a batch for ingest; returns how many were enqueued.

        Never blocks: overload sheds per the mailbox policy, and every
        shed report is surfaced as an :data:`EVENT_REPORTS_SHED` event.
        """
        kept, shed = self.mailbox.offer(reader_name, list(reports))
        if shed:
            self._m_shed.inc(shed)
            self.events.emit(
                self.deployment_id,
                EVENT_REPORTS_SHED,
                reader_name=reader_name,
                shed=shed,
                pending=self.mailbox.pending_reports,
            )
        self._m_pending.set(self.mailbox.pending_reports)
        return kept

    def offer_columnar(self, reader_name: str, cols) -> int:
        """Offer a columnar batch for ingest; returns how many rows kept.

        The zero-copy twin of :meth:`offer` — the batch stays columnar
        through the mailbox and is validated vectorized by
        :meth:`~repro.server.resilience.ResilientLocalizationServer
        .ingest_columnar`, with identical shedding policy and accounting.
        """
        kept, shed = self.mailbox.offer_columnar(reader_name, cols)
        if shed:
            self._m_shed.inc(shed)
            self.events.emit(
                self.deployment_id,
                EVENT_REPORTS_SHED,
                reader_name=reader_name,
                shed=shed,
                pending=self.mailbox.pending_reports,
            )
        self._m_pending.set(self.mailbox.pending_reports)
        return kept

    async def request_fix(self, reader_name: str, antenna_port: int = 1):
        """Enqueue a 2D fix request; resolves after all earlier batches.

        Returns ``(Fix2D, FixDiagnostics)`` or raises what the solve
        raised (:class:`~repro.errors.FixDeadlineError` on a blown
        deadline budget).
        """
        future = asyncio.get_event_loop().create_future()
        self.mailbox.put_command(
            CommandMessage(
                kind="locate",
                payload=(reader_name, antenna_port),
                future=future,
            )
        )
        return await future

    async def request_checkpoint(self) -> int:
        """Enqueue a checkpoint; resolves to the checkpoint sequence."""
        future = asyncio.get_event_loop().create_future()
        self.mailbox.put_command(CommandMessage(kind="checkpoint", future=future))
        return await future

    async def stop(self) -> None:
        """Ask the actor to finish queued work and exit cleanly."""
        future = asyncio.get_event_loop().create_future()
        self.mailbox.put_command(CommandMessage(kind="stop", future=future))
        await future

    def inject_crash(self, error: Optional[Exception] = None) -> None:
        """Chaos hook: make the actor die when it reaches this message."""
        self.mailbox.put_command(
            CommandMessage(
                kind="crash",
                payload=error if error is not None else RuntimeError(
                    "chaos: injected actor crash"
                ),
            )
        )

    # ------------------------------------------------------------------
    # Actor body
    # ------------------------------------------------------------------
    async def run(self) -> None:
        """Process messages until a stop command; raises on crash."""
        self._running = True
        self._restore()
        if self.stats.warm_restored and self.config.prime_on_restore:
            self._prime()
        try:
            while True:
                message = await self.mailbox.get()
                if isinstance(message, (IngestMessage, ColumnarIngestMessage)):
                    self._handle_ingest(message)
                    await self._maybe_auto_checkpoint()
                    continue
                assert isinstance(message, CommandMessage)
                if message.kind == "locate":
                    await self._handle_locate(message)
                elif message.kind == "checkpoint":
                    self._handle_checkpoint(message)
                elif message.kind == "stop":
                    if message.future is not None and not message.future.done():
                        message.future.set_result(None)
                    return
                elif message.kind == "crash":
                    raise _CrashInjected(message.payload)
                else:  # pragma: no cover - defensive
                    raise ConfigurationError(
                        f"unknown actor command {message.kind!r}"
                    )
        except _CrashInjected as wrapper:
            raise wrapper.args[0] from None
        finally:
            self._running = False

    # -- ingest ---------------------------------------------------------
    def _handle_ingest(self, message) -> None:
        columnar = isinstance(message, ColumnarIngestMessage)
        size = len(message.cols) if columnar else len(message.reports)
        self._m_delivered.inc(size)
        try:
            if columnar:
                accepted = self.server.ingest_columnar(
                    message.reader_name, message.cols
                )
            else:
                accepted = self.server.ingest(
                    message.reader_name, message.reports
                )
            self.stats.accepted += accepted
            self._m_accepted.inc(accepted)
        except ConfigurationError as exc:
            # The whole batch was rejected before any report was
            # buffered (stream-key validation is all-or-nothing).
            self.stats.rejected_invalid += size
            self.events.emit(
                self.deployment_id,
                EVENT_INGEST_REJECTED,
                reader_name=message.reader_name,
                reports=size,
                error=str(exc),
            )
        self._m_pending.set(self.mailbox.pending_reports)

    # -- fixes ----------------------------------------------------------
    async def _handle_locate(self, message: CommandMessage) -> None:
        reader_name, antenna_port = message.payload
        future = message.future
        loop = asyncio.get_event_loop()
        task = loop.run_in_executor(
            None,
            self.server.locate_antenna_2d_diagnosed,
            reader_name,
            antenna_port,
        )
        deadline = self.config.fix_deadline_s
        try:
            if deadline is None:
                result = await task
            else:
                result = await asyncio.wait_for(asyncio.shield(task), deadline)
        except asyncio.TimeoutError:
            self.stats.deadline_misses += 1
            self.stats.fixes_failed += 1
            self._m_fixes["deadline"].inc()
            self.events.emit(
                self.deployment_id,
                EVENT_FIX_DEADLINE,
                reader_name=reader_name,
                antenna_port=antenna_port,
                deadline_s=deadline,
            )
            if future is not None and not future.done():
                future.set_exception(
                    FixDeadlineError(
                        f"fix for {reader_name!r}:{antenna_port} exceeded "
                        f"its {deadline}s budget"
                    )
                )
            # The solve thread is still running against our (not
            # thread-safe) server; wait it out before touching more
            # messages so ingest never races it.
            try:
                await task
            except Exception:
                pass
            return
        except TagspinError as exc:
            self.stats.fixes_failed += 1
            self._m_fixes["error"].inc()
            if future is not None and not future.done():
                future.set_exception(exc)
            return
        self.stats.fixes_served += 1
        self._m_fixes["ok"].inc()
        if future is not None and not future.done():
            future.set_result(result)

    # -- checkpointing ---------------------------------------------------
    async def _maybe_auto_checkpoint(self) -> None:
        if self.config.checkpoint_every <= 0 or self.store is None:
            return
        self._batches_since_checkpoint += 1
        if self._batches_since_checkpoint >= self.config.checkpoint_every:
            self._save_checkpoint()

    def _handle_checkpoint(self, message: CommandMessage) -> None:
        try:
            seq = self._save_checkpoint()
        except TagspinError as exc:
            if message.future is not None and not message.future.done():
                message.future.set_exception(exc)
            return
        if message.future is not None and not message.future.done():
            message.future.set_result(seq)

    def _save_checkpoint(self) -> int:
        if self.store is None:
            raise ConfigurationError(
                f"deployment {self.deployment_id!r} has no checkpoint store"
            )
        self._checkpoint_seq += 1
        snapshot = DeploymentCheckpoint.capture(
            self.deployment_id, self.server, self._checkpoint_seq
        )
        self.store.save(self.deployment_id, snapshot.to_json())
        self._batches_since_checkpoint = 0
        self.stats.checkpoints_saved += 1
        self.events.emit(
            self.deployment_id,
            EVENT_CHECKPOINT_SAVED,
            seq=snapshot.seq,
            reports=snapshot.report_count(),
        )
        return snapshot.seq

    def _restore(self) -> None:
        if self.store is None:
            return
        payload = self.store.load(self.deployment_id)
        if payload is None:
            return
        try:
            snapshot = DeploymentCheckpoint.from_json(payload)
        except TagspinError as exc:
            # A torn or garbled checkpoint downgrades recovery to a cold
            # start; it must never take the actor down with it.
            self.events.emit(
                self.deployment_id,
                EVENT_CHECKPOINT_CORRUPT,
                error=str(exc),
            )
            return
        snapshot.restore_into(self.server)
        self._checkpoint_seq = snapshot.seq
        self.stats.restored_reports = snapshot.report_count()
        self.stats.warm_restored = True
        self.events.emit(
            self.deployment_id,
            EVENT_CHECKPOINT_RESTORED,
            seq=snapshot.seq,
            reports=snapshot.report_count(),
        )

    def _prime(self) -> None:
        """Rebuild streaming state from restored buffers, once, up front."""
        for reader_name, antenna_port in self.server.streams():
            try:
                self.server.locate_antenna_2d(reader_name, antenna_port)
            except TagspinError:
                # Insufficient or degraded restored data: priming is
                # best-effort; a later serving fix will report properly.
                continue

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._running

    def quarantine_totals(self) -> dict:
        """Validator counters summed over this incarnation's streams."""
        received = accepted = quarantined = 0
        for stats in self.server.all_quarantine_stats().values():
            received += stats.received
            accepted += stats.accepted
            quarantined += stats.quarantined
        return {
            "received": received,
            "accepted": accepted,
            "quarantined": quarantined,
        }

    def accounting(self) -> dict:
        """Exact report ledger of this incarnation."""
        ledger = dict(self.mailbox.stats.as_dict())
        ledger["pending"] = self.mailbox.pending_reports
        ledger.update(self.quarantine_totals())
        ledger["rejected_invalid"] = self.stats.rejected_invalid
        return ledger
