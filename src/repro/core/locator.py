"""Target-reader localization from angle spectra (Section V of the paper).

Every spinning tag yields an angle spectrum; its peak is a bearing from the
disk center toward the reader.  In 2D two bearings intersect at the reader
(Eqn 9).  In 3D the azimuth peaks fix (x, y) and the polar peaks give z
through Eqn 13a/13b — with an inherent sign ambiguity, because a horizontally
spinning tag cannot distinguish +z from -z (two symmetric peaks, Fig 8).  The
ambiguity is resolved with a height prior ("dead space" in the paper) or, as
the paper's future-work extension, with a vertically spinning third tag
(see ``repro.core.oriented``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from repro.core.geometry import (
    Bearing2D,
    Point2,
    Point3,
    fuse_heights,
    height_from_polar,
    intersect_bearings_2d,
    least_squares_intersection,
    point_line_distance,
    triangulation_residual,
)
from repro.core.spectrum import AngleSpectrum, JointSpectrum
from repro.errors import AmbiguityError


@dataclass(frozen=True)
class Fix2D:
    """A 2D localization result."""

    position: Point2
    residual: float
    confidence: float


@dataclass(frozen=True)
class Fix3D:
    """A 3D localization result, including the rejected mirror candidate."""

    position: Point3
    mirror: Point3
    residual: float
    confidence: float
    candidates: Tuple[Point3, ...] = field(default_factory=tuple)


def _confidence(spectra: Sequence[AngleSpectrum | JointSpectrum]) -> float:
    """Geometric mean of the spectra's peak powers, in [0, 1]-ish range."""
    peaks = np.array([max(s.peak_power, 1e-12) for s in spectra])
    return float(np.exp(np.mean(np.log(peaks))))


class TagspinLocator2D:
    """Intersect the azimuth spectra of >= 2 coplanar spinning tags."""

    def locate(
        self,
        centers: Sequence[Point2],
        spectra: Sequence[AngleSpectrum],
    ) -> Fix2D:
        if len(centers) != len(spectra):
            raise ValueError("one spectrum per disk center is required")
        if len(centers) < 2:
            raise ValueError("need at least two spinning tags in 2D")
        bearings = [
            Bearing2D(center, spectrum.peak_azimuth)
            for center, spectrum in zip(centers, spectra)
        ]
        if len(bearings) == 2:
            position = intersect_bearings_2d(bearings[0], bearings[1])
        else:
            position = least_squares_intersection(bearings)
        residual = triangulation_residual(position, bearings)
        return Fix2D(position, residual, _confidence(spectra))


class TagspinLocator3D:
    """Fuse joint (azimuth x polar) spectra of >= 2 coplanar spinning tags.

    Parameters
    ----------
    z_min, z_max : allowed reader heights [m] relative to the disk plane's
        frame, used to reject the mirror candidate.  When both candidates
        survive the prior, the non-negative one is preferred (``prefer_sign``).
    prefer_sign : +1 or -1; tie-break for the z ambiguity.
    """

    def __init__(
        self,
        z_min: float = -np.inf,
        z_max: float = np.inf,
        prefer_sign: int = 1,
    ) -> None:
        if z_max < z_min:
            raise ValueError("z_max must be >= z_min")
        if prefer_sign not in (1, -1):
            raise ValueError("prefer_sign must be +1 or -1")
        self.z_min = z_min
        self.z_max = z_max
        self.prefer_sign = prefer_sign

    def locate(
        self,
        centers: Sequence[Point3],
        spectra: Sequence[JointSpectrum],
    ) -> Fix3D:
        if len(centers) != len(spectra):
            raise ValueError("one spectrum per disk center is required")
        if len(centers) < 2:
            raise ValueError("need at least two spinning tags in 3D")
        planar_centers = [c.horizontal() for c in centers]
        bearings = [
            Bearing2D(center, spectrum.peak_azimuth)
            for center, spectrum in zip(planar_centers, spectra)
        ]
        if len(bearings) == 2:
            xy = intersect_bearings_2d(bearings[0], bearings[1])
        else:
            xy = least_squares_intersection(bearings)
        residual = triangulation_residual(xy, bearings)

        # The polar peak of a horizontal disk is sign-ambiguous; work with
        # height magnitudes *above the disk plane* and emit both mirror
        # candidates (Eqn 13a/13b, averaged across disks as the paper's
        # "comparing and balancing").
        z_plane = float(np.mean([c.z for c in centers]))
        magnitude = fuse_heights(
            abs(
                height_from_polar(
                    Point3(center.x, center.y, 0.0), xy, abs(spectrum.peak_polar)
                )
            )
            for center, spectrum in zip(centers, spectra)
        )
        candidates = (
            Point3(xy.x, xy.y, z_plane + magnitude),
            Point3(xy.x, xy.y, z_plane - magnitude),
        )
        chosen = self._resolve_ambiguity(candidates)
        mirror = candidates[1] if chosen is candidates[0] else candidates[0]
        return Fix3D(
            position=chosen,
            mirror=mirror,
            residual=residual,
            confidence=_confidence(spectra),
            candidates=candidates,
        )

    def _resolve_ambiguity(self, candidates: Tuple[Point3, Point3]) -> Point3:
        allowed = [
            c for c in candidates if self.z_min <= c.z <= self.z_max
        ]
        if not allowed:
            raise AmbiguityError(
                f"both height candidates {candidates[0].z:.3f} / "
                f"{candidates[1].z:.3f} m fall outside the prior "
                f"[{self.z_min}, {self.z_max}]"
            )
        if len(allowed) == 1:
            return allowed[0]
        preferred = [
            c for c in allowed if np.sign(c.z) == self.prefer_sign or c.z == 0.0
        ]
        return preferred[0] if preferred else allowed[0]


def per_bearing_residuals(
    point: Point2, bearings: Sequence[Bearing2D]
) -> List[float]:
    """Perpendicular distance from ``point`` to each bearing line [m].

    The per-disk companion of :func:`triangulation_residual`: quality
    gating uses it to attribute a bad intersection to the disk whose
    bearing disagrees, instead of blaming the fix as a whole.
    """
    if not bearings:
        raise ValueError("no bearings")
    return [float(point_line_distance(point, b)) for b in bearings]


def spectra_to_bearings(
    centers: Sequence[Point2], spectra: Sequence[AngleSpectrum]
) -> List[Bearing2D]:
    """Convenience: turn spectra into 2D bearings (for plotting/diagnostics)."""
    if len(centers) != len(spectra):
        raise ValueError("one spectrum per disk center is required")
    return [
        Bearing2D(center, spectrum.peak_azimuth)
        for center, spectrum in zip(centers, spectra)
    ]
