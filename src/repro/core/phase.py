"""Phase models and phase-sequence utilities (Section III of the paper).

The reader reports, for each tag read, the total backscatter phase rotation

    theta(t) = (4*pi/lambda * d(t) + theta_div) mod 2*pi          (Eqn 1)

where ``d(t)`` is the one-way reader-tag distance at time ``t`` (the signal
travels it twice, hence the factor 4*pi instead of 2*pi) and ``theta_div`` is
a constant hardware-diversity term.  For a tag spinning on a disk of radius
``r`` around a center at distance ``D`` from the reader, the far-field
approximation gives

    d(t) = D - r * cos(omega*t - phi)                             (Eqn 2)

with ``phi`` the azimuth of the reader seen from the disk center, extended in
3D by a ``cos(gamma)`` foreshortening factor (Eqn 10).
"""

from __future__ import annotations

import numpy as np

TWO_PI = 2.0 * np.pi


def wrap_phase(theta: np.ndarray | float) -> np.ndarray | float:
    """Wrap phase value(s) to ``[0, 2*pi)``."""
    wrapped = np.mod(theta, TWO_PI)
    # np.mod of a tiny negative value rounds to exactly 2*pi; fold it back.
    return np.where(wrapped >= TWO_PI, 0.0, wrapped)


def wrap_phase_signed(theta: np.ndarray | float) -> np.ndarray | float:
    """Wrap phase value(s) to ``(-pi, pi]``."""
    return -np.mod(-np.asarray(theta, dtype=float) + np.pi, TWO_PI) + np.pi


def smooth_phase_sequence(theta: np.ndarray) -> np.ndarray:
    """Remove mod-2*pi discontinuities from a phase sequence (Sec III-B).

    This is the paper's smoothing rule: walking the sequence, any jump larger
    than ``pi`` between consecutive samples is treated as a wrap and undone by
    adding/subtracting multiples of ``2*pi``.  Equivalent to ``numpy.unwrap``
    but implemented as specified so the tests can check the published rule.
    """
    theta = np.asarray(theta, dtype=float)
    if theta.ndim != 1:
        raise ValueError("expected a 1D phase sequence")
    if theta.size == 0:
        return theta.copy()
    smoothed = theta.copy()
    offset = 0.0
    for i in range(1, smoothed.size):
        delta = theta[i] - theta[i - 1]
        if delta > np.pi:
            offset -= TWO_PI
        elif delta < -np.pi:
            offset += TWO_PI
        smoothed[i] = theta[i] + offset
    return smoothed


def spinning_distance(
    times: np.ndarray,
    center_distance: float,
    radius: float,
    angular_speed: float,
    reader_azimuth: float,
    reader_polar: float = 0.0,
    phase0: float = 0.0,
) -> np.ndarray:
    """Far-field reader-tag distance model ``d(t)`` (Eqns 2 and 10).

    Parameters
    ----------
    times : array of sample times [s]
    center_distance : ``D``, distance from disk center to reader [m]
    radius : disk radius ``r`` [m]
    angular_speed : ``omega`` [rad/s]
    reader_azimuth : ``phi`` [rad]
    reader_polar : ``gamma`` [rad]; 0 for the coplanar (2D) case
    phase0 : disk angle at ``t = 0`` [rad]
    """
    times = np.asarray(times, dtype=float)
    return center_distance - radius * np.cos(
        angular_speed * times + phase0 - reader_azimuth
    ) * np.cos(reader_polar)


def theoretical_phase(
    times: np.ndarray,
    wavelength: float | np.ndarray,
    center_distance: float,
    radius: float,
    angular_speed: float,
    reader_azimuth: float,
    reader_polar: float = 0.0,
    diversity: float = 0.0,
    phase0: float = 0.0,
) -> np.ndarray:
    """Theoretical wrapped phase ``theta(t)`` of a spinning tag (Eqn 3)."""
    distance = spinning_distance(
        times,
        center_distance,
        radius,
        angular_speed,
        reader_azimuth,
        reader_polar,
        phase0,
    )
    return wrap_phase(4.0 * np.pi / np.asarray(wavelength, dtype=float) * distance
                      + diversity)


def relative_phase_model(
    times: np.ndarray,
    wavelength: float | np.ndarray,
    radius: float,
    angular_speed: float,
    candidate_azimuth: np.ndarray | float,
    candidate_polar: np.ndarray | float = 0.0,
    phase0: float = 0.0,
) -> np.ndarray:
    """Theoretical phase of each snapshot relative to the first one.

    This is the quantity ``c_i = vartheta_i(phi) - vartheta_0(phi)`` of
    Definition 4.1; the unknown center distance ``D`` and diversity term
    cancel in the difference:

        c_i = 4*pi*r/lambda * (cos(omega*t_0 - phi) - cos(omega*t_i - phi)) * cos(gamma)

    with the disk angle ``omega*t`` offset by the known starting angle
    ``phase0``.  ``candidate_azimuth``/``candidate_polar`` may be scalars or
    arrays and are broadcast against ``times``; the result has shape
    ``broadcast(candidate).shape + times.shape``.
    """
    times = np.asarray(times, dtype=float)
    if times.size == 0:
        raise ValueError("need at least one snapshot time")
    phi = np.asarray(candidate_azimuth, dtype=float)
    gamma = np.asarray(candidate_polar, dtype=float)
    # Scalars broadcast against `times` directly; arrays gain a trailing
    # snapshot axis so the result is candidate_shape + times_shape.
    if phi.ndim:
        phi = phi[..., np.newaxis]
    if gamma.ndim:
        gamma = gamma[..., np.newaxis]
    wavelength = np.asarray(wavelength, dtype=float)
    projected = np.cos(angular_speed * times + phase0 - phi) * np.cos(gamma)
    first = projected[..., :1]
    scale = 4.0 * np.pi * radius / wavelength
    return scale * (first - projected)


def circular_mean(angles: np.ndarray) -> float:
    """Circular mean of angles [rad], in ``(-pi, pi]``."""
    angles = np.asarray(angles, dtype=float)
    if angles.size == 0:
        raise ValueError("circular mean of empty sequence")
    return float(np.angle(np.mean(np.exp(1j * angles))))


def circular_std(angles: np.ndarray) -> float:
    """Circular standard deviation of angles [rad].

    Defined as ``sqrt(-2 ln R)`` with ``R`` the resultant vector length; it
    approaches the linear standard deviation for concentrated samples.
    """
    angles = np.asarray(angles, dtype=float)
    if angles.size == 0:
        raise ValueError("circular std of empty sequence")
    resultant = np.abs(np.mean(np.exp(1j * angles)))
    resultant = min(max(resultant, 1e-12), 1.0)
    return float(np.sqrt(-2.0 * np.log(resultant)))


def phase_to_distance_error(phase_error: float, wavelength: float) -> float:
    """Distance error implied by a phase error in backscatter geometry.

    The paper converts a 0.7 rad residual to ~0.9 cm via
    ``err = phase / (4*pi) * lambda`` (double path).
    """
    return phase_error / (4.0 * np.pi) * wavelength
