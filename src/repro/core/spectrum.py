"""Angle-spectrum generation (Section IV and V-B of the paper).

Given the phase snapshots of one spinning tag, the direction of the reader is
estimated SAR-style by correlating the *relative* measured phases against the
theoretical relative phase for every candidate direction:

* The **traditional profile** ``Q`` (Eqn 7 / Eqn 11) is the coherent mean of
  the phase residuals — a circular-antenna-array beamformer.
* The **enhanced profile** ``R`` (Definition 4.1 / 5.1) additionally weights
  every snapshot by the Gaussian likelihood of its observed relative phase
  under the candidate direction, ``w_i = f(theta_i - theta_0; c_i, sqrt(2)*sigma)``.
  Directions that cannot explain the measurements get near-zero weight, so
  side lobes collapse and the true peak protrudes (Fig 6 / Fig 8).

Referencing every phase to the first snapshot cancels both the unknown
center-to-reader distance ``D`` and the hardware diversity ``theta_div``.
Within one frequency channel this cancellation is exact; series mixing
channels must be split per channel first (see ``repro.core.pipeline``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.constants import (
    DEFAULT_AZIMUTH_RESOLUTION_RAD,
    DEFAULT_POLAR_RESOLUTION_RAD,
    RELATIVE_PHASE_STD_RAD,
)
from repro.core.phase import relative_phase_model, wrap_phase_signed
from repro.errors import DTypeError, InsufficientDataError

#: Rows of the (polar x azimuth) grid evaluated per chunk, bounding memory.
_POLAR_CHUNK = 8


@dataclass(frozen=True)
class SnapshotSeries:
    """Phase snapshots of one spinning tag on one (antenna, channel) link.

    Attributes
    ----------
    times : sample times [s] (reader timestamps; strictly increasing)
    phases : wrapped phase reports [rad]
    wavelength : carrier wavelength [m] (single channel per series)
    radius : disk radius [m]
    angular_speed : disk angular speed [rad/s]
    phase0 : disk angle at ``t = 0`` [rad] (from the registry)
    """

    times: np.ndarray
    phases: np.ndarray
    wavelength: float
    radius: float
    angular_speed: float
    phase0: float = 0.0

    def __post_init__(self) -> None:
        times = np.asarray(self.times, dtype=float)
        phases = np.asarray(self.phases, dtype=float)
        if times.ndim != 1 or times.shape != phases.shape:
            raise ValueError("times and phases must be matching 1D arrays")
        if not np.all(np.isfinite(times)):
            raise ValueError("times must be finite (no NaN/Inf)")
        if not np.all(np.isfinite(phases)):
            raise ValueError("phases must be finite (no NaN/Inf)")
        if times.size >= 2 and np.any(np.diff(times) < 0):
            raise ValueError("times must be non-decreasing")
        if not np.isfinite(self.wavelength) or self.wavelength <= 0:
            raise ValueError("wavelength must be positive and finite")
        if not np.isfinite(self.radius) or self.radius <= 0:
            raise ValueError("radius must be positive and finite")
        if not np.isfinite(self.angular_speed) or self.angular_speed == 0:
            raise ValueError("angular_speed must be non-zero and finite")
        if not np.isfinite(self.phase0):
            raise ValueError("phase0 must be finite")
        object.__setattr__(self, "times", times)
        object.__setattr__(self, "phases", phases)

    def __len__(self) -> int:
        return int(self.times.size)

    def relative_phases(self) -> np.ndarray:
        """Measured phases relative to the first snapshot, wrapped."""
        return np.asarray(
            wrap_phase_signed(self.phases - self.phases[0]), dtype=float
        )


@dataclass(frozen=True)
class AngleSpectrum:
    """1D (azimuth) power profile with its refined peak."""

    azimuth_grid: np.ndarray
    power: np.ndarray
    peak_azimuth: float
    peak_power: float

    def power_at(self, azimuth: float) -> float:
        """Power at the grid point nearest to ``azimuth``."""
        index = int(np.argmin(np.abs(
            wrap_phase_signed(self.azimuth_grid - azimuth))))
        return float(self.power[index])


@dataclass(frozen=True)
class JointSpectrum:
    """2D (azimuth x polar) power profile with its refined peak."""

    azimuth_grid: np.ndarray
    polar_grid: np.ndarray
    power: np.ndarray  # shape (len(polar_grid), len(azimuth_grid))
    peak_azimuth: float
    peak_polar: float
    peak_power: float


def _check_series(series: SnapshotSeries, minimum: int = 3) -> None:
    if len(series) < minimum:
        raise InsufficientDataError(
            f"need at least {minimum} snapshots to form a spectrum, "
            f"got {len(series)}"
        )


def _residual_matrix(
    series: SnapshotSeries,
    azimuths: np.ndarray,
    polar: np.ndarray | float,
) -> np.ndarray:
    """Wrapped residual (measured - theoretical relative phase) per candidate.

    Returns shape ``(len(azimuths), n_snapshots)``.
    """
    theoretical = relative_phase_model(
        series.times,
        series.wavelength,
        series.radius,
        series.angular_speed,
        azimuths,
        polar,
        series.phase0,
    )
    measured = series.relative_phases()
    return np.asarray(wrap_phase_signed(measured - theoretical), dtype=float)


def harmonic_coefficients(
    series: SnapshotSeries, polar: float = 0.0
) -> tuple[np.ndarray, np.ndarray]:
    """Cos/sin decomposition of the theoretical relative phase (Def 4.1).

    The phase model is a pure sampled cosine in the candidate azimuth:

        c_i(phi) = A_i * cos(phi) + B_i * sin(phi)

    with ``A_i = s*cos(gamma)*(cos(alpha_0) - cos(alpha_i))``,
    ``B_i = s*cos(gamma)*(sin(alpha_0) - sin(alpha_i))``,
    ``alpha_i = omega*t_i + phase0`` and ``s = 4*pi*r/lambda``.  This is
    the per-snapshot harmonic form :mod:`repro.perf.harmonic` feeds into
    the Jacobi-Anger/FFT evaluation; it is algebraically identical to
    :func:`repro.core.phase.relative_phase_model` (cosine difference
    expanded in ``phi``).  Returns ``(A, B)``, each of shape
    ``(len(series),)``; ``A[0] == B[0] == 0`` by construction.
    """
    alpha = series.angular_speed * series.times + series.phase0
    scale = (
        4.0 * np.pi * series.radius / series.wavelength * np.cos(polar)
    )
    cos_alpha = np.cos(alpha)
    sin_alpha = np.sin(alpha)
    return (
        scale * (cos_alpha[0] - cos_alpha),
        scale * (sin_alpha[0] - sin_alpha),
    )


def _gaussian_weights(residuals: np.ndarray, sigma: float) -> np.ndarray:
    """Gaussian PDF of the wrapped residuals, normalized to peak 1.

    Normalizing by the PDF's maximum keeps the profile's peak near 1 for a
    perfectly explained series; the paper plots unnormalized PDF values, which
    only differ by this constant factor.
    """
    return np.exp(-0.5 * np.square(residuals / sigma))


def _coerce_residuals(residuals: np.ndarray) -> np.ndarray:
    """Validate/coerce a residual array to float64 with a typed error.

    Complex input means the caller passed phasors (``exp(1j*res)``)
    instead of phases — taking its "mean magnitude" silently produces a
    wrong profile, so it is rejected outright.  Real inputs of lower
    precision (float32, integers, bool) are upcast to float64 so every
    engine computes in the same precision.
    """
    array = np.asarray(residuals)
    if np.iscomplexobj(array):
        raise DTypeError(
            f"residuals must be real-valued wrapped phases [rad], got "
            f"complex dtype {array.dtype}; pass phase residuals, not "
            f"phasors"
        )
    if array.dtype != np.float64:
        if not (
            np.issubdtype(array.dtype, np.floating)
            or np.issubdtype(array.dtype, np.integer)
            or array.dtype == np.bool_
        ):
            raise DTypeError(
                f"residuals must be a numeric array of wrapped phases "
                f"[rad], got dtype {array.dtype}"
            )
        array = array.astype(np.float64)
    return array


def power_from_residuals(
    residuals: np.ndarray, sigma: Optional[float]
) -> np.ndarray:
    """Power along the snapshot axis of a wrapped-residual array.

    ``sigma=None`` computes the traditional coherent mean ``Q`` (Eqn 7);
    a positive ``sigma`` computes the enhanced likelihood-weighted profile
    ``R`` (Definition 4.1).  This is the single arithmetic kernel shared by
    the reference profiles and :mod:`repro.perf`'s batched engine, so both
    paths are bit-for-bit identical by construction.  Input dtype is
    validated: complex arrays raise :class:`repro.errors.DTypeError` and
    lower-precision real arrays are upcast to float64.
    """
    residuals = _coerce_residuals(residuals)
    if sigma is None:
        return np.abs(np.mean(np.exp(1j * residuals), axis=-1))
    residuals = _centered(residuals)
    weights = _gaussian_weights(residuals, sigma)
    return np.abs(np.mean(weights * np.exp(1j * residuals), axis=-1))


def _centered(residuals: np.ndarray) -> np.ndarray:
    """Remove the common (circular-mean) offset from each residual row.

    Referencing phases to the first snapshot leaves that snapshot's own
    noise as a *common* offset in every residual.  The coherent sum of ``Q``
    is invariant to it (a constant phase factors out of the magnitude), but
    the Gaussian weights of ``R`` are not: an offset of ``n_0`` drags the
    weighted peak by roughly ``n_0`` divided by the phase-vs-angle slope —
    about 2 degrees for sigma = 0.1 rad and a 10 cm disk.  Re-centering each
    candidate's residuals by their circular mean restores the invariance
    while keeping Definition 4.1's weighting intact.
    """
    mean = np.angle(np.mean(np.exp(1j * residuals), axis=-1, keepdims=True))
    return np.asarray(wrap_phase_signed(residuals - mean), dtype=float)


def _refine_peak_circular(grid: np.ndarray, power: np.ndarray) -> tuple[float, float]:
    """Sub-grid peak via parabolic interpolation on a circular grid."""
    index = int(np.argmax(power))
    left = power[(index - 1) % power.size]
    center = power[index]
    right = power[(index + 1) % power.size]
    denominator = left - 2.0 * center + right
    if abs(denominator) < 1e-15:
        return float(np.mod(grid[index], 2.0 * np.pi)), float(center)
    shift = 0.5 * (left - right) / denominator
    shift = float(np.clip(shift, -0.5, 0.5))
    step = grid[1] - grid[0] if grid.size > 1 else 0.0
    refined = grid[index] + shift * step
    refined_power = center - 0.25 * (left - right) * shift
    return float(np.mod(refined, 2.0 * np.pi)), float(refined_power)


def _refine_peak_clamped(grid: np.ndarray, power: np.ndarray) -> tuple[float, float]:
    """Sub-grid peak via parabolic interpolation on a bounded grid."""
    index = int(np.argmax(power))
    if index == 0 or index == power.size - 1 or grid.size < 3:
        return float(grid[index]), float(power[index])
    left, center, right = power[index - 1], power[index], power[index + 1]
    denominator = left - 2.0 * center + right
    if abs(denominator) < 1e-15:
        return float(grid[index]), float(center)
    shift = float(np.clip(0.5 * (left - right) / denominator, -0.5, 0.5))
    step = grid[1] - grid[0]
    return (
        float(grid[index] + shift * step),
        float(center - 0.25 * (left - right) * shift),
    )


def default_azimuth_grid(
    resolution: float = DEFAULT_AZIMUTH_RESOLUTION_RAD,
) -> np.ndarray:
    """Azimuth candidates covering ``[0, 2*pi)``."""
    count = max(int(round(2.0 * np.pi / resolution)), 8)
    return np.linspace(0.0, 2.0 * np.pi, count, endpoint=False)


def default_polar_grid(
    resolution: float = DEFAULT_POLAR_RESOLUTION_RAD,
    max_polar: float = np.pi / 2.0,
) -> np.ndarray:
    """Polar candidates covering ``[-max_polar, max_polar]``."""
    count = max(int(round(2.0 * max_polar / resolution)) + 1, 3)
    return np.linspace(-max_polar, max_polar, count)


def compute_q_profile(
    series: SnapshotSeries,
    azimuth_grid: Optional[np.ndarray] = None,
    polar: float = 0.0,
) -> AngleSpectrum:
    """Traditional AoA power profile ``Q(phi)`` (Eqn 7)."""
    _check_series(series)
    grid = default_azimuth_grid() if azimuth_grid is None else np.asarray(
        azimuth_grid, dtype=float
    )
    residuals = _residual_matrix(series, grid, polar)
    power = power_from_residuals(residuals, None)
    peak_azimuth, peak_power = _refine_peak_circular(grid, power)
    return AngleSpectrum(grid, power, peak_azimuth, peak_power)


def compute_r_profile(
    series: SnapshotSeries,
    azimuth_grid: Optional[np.ndarray] = None,
    polar: float = 0.0,
    sigma: float = RELATIVE_PHASE_STD_RAD,
) -> AngleSpectrum:
    """Enhanced power profile ``R(phi)`` (Definition 4.1)."""
    _check_series(series)
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    grid = default_azimuth_grid() if azimuth_grid is None else np.asarray(
        azimuth_grid, dtype=float
    )
    residuals = _residual_matrix(series, grid, polar)
    power = power_from_residuals(residuals, sigma)
    peak_azimuth, peak_power = _refine_peak_circular(grid, power)
    return AngleSpectrum(grid, power, peak_azimuth, peak_power)


def _joint_power(
    series: SnapshotSeries,
    azimuth_grid: np.ndarray,
    polar_grid: np.ndarray,
    sigma: Optional[float],
) -> np.ndarray:
    """Evaluate the (polar x azimuth) power grid, chunked over polar rows."""
    power = np.empty((polar_grid.size, azimuth_grid.size))
    for start in range(0, polar_grid.size, _POLAR_CHUNK):
        chunk = polar_grid[start : start + _POLAR_CHUNK]
        # Broadcast: candidates are the cross product of chunk x azimuths.
        theoretical = relative_phase_model(
            series.times,
            series.wavelength,
            series.radius,
            series.angular_speed,
            azimuth_grid[np.newaxis, :],
            chunk[:, np.newaxis],
            series.phase0,
        )
        residuals = np.asarray(
            wrap_phase_signed(series.relative_phases() - theoretical), dtype=float
        )
        power[start : start + chunk.size] = power_from_residuals(residuals, sigma)
    return power


def refine_joint_peak(
    series: SnapshotSeries,
    coarse_azimuth: float,
    coarse_polar: float,
    azimuth_step: float,
    polar_step: float,
    sigma: Optional[float],
    window: int = 3,
    oversample: int = 10,
    power_fn=None,
) -> tuple[float, float, float]:
    """Locally re-search around a coarse peak on a much finer grid.

    Returns ``(azimuth, polar, power)``.  The fine grid spans ``window``
    coarse steps on each side at ``oversample`` times the coarse density,
    followed by parabolic interpolation — giving sub-grid peaks without
    paying for a globally fine grid.  ``power_fn(series, azimuths, polars,
    sigma)`` overrides the grid evaluator (the batched engine injects its
    cached whole-grid kernel); it must be arithmetically identical to
    :func:`_joint_power`.
    """
    fine_azimuths = coarse_azimuth + np.linspace(
        -window * azimuth_step, window * azimuth_step,
        2 * window * oversample + 1,
    )
    fine_polars = np.clip(
        coarse_polar
        + np.linspace(
            -window * polar_step, window * polar_step,
            2 * window * oversample + 1,
        ),
        -np.pi / 2.0,
        np.pi / 2.0,
    )
    evaluate = _joint_power if power_fn is None else power_fn
    power = evaluate(series, fine_azimuths, fine_polars, sigma)
    row, col = np.unravel_index(int(np.argmax(power)), power.shape)
    azimuth, _ = _refine_peak_clamped(fine_azimuths, power[row])
    polar, peak_power = _refine_peak_clamped(fine_polars, power[:, col])
    return float(np.mod(azimuth, 2.0 * np.pi)), float(polar), float(peak_power)


def _joint_profile(
    series: SnapshotSeries,
    azimuth_grid: np.ndarray,
    polar_grid: np.ndarray,
    sigma: Optional[float],
    refine: bool = True,
    power_fn=None,
) -> JointSpectrum:
    evaluate = _joint_power if power_fn is None else power_fn
    power = evaluate(series, azimuth_grid, polar_grid, sigma)
    flat_index = int(np.argmax(power))
    row, col = np.unravel_index(flat_index, power.shape)
    if refine and azimuth_grid.size > 1 and polar_grid.size > 1:
        peak_azimuth, peak_polar, peak_power = refine_joint_peak(
            series,
            float(azimuth_grid[col]),
            float(polar_grid[row]),
            float(azimuth_grid[1] - azimuth_grid[0]),
            float(polar_grid[1] - polar_grid[0]),
            sigma,
            power_fn=power_fn,
        )
    else:
        peak_azimuth, _ = _refine_peak_circular(azimuth_grid, power[row])
        peak_polar, peak_power = _refine_peak_clamped(polar_grid, power[:, col])
    return JointSpectrum(
        azimuth_grid, polar_grid, power, peak_azimuth, peak_polar, peak_power
    )


def compute_q_profile_3d(
    series: SnapshotSeries,
    azimuth_grid: Optional[np.ndarray] = None,
    polar_grid: Optional[np.ndarray] = None,
) -> JointSpectrum:
    """Traditional 3D profile ``Q(phi, gamma)`` (Eqn 11)."""
    _check_series(series)
    azimuths = (
        default_azimuth_grid() if azimuth_grid is None
        else np.asarray(azimuth_grid, dtype=float)
    )
    polars = (
        default_polar_grid() if polar_grid is None
        else np.asarray(polar_grid, dtype=float)
    )
    return _joint_profile(series, azimuths, polars, sigma=None)


def compute_r_profile_3d(
    series: SnapshotSeries,
    azimuth_grid: Optional[np.ndarray] = None,
    polar_grid: Optional[np.ndarray] = None,
    sigma: float = RELATIVE_PHASE_STD_RAD,
) -> JointSpectrum:
    """Enhanced 3D profile ``R(phi, gamma)`` (Definition 5.1)."""
    _check_series(series)
    if sigma <= 0:
        raise ValueError("sigma must be positive")
    azimuths = (
        default_azimuth_grid() if azimuth_grid is None
        else np.asarray(azimuth_grid, dtype=float)
    )
    polars = (
        default_polar_grid() if polar_grid is None
        else np.asarray(polar_grid, dtype=float)
    )
    return _joint_profile(series, azimuths, polars, sigma=sigma)


def combine_spectra(spectra: Sequence[AngleSpectrum]) -> AngleSpectrum:
    """Combine per-channel spectra of the same link by averaging power.

    Frequency hopping forces the pipeline to split a tag's reads per channel
    (the first-snapshot reference only cancels ``D`` within a channel); the
    per-channel spectra all peak at the same physical direction and are fused
    by averaging on a common grid.
    """
    if not spectra:
        raise ValueError("no spectra to combine")
    grid = spectra[0].azimuth_grid
    for index, spectrum in enumerate(spectra[1:], start=1):
        if spectrum.azimuth_grid.shape != grid.shape:
            raise ValueError(
                f"spectra must share the same azimuth grid: spectrum 0 has "
                f"{grid.size} points but spectrum {index} has "
                f"{spectrum.azimuth_grid.size} (mixing engines or "
                f"resolutions? combine only spectra evaluated on one grid)"
            )
        if not np.allclose(spectrum.azimuth_grid, grid):
            deviation = float(
                np.max(np.abs(spectrum.azimuth_grid - grid))
            )
            raise ValueError(
                f"spectra must share the same azimuth grid: spectrum "
                f"{index}'s grid deviates from spectrum 0's by up to "
                f"{deviation:.3e} rad"
            )
    power = np.mean([s.power for s in spectra], axis=0)
    peak_azimuth, peak_power = _refine_peak_circular(grid, power)
    return AngleSpectrum(grid, power, peak_azimuth, peak_power)


def combine_joint_spectra(spectra: Sequence[JointSpectrum]) -> JointSpectrum:
    """Combine per-channel joint spectra of the same link.

    The fused surface is the mean power grid; the fused peak is the
    power-weighted mean of the per-channel peaks — circular for azimuth,
    plain for polar — exactly the fusion the pipeline applies to the
    3D/joint paths.  All spectra must share the grids of the first
    (consumers pass one engine's outputs, which guarantees this); the
    fused grids are the first spectrum's, so adaptive engines' coarse
    grids survive fusion undistorted.
    """
    if not spectra:
        raise ValueError("no joint spectra to combine")
    mean_power = np.mean([s.power for s in spectra], axis=0)
    weights = np.array([max(s.peak_power, 1e-12) for s in spectra])
    weights = weights / np.sum(weights)
    peak_azimuth = float(
        np.mod(
            np.angle(
                np.sum(
                    weights
                    * np.exp(1j * np.array([s.peak_azimuth for s in spectra]))
                )
            ),
            2.0 * np.pi,
        )
    )
    peak_polar = float(
        np.sum(weights * np.array([s.peak_polar for s in spectra]))
    )
    return JointSpectrum(
        azimuth_grid=spectra[0].azimuth_grid,
        polar_grid=spectra[0].polar_grid,
        power=mean_power,
        peak_azimuth=peak_azimuth,
        peak_polar=peak_polar,
        peak_power=float(np.max(mean_power)),
    )


def peak_sharpness(spectrum: AngleSpectrum, window: float = np.deg2rad(20)) -> float:
    """Ratio of peak power to mean power outside ``window`` around the peak.

    The Fig 6 benchmark uses this to quantify how much sharper ``R`` is than
    ``Q``; larger is sharper.
    """
    offsets = np.abs(np.asarray(
        wrap_phase_signed(spectrum.azimuth_grid - spectrum.peak_azimuth),
        dtype=float,
    ))
    outside = spectrum.power[offsets > window]
    if outside.size == 0:
        raise ValueError("window covers the whole grid")
    floor = float(np.mean(outside))
    return spectrum.peak_power / max(floor, 1e-12)
