"""Planar and spatial geometry used by Tagspin.

The localization stage of the paper reduces to line geometry: every spinning
tag yields a bearing (azimuth ``phi``, optionally polar angle ``gamma``) from
its disk center toward the reader.  Two or more bearings are intersected to
recover the reader position (Eqn 9 for the two-line 2D case; we additionally
provide the least-squares generalization for N lines, used when more than two
disks are deployed).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np

from repro.errors import AmbiguityError

#: Two lines whose directions differ by less than this [rad] are treated as
#: parallel and refused rather than intersected at an absurd coordinate.
PARALLEL_TOLERANCE_RAD = 1e-6


def wrap_angle(angle: float) -> float:
    """Wrap ``angle`` to ``[0, 2*pi)``."""
    wrapped = float(np.mod(angle, 2.0 * math.pi))
    # np.mod of a tiny negative value rounds to exactly 2*pi; fold it back.
    return 0.0 if wrapped >= 2.0 * math.pi else wrapped


def wrap_angle_signed(angle):
    """Wrap angle(s) to ``(-pi, pi]``; accepts scalars or arrays."""
    values = np.asarray(angle, dtype=float)
    wrapped = -np.mod(-values + math.pi, 2.0 * math.pi) + math.pi
    if values.ndim == 0:
        return float(wrapped)
    return wrapped


def angular_difference(a: float, b: float) -> float:
    """Smallest absolute difference between two angles [rad], in ``[0, pi]``."""
    return abs(wrap_angle_signed(a - b))


@dataclass(frozen=True)
class Point2:
    """A point in the horizontal plane [m]."""

    x: float
    y: float

    def as_array(self) -> np.ndarray:
        return np.array([self.x, self.y], dtype=float)

    def distance_to(self, other: "Point2") -> float:
        return math.hypot(self.x - other.x, self.y - other.y)

    def bearing_to(self, other: "Point2") -> float:
        """Azimuth [rad, in ``[0, 2*pi)``] of ``other`` as seen from ``self``."""
        return wrap_angle(math.atan2(other.y - self.y, other.x - self.x))

    def translated(self, dx: float, dy: float) -> "Point2":
        return Point2(self.x + dx, self.y + dy)


@dataclass(frozen=True)
class Point3:
    """A point in 3D space [m]."""

    x: float
    y: float
    z: float

    def as_array(self) -> np.ndarray:
        return np.array([self.x, self.y, self.z], dtype=float)

    def distance_to(self, other: "Point3") -> float:
        return float(
            math.sqrt(
                (self.x - other.x) ** 2
                + (self.y - other.y) ** 2
                + (self.z - other.z) ** 2
            )
        )

    def horizontal(self) -> Point2:
        """Projection onto the z=0 plane."""
        return Point2(self.x, self.y)

    def azimuth_to(self, other: "Point3") -> float:
        """Azimuth [rad] of ``other`` seen from ``self`` in the x-y plane."""
        return wrap_angle(math.atan2(other.y - self.y, other.x - self.x))

    def polar_to(self, other: "Point3") -> float:
        """Polar (elevation) angle [rad, in ``[-pi/2, pi/2]``] to ``other``.

        Matches the paper's ``gamma``: the angle between the line to the
        target and its projection on the horizontal plane.
        """
        horizontal = math.hypot(other.x - self.x, other.y - self.y)
        return math.atan2(other.z - self.z, horizontal)


@dataclass(frozen=True)
class Bearing2D:
    """A 2D bearing: origin plus azimuth toward the target."""

    origin: Point2
    azimuth: float

    def direction(self) -> np.ndarray:
        return np.array([math.cos(self.azimuth), math.sin(self.azimuth)])

    def point_at(self, distance: float) -> Point2:
        d = self.direction()
        return Point2(self.origin.x + distance * d[0], self.origin.y + distance * d[1])


@dataclass(frozen=True)
class Bearing3D:
    """A 3D bearing: origin, azimuth ``phi`` and polar angle ``gamma``."""

    origin: Point3
    azimuth: float
    polar: float

    def horizontal(self) -> Bearing2D:
        return Bearing2D(self.origin.horizontal(), self.azimuth)


def intersect_bearings_2d(a: Bearing2D, b: Bearing2D) -> Point2:
    """Intersect two bearings in the plane (Eqn 9 of the paper).

    Raises :class:`AmbiguityError` when the bearings are (near-)parallel,
    in which case no finite intersection exists.
    """
    sep = angular_difference(a.azimuth, b.azimuth)
    if sep < PARALLEL_TOLERANCE_RAD or abs(sep - math.pi) < PARALLEL_TOLERANCE_RAD:
        raise AmbiguityError(
            f"bearings are parallel (azimuths {a.azimuth:.6f} and {b.azimuth:.6f} rad)"
        )
    # Solve origin_a + s * dir_a = origin_b + t * dir_b.
    da, db = a.direction(), b.direction()
    matrix = np.column_stack([da, -db])
    rhs = b.origin.as_array() - a.origin.as_array()
    s, _t = np.linalg.solve(matrix, rhs)
    hit = a.origin.as_array() + s * da
    return Point2(float(hit[0]), float(hit[1]))


def least_squares_intersection(bearings: Sequence[Bearing2D]) -> Point2:
    """Least-squares intersection of ``N >= 2`` bearings.

    Each bearing contributes the constraint that the solution lies on its
    line; the normal-equation solution minimizes the sum of squared
    perpendicular distances to all lines.  This is the natural fusion rule
    when more than two spinning tags are deployed.
    """
    if len(bearings) < 2:
        raise ValueError("need at least two bearings to intersect")
    # Line through origin o with unit direction d: (I - d d^T) (p - o) = 0.
    accumulator = np.zeros((2, 2))
    rhs = np.zeros(2)
    for bearing in bearings:
        d = bearing.direction()
        projector = np.eye(2) - np.outer(d, d)
        accumulator += projector
        rhs += projector @ bearing.origin.as_array()
    try:
        solution = np.linalg.solve(accumulator, rhs)
    except np.linalg.LinAlgError as exc:
        raise AmbiguityError("all bearings are parallel") from exc
    # A nearly singular system (all lines almost parallel) produces wild
    # coordinates; detect it via the condition number instead of letting a
    # garbage answer through.
    if np.linalg.cond(accumulator) > 1e8:
        raise AmbiguityError("bearings are too close to parallel to intersect")
    return Point2(float(solution[0]), float(solution[1]))


def height_from_polar(
    origin: Point3, target_xy: Point2, polar: float
) -> float:
    """Height implied by one polar angle (Eqn 13a/13b of the paper).

    ``z = z_origin + horizontal_distance(origin, target) * tan(gamma)``.
    """
    horizontal = math.hypot(target_xy.x - origin.x, target_xy.y - origin.y)
    return origin.z + horizontal * math.tan(polar)


def fuse_heights(heights: Iterable[float]) -> float:
    """Balance per-disk height estimates (the paper averages Eqns 13a/13b)."""
    values = list(heights)
    if not values:
        raise ValueError("no height estimates to fuse")
    return float(np.mean(values))


def point_line_distance(point: Point2, bearing: Bearing2D) -> float:
    """Perpendicular distance from ``point`` to the (infinite) bearing line."""
    d = bearing.direction()
    offset = point.as_array() - bearing.origin.as_array()
    return float(abs(d[0] * offset[1] - d[1] * offset[0]))


def triangulation_residual(point: Point2, bearings: Sequence[Bearing2D]) -> float:
    """RMS perpendicular distance from ``point`` to all bearing lines."""
    if not bearings:
        raise ValueError("no bearings")
    distances = [point_line_distance(point, b) for b in bearings]
    return float(np.sqrt(np.mean(np.square(distances))))


def circle_point(center: Point2, radius: float, angle: float) -> Point2:
    """Point on the circle of ``radius`` around ``center`` at ``angle``."""
    return Point2(
        center.x + radius * math.cos(angle), center.y + radius * math.sin(angle)
    )


def rotation_matrix_2d(angle: float) -> np.ndarray:
    """2x2 counterclockwise rotation matrix."""
    c, s = math.cos(angle), math.sin(angle)
    return np.array([[c, -s], [s, c]])


def euclidean_error_2d(estimate: Point2, truth: Point2) -> Tuple[float, float, float]:
    """Per-axis and combined Euclidean error (the paper's metric)."""
    ex = abs(estimate.x - truth.x)
    ey = abs(estimate.y - truth.y)
    return ex, ey, math.hypot(ex, ey)


def euclidean_error_3d(
    estimate: Point3, truth: Point3
) -> Tuple[float, float, float, float]:
    """Per-axis and combined Euclidean error in 3D."""
    ex = abs(estimate.x - truth.x)
    ey = abs(estimate.y - truth.y)
    ez = abs(estimate.z - truth.z)
    return ex, ey, ez, math.sqrt(ex * ex + ey * ey + ez * ez)
