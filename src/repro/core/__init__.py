"""The paper's primary contribution: phase models, calibration, spectra, localization."""
