"""Phase calibration: device diversity and tag orientation (Section III-B).

Two systematic effects contaminate the raw phase reports:

* **Device diversity** ``theta_div`` — a constant per-link offset caused by
  reader/antenna/tag hardware.  It cancels whenever phases are referenced to
  the first snapshot of the same series (Eqn 7), which is how the spectrum
  stage consumes phases; :func:`estimate_diversity` additionally recovers the
  constant explicitly for diagnostics (Fig 4b).

* **Tag orientation** — the tag antenna is never perfectly symmetric, so the
  measured phase depends on the angle ``rho`` between the tag plane and the
  line to the reader (~0.7 rad peak-to-peak, Fig 5).  The paper's Observation
  3.1 states the relationship is stable and "can be fitted ... using Fourier
  series".  The workflow is:

  1. *Acquire* — spin the tag mounted at the **center** of the disk (its
     distance to the reader is then constant, so any phase variation is pure
     orientation effect) and fit a :class:`FourierSeries` to phase vs
     orientation.
  2. *Calibrate* — for edge-mounted measurements, subtract the fitted offset
     at each sample's orientation, referenced to the offset at
     ``rho = pi/2`` (the paper's reference orientation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
import numpy as np

from repro.core.phase import (
    circular_mean,
    smooth_phase_sequence,
    wrap_phase_signed,
)
from repro.errors import CalibrationError

REFERENCE_ORIENTATION_RAD = np.pi / 2.0


@dataclass(frozen=True)
class FourierSeries:
    """A real Fourier series ``a0 + sum_k a_k cos(k x) + b_k sin(k x)``."""

    a0: float
    cosine: np.ndarray = field(default_factory=lambda: np.zeros(0))
    sine: np.ndarray = field(default_factory=lambda: np.zeros(0))

    def __post_init__(self) -> None:
        cosine = np.asarray(self.cosine, dtype=float)
        sine = np.asarray(self.sine, dtype=float)
        if cosine.shape != sine.shape or cosine.ndim != 1:
            raise ValueError("cosine and sine coefficient arrays must match in shape")
        object.__setattr__(self, "cosine", cosine)
        object.__setattr__(self, "sine", sine)

    @property
    def order(self) -> int:
        return int(self.cosine.size)

    def __call__(self, x: np.ndarray | float) -> np.ndarray | float:
        x = np.asarray(x, dtype=float)
        harmonics = np.arange(1, self.order + 1)
        angles = np.multiply.outer(x, harmonics)
        value = self.a0 + np.cos(angles) @ self.cosine + np.sin(angles) @ self.sine
        return value if value.ndim else float(value)

    def peak_to_peak(self, resolution: int = 3600) -> float:
        """Peak-to-peak amplitude over one period, on a dense grid."""
        grid = np.linspace(0.0, 2.0 * np.pi, resolution, endpoint=False)
        values = self(grid)
        return float(np.max(values) - np.min(values))


def fit_fourier_series(
    x: np.ndarray, y: np.ndarray, order: int
) -> FourierSeries:
    """Least-squares fit of a Fourier series of ``order`` harmonics.

    Parameters
    ----------
    x : sample abscissae [rad]
    y : sample values
    order : number of harmonics (>= 1)
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be matching 1D arrays")
    if order < 1:
        raise ValueError("order must be >= 1")
    if x.size < 2 * order + 1:
        raise CalibrationError(
            f"need at least {2 * order + 1} samples to fit order-{order} series, "
            f"got {x.size}"
        )
    harmonics = np.arange(1, order + 1)
    angles = np.multiply.outer(x, harmonics)
    design = np.hstack([np.ones((x.size, 1)), np.cos(angles), np.sin(angles)])
    coefficients, *_ = np.linalg.lstsq(design, y, rcond=None)
    return FourierSeries(
        a0=float(coefficients[0]),
        cosine=coefficients[1 : order + 1],
        sine=coefficients[order + 1 :],
    )


def estimate_diversity(
    measured: np.ndarray, theoretical: np.ndarray
) -> float:
    """Estimate the constant diversity offset between two phase sequences.

    Uses the circular mean of the wrapped residuals, which is robust to the
    mod-2*pi structure of the raw reports (Fig 4b's ~constant misalignment).
    """
    measured = np.asarray(measured, dtype=float)
    theoretical = np.asarray(theoretical, dtype=float)
    if measured.shape != theoretical.shape or measured.size == 0:
        raise ValueError("sequences must be non-empty and matching in shape")
    return circular_mean(measured - theoretical)


@dataclass(frozen=True)
class OrientationProfile:
    """Fitted phase-vs-orientation correction for one tag (or tag model).

    ``offset(rho)`` is the phase the tag adds at orientation ``rho``; the
    correction applied to a measurement is referenced to the offset at the
    paper's reference orientation ``rho = pi/2``.
    """

    series: FourierSeries

    def offset(self, orientation: np.ndarray | float) -> np.ndarray | float:
        return self.series(orientation)

    def correction(self, orientation: np.ndarray | float) -> np.ndarray | float:
        """Amount to subtract from a phase measured at ``orientation``."""
        return self.offset(orientation) - self.offset(REFERENCE_ORIENTATION_RAD)

    def apply(
        self, phases: np.ndarray, orientations: np.ndarray
    ) -> np.ndarray:
        """Return ``phases`` with the orientation-induced offset removed."""
        phases = np.asarray(phases, dtype=float)
        orientations = np.asarray(orientations, dtype=float)
        if phases.shape != orientations.shape:
            raise ValueError("phases and orientations must match in shape")
        return phases - self.correction(orientations)


class OrientationCalibrator:
    """Implements the paper's two-step orientation calibration workflow."""

    def __init__(self, fourier_order: int = 3) -> None:
        if fourier_order < 1:
            raise ValueError("fourier_order must be >= 1")
        self.fourier_order = fourier_order

    def fit_from_center_spin(
        self,
        orientations: np.ndarray,
        phases: np.ndarray,
    ) -> OrientationProfile:
        """Step 1: fit the phase-orientation function from a center-mounted spin.

        ``phases`` are raw (wrapped) reports taken while the tag sits at the
        disk center, so the geometric phase is constant and the sequence's
        variation is the orientation effect plus noise.  The constant part
        (geometry + diversity) is removed by centering the smoothed sequence.
        """
        orientations = np.asarray(orientations, dtype=float)
        phases = np.asarray(phases, dtype=float)
        if orientations.shape != phases.shape or orientations.ndim != 1:
            raise ValueError("orientations and phases must be matching 1D arrays")
        order = np.argsort(orientations)
        smoothed = smooth_phase_sequence(phases[order])
        centered = smoothed - np.mean(smoothed)
        series = fit_fourier_series(
            orientations[order], centered, self.fourier_order
        )
        # Drop the fitted constant: only the shape matters, the reference
        # orientation anchors the correction.
        anchored = FourierSeries(a0=0.0, cosine=series.cosine, sine=series.sine)
        return OrientationProfile(series=anchored)

    def calibrate(
        self,
        profile: OrientationProfile,
        phases: np.ndarray,
        orientations: np.ndarray,
    ) -> np.ndarray:
        """Step 2: erase the orientation offset from edge-mounted phases."""
        return profile.apply(phases, orientations)


def residual_rms(
    measured: np.ndarray, theoretical: np.ndarray, remove_constant: bool = True
) -> float:
    """RMS of the wrapped residual between two phase sequences.

    Used by the Fig 4 benchmarks to quantify how much each calibration stage
    tightens the match against ground truth.  With ``remove_constant`` the
    circular-mean offset (device diversity) is removed first.
    """
    measured = np.asarray(measured, dtype=float)
    theoretical = np.asarray(theoretical, dtype=float)
    residual = measured - theoretical
    if remove_constant:
        residual = residual - circular_mean(residual)
    wrapped = wrap_phase_signed(residual)
    return float(np.sqrt(np.mean(np.square(wrapped))))


def make_orientation_profile(
    amplitudes: np.ndarray,
    phases: np.ndarray,
) -> OrientationProfile:
    """Construct a profile directly from per-harmonic amplitude/phase pairs.

    Convenience for tests and for synthesizing ground-truth profiles:
    harmonic ``k`` contributes ``amplitudes[k-1] * cos(k*rho - phases[k-1])``.
    """
    amplitudes = np.asarray(amplitudes, dtype=float)
    phases = np.asarray(phases, dtype=float)
    if amplitudes.shape != phases.shape or amplitudes.ndim != 1:
        raise ValueError("amplitudes and phases must be matching 1D arrays")
    cosine = amplitudes * np.cos(phases)
    sine = amplitudes * np.sin(phases)
    return OrientationProfile(FourierSeries(a0=0.0, cosine=cosine, sine=sine))


def profile_distance(
    a: OrientationProfile, b: OrientationProfile, resolution: int = 720
) -> float:
    """RMS difference between two orientation profiles' *corrections*.

    Compares corrections rather than raw offsets so the arbitrary constant
    anchor does not contribute.
    """
    grid = np.linspace(0.0, 2.0 * np.pi, resolution, endpoint=False)
    return float(
        np.sqrt(np.mean(np.square(a.correction(grid) - b.correction(grid))))
    )
