"""Angle spectra for arbitrarily oriented disks (the paper's future work).

A horizontally spinning tag cannot tell +z from -z: its phase depends on
``cos(gamma)``, which is even.  The paper suggests "the third spinning tag,
which rotates along the vertical direction to provide more aperture
diversity in z-axis".  This module implements the generalized phase model
for a disk spanned by any orthonormal basis ``(u, v)``:

    d(t) ~= D - r * [cos(alpha_t) * (u . k) + sin(alpha_t) * (v . k)]

with ``alpha_t = omega*t + phase0`` the disk angle and ``k`` the unit vector
from the disk center toward the reader.  For a horizontal disk this reduces
to Eqn 10; for a vertical disk the profile is *not* symmetric in gamma, so
its peak carries the sign of the reader's elevation and disambiguates the
mirror candidates.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.constants import RELATIVE_PHASE_STD_RAD
from repro.core.geometry import Point3
from repro.core.phase import wrap_phase_signed
from repro.core.spectrum import (
    JointSpectrum,
    SnapshotSeries,
    _centered,
    _gaussian_weights,
    _refine_peak_clamped,
    default_azimuth_grid,
    default_polar_grid,
)
from repro.errors import InsufficientDataError

_POLAR_CHUNK = 8


def direction_vector(
    azimuth: np.ndarray | float, polar: np.ndarray | float
) -> np.ndarray:
    """Unit vector(s) for (azimuth, polar); shape ``broadcast + (3,)``."""
    azimuth = np.asarray(azimuth, dtype=float)
    polar = np.asarray(polar, dtype=float)
    cos_polar = np.cos(polar)
    return np.stack(
        [
            cos_polar * np.cos(azimuth),
            cos_polar * np.sin(azimuth),
            np.sin(polar) * np.ones_like(azimuth),
        ],
        axis=-1,
    )


def oriented_relative_phase_model(
    series: SnapshotSeries,
    basis_u: Sequence[float],
    basis_v: Sequence[float],
    azimuths: np.ndarray,
    polars: np.ndarray,
) -> np.ndarray:
    """Relative phase ``c_i`` for every (polar, azimuth) candidate.

    Returns shape ``(len(polars), len(azimuths), n_snapshots)``.
    """
    u = np.asarray(basis_u, dtype=float)
    v = np.asarray(basis_v, dtype=float)
    alphas = series.angular_speed * series.times + series.phase0
    directions = direction_vector(
        azimuths[np.newaxis, :], polars[:, np.newaxis]
    )  # (P, A, 3)
    u_dot = directions @ u  # (P, A)
    v_dot = directions @ v
    projected = (
        np.cos(alphas)[np.newaxis, np.newaxis, :] * u_dot[..., np.newaxis]
        + np.sin(alphas)[np.newaxis, np.newaxis, :] * v_dot[..., np.newaxis]
    )
    scale = 4.0 * np.pi * series.radius / series.wavelength
    return scale * (projected[..., :1] - projected)


def compute_oriented_profile(
    series: SnapshotSeries,
    basis_u: Sequence[float],
    basis_v: Sequence[float],
    azimuth_grid: Optional[np.ndarray] = None,
    polar_grid: Optional[np.ndarray] = None,
    sigma: Optional[float] = RELATIVE_PHASE_STD_RAD,
) -> JointSpectrum:
    """Joint (azimuth x polar) profile for an arbitrarily oriented disk.

    ``sigma=None`` gives the traditional profile Q; a positive ``sigma``
    gives the enhanced profile R with Definition 5.1's Gaussian weights.
    """
    if len(series) < 3:
        raise InsufficientDataError("need at least 3 snapshots")
    azimuths = (
        default_azimuth_grid() if azimuth_grid is None
        else np.asarray(azimuth_grid, dtype=float)
    )
    polars = (
        default_polar_grid() if polar_grid is None
        else np.asarray(polar_grid, dtype=float)
    )
    measured = series.relative_phases()
    power = np.empty((polars.size, azimuths.size))
    for start in range(0, polars.size, _POLAR_CHUNK):
        chunk = polars[start : start + _POLAR_CHUNK]
        theoretical = oriented_relative_phase_model(
            series, basis_u, basis_v, azimuths, chunk
        )
        residuals = np.asarray(
            wrap_phase_signed(measured - theoretical), dtype=float
        )
        if sigma is None:
            block = np.abs(np.mean(np.exp(1j * residuals), axis=-1))
        else:
            residuals = _centered(residuals)
            weights = _gaussian_weights(residuals, sigma)
            block = np.abs(np.mean(weights * np.exp(1j * residuals), axis=-1))
        power[start : start + chunk.size] = block
    row, col = np.unravel_index(int(np.argmax(power)), power.shape)
    peak_azimuth, _ = _refine_peak_clamped(azimuths, power[row])
    peak_polar, peak_power = _refine_peak_clamped(polars, power[:, col])
    return JointSpectrum(
        azimuth_grid=azimuths,
        polar_grid=polars,
        power=power,
        peak_azimuth=float(np.mod(peak_azimuth, 2.0 * np.pi)),
        peak_polar=peak_polar,
        peak_power=peak_power,
    )


def power_at_direction(
    series: SnapshotSeries,
    basis_u: Sequence[float],
    basis_v: Sequence[float],
    azimuth: float,
    polar: float,
    sigma: Optional[float] = RELATIVE_PHASE_STD_RAD,
) -> float:
    """Profile power at one specific (azimuth, polar) direction."""
    spectrum = compute_oriented_profile(
        series,
        basis_u,
        basis_v,
        azimuth_grid=np.array([azimuth]),
        polar_grid=np.array([polar]),
        sigma=sigma,
    )
    return float(spectrum.power[0, 0])


def resolve_z_with_vertical_disk(
    candidates: Tuple[Point3, Point3],
    vertical_center: Point3,
    vertical_series: SnapshotSeries,
    basis_u: Sequence[float],
    basis_v: Sequence[float],
    sigma: Optional[float] = RELATIVE_PHASE_STD_RAD,
) -> Point3:
    """Pick the mirror candidate the vertical disk's profile supports.

    Each candidate implies a direction (azimuth, polar) from the vertical
    disk's center; because the vertical disk's aperture distinguishes
    elevations, the true candidate scores a much higher profile power.
    """
    scores = []
    for candidate in candidates:
        azimuth = vertical_center.azimuth_to(candidate)
        polar = vertical_center.polar_to(candidate)
        scores.append(
            power_at_direction(
                vertical_series, basis_u, basis_v, azimuth, polar, sigma
            )
        )
    return candidates[int(np.argmax(scores))]
