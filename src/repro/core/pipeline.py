"""End-to-end Tagspin pipeline (Section II's four steps).

Consumes a stream of LLRP tag reports and the spinning-tag registry and
produces the reader-antenna position:

1. group reports into per-(tag, antenna, channel) snapshot series;
2. calibrate phase shifts — device diversity cancels via the first-snapshot
   reference; the orientation offset is removed with the fitted profile;
3. generate an angle spectrum per spinning tag (enhanced profile by default);
4. intersect the spectra to pinpoint the reader (2D or 3D).

Orientation calibration needs each sample's orientation *relative to the
reader*, which depends on the answer.  The pipeline therefore runs two
passes: a first localization without orientation correction yields a coarse
reader position; orientations are computed against it, the correction is
applied and the spectra are recomputed.  One refinement pass suffices
because the orientation only needs the reader *bearing*, which the coarse
pass already gets within a degree or two.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.constants import (
    DEFAULT_AZIMUTH_RESOLUTION_RAD,
    DEFAULT_POLAR_RESOLUTION_RAD,
    RELATIVE_PHASE_STD_RAD,
    channel_frequencies,
    wavelength_for_frequency,
)
from repro.core.geometry import Point3
from repro.core.locator import Fix2D, Fix3D, TagspinLocator2D, TagspinLocator3D
from repro.core.spectrum import (
    AngleSpectrum,
    JointSpectrum,
    SnapshotSeries,
    combine_joint_spectra,
    default_azimuth_grid,
    default_polar_grid,
)
from repro.errors import InsufficientDataError
from repro.hardware.llrp import ReportBatch
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.perf.engine import EngineSpec, create_engine
from repro.robustness.diagnostics import DiskExclusion, PipelineDiagnostics
from repro.robustness.gating import (
    DiskQuality,
    GatingPolicy,
    score_disk,
    select_disks,
    starved_quality,
)
from repro.server.registry import SpinningTagRecord, TagRegistry


@dataclass(frozen=True)
class PipelineConfig:
    """Tuning knobs of the localization pipeline."""

    #: Use the paper's enhanced profile R (True) or the traditional Q (False).
    use_enhanced_profile: bool = True
    #: Apply the phase-orientation calibration (Section III-B).
    orientation_calibration: bool = True
    #: Gaussian sigma of the relative-phase weights [rad].
    sigma: float = RELATIVE_PHASE_STD_RAD
    azimuth_resolution: float = DEFAULT_AZIMUTH_RESOLUTION_RAD
    #: Coarse grid steps of the 3D (azimuth x polar) search; a local
    #: fine-refinement pass around the coarse peak recovers sub-grid
    #: accuracy, so these can stay coarse for speed.
    joint_azimuth_resolution: float = np.deg2rad(2.0)
    polar_resolution: float = DEFAULT_POLAR_RESOLUTION_RAD
    #: Minimum snapshots per (tag, antenna, channel) series.
    min_snapshots: int = 12
    #: Use host timestamps instead of reader timestamps (for the latency
    #: ablation only; degrades accuracy, as the paper warns).
    use_host_time: bool = False
    #: Height prior for the 3D ambiguity resolution [m].
    z_min: float = -np.inf
    z_max: float = np.inf
    prefer_sign: int = 1
    #: Score each disk's spectrum and exclude untrustworthy disks before
    #: triangulating (see :mod:`repro.robustness.gating`).  Off by default
    #: so the ungated paper pipeline stays bit-identical; the resilient
    #: server turns it on.
    disk_gating: bool = False
    #: Thresholds of the quality gate (used only when ``disk_gating``).
    gating: GatingPolicy = field(default_factory=GatingPolicy)


@dataclass(frozen=True)
class DiskSpectra:
    """Spectra obtained from one spinning tag (possibly several channels)."""

    record: SpinningTagRecord
    azimuth: AngleSpectrum
    joint: Optional[JointSpectrum] = None


class TagspinSystem:
    """The localization server's processing engine.

    ``engine`` selects the spectrum-evaluation strategy (see
    :mod:`repro.perf`): ``None``/``"reference"`` keeps the seed per-call
    path, ``"batched"`` adds steering/spectrum caching with vectorized
    whole-grid evaluation, ``"parallel"`` fans series across a worker
    pool; an engine instance is used as-is.  All engines are equivalent
    within 1e-9 (the batched engine bit-for-bit), so the choice only
    affects speed.
    """

    def __init__(
        self,
        registry: TagRegistry,
        config: Optional[PipelineConfig] = None,
        engine: EngineSpec = None,
    ) -> None:
        self.registry = registry
        self.config = config if config is not None else PipelineConfig()
        self.engine = create_engine(engine)
        self._frequencies = channel_frequencies()

    # ------------------------------------------------------------------
    # Series extraction
    # ------------------------------------------------------------------
    def extract_series(
        self, batch: ReportBatch, epc: str, antenna_port: int
    ) -> List[SnapshotSeries]:
        """Per-channel snapshot series of one spinning tag on one antenna.

        Splitting per channel is required for correctness: the
        first-snapshot reference only cancels the unknown distance and
        diversity terms when all snapshots share a wavelength.
        """
        record = self.registry.get(epc)
        reports = [
            r
            for r in batch.reports
            if r.epc == epc and r.antenna_port == antenna_port
        ]
        by_channel: Dict[int, List] = {}
        for report in reports:
            by_channel.setdefault(report.channel_index, []).append(report)

        series: List[SnapshotSeries] = []
        for channel_index, channel_reports in sorted(by_channel.items()):
            if len(channel_reports) < self.config.min_snapshots:
                continue
            # Sort by whichever clock the series will use — host-time mode
            # must tolerate latency jitter reordering arrivals.
            if self.config.use_host_time:
                channel_reports.sort(key=lambda r: r.host_timestamp_us)
            else:
                channel_reports.sort(key=lambda r: r.reader_timestamp_us)
            times = np.array(
                [
                    r.host_time_s if self.config.use_host_time else r.reader_time_s
                    for r in channel_reports
                ]
            )
            phases = np.array([r.phase_rad for r in channel_reports])
            series.append(
                SnapshotSeries(
                    times=times,
                    phases=phases,
                    wavelength=wavelength_for_frequency(
                        self._frequencies[channel_index]
                    ),
                    radius=record.disk.radius,
                    angular_speed=record.disk.angular_speed,
                    phase0=record.disk.phase0,
                )
            )
        if not series:
            raise InsufficientDataError(
                f"no channel of tag {epc} on antenna {antenna_port} reached "
                f"{self.config.min_snapshots} snapshots"
            )
        return series

    # ------------------------------------------------------------------
    # Calibration
    # ------------------------------------------------------------------
    def _orientation_corrected(
        self,
        record: SpinningTagRecord,
        series: SnapshotSeries,
        reader_position: Point3,
    ) -> SnapshotSeries:
        """Return ``series`` with the orientation offset removed."""
        profile = record.orientation_profile
        if profile is None:
            return series
        orientations = record.disk.tag_orientations(series.times, reader_position)
        corrected = profile.apply(series.phases, orientations)
        return replace(series, phases=np.mod(corrected, 2.0 * np.pi))

    # ------------------------------------------------------------------
    # Spectrum generation
    # ------------------------------------------------------------------
    def azimuth_spectrum(
        self,
        series_list: Sequence[SnapshotSeries],
        enhanced: Optional[bool] = None,
    ) -> AngleSpectrum:
        """Fused azimuth spectrum across the per-channel series.

        ``enhanced`` overrides the configured profile choice; the gated
        pipeline uses it to fall back from R to Q without rebuilding the
        system.
        """
        use_enhanced = (
            self.config.use_enhanced_profile if enhanced is None else enhanced
        )
        grid = default_azimuth_grid(self.config.azimuth_resolution)
        sigma = self.config.sigma if use_enhanced else None
        # The engine owns channel fusion: dense engines combine per-series
        # spectra exactly as before (combine_spectra); the adaptive engine
        # refines the fused objective directly on its coarse grid.
        return self.engine.fused_azimuth_spectrum(series_list, grid, sigma=sigma)

    def _azimuth_spectra_batch(
        self,
        groups: Sequence[Sequence[SnapshotSeries]],
        enhanced: Optional[bool] = None,
    ) -> List[AngleSpectrum]:
        """One fused azimuth spectrum per disk, scheduled as one batch.

        Engines with cross-fix batching (the harmonic engine) stack every
        disk's grid into a single evaluation so shared FFT work and cache
        lookups amortize across the whole triangulating set; engines
        without it loop per disk, which is exactly what the scoring loops
        used to do inline.
        """
        use_enhanced = (
            self.config.use_enhanced_profile if enhanced is None else enhanced
        )
        grid = default_azimuth_grid(self.config.azimuth_resolution)
        sigma = self.config.sigma if use_enhanced else None
        return self.engine.fused_azimuth_spectra(groups, grid, sigma=sigma)

    def joint_spectrum(
        self,
        series_list: Sequence[SnapshotSeries],
        record: Optional[SpinningTagRecord] = None,
        enhanced: Optional[bool] = None,
    ) -> JointSpectrum:
        """Fused (azimuth x polar) spectrum across the per-channel series.

        The engine owns channel fusion: dense engines combine per-series
        spectra by mean power with a power-weighted peak mean
        (:func:`~repro.core.spectrum.combine_joint_spectra`, exactly the
        fusion this method used to do inline); the adaptive engine
        refines the fused joint objective with a single coarse-to-fine
        ladder.  Non-horizontal disks (the vertical-disk extension)
        dispatch to the generalized oriented-profile model.
        """
        use_enhanced = (
            self.config.use_enhanced_profile if enhanced is None else enhanced
        )
        azimuths = default_azimuth_grid(self.config.joint_azimuth_resolution)
        polars = default_polar_grid(self.config.polar_resolution)
        sigma = self.config.sigma if use_enhanced else None
        oriented_basis = None
        if record is not None and not record.disk.is_horizontal:
            oriented_basis = (record.disk.basis_u, record.disk.basis_v)
        if oriented_basis is not None:
            from repro.core.oriented import compute_oriented_profile

            return combine_joint_spectra(
                [
                    compute_oriented_profile(
                        series,
                        oriented_basis[0],
                        oriented_basis[1],
                        azimuths,
                        polars,
                        sigma=sigma,
                    )
                    for series in series_list
                ]
            )
        return self.engine.fused_joint_spectrum(
            series_list, azimuths, polars, sigma=sigma
        )

    # ------------------------------------------------------------------
    # Localization
    # ------------------------------------------------------------------
    def _spinning_epcs_in(self, batch: ReportBatch, antenna_port: int) -> List[str]:
        epcs = []
        for epc in batch.epcs():
            if epc in self.registry and any(
                r.epc == epc and r.antenna_port == antenna_port
                for r in batch.reports
            ):
                epcs.append(epc)
        if len(epcs) < 2:
            raise InsufficientDataError(
                f"need reports from at least two registered spinning tags on "
                f"antenna {antenna_port}, got {len(epcs)}"
            )
        return epcs

    def locate_2d(self, batch: ReportBatch, antenna_port: int = 1) -> Fix2D:
        """Locate the reader antenna in the disk plane."""
        if self.config.disk_gating:
            fix, _diagnostics = self.locate_2d_diagnosed(batch, antenna_port)
            return fix
        epcs = self._spinning_epcs_in(batch, antenna_port)
        all_series = {
            epc: self.extract_series(batch, epc, antenna_port) for epc in epcs
        }
        centers = [
            self.registry.get(epc).disk.center.horizontal() for epc in epcs
        ]
        locator = TagspinLocator2D()

        spectra = self._azimuth_spectra_batch(
            [all_series[epc] for epc in epcs]
        )
        fix = locator.locate(centers, spectra)

        if self.config.orientation_calibration and any(
            self.registry.get(epc).orientation_profile is not None for epc in epcs
        ):
            coarse = Point3(fix.position.x, fix.position.y, 0.0)
            corrected_groups = []
            for epc in epcs:
                record = self.registry.get(epc)
                corrected_groups.append(
                    [
                        self._orientation_corrected(record, s, coarse)
                        for s in all_series[epc]
                    ]
                )
            refined = self._azimuth_spectra_batch(corrected_groups)
            fix = locator.locate(centers, refined)
        return fix

    # ------------------------------------------------------------------
    # Gated localization (repro.robustness)
    # ------------------------------------------------------------------
    def _score_disks(
        self,
        epcs: Sequence[str],
        all_series: Dict[str, List[SnapshotSeries]],
        spectra: Dict[str, AngleSpectrum | JointSpectrum],
    ) -> List[DiskQuality]:
        return [
            score_disk(
                self.registry.get(epc),
                all_series[epc],
                spectra[epc],
                self.config.gating,
            )
            for epc in epcs
        ]

    def _extract_series_gated(
        self,
        batch: ReportBatch,
        epcs: Sequence[str],
        antenna_port: int,
    ) -> Tuple[Dict[str, List[SnapshotSeries]], List[DiskQuality]]:
        """Extract series per disk; a disk too starved to yield any series
        becomes an exclusion record instead of aborting the whole fix."""
        all_series: Dict[str, List[SnapshotSeries]] = {}
        starved: List[DiskQuality] = []
        for epc in epcs:
            try:
                all_series[epc] = self.extract_series(batch, epc, antenna_port)
            except InsufficientDataError:
                starved.append(starved_quality(epc))
        return all_series, starved

    def locate_2d_diagnosed(
        self, batch: ReportBatch, antenna_port: int = 1
    ) -> Tuple[Fix2D, PipelineDiagnostics]:
        """Gated 2D localization with full provenance.

        Each disk's spectrum is scored; with three or more disks the
        failing ones are excluded and the survivors re-triangulated.
        When the triangulation residual of the enhanced profile R
        explodes, the traditional profile Q is tried and the better
        (lower-residual) fix wins — under heavy multipath or a stale
        orientation profile the likelihood weights of R amplify the very
        phases that mislead it, and the unweighted Q degrades more
        gracefully (the paper's own Q-vs-R ablation shows this regime).
        """
        tracer = get_tracer()
        epcs = self._spinning_epcs_in(batch, antenna_port)
        with tracer.span("extract", port=antenna_port) as extract_span:
            all_series, starved = self._extract_series_gated(
                batch, epcs, antenna_port
            )
            extract_span.annotate(
                disks=len(all_series), starved=len(starved)
            )
        usable = [epc for epc in epcs if epc in all_series]
        if len(usable) < 2:
            raise InsufficientDataError(
                "fewer than two disks produced usable phase series"
            )
        with tracer.span("spectrum", kind="azimuth", disks=len(usable)):
            spectra = dict(
                zip(
                    usable,
                    self._azimuth_spectra_batch(
                        [all_series[epc] for epc in usable]
                    ),
                )
            )
        scored = self._score_disks(usable, all_series, spectra)
        kept, gate_excluded = select_disks(scored, self.config.gating)
        qualities = scored + starved
        excluded = gate_excluded + starved
        if excluded:
            get_registry().counter(
                "tagspin_disk_exclusions_total",
                "Disks dropped by the quality gate (or starved of "
                "series) before triangulation.",
                mode="2d",
            ).inc(len(excluded))
        if len(kept) < 2:
            raise InsufficientDataError(
                "disk quality gating left fewer than two usable disks"
            )

        fix = self._locate_2d_from(kept, all_series, enhanced=None)
        profile = "R" if self.config.use_enhanced_profile else "Q"
        fallback_applied = False
        if (
            self.config.use_enhanced_profile
            and fix.residual > self.config.gating.fallback_residual_m
        ):
            with tracer.span(
                "fallback", mode="2d", residual_m=fix.residual
            ) as fb_span:
                q_fix = self._locate_2d_from(
                    kept, all_series, enhanced=False
                )
                if q_fix.residual < fix.residual:
                    fix = q_fix
                    profile = "Q"
                    fallback_applied = True
                fb_span.annotate(applied=fallback_applied)
            if fallback_applied:
                get_registry().counter(
                    "tagspin_profile_fallbacks_total",
                    "Fixes where the R-to-Q profile fallback won "
                    "(lower residual).",
                    mode="2d",
                ).inc()

        diagnostics = PipelineDiagnostics(
            disks_used=tuple(kept),
            disks_excluded=tuple(
                DiskExclusion(q.epc, q.gate_reasons) for q in excluded
            ),
            qualities=tuple(qualities),
            profile_used=profile,
            fallback_applied=fallback_applied,
            residual_m=fix.residual,
        )
        return fix, diagnostics

    def _locate_2d_from(
        self,
        epcs: Sequence[str],
        all_series: Dict[str, List[SnapshotSeries]],
        enhanced: Optional[bool],
    ) -> Fix2D:
        """Triangulate a fixed disk subset (the clean locate_2d core)."""
        tracer = get_tracer()
        centers = [
            self.registry.get(epc).disk.center.horizontal() for epc in epcs
        ]
        locator = TagspinLocator2D()
        with tracer.span("spectrum", kind="azimuth", disks=len(epcs)):
            spectra = self._azimuth_spectra_batch(
                [all_series[epc] for epc in epcs], enhanced
            )
        fix = locator.locate(centers, spectra)

        if self.config.orientation_calibration and any(
            self.registry.get(epc).orientation_profile is not None
            for epc in epcs
        ):
            with tracer.span("refine", kind="orientation"):
                coarse = Point3(fix.position.x, fix.position.y, 0.0)
                corrected_groups = []
                for epc in epcs:
                    record = self.registry.get(epc)
                    corrected_groups.append(
                        [
                            self._orientation_corrected(record, s, coarse)
                            for s in all_series[epc]
                        ]
                    )
                refined = self._azimuth_spectra_batch(
                    corrected_groups, enhanced
                )
                fix = locator.locate(centers, refined)
        return fix

    def locate_3d_diagnosed(
        self, batch: ReportBatch, antenna_port: int = 1
    ) -> Tuple[Fix3D, PipelineDiagnostics]:
        """Gated 3D localization with full provenance.

        Gating operates on the horizontal disks (the triangulating set);
        a vertical disk, when present, only re-ranks the mirror
        candidates and is never gated.
        """
        tracer = get_tracer()
        epcs = self._spinning_epcs_in(batch, antenna_port)
        horizontal = [
            epc for epc in epcs if self.registry.get(epc).disk.is_horizontal
        ]
        vertical = [epc for epc in epcs if epc not in horizontal]
        if len(horizontal) < 2:
            raise InsufficientDataError(
                "3D localization needs at least two horizontal disks"
            )
        with tracer.span("extract", port=antenna_port) as extract_span:
            all_series, starved = self._extract_series_gated(
                batch, epcs, antenna_port
            )
            extract_span.annotate(
                disks=len(all_series), starved=len(starved)
            )
        usable = [epc for epc in horizontal if epc in all_series]
        vertical = [epc for epc in vertical if epc in all_series]
        if len(usable) < 2:
            raise InsufficientDataError(
                "fewer than two horizontal disks produced usable phase series"
            )
        with tracer.span("spectrum", kind="joint", disks=len(usable)):
            spectra = {
                epc: self.joint_spectrum(
                    all_series[epc], self.registry.get(epc)
                )
                for epc in usable
            }
        scored = self._score_disks(usable, all_series, spectra)
        kept, gate_excluded = select_disks(scored, self.config.gating)
        qualities = scored + starved
        excluded = gate_excluded + starved
        if excluded:
            get_registry().counter(
                "tagspin_disk_exclusions_total",
                "Disks dropped by the quality gate (or starved of "
                "series) before triangulation.",
                mode="3d",
            ).inc(len(excluded))
        if len(kept) < 2:
            raise InsufficientDataError(
                "disk quality gating left fewer than two usable disks"
            )

        fix = self._locate_3d_from(kept, all_series, enhanced=None)
        profile = "R" if self.config.use_enhanced_profile else "Q"
        fallback_applied = False
        if (
            self.config.use_enhanced_profile
            and fix.residual > self.config.gating.fallback_residual_m
        ):
            with tracer.span(
                "fallback", mode="3d", residual_m=fix.residual
            ) as fb_span:
                q_fix = self._locate_3d_from(
                    kept, all_series, enhanced=False
                )
                if q_fix.residual < fix.residual:
                    fix = q_fix
                    profile = "Q"
                    fallback_applied = True
                fb_span.annotate(applied=fallback_applied)
            if fallback_applied:
                get_registry().counter(
                    "tagspin_profile_fallbacks_total",
                    "Fixes where the R-to-Q profile fallback won "
                    "(lower residual).",
                    mode="3d",
                ).inc()

        if vertical:
            fix = self._resolve_with_vertical(fix, vertical[0], all_series)

        diagnostics = PipelineDiagnostics(
            disks_used=tuple(kept),
            disks_excluded=tuple(
                DiskExclusion(q.epc, q.gate_reasons) for q in excluded
            ),
            qualities=tuple(qualities),
            profile_used=profile,
            fallback_applied=fallback_applied,
            residual_m=fix.residual,
        )
        return fix, diagnostics

    def _locate_3d_from(
        self,
        epcs: Sequence[str],
        all_series: Dict[str, List[SnapshotSeries]],
        enhanced: Optional[bool],
    ) -> Fix3D:
        """Fuse a fixed horizontal-disk subset (the clean locate_3d core)."""
        tracer = get_tracer()
        centers = [self.registry.get(epc).disk.center for epc in epcs]
        locator = TagspinLocator3D(
            z_min=self.config.z_min,
            z_max=self.config.z_max,
            prefer_sign=self.config.prefer_sign,
        )
        with tracer.span("spectrum", kind="joint", disks=len(epcs)):
            spectra = [
                self.joint_spectrum(
                    all_series[epc], self.registry.get(epc), enhanced
                )
                for epc in epcs
            ]
        fix = locator.locate(centers, spectra)

        if self.config.orientation_calibration and any(
            self.registry.get(epc).orientation_profile is not None
            for epc in epcs
        ):
            with tracer.span("refine", kind="orientation"):
                refined = []
                for epc in epcs:
                    record = self.registry.get(epc)
                    corrected = [
                        self._orientation_corrected(
                            record, s, fix.position
                        )
                        for s in all_series[epc]
                    ]
                    refined.append(
                        self.joint_spectrum(corrected, record, enhanced)
                    )
                fix = locator.locate(centers, refined)
        return fix

    def locate_3d(self, batch: ReportBatch, antenna_port: int = 1) -> Fix3D:
        """Locate the reader antenna in 3D space.

        Horizontal disks provide the (x, y, |z|) solution with its mirror
        ambiguity; if the deployment includes a vertically spinning tag (the
        paper's future-work extension), its asymmetric aperture resolves the
        mirror candidates without a height prior.
        """
        if self.config.disk_gating:
            fix, _diagnostics = self.locate_3d_diagnosed(batch, antenna_port)
            return fix
        epcs = self._spinning_epcs_in(batch, antenna_port)
        horizontal = [
            epc for epc in epcs if self.registry.get(epc).disk.is_horizontal
        ]
        vertical = [epc for epc in epcs if epc not in horizontal]
        if len(horizontal) < 2:
            raise InsufficientDataError(
                "3D localization needs at least two horizontal disks"
            )
        all_series = {
            epc: self.extract_series(batch, epc, antenna_port) for epc in epcs
        }
        centers = [self.registry.get(epc).disk.center for epc in horizontal]
        locator = TagspinLocator3D(
            z_min=self.config.z_min,
            z_max=self.config.z_max,
            prefer_sign=self.config.prefer_sign,
        )

        spectra = [self.joint_spectrum(all_series[epc]) for epc in horizontal]
        fix = locator.locate(centers, spectra)

        if self.config.orientation_calibration and any(
            self.registry.get(epc).orientation_profile is not None
            for epc in horizontal
        ):
            refined = []
            for epc in horizontal:
                record = self.registry.get(epc)
                corrected = [
                    self._orientation_corrected(record, s, fix.position)
                    for s in all_series[epc]
                ]
                refined.append(self.joint_spectrum(corrected))
            fix = locator.locate(centers, refined)

        if vertical:
            fix = self._resolve_with_vertical(fix, vertical[0], all_series)
        return fix

    def _resolve_with_vertical(
        self,
        fix: Fix3D,
        epc: str,
        all_series: Dict[str, List[SnapshotSeries]],
    ) -> Fix3D:
        """Re-rank the mirror candidates using a vertical disk's profile."""
        from repro.core.oriented import resolve_z_with_vertical_disk

        record = self.registry.get(epc)
        series = all_series[epc][0]
        chosen = resolve_z_with_vertical_disk(
            (fix.candidates[0], fix.candidates[1]),
            record.disk.center,
            series,
            record.disk.basis_u,
            record.disk.basis_v,
            sigma=self.config.sigma if self.config.use_enhanced_profile else None,
        )
        mirror = (
            fix.candidates[1] if chosen is fix.candidates[0] else fix.candidates[0]
        )
        return Fix3D(
            position=chosen,
            mirror=mirror,
            residual=fix.residual,
            confidence=fix.confidence,
            candidates=fix.candidates,
        )

    def disk_spectra_2d(
        self, batch: ReportBatch, antenna_port: int = 1
    ) -> List[DiskSpectra]:
        """Diagnostic view: the azimuth spectrum of every spinning tag."""
        epcs = self._spinning_epcs_in(batch, antenna_port)
        result = []
        for epc in epcs:
            record = self.registry.get(epc)
            spectrum = self.azimuth_spectrum(
                self.extract_series(batch, epc, antenna_port)
            )
            result.append(DiskSpectra(record=record, azimuth=spectrum))
        return result


#: Public alias: the class is the end-to-end localization pipeline; the
#: historical name ``TagspinSystem`` is kept for existing callers.
LocalizationPipeline = TagspinSystem
