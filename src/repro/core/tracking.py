"""Tracking a moving reader across sequential Tagspin fixes.

The paper localizes a stationary reader; a natural operational extension is
a reader carried through the facility (a handheld, a forklift) that stops
briefly near the spinning-tag infrastructure.  Each stop yields a Tagspin
fix with a quality score; a constant-velocity Kalman filter fuses the
sequence into a smooth trajectory, rejecting the occasional bad fix by its
innovation.

This is deliberately generic: any source of timestamped 2D fixes with
per-fix noise estimates can be tracked.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from repro.core.geometry import Point2
from repro.core.locator import Fix2D
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TrackPoint:
    """One smoothed trajectory point."""

    time_s: float
    position: Point2
    velocity: tuple
    #: Standard deviation of the position estimate [m] (sqrt of trace/2).
    position_std: float
    #: Whether the raw fix at this step was rejected as an outlier.
    rejected: bool = False


class ConstantVelocityKalman:
    """Constant-velocity Kalman filter over 2D position fixes.

    State ``[x, y, vx, vy]``; process noise is white acceleration with
    spectral density ``accel_std^2``; measurements are positions with
    per-measurement isotropic noise.  Fixes whose normalized innovation
    squared exceeds ``gate`` (chi-square, 2 dof) are rejected — the filter
    coasts through them.
    """

    def __init__(
        self,
        accel_std: float = 0.3,
        gate: float = 13.8,  # chi2(2) at ~0.999
    ) -> None:
        if accel_std <= 0:
            raise ConfigurationError("accel_std must be positive")
        if gate <= 0:
            raise ConfigurationError("gate must be positive")
        self.accel_std = accel_std
        self.gate = gate
        self._state: Optional[np.ndarray] = None
        self._covariance: Optional[np.ndarray] = None
        self._last_time: Optional[float] = None

    @property
    def initialized(self) -> bool:
        return self._state is not None

    def _predict(self, dt: float) -> None:
        assert self._state is not None and self._covariance is not None
        transition = np.eye(4)
        transition[0, 2] = dt
        transition[1, 3] = dt
        q = self.accel_std**2
        dt2, dt3, dt4 = dt * dt, dt**3, dt**4
        process = q * np.array(
            [
                [dt4 / 4, 0, dt3 / 2, 0],
                [0, dt4 / 4, 0, dt3 / 2],
                [dt3 / 2, 0, dt2, 0],
                [0, dt3 / 2, 0, dt2],
            ]
        )
        self._state = transition @ self._state
        self._covariance = (
            transition @ self._covariance @ transition.T + process
        )

    def update(
        self, time_s: float, measurement: Point2, measurement_std: float
    ) -> TrackPoint:
        """Ingest one fix; returns the smoothed track point."""
        if measurement_std <= 0:
            raise ValueError("measurement_std must be positive")
        z = measurement.as_array()
        r = measurement_std**2 * np.eye(2)
        h = np.zeros((2, 4))
        h[0, 0] = h[1, 1] = 1.0

        if self._state is None:
            self._state = np.array([z[0], z[1], 0.0, 0.0])
            self._covariance = np.diag(
                [measurement_std**2, measurement_std**2, 1.0, 1.0]
            )
            self._last_time = time_s
            return self._track_point(time_s, rejected=False)

        assert self._last_time is not None
        dt = time_s - self._last_time
        if dt < 0:
            raise ValueError("fixes must arrive in time order")
        if dt > 0:
            self._predict(dt)
        self._last_time = time_s

        assert self._covariance is not None
        innovation = z - h @ self._state
        innovation_cov = h @ self._covariance @ h.T + r
        nis = float(
            innovation @ np.linalg.solve(innovation_cov, innovation)
        )
        if nis > self.gate:
            return self._track_point(time_s, rejected=True)

        gain = self._covariance @ h.T @ np.linalg.inv(innovation_cov)
        self._state = self._state + gain @ innovation
        self._covariance = (np.eye(4) - gain @ h) @ self._covariance
        return self._track_point(time_s, rejected=False)

    def _track_point(self, time_s: float, rejected: bool) -> TrackPoint:
        assert self._state is not None and self._covariance is not None
        return TrackPoint(
            time_s=time_s,
            position=Point2(float(self._state[0]), float(self._state[1])),
            velocity=(float(self._state[2]), float(self._state[3])),
            position_std=float(
                math.sqrt(np.trace(self._covariance[:2, :2]) / 2.0)
            ),
            rejected=rejected,
        )


class ReaderTracker:
    """Tracks a moving reader from a sequence of Tagspin fixes.

    The measurement noise per fix is derived from its triangulation
    residual (floored at ``min_fix_std``) — a residual-consistent fix gets
    trusted more.
    """

    def __init__(
        self,
        accel_std: float = 0.3,
        min_fix_std: float = 0.02,
        residual_scale: float = 2.0,
    ) -> None:
        if min_fix_std <= 0 or residual_scale <= 0:
            raise ConfigurationError("noise parameters must be positive")
        self.filter = ConstantVelocityKalman(accel_std=accel_std)
        self.min_fix_std = min_fix_std
        self.residual_scale = residual_scale
        self.track: List[TrackPoint] = []

    def ingest(self, time_s: float, fix: Fix2D) -> TrackPoint:
        """Fuse one Tagspin fix into the trajectory."""
        std = max(self.min_fix_std, self.residual_scale * fix.residual)
        point = self.filter.update(time_s, fix.position, std)
        self.track.append(point)
        return point

    def positions(self) -> List[Point2]:
        return [point.position for point in self.track]

    def rejection_count(self) -> int:
        return sum(1 for point in self.track if point.rejected)
