"""Tagspin: accurate spatial calibration of RFID antennas via spinning tags.

A full reproduction of the ICDCS 2016 Tagspin system: a COTS-hardware
simulator (Gen2 inventory, LLRP reports, backscatter channel), the SAR-based
angle-spectrum algorithms with the paper's enhanced power profile and
phase-orientation calibration, 2D/3D reader localization, and the four
baseline systems it is evaluated against.

Quickstart::

    from repro import paper_default_scenario
    from repro.core.geometry import Point2

    scenario = paper_default_scenario(seed=1)
    scenario.run_orientation_prelude()
    fix, error = scenario.locate_2d(Point2(0.4, 1.9))
    print(fix.position, error.combined)
"""

from repro.constants import (
    DEFAULT_ANGULAR_SPEED_RAD_S,
    DEFAULT_DISK_RADIUS_M,
    DEFAULT_WAVELENGTH_M,
    PHASE_NOISE_STD_RAD,
)
from repro.core.calibration import (
    FourierSeries,
    OrientationCalibrator,
    OrientationProfile,
    fit_fourier_series,
)
from repro.core.geometry import Bearing2D, Bearing3D, Point2, Point3
from repro.core.locator import Fix2D, Fix3D, TagspinLocator2D, TagspinLocator3D
from repro.core.pipeline import PipelineConfig, TagspinSystem
from repro.apps.closed_loop import ClosedLoopExperiment
from repro.apps.tag_localization import HyperbolicTagLocator
from repro.core.tracking import ConstantVelocityKalman, ReaderTracker, TrackPoint
from repro.core.spectrum import (
    AngleSpectrum,
    JointSpectrum,
    SnapshotSeries,
    compute_q_profile,
    compute_q_profile_3d,
    compute_r_profile,
    compute_r_profile_3d,
)
from repro.errors import (
    AmbiguityError,
    CalibrationError,
    ConfigurationError,
    DegradedServiceError,
    InsufficientDataError,
    PermanentError,
    TagspinError,
    TransientError,
    UnknownTagError,
    WireProtocolError,
)
from repro.hardware.llrp import ReportBatch, ROSpec, TagReportData
from repro.hardware.llrp_columnar import ColumnarReportBatch
from repro.hardware.llrp_stream import (
    FrameAccumulator,
    StreamingLLRPParser,
    StreamStats,
)
from repro.hardware.reader import SimulatedReader, SpinningTagUnit, StaticTagUnit
from repro.hardware.rotator import Mount, SpinningDisk, horizontal_disk, vertical_disk
from repro.hardware.tags import TABLE_I, TagInstance, TagModel, make_tag
from repro.robustness import (
    DegradationState,
    DiskExclusion,
    DiskQuality,
    FixDiagnostics,
    GatingPolicy,
    PipelineDiagnostics,
    QuarantineStats,
    ReportValidator,
    ValidationConfig,
)
from repro.server.health import DeploymentMonitor, HealthReport
from repro.server.registry import SpinningTagRecord, TagRegistry
from repro.server.resilience import ResilientLocalizationServer, RetryPolicy
from repro.server.service import LocalizationServer
from repro.sim.metrics import Cdf, ErrorCollection, ErrorSample, ErrorSummary
from repro.sim.scenario import (
    ScenarioConfig,
    TagspinScenario,
    paper_default_scenario,
)
from repro.sim.planning import (
    AccuracyMap,
    PlannedDisk,
    accuracy_map,
    predicted_rmse,
    recommend_center_distance,
)
from repro.sim.scene import DeploymentSpec, Scene, build_scene
from repro.sim.wire_recording import WireRecording

__version__ = "1.0.0"

__all__ = [
    "AccuracyMap",
    "AmbiguityError",
    "AngleSpectrum",
    "Bearing2D",
    "Bearing3D",
    "CalibrationError",
    "Cdf",
    "ClosedLoopExperiment",
    "ConfigurationError",
    "ConstantVelocityKalman",
    "DEFAULT_ANGULAR_SPEED_RAD_S",
    "DEFAULT_DISK_RADIUS_M",
    "DEFAULT_WAVELENGTH_M",
    "DegradationState",
    "DegradedServiceError",
    "DeploymentMonitor",
    "DeploymentSpec",
    "DiskExclusion",
    "DiskQuality",
    "ColumnarReportBatch",
    "ErrorCollection",
    "ErrorSample",
    "ErrorSummary",
    "Fix2D",
    "Fix3D",
    "FixDiagnostics",
    "FourierSeries",
    "FrameAccumulator",
    "GatingPolicy",
    "HealthReport",
    "HyperbolicTagLocator",
    "InsufficientDataError",
    "JointSpectrum",
    "LocalizationServer",
    "Mount",
    "OrientationCalibrator",
    "OrientationProfile",
    "PHASE_NOISE_STD_RAD",
    "PermanentError",
    "PipelineConfig",
    "PipelineDiagnostics",
    "PlannedDisk",
    "Point2",
    "Point3",
    "QuarantineStats",
    "ReaderTracker",
    "ReportBatch",
    "ReportValidator",
    "ResilientLocalizationServer",
    "RetryPolicy",
    "ROSpec",
    "Scene",
    "ScenarioConfig",
    "SimulatedReader",
    "SnapshotSeries",
    "SpinningDisk",
    "SpinningTagRecord",
    "SpinningTagUnit",
    "StaticTagUnit",
    "StreamStats",
    "StreamingLLRPParser",
    "TABLE_I",
    "TagInstance",
    "TagModel",
    "TagRegistry",
    "TagReportData",
    "TagspinError",
    "TagspinLocator2D",
    "TagspinLocator3D",
    "TagspinScenario",
    "TagspinSystem",
    "TrackPoint",
    "TransientError",
    "UnknownTagError",
    "ValidationConfig",
    "WireProtocolError",
    "WireRecording",
    "accuracy_map",
    "build_scene",
    "compute_q_profile",
    "compute_q_profile_3d",
    "compute_r_profile",
    "compute_r_profile_3d",
    "fit_fourier_series",
    "horizontal_disk",
    "make_tag",
    "paper_default_scenario",
    "predicted_rmse",
    "recommend_center_distance",
    "vertical_disk",
]
