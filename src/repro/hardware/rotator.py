"""Spinning-disk kinematics.

A tag is attached either to the rim of a motorized disk (normal operation)
or to its center (the orientation-calibration prelude).  The disk rotates
with a uniform angular speed.  Disks are normally horizontal (in the x-y
plane, the paper's deployment), but an arbitrary plane orientation is
supported so the paper's future-work extension — a third, vertically
spinning tag for extra z-aperture — can be exercised.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Tuple

import numpy as np

from repro.core.geometry import Point3, wrap_angle
from repro.errors import ConfigurationError


class Mount(Enum):
    """Where the tag sits on the disk."""

    EDGE = "edge"
    CENTER = "center"


def _unit(vector: np.ndarray) -> np.ndarray:
    norm = float(np.linalg.norm(vector))
    if norm < 1e-12:
        raise ConfigurationError("zero-length basis vector")
    return vector / norm


@dataclass(frozen=True)
class SpinningDisk:
    """A rotating disk carrying one tag.

    Attributes
    ----------
    center : disk center in world coordinates [m]
    radius : track radius [m]
    angular_speed : ``omega`` [rad/s]; sign selects spin direction
    phase0 : disk angle at ``t = 0`` [rad]
    mount : edge (localization) or center (calibration prelude)
    basis_u, basis_v : orthonormal vectors spanning the disk plane.  The
        default is the horizontal plane (x-y); pass e.g. ``u = x``, ``v = z``
        for a vertical disk.
    """

    center: Point3
    radius: float
    angular_speed: float
    phase0: float = 0.0
    mount: Mount = Mount.EDGE
    basis_u: Tuple[float, float, float] = (1.0, 0.0, 0.0)
    basis_v: Tuple[float, float, float] = (0.0, 1.0, 0.0)

    def __post_init__(self) -> None:
        if self.radius <= 0:
            raise ConfigurationError("disk radius must be positive")
        if self.angular_speed == 0:
            raise ConfigurationError("angular speed must be non-zero")
        u = _unit(np.asarray(self.basis_u, dtype=float))
        v = _unit(np.asarray(self.basis_v, dtype=float))
        if abs(float(np.dot(u, v))) > 1e-9:
            raise ConfigurationError("disk basis vectors must be orthogonal")
        object.__setattr__(self, "basis_u", tuple(u))
        object.__setattr__(self, "basis_v", tuple(v))

    @property
    def period(self) -> float:
        """Rotation period [s]."""
        return 2.0 * math.pi / abs(self.angular_speed)

    @property
    def is_horizontal(self) -> bool:
        """True when the disk lies in a plane parallel to x-y."""
        normal = np.cross(self.basis_u, self.basis_v)
        return bool(abs(abs(normal[2]) - 1.0) < 1e-9)

    def disk_angle(self, time: float) -> float:
        """Disk rotation angle at ``time`` [rad, wrapped to [0, 2*pi)]."""
        return wrap_angle(self.phase0 + self.angular_speed * time)

    def tag_position(self, time: float) -> Point3:
        """World position of the tag at ``time``."""
        if self.mount is Mount.CENTER:
            return self.center
        angle = self.phase0 + self.angular_speed * time
        u = np.asarray(self.basis_u)
        v = np.asarray(self.basis_v)
        offset = self.radius * (math.cos(angle) * u + math.sin(angle) * v)
        return Point3(
            self.center.x + float(offset[0]),
            self.center.y + float(offset[1]),
            self.center.z + float(offset[2]),
        )

    def tag_positions(self, times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`tag_position`; returns shape ``(n, 3)``."""
        times = np.asarray(times, dtype=float)
        if self.mount is Mount.CENTER:
            return np.tile(self.center.as_array(), (times.size, 1))
        angles = self.phase0 + self.angular_speed * times
        u = np.asarray(self.basis_u)
        v = np.asarray(self.basis_v)
        offsets = self.radius * (
            np.outer(np.cos(angles), u) + np.outer(np.sin(angles), v)
        )
        return self.center.as_array()[np.newaxis, :] + offsets

    def tag_orientation(self, time: float, reader_position: Point3) -> float:
        """Orientation ``rho``: angle between tag plane and tag-reader line.

        The tag's antenna plane co-rotates with the disk, so its in-plane
        attitude is the disk angle; ``rho`` is that attitude measured from
        the bearing toward the reader, following the paper's definition in
        Fig 5 (``rho(t)`` between the tag plane and the line OR).
        """
        tag = self.tag_position(time)
        bearing = math.atan2(
            reader_position.y - tag.y, reader_position.x - tag.x
        )
        return wrap_angle(self.disk_angle(time) - bearing)

    def tag_orientations(
        self, times: np.ndarray, reader_position: Point3
    ) -> np.ndarray:
        """Vectorized :meth:`tag_orientation`."""
        times = np.asarray(times, dtype=float)
        positions = self.tag_positions(times)
        bearings = np.arctan2(
            reader_position.y - positions[:, 1],
            reader_position.x - positions[:, 0],
        )
        angles = self.phase0 + self.angular_speed * times
        return np.mod(angles - bearings, 2.0 * math.pi)

    def with_mount(self, mount: Mount) -> "SpinningDisk":
        """Copy of this disk with the tag moved to ``mount``."""
        return SpinningDisk(
            center=self.center,
            radius=self.radius,
            angular_speed=self.angular_speed,
            phase0=self.phase0,
            mount=mount,
            basis_u=self.basis_u,
            basis_v=self.basis_v,
        )


def horizontal_disk(
    center: Point3,
    radius: float,
    angular_speed: float,
    phase0: float = 0.0,
    mount: Mount = Mount.EDGE,
) -> SpinningDisk:
    """Disk spinning in a plane parallel to x-y (the paper's deployment)."""
    return SpinningDisk(center, radius, angular_speed, phase0, mount)


def vertical_disk(
    center: Point3,
    radius: float,
    angular_speed: float,
    azimuth: float = 0.0,
    phase0: float = 0.0,
    mount: Mount = Mount.EDGE,
) -> SpinningDisk:
    """Disk spinning in a vertical plane (future-work z-aperture extension).

    ``azimuth`` orients the vertical plane: its in-plane horizontal basis
    vector points along ``(cos(azimuth), sin(azimuth), 0)``; the second basis
    vector is +z.
    """
    return SpinningDisk(
        center,
        radius,
        angular_speed,
        phase0,
        mount,
        basis_u=(math.cos(azimuth), math.sin(azimuth), 0.0),
        basis_v=(0.0, 0.0, 1.0),
    )
