"""COTS tag models (Table I of the paper) and per-tag ground truth.

The paper evaluates five low-cost Alien Technology tag models.  Each model
has a different antenna geometry, which the paper shows to matter in two
ways:

* the *orientation-dependent phase offset* (~0.7 rad peak-to-peak on
  average, Fig 5/Fig 11a) whose detailed shape varies per model and slightly
  per individual tag, while "the holistic changing pattern is almost the
  same";
* the orientation-dependent *received power*, which makes the reader sample
  the tag more densely when the tag plane faces the reader (segments A/C vs
  B in Fig 4b).

:class:`TagModel` captures the model-level parameters; :class:`TagInstance`
is one physical tag with its own EPC and individually jittered ground-truth
orientation profile.  The profile is synthesized from a Fourier series (the
paper's Observation 3.1 says the pattern is Fourier-fittable), dominated by
a second harmonic — the tag plane is geometrically symmetric under a 180
degree flip, so the even harmonic carries most of the energy.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.calibration import OrientationProfile, make_orientation_profile
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TagModel:
    """One commercial tag model (a row of Table I)."""

    name: str
    model_number: str
    company: str
    chip: str
    size_mm: tuple
    #: Peak-to-peak orientation phase fluctuation [rad] typical of the model.
    orientation_pp_rad: float
    #: Fraction of maximum effective gain retained at the worst orientation.
    gain_floor: float
    #: Relative harmonic mix (h1, h2, h3) of the orientation profile.
    harmonic_mix: tuple = (0.13, 1.0, 0.15)
    #: Harmonic phase angles [rad] of the orientation profile.  Mostly
    #: shared across models — the paper observes that "the holistic
    #: changing pattern is almost the same" from tag to tag, with only the
    #: amplitude varying; individual tags add small jitter on top.
    harmonic_phase: tuple = (0.55, 1.85, 3.05)


#: Table I — the five Alien models used throughout the evaluation.  Sizes are
#: the published inlay dimensions; the orientation parameters are the
#: simulator's ground truth (tuned so the fleet average matches the paper's
#: ~0.7 rad figure while models differ visibly, Fig 12c).
TABLE_I: Dict[str, TagModel] = {
    "squig": TagModel(
        name="Squig",
        model_number="ALN-9610",
        company="Alien",
        chip="Higgs-3",
        size_mm=(47.8, 10.2),
        orientation_pp_rad=0.78,
        gain_floor=0.28,
        harmonic_mix=(0.16, 1.0, 0.12),
    ),
    "square": TagModel(
        name="Square",
        model_number="ALN-9629",
        company="Alien",
        chip="Higgs-3",
        size_mm=(22.5, 22.5),
        orientation_pp_rad=0.58,
        gain_floor=0.40,
        harmonic_mix=(0.10, 1.0, 0.10),
    ),
    "squiglette": TagModel(
        name="Squiglette",
        model_number="ALN-9613",
        company="Alien",
        chip="Higgs-3",
        size_mm=(55.0, 12.7),
        orientation_pp_rad=0.74,
        gain_floor=0.30,
        harmonic_mix=(0.14, 1.0, 0.14),
    ),
    "squiggle": TagModel(
        name="Squiggle",
        model_number="ALN-9640",
        company="Alien",
        chip="Higgs-3",
        size_mm=(94.8, 8.1),
        orientation_pp_rad=0.70,
        gain_floor=0.25,
        harmonic_mix=(0.12, 1.0, 0.12),
    ),
    "short": TagModel(
        name="Short",
        model_number="ALN-9662",
        company="Alien",
        chip="Higgs-3",
        size_mm=(70.0, 17.0),
        orientation_pp_rad=0.66,
        gain_floor=0.33,
        harmonic_mix=(0.11, 1.0, 0.11),
    ),
}

#: The model the paper uses by default ("because of its proper form factor,
#: high signal strength and stability").
DEFAULT_MODEL_KEY = "squiggle"

_EPC_COUNTER = itertools.count(1)


def get_model(key: str) -> TagModel:
    """Look up a Table I model by key (case-insensitive)."""
    try:
        return TABLE_I[key.lower()]
    except KeyError:
        raise ConfigurationError(
            f"unknown tag model {key!r}; known models: {sorted(TABLE_I)}"
        ) from None


def make_epc(prefix: str = "E200") -> str:
    """Generate a unique 24-hex-character EPC."""
    return f"{prefix}{next(_EPC_COUNTER):020X}"


def synthesize_orientation_profile(
    model: TagModel,
    rng: np.random.Generator,
    amplitude_jitter: float = 0.10,
    phase_jitter: float = 0.15,
) -> OrientationProfile:
    """Ground-truth orientation-phase profile for one physical tag.

    The harmonic amplitudes follow the model's mix, scaled so the profile's
    peak-to-peak matches the model figure; the harmonic phases follow the
    model's shared pattern with small per-individual jitter ("various
    amplitude in the fluctuation curve is observed, but the holistic
    changing pattern is almost the same").
    """
    mix = np.asarray(model.harmonic_mix, dtype=float)
    jitter = 1.0 + amplitude_jitter * rng.standard_normal(mix.size)
    amplitudes = np.abs(mix * jitter)
    harmonic_phases = (
        np.asarray(model.harmonic_phase, dtype=float)
        + phase_jitter * rng.standard_normal(mix.size)
    )
    profile = make_orientation_profile(amplitudes, harmonic_phases)
    current_pp = profile.series.peak_to_peak()
    if current_pp <= 0:
        raise ConfigurationError("degenerate orientation profile")
    scale = model.orientation_pp_rad / current_pp
    return make_orientation_profile(amplitudes * scale, harmonic_phases)


@dataclass(frozen=True)
class TagInstance:
    """One physical tag: EPC, model and its individual ground truth."""

    epc: str
    model: TagModel
    orientation_truth: OrientationProfile
    #: Per-tag contribution to the link diversity constant [rad].
    diversity_rad: float

    def effective_gain(self, orientation: float) -> float:
        """Relative effective gain (0..1] at orientation ``rho``.

        Maximal when the tag plane is perpendicular to the incident E-field
        (``rho = pi/2 + k*pi``), per the paper's explanation of the denser
        sampling near phase peaks/valleys.
        """
        floor = self.model.gain_floor
        return floor + (1.0 - floor) * float(np.sin(orientation)) ** 2


def make_tag(
    model_key: str = DEFAULT_MODEL_KEY,
    rng: Optional[np.random.Generator] = None,
    epc: Optional[str] = None,
) -> TagInstance:
    """Manufacture a single tag of the given model."""
    rng = rng if rng is not None else np.random.default_rng()
    model = get_model(model_key)
    return TagInstance(
        epc=epc if epc is not None else make_epc(),
        model=model,
        orientation_truth=synthesize_orientation_profile(model, rng),
        diversity_rad=float(rng.uniform(0.0, 2.0 * np.pi)),
    )


def make_tags(
    count: int,
    model_key: str = DEFAULT_MODEL_KEY,
    rng: Optional[np.random.Generator] = None,
) -> List[TagInstance]:
    """Manufacture ``count`` tags of one model."""
    if count < 1:
        raise ValueError("count must be >= 1")
    rng = rng if rng is not None else np.random.default_rng()
    return [make_tag(model_key, rng) for _ in range(count)]
