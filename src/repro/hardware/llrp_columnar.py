"""Columnar (struct-of-arrays) decoding of RO_ACCESS_REPORT frames.

The object decoder in :mod:`repro.hardware.llrp_wire` materializes one
``TagReportData`` dataclass per read — at wire rate that per-report
Python object churn, not the solver, is the ingest bottleneck.  This
module unpacks a whole frame into ndarray columns instead:

* **fast path** — frames our encoder produces have a fixed per-report
  layout (the same six parameters in the same order, 71 bytes per
  report).  When every report in a frame matches that template, all
  columns are extracted with vectorized big-endian views over the frame
  buffer: zero per-report Python work.
* **general path** — anything irregular (vendor extension missing,
  unknown parameters, foreign EPC lengths) falls back to the same TLV
  walk the object decoder performs, appending scalars into columns.
  It shares the object decoder's helpers, so corrupt input raises the
  *identical* :class:`~repro.errors.WireProtocolError` at the identical
  byte offset.

Both paths are differentially bit-identical to
:func:`~repro.hardware.llrp_wire.decode_ro_access_report` — the phase
column replicates :func:`~repro.hardware.llrp_wire.decode_phase`'s
exact float64 operation order, so ``cols.to_reports()`` compares equal
to the object decode on every input (property- and fuzz-tested).
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.errors import WireProtocolError
from repro.hardware.llrp import TagReportData
from repro.hardware.llrp_wire import (
    CUSTOM_SUBTYPE_PHASE,
    IMPINJ_VENDOR_ID,
    MSG_RO_ACCESS_REPORT,
    PARAM_ANTENNA_ID,
    PARAM_CHANNEL_INDEX,
    PARAM_CUSTOM,
    PARAM_EPC_96,
    PARAM_FIRST_SEEN_UTC,
    PARAM_PEAK_RSSI,
    PARAM_TAG_REPORT_DATA,
    PHASE_UNITS,
    _read_tlv,
    _unpack_param,
    decode_message_header,
    decode_phase,
    encode_tag_report,
)

__all__ = [
    "ColumnarReportBatch",
    "decode_ro_access_report_columnar",
    "REGULAR_RECORD_BYTES",
]


@dataclass
class ColumnarReportBatch:
    """One decoded report batch as parallel ndarray columns.

    ``epcs`` is the deduplicated EPC table; ``epc_index[i]`` indexes the
    i-th report's EPC into it.  Timestamp columns may be ``uint64``
    (wire decode — the field is a u64 on the wire) or ``int64``
    (:meth:`from_reports`, which must represent the negative timestamps
    the validation layer screens for).
    """

    epcs: List[str]
    epc_index: np.ndarray
    antenna_port: np.ndarray
    channel_index: np.ndarray
    reader_timestamp_us: np.ndarray
    host_timestamp_us: np.ndarray
    phase_rad: np.ndarray
    rssi_dbm: np.ndarray

    def __len__(self) -> int:
        return int(self.epc_index.shape[0])

    def __post_init__(self) -> None:
        n = self.epc_index.shape[0]
        for name in (
            "antenna_port",
            "channel_index",
            "reader_timestamp_us",
            "host_timestamp_us",
            "phase_rad",
            "rssi_dbm",
        ):
            column = getattr(self, name)
            if column.shape != (n,):
                raise ValueError(
                    f"column {name!r} has shape {column.shape}, "
                    f"expected ({n},)"
                )

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "ColumnarReportBatch":
        return cls(
            epcs=[],
            epc_index=np.empty(0, dtype=np.int64),
            antenna_port=np.empty(0, dtype=np.int64),
            channel_index=np.empty(0, dtype=np.int64),
            reader_timestamp_us=np.empty(0, dtype=np.uint64),
            host_timestamp_us=np.empty(0, dtype=np.uint64),
            phase_rad=np.empty(0, dtype=np.float64),
            rssi_dbm=np.empty(0, dtype=np.float64),
        )

    @classmethod
    def from_reports(
        cls, reports: Sequence[TagReportData]
    ) -> "ColumnarReportBatch":
        """Columnarize object reports (timestamps as signed int64)."""
        epcs: List[str] = []
        table: Dict[str, int] = {}
        index = np.empty(len(reports), dtype=np.int64)
        for i, report in enumerate(reports):
            slot = table.get(report.epc)
            if slot is None:
                slot = table[report.epc] = len(epcs)
                epcs.append(report.epc)
            index[i] = slot
        return cls(
            epcs=epcs,
            epc_index=index,
            antenna_port=np.array(
                [r.antenna_port for r in reports], dtype=np.int64
            ),
            channel_index=np.array(
                [r.channel_index for r in reports], dtype=np.int64
            ),
            reader_timestamp_us=np.array(
                [r.reader_timestamp_us for r in reports], dtype=np.int64
            ),
            host_timestamp_us=np.array(
                [r.host_timestamp_us for r in reports], dtype=np.int64
            ),
            phase_rad=np.array(
                [r.phase_rad for r in reports], dtype=np.float64
            ),
            rssi_dbm=np.array(
                [r.rssi_dbm for r in reports], dtype=np.float64
            ),
        )

    # ------------------------------------------------------------------
    def to_reports(self) -> List[TagReportData]:
        """Materialize object reports, field-identical to object decode."""
        epcs = self.epcs
        return [
            TagReportData(
                epc=epcs[idx],
                antenna_port=antenna,
                channel_index=channel,
                reader_timestamp_us=reader_us,
                host_timestamp_us=host_us,
                phase_rad=phase,
                rssi_dbm=rssi,
            )
            for idx, antenna, channel, reader_us, host_us, phase, rssi in zip(
                self.epc_index.tolist(),
                self.antenna_port.tolist(),
                self.channel_index.tolist(),
                self.reader_timestamp_us.tolist(),
                self.host_timestamp_us.tolist(),
                self.phase_rad.tolist(),
                self.rssi_dbm.tolist(),
            )
        ]

    def select(
        self, which: Union[np.ndarray, Sequence[int]]
    ) -> "ColumnarReportBatch":
        """Row subset (boolean mask or index array); shares the EPC table."""
        which = np.asarray(which)
        return ColumnarReportBatch(
            epcs=self.epcs,
            epc_index=self.epc_index[which],
            antenna_port=self.antenna_port[which],
            channel_index=self.channel_index[which],
            reader_timestamp_us=self.reader_timestamp_us[which],
            host_timestamp_us=self.host_timestamp_us[which],
            phase_rad=self.phase_rad[which],
            rssi_dbm=self.rssi_dbm[which],
        )

    def antenna_ports(self) -> List[int]:
        """Distinct antenna ports in first-appearance order."""
        ports, first = np.unique(self.antenna_port, return_index=True)
        return [int(p) for p in ports[np.argsort(first)]]

    # ------------------------------------------------------------------
    # Shared-memory (de)materialization
    # ------------------------------------------------------------------
    def packed_nbytes(self) -> int:
        """Bytes :meth:`pack_into` needs (8-byte aligned per column)."""
        total = 0
        for name in _SHM_COLUMNS:
            total = _align8(total) + getattr(self, name).nbytes
        return total

    def pack_into(self, buf, offset: int = 0) -> dict:
        """Copy every column into ``buf`` at ``offset``; returns metadata.

        One memcpy per column straight into the destination buffer
        (typically a ``multiprocessing.shared_memory`` segment) — no
        pickling, no intermediate bytes.  The returned metadata dict is
        small (EPC table plus per-column dtype/offset) and travels over
        the control pipe; :meth:`unpack_from` rebuilds the batch on the
        other side.  Column dtypes are recorded per column because
        timestamp columns are ``uint64`` off the wire but ``int64`` from
        :meth:`from_reports`.
        """
        n = len(self)
        columns = []
        position = offset
        for name in _SHM_COLUMNS:
            array = getattr(self, name)
            position = _align8(position)
            if n:
                destination = np.frombuffer(
                    buf, dtype=array.dtype, count=n, offset=position
                )
                destination[:] = array
            columns.append((name, array.dtype.str, position - offset))
            position += array.nbytes
        return {
            "count": n,
            "epcs": list(self.epcs),
            "columns": columns,
            "nbytes": position - offset,
        }

    @classmethod
    def unpack_from(
        cls, buf, meta: dict, offset: int = 0, copy: bool = True
    ) -> "ColumnarReportBatch":
        """Rebuild a batch packed by :meth:`pack_into`.

        ``copy=True`` (the default) detaches the columns from ``buf`` so
        the shared-memory slot can be released immediately; ``copy=False``
        returns zero-copy views valid only while ``buf`` is alive.
        """
        count = meta["count"]
        kwargs = {}
        for name, dtype_str, relative in meta["columns"]:
            array = np.frombuffer(
                buf,
                dtype=np.dtype(dtype_str),
                count=count,
                offset=offset + relative,
            )
            kwargs[name] = array.copy() if copy else array
        return cls(epcs=list(meta["epcs"]), **kwargs)


#: Column transport order for :meth:`ColumnarReportBatch.pack_into`.
_SHM_COLUMNS = (
    "epc_index",
    "antenna_port",
    "channel_index",
    "reader_timestamp_us",
    "host_timestamp_us",
    "phase_rad",
    "rssi_dbm",
)


def _align8(value: int) -> int:
    return (value + 7) & ~7


# ---------------------------------------------------------------------------
# Regular-layout fast path
# ---------------------------------------------------------------------------

def _build_template() -> Tuple[bytes, np.ndarray]:
    """The canonical encoded record and a mask of its fixed bytes."""
    zero = TagReportData(
        epc="0" * 24,
        antenna_port=0,
        channel_index=0,
        reader_timestamp_us=0,
        host_timestamp_us=0,
        phase_rad=0.0,
        rssi_dbm=0.0,
    )
    template = encode_tag_report(zero)
    mask = np.zeros(len(template), dtype=bool)
    # TLV headers, plus the Custom parameter's vendor id and subtype,
    # are structural; everything else is per-report payload.
    for fixed in (
        slice(0, 8),    # TagReportData + EPC-96 headers
        slice(20, 24),  # AntennaID header
        slice(26, 30),  # PeakRSSI header
        slice(31, 35),  # ChannelIndex header
        slice(37, 41),  # FirstSeenTimestampUTC header
        slice(49, 61),  # Custom header + vendor id + subtype
    ):
        mask[fixed] = True
    return template, mask


_TEMPLATE_BYTES, _FIXED_MASK = _build_template()
#: Bytes per report record in the canonical (fast-path) layout.
REGULAR_RECORD_BYTES = len(_TEMPLATE_BYTES)
_TEMPLATE = np.frombuffer(_TEMPLATE_BYTES, dtype=np.uint8)

# Payload byte ranges within one canonical record.
_EPC = slice(8, 20)
_ANTENNA = slice(24, 26)
_RSSI = 30
_CHANNEL = slice(35, 37)
_READER_US = slice(41, 49)
_PHASE = slice(61, 63)
_HOST_US = slice(63, 71)


def _decode_regular(records: np.ndarray) -> ColumnarReportBatch:
    """Vectorized column extraction from template-conforming records."""
    # Dedup EPCs against a dict of 12-byte slices: a handful of tags
    # repeat across thousands of reads, so this is a few dict hits per
    # report — ~10x cheaper than np.unique(axis=0)'s row sort, and the
    # table comes out in first-appearance order like the general path.
    epc_blob = records[:, _EPC].tobytes()
    table: Dict[bytes, int] = {}
    epcs: List[str] = []
    epc_index = np.empty(records.shape[0], dtype=np.int64)
    for i in range(records.shape[0]):
        key = epc_blob[12 * i : 12 * i + 12]
        slot = table.get(key)
        if slot is None:
            slot = table[key] = len(epcs)
            epcs.append(key.hex().upper())
        epc_index[i] = slot
    phase_units = (
        records[:, _PHASE].copy().view(">u2").ravel().astype(np.int64)
    )
    # Exactly decode_phase()'s float64 operation order, elementwise.
    phase_rad = (
        (phase_units % PHASE_UNITS).astype(np.float64)
        * 2.0
        * math.pi
        / PHASE_UNITS
    )
    return ColumnarReportBatch(
        epcs=epcs,
        epc_index=epc_index,
        antenna_port=(
            records[:, _ANTENNA].copy().view(">u2").ravel().astype(np.int64)
        ),
        channel_index=(
            records[:, _CHANNEL].copy().view(">u2").ravel().astype(np.int64)
        ),
        reader_timestamp_us=(
            records[:, _READER_US].copy().view(">u8").ravel()
        ),
        host_timestamp_us=(
            records[:, _HOST_US].copy().view(">u8").ravel()
        ),
        phase_rad=phase_rad,
        rssi_dbm=records[:, _RSSI].view(np.int8).astype(np.float64),
    )


# ---------------------------------------------------------------------------
# General TLV walk (irregular layouts)
# ---------------------------------------------------------------------------

def _decode_general(
    data: bytes, base_offset: int
) -> ColumnarReportBatch:
    """Column-appending TLV walk, semantics-identical to object decode."""
    epcs: List[str] = []
    table: Dict[str, int] = {}
    epc_index: List[int] = []
    antennas: List[int] = []
    channels: List[int] = []
    reader_uss: List[int] = []
    host_uss: List[int] = []
    phases: List[float] = []
    rssis: List[float] = []

    offset = 10
    while offset < len(data):
        body_offset = offset + 4
        param_type, body, offset = _read_tlv(data, offset, base_offset)
        if param_type != PARAM_TAG_REPORT_DATA:
            continue
        epc = ""
        antenna = channel = 0
        rssi = 0.0
        reader_us = host_us = 0
        phase = 0.0
        inner = 0
        report_base = base_offset + body_offset
        while inner < len(body):
            param_offset = report_base + inner
            inner_type, inner_body, inner = _read_tlv(
                body, inner, report_base
            )
            if inner_type == PARAM_EPC_96:
                epc = inner_body.hex().upper()
            elif inner_type == PARAM_ANTENNA_ID:
                (antenna,) = _unpack_param(
                    ">H", inner_body, inner_type, param_offset
                )
            elif inner_type == PARAM_PEAK_RSSI:
                (raw,) = _unpack_param(
                    ">b", inner_body, inner_type, param_offset
                )
                rssi = float(raw)
            elif inner_type == PARAM_CHANNEL_INDEX:
                (channel,) = _unpack_param(
                    ">H", inner_body, inner_type, param_offset
                )
            elif inner_type == PARAM_FIRST_SEEN_UTC:
                (reader_us,) = _unpack_param(
                    ">Q", inner_body, inner_type, param_offset
                )
            elif inner_type == PARAM_CUSTOM:
                if len(inner_body) < 8:
                    raise WireProtocolError(
                        f"truncated 'Custom' parameter body: expected at "
                        f"least 8 bytes, got {len(inner_body)}",
                        offset=param_offset,
                    )
                vendor, subtype = struct.unpack_from(">II", inner_body, 0)
                if (
                    vendor != IMPINJ_VENDOR_ID
                    or subtype != CUSTOM_SUBTYPE_PHASE
                ):
                    continue
                _v, _s, units, host_us = _unpack_param(
                    ">IIHQ", inner_body, inner_type, param_offset
                )
                phase = decode_phase(units)
        if not epc:
            raise WireProtocolError(
                "TagReportData without an EPC-96 parameter",
                offset=report_base,
            )
        slot = table.get(epc)
        if slot is None:
            slot = table[epc] = len(epcs)
            epcs.append(epc)
        epc_index.append(slot)
        antennas.append(antenna)
        channels.append(channel)
        reader_uss.append(reader_us)
        host_uss.append(host_us)
        phases.append(phase)
        rssis.append(rssi)

    return ColumnarReportBatch(
        epcs=epcs,
        epc_index=np.array(epc_index, dtype=np.int64),
        antenna_port=np.array(antennas, dtype=np.int64),
        channel_index=np.array(channels, dtype=np.int64),
        reader_timestamp_us=np.array(reader_uss, dtype=np.uint64),
        host_timestamp_us=np.array(host_uss, dtype=np.uint64),
        phase_rad=np.array(phases, dtype=np.float64),
        rssi_dbm=np.array(rssis, dtype=np.float64),
    )


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------

def decode_ro_access_report_columnar(
    data: bytes, base_offset: int = 0
) -> Tuple[int, ColumnarReportBatch]:
    """Parse an RO_ACCESS_REPORT frame into columns.

    Differentially identical to
    :func:`~repro.hardware.llrp_wire.decode_ro_access_report`:
    ``cols.to_reports()`` equals the object decode, and corrupt frames
    raise the same typed errors at the same byte offsets.
    """
    message_type, length, message_id = decode_message_header(
        data, base_offset
    )
    if message_type != MSG_RO_ACCESS_REPORT:
        raise WireProtocolError(
            f"expected RO_ACCESS_REPORT, got message type {message_type}",
            offset=base_offset,
        )
    if length != len(data):
        raise WireProtocolError(
            f"LLRP message length mismatch: header says {length}, "
            f"frame holds {len(data)} bytes",
            offset=base_offset,
        )
    body = data[10:]
    if not body:
        return message_id, ColumnarReportBatch.empty()
    if len(body) % REGULAR_RECORD_BYTES == 0:
        records = np.frombuffer(body, dtype=np.uint8).reshape(
            -1, REGULAR_RECORD_BYTES
        )
        if bool(
            np.all(records[:, _FIXED_MASK] == _TEMPLATE[_FIXED_MASK])
        ):
            return message_id, _decode_regular(records)
    return message_id, _decode_general(data, base_offset)
