"""Binary LLRP framing for tag reports.

The Low Level Reader Protocol frames every message with a 10-byte header
(reserved/version bits + message type, a 32-bit total length and a 32-bit
message id) followed by TLV parameters.  This module implements the subset
needed to ship ``RO_ACCESS_REPORT`` messages — the message Impinj readers
stream tag reads in — with the vendor extension carrying the RF phase:

* ``TagReportData`` parameter (type 240) containing
  ``EPC-96`` (type 13), ``AntennaID`` (type 1), ``PeakRSSI`` (type 6),
  ``ChannelIndex`` (type 7), ``FirstSeenTimestampUTC`` (type 2), and
* a ``Custom`` parameter (type 1023) with Impinj's vendor id carrying the
  phase angle in 1/4096-of-a-circle units plus the host timestamp.

Wire layout follows LLRP conventions (big-endian, TLV params with a 6-bit
type in a 16-bit field); values are quantized exactly as COTS readers do
(RSSI to whole dBm in a signed byte, phase to 12 bits), so a wire round
trip is measurably lossy — tests cover the quantization bounds.
"""

from __future__ import annotations

import math
import struct
from typing import List, Tuple

from repro.errors import ConfigurationError
from repro.hardware.llrp import ReportBatch, TagReportData

#: LLRP version 1 in the header's version bits.
_VERSION = 1
#: Message type of RO_ACCESS_REPORT.
MSG_RO_ACCESS_REPORT = 61

#: Parameter type numbers (LLRP standard ones).
PARAM_TAG_REPORT_DATA = 240
PARAM_EPC_96 = 13
PARAM_ANTENNA_ID = 1
PARAM_PEAK_RSSI = 6
PARAM_CHANNEL_INDEX = 7
PARAM_FIRST_SEEN_UTC = 2
PARAM_CUSTOM = 1023

#: Impinj's IANA private enterprise number, used in Custom parameters.
IMPINJ_VENDOR_ID = 25882
#: Our custom subtype carrying (phase, host timestamp).
CUSTOM_SUBTYPE_PHASE = 66

#: Phase is reported in 1/4096 of a full circle (Impinj convention).
PHASE_UNITS = 4096


def _tlv(param_type: int, body: bytes) -> bytes:
    """Encode one TLV parameter: 16-bit type, 16-bit total length."""
    length = 4 + len(body)
    return struct.pack(">HH", param_type & 0x3FF, length) + body


def _read_tlv(buffer: bytes, offset: int) -> Tuple[int, bytes, int]:
    """Decode one TLV at ``offset``; returns (type, body, next_offset)."""
    if offset + 4 > len(buffer):
        raise ConfigurationError("truncated LLRP parameter header")
    param_type, length = struct.unpack_from(">HH", buffer, offset)
    param_type &= 0x3FF
    if length < 4 or offset + length > len(buffer):
        raise ConfigurationError("corrupt LLRP parameter length")
    return param_type, buffer[offset + 4 : offset + length], offset + length


def encode_phase(phase_rad: float) -> int:
    """Quantize a phase [rad] to Impinj's 12-bit units."""
    units = int(round(phase_rad / (2.0 * math.pi) * PHASE_UNITS))
    return units % PHASE_UNITS


def decode_phase(units: int) -> float:
    """Convert 12-bit phase units back to radians in [0, 2*pi)."""
    return (units % PHASE_UNITS) * 2.0 * math.pi / PHASE_UNITS


def encode_tag_report(report: TagReportData) -> bytes:
    """Encode one tag read as a TagReportData TLV."""
    epc_bytes = bytes.fromhex(report.epc)
    if len(epc_bytes) != 12:
        raise ConfigurationError(
            f"EPC-96 requires a 24-hex-digit EPC, got {report.epc!r}"
        )
    rssi = max(-128, min(127, int(round(report.rssi_dbm))))
    body = b"".join(
        [
            _tlv(PARAM_EPC_96, epc_bytes),
            _tlv(PARAM_ANTENNA_ID, struct.pack(">H", report.antenna_port)),
            _tlv(PARAM_PEAK_RSSI, struct.pack(">b", rssi)),
            _tlv(PARAM_CHANNEL_INDEX, struct.pack(">H", report.channel_index)),
            _tlv(
                PARAM_FIRST_SEEN_UTC,
                struct.pack(">Q", report.reader_timestamp_us),
            ),
            _tlv(
                PARAM_CUSTOM,
                struct.pack(
                    ">IIHQ",
                    IMPINJ_VENDOR_ID,
                    CUSTOM_SUBTYPE_PHASE,
                    encode_phase(report.phase_rad),
                    report.host_timestamp_us,
                ),
            ),
        ]
    )
    return _tlv(PARAM_TAG_REPORT_DATA, body)


def decode_tag_report(body: bytes) -> TagReportData:
    """Decode the body of one TagReportData TLV."""
    epc = ""
    antenna = channel = 0
    rssi = 0.0
    reader_us = host_us = 0
    phase = 0.0
    offset = 0
    while offset < len(body):
        param_type, param_body, offset = _read_tlv(body, offset)
        if param_type == PARAM_EPC_96:
            epc = param_body.hex().upper()
        elif param_type == PARAM_ANTENNA_ID:
            (antenna,) = struct.unpack(">H", param_body)
        elif param_type == PARAM_PEAK_RSSI:
            (raw,) = struct.unpack(">b", param_body)
            rssi = float(raw)
        elif param_type == PARAM_CHANNEL_INDEX:
            (channel,) = struct.unpack(">H", param_body)
        elif param_type == PARAM_FIRST_SEEN_UTC:
            (reader_us,) = struct.unpack(">Q", param_body)
        elif param_type == PARAM_CUSTOM:
            vendor, subtype, units, host_us = struct.unpack(
                ">IIHQ", param_body
            )
            if vendor != IMPINJ_VENDOR_ID or subtype != CUSTOM_SUBTYPE_PHASE:
                continue
            phase = decode_phase(units)
        # Unknown parameters are skipped (forward compatibility).
    if not epc:
        raise ConfigurationError("TagReportData without an EPC-96 parameter")
    return TagReportData(
        epc=epc,
        antenna_port=antenna,
        channel_index=channel,
        reader_timestamp_us=reader_us,
        host_timestamp_us=host_us,
        phase_rad=phase,
        rssi_dbm=rssi,
    )


def encode_ro_access_report(
    batch: ReportBatch, message_id: int = 1
) -> bytes:
    """Frame a whole batch as one RO_ACCESS_REPORT message."""
    body = b"".join(encode_tag_report(r) for r in batch.reports)
    header_word = (_VERSION << 10) | MSG_RO_ACCESS_REPORT
    length = 10 + len(body)
    return struct.pack(">HII", header_word, length, message_id) + body


def decode_ro_access_report(data: bytes) -> Tuple[int, ReportBatch]:
    """Parse an RO_ACCESS_REPORT frame; returns (message_id, batch)."""
    if len(data) < 10:
        raise ConfigurationError("truncated LLRP message header")
    header_word, length, message_id = struct.unpack_from(">HII", data, 0)
    message_type = header_word & 0x3FF
    version = (header_word >> 10) & 0x7
    if version != _VERSION:
        raise ConfigurationError(f"unsupported LLRP version {version}")
    if message_type != MSG_RO_ACCESS_REPORT:
        raise ConfigurationError(
            f"expected RO_ACCESS_REPORT, got message type {message_type}"
        )
    if length != len(data):
        raise ConfigurationError("LLRP message length mismatch")
    reports: List[TagReportData] = []
    offset = 10
    while offset < len(data):
        param_type, body, offset = _read_tlv(data, offset)
        if param_type == PARAM_TAG_REPORT_DATA:
            reports.append(decode_tag_report(body))
    return message_id, ReportBatch(reports)


def split_stream(data: bytes) -> List[bytes]:
    """Split a byte stream into whole LLRP frames (as a TCP reader would)."""
    frames: List[bytes] = []
    offset = 0
    while offset + 10 <= len(data):
        _header, length, _mid = struct.unpack_from(">HII", data, offset)
        if length < 10 or offset + length > len(data):
            raise ConfigurationError("corrupt frame in LLRP stream")
        frames.append(data[offset : offset + length])
        offset += length
    if offset != len(data):
        raise ConfigurationError("trailing bytes after last LLRP frame")
    return frames
