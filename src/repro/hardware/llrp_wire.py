"""Binary LLRP framing for tag reports.

The Low Level Reader Protocol frames every message with a 10-byte header
(reserved/version bits + message type, a 32-bit total length and a 32-bit
message id) followed by TLV parameters.  This module implements the subset
needed to ship ``RO_ACCESS_REPORT`` messages — the message Impinj readers
stream tag reads in — with the vendor extension carrying the RF phase:

* ``TagReportData`` parameter (type 240) containing
  ``EPC-96`` (type 13), ``AntennaID`` (type 1), ``PeakRSSI`` (type 6),
  ``ChannelIndex`` (type 7), ``FirstSeenTimestampUTC`` (type 2), and
* a ``Custom`` parameter (type 1023) with Impinj's vendor id carrying the
  phase angle in 1/4096-of-a-circle units plus the host timestamp.

Wire layout follows LLRP conventions (big-endian, TLV params with a 6-bit
type in a 16-bit field); values are quantized exactly as COTS readers do
(RSSI to whole dBm in a signed byte, phase to 12 bits), so a wire round
trip is measurably lossy — tests cover the quantization bounds.
"""

from __future__ import annotations

import math
import struct
from typing import List, Tuple

from repro.errors import ConfigurationError, WireProtocolError
from repro.hardware.llrp import ReportBatch, TagReportData

#: LLRP version 1 in the header's version bits.
_VERSION = 1
#: Message type of RO_ACCESS_REPORT.
MSG_RO_ACCESS_REPORT = 61

#: Parameter type numbers (LLRP standard ones).
PARAM_TAG_REPORT_DATA = 240
PARAM_EPC_96 = 13
PARAM_ANTENNA_ID = 1
PARAM_PEAK_RSSI = 6
PARAM_CHANNEL_INDEX = 7
PARAM_FIRST_SEEN_UTC = 2
PARAM_CUSTOM = 1023

#: Impinj's IANA private enterprise number, used in Custom parameters.
IMPINJ_VENDOR_ID = 25882
#: Our custom subtype carrying (phase, host timestamp).
CUSTOM_SUBTYPE_PHASE = 66

#: Phase is reported in 1/4096 of a full circle (Impinj convention).
PHASE_UNITS = 4096

#: Human-readable parameter names for wire diagnostics.
PARAM_NAMES = {
    PARAM_TAG_REPORT_DATA: "TagReportData",
    PARAM_EPC_96: "EPC-96",
    PARAM_ANTENNA_ID: "AntennaID",
    PARAM_PEAK_RSSI: "PeakRSSI",
    PARAM_CHANNEL_INDEX: "ChannelIndex",
    PARAM_FIRST_SEEN_UTC: "FirstSeenTimestampUTC",
    PARAM_CUSTOM: "Custom",
}


def _tlv(param_type: int, body: bytes) -> bytes:
    """Encode one TLV parameter: 16-bit type, 16-bit total length."""
    length = 4 + len(body)
    return struct.pack(">HH", param_type & 0x3FF, length) + body


def _read_tlv(
    buffer: bytes, offset: int, base_offset: int = 0
) -> Tuple[int, bytes, int]:
    """Decode one TLV at ``offset``; returns (type, body, next_offset).

    ``base_offset`` is the absolute stream position of ``buffer[0]`` so
    diagnostics can name the corrupt byte in the original stream.
    """
    if offset + 4 > len(buffer):
        raise WireProtocolError(
            "truncated LLRP parameter header", offset=base_offset + offset
        )
    param_type, length = struct.unpack_from(">HH", buffer, offset)
    param_type &= 0x3FF
    if length < 4 or offset + length > len(buffer):
        raise WireProtocolError(
            f"corrupt LLRP parameter length {length} for parameter "
            f"{PARAM_NAMES.get(param_type, param_type)!r}",
            offset=base_offset + offset,
        )
    return param_type, buffer[offset + 4 : offset + length], offset + length


def _unpack_param(
    fmt: str, body: bytes, param_type: int, offset: int
) -> tuple:
    """``struct.unpack`` with wire-typed errors instead of ``struct.error``.

    A short (or overlong) parameter body is a framing fault of the
    stream, not a programming error: name the parameter and its byte
    offset so the transport layer can log exactly what was corrupt.
    """
    expected = struct.calcsize(fmt)
    if len(body) != expected:
        raise WireProtocolError(
            f"truncated {PARAM_NAMES.get(param_type, param_type)!r} "
            f"parameter body: expected {expected} bytes, got {len(body)}",
            offset=offset,
        )
    return struct.unpack(fmt, body)


def encode_phase(phase_rad: float) -> int:
    """Quantize a phase [rad] to Impinj's 12-bit units.

    A subsequent :func:`decode_phase` recovers the angle to within half a
    quantization step: the circular round-trip error is bounded by
    ``pi / PHASE_UNITS`` (= pi/4096 ~ 7.7e-4 rad).
    """
    units = int(round(phase_rad / (2.0 * math.pi) * PHASE_UNITS))
    return units % PHASE_UNITS


def decode_phase(units: int) -> float:
    """Convert 12-bit phase units back to radians in [0, 2*pi).

    Together with :func:`encode_phase` this is measurably lossy but
    bounded: ``|wrap(decode(encode(phase)) - phase)| <= pi / PHASE_UNITS``
    (half a 2*pi/4096 quantization step), far below COTS phase noise.
    """
    return (units % PHASE_UNITS) * 2.0 * math.pi / PHASE_UNITS


def encode_tag_report(report: TagReportData) -> bytes:
    """Encode one tag read as a TagReportData TLV."""
    epc_bytes = bytes.fromhex(report.epc)
    if len(epc_bytes) != 12:
        raise ConfigurationError(
            f"EPC-96 requires a 24-hex-digit EPC, got {report.epc!r}"
        )
    rssi = max(-128, min(127, int(round(report.rssi_dbm))))
    body = b"".join(
        [
            _tlv(PARAM_EPC_96, epc_bytes),
            _tlv(PARAM_ANTENNA_ID, struct.pack(">H", report.antenna_port)),
            _tlv(PARAM_PEAK_RSSI, struct.pack(">b", rssi)),
            _tlv(PARAM_CHANNEL_INDEX, struct.pack(">H", report.channel_index)),
            _tlv(
                PARAM_FIRST_SEEN_UTC,
                struct.pack(">Q", report.reader_timestamp_us),
            ),
            _tlv(
                PARAM_CUSTOM,
                struct.pack(
                    ">IIHQ",
                    IMPINJ_VENDOR_ID,
                    CUSTOM_SUBTYPE_PHASE,
                    encode_phase(report.phase_rad),
                    report.host_timestamp_us,
                ),
            ),
        ]
    )
    return _tlv(PARAM_TAG_REPORT_DATA, body)


def decode_tag_report(body: bytes, base_offset: int = 0) -> TagReportData:
    """Decode the body of one TagReportData TLV.

    ``base_offset`` is the absolute stream position of ``body[0]``; any
    framing fault is raised as :class:`~repro.errors.WireProtocolError`
    naming the offending parameter and byte offset.
    """
    epc = ""
    antenna = channel = 0
    rssi = 0.0
    reader_us = host_us = 0
    phase = 0.0
    offset = 0
    while offset < len(body):
        param_offset = base_offset + offset
        param_type, param_body, offset = _read_tlv(body, offset, base_offset)
        if param_type == PARAM_EPC_96:
            epc = param_body.hex().upper()
        elif param_type == PARAM_ANTENNA_ID:
            (antenna,) = _unpack_param(
                ">H", param_body, param_type, param_offset
            )
        elif param_type == PARAM_PEAK_RSSI:
            (raw,) = _unpack_param(
                ">b", param_body, param_type, param_offset
            )
            rssi = float(raw)
        elif param_type == PARAM_CHANNEL_INDEX:
            (channel,) = _unpack_param(
                ">H", param_body, param_type, param_offset
            )
        elif param_type == PARAM_FIRST_SEEN_UTC:
            (reader_us,) = _unpack_param(
                ">Q", param_body, param_type, param_offset
            )
        elif param_type == PARAM_CUSTOM:
            if len(param_body) < 8:
                raise WireProtocolError(
                    f"truncated 'Custom' parameter body: expected at "
                    f"least 8 bytes, got {len(param_body)}",
                    offset=param_offset,
                )
            vendor, subtype = struct.unpack_from(">II", param_body, 0)
            if vendor != IMPINJ_VENDOR_ID or subtype != CUSTOM_SUBTYPE_PHASE:
                # Foreign vendor extensions carry arbitrary payloads and
                # are skipped wholesale (forward compatibility).
                continue
            _vendor, _subtype, units, host_us = _unpack_param(
                ">IIHQ", param_body, param_type, param_offset
            )
            phase = decode_phase(units)
        # Unknown parameters are skipped (forward compatibility).
    if not epc:
        raise WireProtocolError(
            "TagReportData without an EPC-96 parameter", offset=base_offset
        )
    return TagReportData(
        epc=epc,
        antenna_port=antenna,
        channel_index=channel,
        reader_timestamp_us=reader_us,
        host_timestamp_us=host_us,
        phase_rad=phase,
        rssi_dbm=rssi,
    )


def encode_ro_access_report(
    batch: ReportBatch, message_id: int = 1
) -> bytes:
    """Frame a whole batch as one RO_ACCESS_REPORT message."""
    body = b"".join(encode_tag_report(r) for r in batch.reports)
    header_word = (_VERSION << 10) | MSG_RO_ACCESS_REPORT
    length = 10 + len(body)
    return struct.pack(">HII", header_word, length, message_id) + body


def decode_message_header(
    data: bytes, base_offset: int = 0
) -> Tuple[int, int, int]:
    """Validate a 10-byte LLRP header; returns (type, length, message_id).

    Checks only what every frame must satisfy regardless of message type
    (version bits, minimum length) so the streaming layer can frame
    messages it does not decode.  Raises
    :class:`~repro.errors.WireProtocolError` with the absolute stream
    offset on violation.
    """
    if len(data) < 10:
        raise WireProtocolError(
            "truncated LLRP message header", offset=base_offset
        )
    header_word, length, message_id = struct.unpack_from(">HII", data, 0)
    version = (header_word >> 10) & 0x7
    if version != _VERSION:
        raise WireProtocolError(
            f"unsupported LLRP version {version}", offset=base_offset
        )
    if length < 10:
        raise WireProtocolError(
            f"LLRP message length {length} below the 10-byte header",
            offset=base_offset,
        )
    return header_word & 0x3FF, length, message_id


def decode_ro_access_report(
    data: bytes, base_offset: int = 0
) -> Tuple[int, ReportBatch]:
    """Parse an RO_ACCESS_REPORT frame; returns (message_id, batch)."""
    message_type, length, message_id = decode_message_header(
        data, base_offset
    )
    if message_type != MSG_RO_ACCESS_REPORT:
        raise WireProtocolError(
            f"expected RO_ACCESS_REPORT, got message type {message_type}",
            offset=base_offset,
        )
    if length != len(data):
        raise WireProtocolError(
            f"LLRP message length mismatch: header says {length}, "
            f"frame holds {len(data)} bytes",
            offset=base_offset,
        )
    reports: List[TagReportData] = []
    offset = 10
    while offset < len(data):
        body_offset = offset + 4
        param_type, body, offset = _read_tlv(data, offset, base_offset)
        if param_type == PARAM_TAG_REPORT_DATA:
            reports.append(
                decode_tag_report(body, base_offset + body_offset)
            )
    return message_id, ReportBatch(reports)


def split_stream(data: bytes) -> List[bytes]:
    """Split a byte stream into whole LLRP frames (as a TCP reader would)."""
    frames: List[bytes] = []
    offset = 0
    while offset + 10 <= len(data):
        _header, length, _mid = struct.unpack_from(">HII", data, offset)
        if length < 10 or offset + length > len(data):
            raise WireProtocolError(
                "corrupt frame in LLRP stream", offset=offset
            )
        frames.append(data[offset : offset + length])
        offset += length
    if offset != len(data):
        raise WireProtocolError(
            "trailing bytes after last LLRP frame", offset=offset
        )
    return frames
