"""Simulated COTS hardware: tags, spinning disks, Gen2 inventory, LLRP, reader."""
