"""The simulated COTS RFID reader (Impinj Speedway-class).

Ties the substrates together: Gen2 inventory decides *when* each tag is
read; the backscatter channel decides *what* the reader observes; the clock
model stamps reader/host timestamps; LLRP reports carry the results.  Up to
four directional antennas are supported, matching the paper's hardware, and
the reader can either stay on a fixed frequency channel or hop across the
China-band hop table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Protocol, Sequence

import numpy as np

from repro.constants import NUM_CHANNELS, channel_frequencies, wavelength_for_frequency
from repro.core.geometry import Point3, wrap_angle
from repro.errors import ConfigurationError
from repro.hardware.clock import ClockModel, timestamps_to_microseconds
from repro.hardware.gen2 import Gen2Config, InventoryResult, simulate_inventory
from repro.hardware.llrp import ReportBatch, ROSpec, TagReportData
from repro.hardware.rotator import SpinningDisk
from repro.hardware.tags import TagInstance
from repro.rf.antenna import AntennaPort
from repro.rf.channel import BackscatterChannel


class FieldUnit(Protocol):
    """Anything carrying a tag in the reader's field."""

    tag: TagInstance

    def position(self, time_s: float) -> Point3: ...

    def positions(self, times_s: np.ndarray) -> np.ndarray: ...

    def orientation(self, time_s: float, reader_position: Point3) -> float: ...

    def orientations(
        self, times_s: np.ndarray, reader_position: Point3
    ) -> np.ndarray: ...


@dataclass(frozen=True)
class SpinningTagUnit:
    """A tag mounted on a spinning disk."""

    disk: SpinningDisk
    tag: TagInstance

    def position(self, time_s: float) -> Point3:
        return self.disk.tag_position(time_s)

    def positions(self, times_s: np.ndarray) -> np.ndarray:
        return self.disk.tag_positions(times_s)

    def orientation(self, time_s: float, reader_position: Point3) -> float:
        return self.disk.tag_orientation(time_s, reader_position)

    def orientations(
        self, times_s: np.ndarray, reader_position: Point3
    ) -> np.ndarray:
        return self.disk.tag_orientations(times_s, reader_position)


@dataclass(frozen=True)
class StaticTagUnit:
    """A stationary reference tag (used by the baseline systems)."""

    tag: TagInstance
    location: Point3
    #: World attitude of the tag plane [rad].
    attitude: float = math.pi / 2.0

    def position(self, time_s: float) -> Point3:
        return self.location

    def positions(self, times_s: np.ndarray) -> np.ndarray:
        times_s = np.asarray(times_s, dtype=float)
        return np.tile(self.location.as_array(), (times_s.size, 1))

    def orientation(self, time_s: float, reader_position: Point3) -> float:
        bearing = math.atan2(
            reader_position.y - self.location.y,
            reader_position.x - self.location.x,
        )
        return wrap_angle(self.attitude - bearing)

    def orientations(
        self, times_s: np.ndarray, reader_position: Point3
    ) -> np.ndarray:
        times_s = np.asarray(times_s, dtype=float)
        return np.full(times_s.shape, self.orientation(0.0, reader_position))


@dataclass(frozen=True)
class ReaderConfig:
    """Reader-level configuration."""

    frequency_hopping: bool = False
    fixed_channel_index: int = NUM_CHANNELS // 2
    hop_interval_s: float = 2.0
    gen2: Gen2Config = field(default_factory=Gen2Config)

    def __post_init__(self) -> None:
        if not 0 <= self.fixed_channel_index < NUM_CHANNELS:
            raise ConfigurationError("fixed_channel_index out of range")
        if self.hop_interval_s <= 0:
            raise ConfigurationError("hop interval must be positive")


class SimulatedReader:
    """A multi-antenna UHF reader driving the simulation end to end."""

    def __init__(
        self,
        antennas: Sequence[AntennaPort],
        channel: Optional[BackscatterChannel] = None,
        clock: Optional[ClockModel] = None,
        config: Optional[ReaderConfig] = None,
        rng: Optional[np.random.Generator] = None,
        rssi_bias_db: Optional[float] = None,
    ) -> None:
        """``rssi_bias_db`` is the reader's absolute RSSI calibration error —
        a constant offset on every report (COTS readers are only accurate to
        a couple of dB absolute).  ``None`` draws it from the rng."""
        if not antennas:
            raise ConfigurationError("reader needs at least one antenna")
        if len(antennas) > 4:
            raise ConfigurationError(
                "Speedway-class readers support at most four antennas"
            )
        ports = [a.port_id for a in antennas]
        if len(set(ports)) != len(ports):
            raise ConfigurationError("antenna port ids must be unique")
        self.antennas: Dict[int, AntennaPort] = {a.port_id: a for a in antennas}
        self.channel = channel if channel is not None else BackscatterChannel()
        self.clock = clock if clock is not None else ClockModel()
        self.config = config if config is not None else ReaderConfig()
        self.rng = rng if rng is not None else np.random.default_rng()
        self.rssi_bias_db = (
            float(rssi_bias_db)
            if rssi_bias_db is not None
            else float(self.rng.normal(0.0, 2.0))
        )
        self._frequencies = channel_frequencies()
        self._hop_sequence = self.rng.permutation(len(self._frequencies))

    def antenna(self, port: int) -> AntennaPort:
        try:
            return self.antennas[port]
        except KeyError:
            raise ConfigurationError(f"no antenna on port {port}") from None

    def channel_index_at(self, time_s: float) -> int:
        """Active frequency channel at ``time_s``."""
        if not self.config.frequency_hopping:
            return self.config.fixed_channel_index
        hop = int(time_s // self.config.hop_interval_s)
        return int(self._hop_sequence[hop % len(self._hop_sequence)])

    def wavelength_for_channel(self, channel_index: int) -> float:
        return wavelength_for_frequency(self._frequencies[channel_index])

    def run(
        self,
        units: Sequence[FieldUnit],
        rospec: ROSpec,
        start_time_s: float = 0.0,
    ) -> ReportBatch:
        """Execute a ROSpec: inventory every unit on every listed antenna."""
        if not units:
            raise ConfigurationError("no tags in the field")
        epcs = [unit.tag.epc for unit in units]
        if len(set(epcs)) != len(epcs):
            raise ConfigurationError("duplicate EPCs among field units")
        batch = ReportBatch()
        for port in rospec.antenna_ports:
            batch.extend(
                self._run_antenna(units, port, rospec.duration_s, start_time_s)
            )
        return batch.sorted_by_reader_time()

    def _run_antenna(
        self,
        units: Sequence[FieldUnit],
        port: int,
        duration_s: float,
        start_time_s: float,
    ) -> List[TagReportData]:
        antenna = self.antenna(port)
        by_epc = {unit.tag.epc: unit for unit in units}

        def participation(epc: str, time_s: float) -> float:
            unit = by_epc[epc]
            wavelength = self.wavelength_for_channel(self.channel_index_at(time_s))
            return self.channel.read_probability(
                antenna,
                unit.tag,
                unit.position(time_s),
                unit.orientation(time_s, antenna.position),
                wavelength,
            )

        inventory = simulate_inventory(
            list(by_epc),
            participation,
            duration_s,
            self.config.gen2,
            self.rng,
            start_time_s,
        )
        return self._observe_events(antenna, by_epc, inventory)

    def _observe_events(
        self,
        antenna: AntennaPort,
        by_epc: Dict[str, FieldUnit],
        inventory: InventoryResult,
    ) -> List[TagReportData]:
        reports: List[TagReportData] = []
        for epc, unit in by_epc.items():
            events = inventory.events_for(epc)
            if not events:
                continue
            times = np.array([event.time_s for event in events])
            channels = np.array(
                [self.channel_index_at(t) for t in times], dtype=int
            )
            wavelengths = np.array(
                [self.wavelength_for_channel(c) for c in channels]
            )
            positions = unit.positions(times)
            orientations = unit.orientations(times, antenna.position)
            snapshot = self.channel.observe(
                antenna, unit.tag, positions, orientations, wavelengths, self.rng
            )
            reader_us = timestamps_to_microseconds(
                self.clock.reader_timestamps(times)
            )
            host_us = timestamps_to_microseconds(
                self.clock.host_timestamps(times, self.rng)
            )
            for i in range(times.size):
                if not snapshot.energized[i]:
                    continue
                reports.append(
                    TagReportData(
                        epc=epc,
                        antenna_port=antenna.port_id,
                        channel_index=int(channels[i]),
                        reader_timestamp_us=int(reader_us[i]),
                        host_timestamp_us=int(host_us[i]),
                        phase_rad=float(snapshot.measured_phases_rad[i]),
                        rssi_dbm=float(snapshot.rssi_dbm[i] + self.rssi_bias_db),
                    )
                )
        return reports
