"""EPC Gen2 air protocol: framed-slotted-ALOHA inventory simulation.

The reader runs inventory rounds; each round opens ``2^Q`` slots and every
participating tag backscatters in one uniformly random slot.  A slot with
exactly one respondent yields a successful read; collisions and empty slots
yield nothing.  ``Q`` adapts between rounds with the standard floating-point
Q-algorithm so the frame size tracks the population.

Participation is probabilistic per tag and per round (orientation- and
power-dependent, supplied by the caller), which reproduces the paper's
observation that spinning tags are sampled *more densely* when their plane
faces the reader — the non-uniform sampling visible in Fig 4b.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

import numpy as np

from repro.errors import ConfigurationError

#: Probability callback: (epc, true_time_s) -> probability of answering.
ParticipationFn = Callable[[str, float], float]


@dataclass(frozen=True)
class Gen2Config:
    """Inventory-round parameters.

    Attributes
    ----------
    initial_q : starting frame-size exponent
    min_q, max_q : clamp for the adaptive Q
    slot_duration_s : duration of one slot (air-protocol timing)
    round_overhead_s : fixed per-round overhead (Query command, settling)
    q_step : Q-algorithm adjustment constant ``C``
    """

    initial_q: int = 2
    min_q: int = 0
    max_q: int = 8
    slot_duration_s: float = 0.003
    round_overhead_s: float = 0.005
    q_step: float = 0.35

    def __post_init__(self) -> None:
        if not self.min_q <= self.initial_q <= self.max_q:
            raise ConfigurationError("initial_q must lie within [min_q, max_q]")
        if self.slot_duration_s <= 0 or self.round_overhead_s < 0:
            raise ConfigurationError("invalid slot timing")


@dataclass(frozen=True)
class InventoryEvent:
    """One successful tag read (true-time domain, pre-observables)."""

    time_s: float
    epc: str
    round_index: int
    slot_index: int


@dataclass
class InventoryStats:
    """Aggregate counters of an inventory run."""

    rounds: int = 0
    slots: int = 0
    singletons: int = 0
    collisions: int = 0
    empties: int = 0

    @property
    def efficiency(self) -> float:
        """Fraction of slots that produced a read."""
        return self.singletons / self.slots if self.slots else 0.0


@dataclass(frozen=True)
class InventoryResult:
    events: List[InventoryEvent]
    stats: InventoryStats

    def events_for(self, epc: str) -> List[InventoryEvent]:
        return [event for event in self.events if event.epc == epc]


def simulate_inventory(
    epcs: Sequence[str],
    participation: ParticipationFn,
    duration_s: float,
    config: Gen2Config = Gen2Config(),
    rng: np.random.Generator | None = None,
    start_time_s: float = 0.0,
) -> InventoryResult:
    """Run framed-slotted-ALOHA inventory for ``duration_s`` seconds.

    Parameters
    ----------
    epcs : population of tag EPCs in the field
    participation : per-round answering probability of each tag
    duration_s : wall-clock duration of the inventory run
    start_time_s : true time at which the run starts
    """
    if duration_s <= 0:
        raise ValueError("duration_s must be positive")
    if len(set(epcs)) != len(epcs):
        raise ConfigurationError("duplicate EPCs in the population")
    rng = rng if rng is not None else np.random.default_rng()

    events: List[InventoryEvent] = []
    stats = InventoryStats()
    q_float = float(config.initial_q)
    now = start_time_s
    end = start_time_s + duration_s
    round_index = 0

    while now < end:
        q = int(round(np.clip(q_float, config.min_q, config.max_q)))
        frame_size = 2**q
        # Tags that answer this round pick a slot uniformly.
        slot_of: Dict[int, List[str]] = {}
        for epc in epcs:
            if rng.random() < participation(epc, now):
                slot = int(rng.integers(0, frame_size))
                slot_of.setdefault(slot, []).append(epc)

        round_collisions = 0
        round_singletons = 0
        for slot in range(frame_size):
            slot_time = now + config.round_overhead_s + slot * config.slot_duration_s
            if slot_time >= end:
                break
            respondents = slot_of.get(slot, [])
            stats.slots += 1
            if len(respondents) == 1:
                stats.singletons += 1
                round_singletons += 1
                events.append(
                    InventoryEvent(
                        time_s=slot_time,
                        epc=respondents[0],
                        round_index=round_index,
                        slot_index=slot,
                    )
                )
            elif len(respondents) > 1:
                stats.collisions += 1
                round_collisions += 1
            else:
                stats.empties += 1

        # Floating-point Q-algorithm: every collided slot nudges Q up by C,
        # every empty slot nudges it down by C (singletons leave it alone),
        # so the frame size settles where collisions balance empties —
        # close to one slot per participating tag.
        round_empties = frame_size - round_singletons - round_collisions
        q_float += config.q_step * (round_collisions - round_empties)
        q_float = float(np.clip(q_float, config.min_q, config.max_q))

        stats.rounds += 1
        round_index += 1
        now += config.round_overhead_s + frame_size * config.slot_duration_s

    return InventoryResult(events=events, stats=stats)


def expected_read_rate(
    population: int, config: Gen2Config = Gen2Config()
) -> float:
    """Rough upper bound on per-tag read rate [reads/s] at full participation.

    With a well-adapted frame (size ~ population) slotted ALOHA delivers
    ~``1/e`` singleton efficiency, shared across the population.
    """
    if population < 1:
        raise ValueError("population must be >= 1")
    slots_per_second = 1.0 / config.slot_duration_s
    return slots_per_second * float(np.exp(-1.0)) / population
