"""LLRP-style report messages.

Impinj readers extend the Low Level Reader Protocol (LLRP) to report, per
tag read: EPC, the reader-clock timestamp, the measured RF phase, peak RSSI,
the frequency-channel index and the antenna port.  These are exactly the
fields the Tagspin algorithms consume, so the simulator emits the same
records; JSON round-tripping supports recording and replaying sessions.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Sequence

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class TagReportData:
    """One LLRP tag report (the unit of input to the localization server)."""

    epc: str
    antenna_port: int
    channel_index: int
    #: Reader-clock timestamp [microseconds] — the timestamp Tagspin uses.
    reader_timestamp_us: int
    #: Host arrival timestamp [microseconds] — latency-polluted; kept to let
    #: experiments demonstrate why the reader clock must be used.
    host_timestamp_us: int
    phase_rad: float
    rssi_dbm: float

    @property
    def reader_time_s(self) -> float:
        return self.reader_timestamp_us / 1e6

    @property
    def host_time_s(self) -> float:
        return self.host_timestamp_us / 1e6

    def to_dict(self) -> Dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict) -> "TagReportData":
        return cls(
            epc=str(data["epc"]),
            antenna_port=int(data["antenna_port"]),
            channel_index=int(data["channel_index"]),
            reader_timestamp_us=int(data["reader_timestamp_us"]),
            host_timestamp_us=int(data["host_timestamp_us"]),
            phase_rad=float(data["phase_rad"]),
            rssi_dbm=float(data["rssi_dbm"]),
        )


@dataclass(frozen=True)
class ROSpec:
    """Reader-operation spec: what to inventory and how to report.

    A small subset of the real LLRP ROSpec, covering what the paper
    configures: immediate reporting of every read with phase enabled.
    """

    rospec_id: int = 1
    antenna_ports: Sequence[int] = (1,)
    duration_s: float = 10.0
    report_every_read: bool = True
    enable_phase: bool = True
    enable_rssi: bool = True

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ConfigurationError("ROSpec duration must be positive")
        if not self.antenna_ports:
            raise ConfigurationError("ROSpec needs at least one antenna port")


@dataclass
class ReportBatch:
    """A recorded stream of tag reports, serializable to JSON."""

    reports: List[TagReportData] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.reports)

    def extend(self, reports: Iterable[TagReportData]) -> None:
        self.reports.extend(reports)

    def filter_epc(self, epc: str) -> "ReportBatch":
        return ReportBatch([r for r in self.reports if r.epc == epc])

    def filter_antenna(self, antenna_port: int) -> "ReportBatch":
        return ReportBatch(
            [r for r in self.reports if r.antenna_port == antenna_port]
        )

    def epcs(self) -> List[str]:
        seen: Dict[str, None] = {}
        for report in self.reports:
            seen.setdefault(report.epc)
        return list(seen)

    def sorted_by_reader_time(self) -> "ReportBatch":
        return ReportBatch(
            sorted(self.reports, key=lambda r: r.reader_timestamp_us)
        )

    def to_json(self) -> str:
        return json.dumps([r.to_dict() for r in self.reports])

    @classmethod
    def from_json(cls, text: str) -> "ReportBatch":
        return cls([TagReportData.from_dict(item) for item in json.loads(text)])

    def save(self, path: str | Path) -> None:
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "ReportBatch":
        return cls.from_json(Path(path).read_text())
