"""Reader and host clocks.

The paper notes that reader and host keep separate clocks and that the
*reader* timestamp must be used for phase acquisition, "in order to erase the
influence of network latency".  The simulator reproduces this: host
timestamps are the reader timestamps plus a drifting offset and a jittery
network latency, so tests can demonstrate that using host time degrades the
spectrum while reader time does not.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class ClockModel:
    """Maps true event times to reader- and host-observed timestamps.

    Attributes
    ----------
    reader_offset_s : constant offset of the reader clock from true time [s]
    reader_drift_ppm : reader crystal drift [parts per million]
    host_offset_s : constant offset of the host clock [s]
    latency_mean_s : mean reader-to-host network latency [s]
    latency_jitter_s : standard deviation of the latency [s]
    """

    reader_offset_s: float = 0.0
    reader_drift_ppm: float = 0.0
    host_offset_s: float = 0.0
    latency_mean_s: float = 0.015
    latency_jitter_s: float = 0.008

    def reader_timestamps(self, true_times: np.ndarray) -> np.ndarray:
        """Reader-clock timestamps of events at ``true_times`` [s]."""
        true_times = np.asarray(true_times, dtype=float)
        drift = 1.0 + self.reader_drift_ppm * 1e-6
        return self.reader_offset_s + drift * true_times

    def host_timestamps(
        self, true_times: np.ndarray, rng: np.random.Generator
    ) -> np.ndarray:
        """Host-observed arrival timestamps, including network latency."""
        true_times = np.asarray(true_times, dtype=float)
        latency = self.latency_mean_s + self.latency_jitter_s * rng.standard_normal(
            true_times.shape
        )
        return self.host_offset_s + true_times + np.maximum(latency, 0.0)


def timestamps_to_microseconds(timestamps_s: np.ndarray) -> np.ndarray:
    """Convert seconds to the integer microseconds LLRP reports carry."""
    return np.round(np.asarray(timestamps_s, dtype=float) * 1e6).astype(np.int64)


def microseconds_to_seconds(timestamps_us: np.ndarray) -> np.ndarray:
    """Convert LLRP microsecond timestamps back to float seconds."""
    return np.asarray(timestamps_us, dtype=np.int64) / 1e6
