"""Streaming LLRP frame reassembly for TCP ingest.

A reader streams LLRP messages over TCP with no alignment guarantee:
one ``recv`` may hold half a header, three frames and the first byte of
a fourth.  :class:`FrameAccumulator` turns that arbitrary chunking back
into whole frames — feeding it the same byte stream split at *any*
fragmentation yields the identical frame sequence (property-tested in
``tests/hardware/test_wire_properties.py``).

Corruption handling is explicit and typed.  Every surfaced fault is a
:class:`~repro.errors.WireProtocolError` carrying the absolute byte
offset of the violation in the stream; the accumulator never raises a
bare ``struct.error`` and never hangs on garbage.  Two policies:

* ``on_error="raise"`` (default) — fail fast on the first corrupt
  header; the transport should drop the connection.
* ``on_error="resync"`` — skip forward byte-by-byte to the next
  plausible frame header (valid version bits, known message type, sane
  length), counting every skipped byte in :class:`StreamStats`.  This
  is how long-lived capture sessions survive a single mangled frame.

:class:`StreamingLLRPParser` stacks the decoder on top: it reassembles
frames, skips non-``RO_ACCESS_REPORT`` message types (keepalives and
friends — counted, never fatal) and yields decoded batches in either
representation — ``TagReportData`` objects or columnar
:class:`~repro.hardware.llrp_columnar.ColumnarReportBatch` arrays.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError, WireProtocolError
from repro.hardware.llrp import ReportBatch
from repro.hardware.llrp_columnar import (
    ColumnarReportBatch,
    decode_ro_access_report_columnar,
)
from repro.hardware.llrp_wire import (
    _VERSION,
    MSG_RO_ACCESS_REPORT,
    decode_message_header,
    decode_ro_access_report,
)

#: Frames above this are rejected as corrupt rather than buffered — a
#: mangled length field must never make the accumulator hoard memory.
DEFAULT_MAX_FRAME_BYTES = 1 << 24  # 16 MiB

_HEADER_LEN = 10


@dataclass
class StreamStats:
    """Counters of one accumulator/parser instance."""

    bytes_fed: int = 0
    frames: int = 0
    #: Frames whose message type the parser does not decode (skipped).
    frames_skipped: int = 0
    #: Resync events (one per corrupt region recovered from).
    resyncs: int = 0
    #: Bytes discarded while scanning for the next plausible header.
    bytes_skipped: int = 0
    batches: int = 0
    reports: int = 0

    def as_dict(self) -> dict:
        return {
            "bytes_fed": self.bytes_fed,
            "frames": self.frames,
            "frames_skipped": self.frames_skipped,
            "resyncs": self.resyncs,
            "bytes_skipped": self.bytes_skipped,
            "batches": self.batches,
            "reports": self.reports,
        }


def _plausible_header(buffer: memoryview, offset: int, max_frame: int) -> bool:
    """Whether ``buffer[offset:]`` starts a credible LLRP frame header.

    Deliberately the *same* predicate :meth:`FrameAccumulator._next_frame`
    applies at a frame base (version bits + length bounds) — if the two
    disagreed, the emitted frame sequence after a resync would depend on
    how the stream happened to be chunked.
    """
    if offset + _HEADER_LEN > len(buffer):
        return False
    header_word, length = struct.unpack_from(">HI", buffer, offset)
    if (header_word >> 10) & 0x7 != _VERSION:
        return False
    return _HEADER_LEN <= length <= max_frame


class FrameAccumulator:
    """Reassembles whole LLRP frames from arbitrary TCP chunk fragments.

    Feed it ``bytes`` in any fragmentation; it returns every frame that
    completed, buffering the remainder.  The emitted frame sequence is
    invariant under re-chunking of the same stream.
    """

    def __init__(
        self,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        on_error: str = "raise",
        stats: Optional[StreamStats] = None,
    ) -> None:
        if max_frame_bytes < _HEADER_LEN:
            raise ConfigurationError(
                f"max_frame_bytes must be at least {_HEADER_LEN}, "
                f"got {max_frame_bytes}"
            )
        if on_error not in ("raise", "resync"):
            raise ConfigurationError(
                f"on_error must be 'raise' or 'resync', got {on_error!r}"
            )
        self.max_frame_bytes = max_frame_bytes
        self.on_error = on_error
        self.stats = stats if stats is not None else StreamStats()
        self._buffer = bytearray()
        #: Absolute stream offset of ``self._buffer[0]``.
        self._base = 0

    # ------------------------------------------------------------------
    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting the rest of their frame."""
        return len(self._buffer)

    @property
    def stream_offset(self) -> int:
        """Absolute offset of the next unconsumed byte in the stream."""
        return self._base

    def feed(self, chunk: bytes) -> List[bytes]:
        """Absorb one chunk; returns every frame completed by it."""
        self.stats.bytes_fed += len(chunk)
        self._buffer.extend(chunk)
        frames: List[bytes] = []
        while True:
            frame = self._next_frame()
            if frame is None:
                return frames
            frames.append(frame)

    def _next_frame(self) -> Optional[bytes]:
        buffer = self._buffer
        if len(buffer) < _HEADER_LEN:
            return None
        try:
            _msg_type, length, _mid = decode_message_header(
                bytes(buffer[:_HEADER_LEN]), self._base
            )
            if length > self.max_frame_bytes:
                raise WireProtocolError(
                    f"LLRP message length {length} exceeds the "
                    f"{self.max_frame_bytes}-byte frame cap",
                    offset=self._base,
                )
        except WireProtocolError:
            if self.on_error == "raise":
                raise
            self._resync()
            return self._next_frame()
        if len(buffer) < length:
            return None
        frame = bytes(buffer[:length])
        del buffer[:length]
        self._base += length
        self.stats.frames += 1
        return frame

    def _resync(self) -> None:
        """Skip to the next plausible header (``on_error='resync'``)."""
        view = memoryview(self._buffer)
        skip = len(self._buffer)
        for offset in range(1, len(self._buffer) - _HEADER_LEN + 1):
            if _plausible_header(view, offset, self.max_frame_bytes):
                skip = offset
                break
        view.release()
        # Keep a header's worth of tail bytes: a plausible header may
        # still be forming at the very end of the buffer.
        if skip == len(self._buffer):
            skip = max(1, len(self._buffer) - _HEADER_LEN + 1)
        del self._buffer[:skip]
        self._base += skip
        self.stats.resyncs += 1
        self.stats.bytes_skipped += skip

    def close(self) -> None:
        """Declare end-of-stream; raises if a partial frame was pending."""
        if self._buffer:
            pending = len(self._buffer)
            if self.on_error == "resync":
                self.stats.bytes_skipped += pending
                self._base += pending
                self._buffer.clear()
                return
            raise WireProtocolError(
                f"stream ended mid-frame with {pending} pending byte(s)",
                offset=self._base,
            )


class StreamingLLRPParser:
    """Frame reassembly plus RO_ACCESS_REPORT decoding in one object.

    ``feed`` returns object batches; ``feed_columnar`` returns columnar
    ones.  A single parser instance must stick to one representation per
    stream only by convention — both paths share the accumulator, so
    mixing them mid-stream is safe, just unusual.
    """

    def __init__(
        self,
        max_frame_bytes: int = DEFAULT_MAX_FRAME_BYTES,
        on_error: str = "raise",
    ) -> None:
        self.stats = StreamStats()
        self.accumulator = FrameAccumulator(
            max_frame_bytes=max_frame_bytes,
            on_error=on_error,
            stats=self.stats,
        )

    # ------------------------------------------------------------------
    def _frames(self, chunk: bytes) -> List[Tuple[bytes, int]]:
        """Completed RO_ACCESS_REPORT frames with their stream offsets."""
        out: List[Tuple[bytes, int]] = []
        offset = self.accumulator.stream_offset
        for frame in self.accumulator.feed(chunk):
            frame_offset = offset
            offset += len(frame)
            message_type, _length, _mid = decode_message_header(
                frame, frame_offset
            )
            if message_type != MSG_RO_ACCESS_REPORT:
                self.stats.frames_skipped += 1
                continue
            out.append((frame, frame_offset))
        return out

    def feed(self, chunk: bytes) -> List[Tuple[int, ReportBatch]]:
        """Decode every batch completed by ``chunk`` (object path)."""
        batches: List[Tuple[int, ReportBatch]] = []
        for frame, frame_offset in self._frames(chunk):
            message_id, batch = decode_ro_access_report(frame, frame_offset)
            self.stats.batches += 1
            self.stats.reports += len(batch)
            batches.append((message_id, batch))
        return batches

    def feed_columnar(
        self, chunk: bytes
    ) -> List[Tuple[int, ColumnarReportBatch]]:
        """Decode every batch completed by ``chunk`` (columnar path)."""
        batches: List[Tuple[int, ColumnarReportBatch]] = []
        for frame, frame_offset in self._frames(chunk):
            message_id, cols = decode_ro_access_report_columnar(
                frame, frame_offset
            )
            self.stats.batches += 1
            self.stats.reports += len(cols)
            batches.append((message_id, cols))
        return batches

    def close(self) -> None:
        self.accumulator.close()
