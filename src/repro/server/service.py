"""The central localization server.

The paper's infrastructure includes "a central localization server which
stores the spinning tags' locations, moving speeds and other system
settings"; readers stream their signal snapshots to it and it answers with
their positions.  :class:`LocalizationServer` is that component: it ingests
LLRP reports incrementally (from any number of readers/antennas), tracks
per-antenna report buffers and serves 2D/3D position queries through the
Tagspin pipeline.

With ``engine="streaming"`` the repeated poll-after-append pattern gets
cheaper: the engine's :class:`~repro.perf.streaming
.StreamingSpectrumAccumulator` recognizes that the new batch extends the
previous one and appends only the new snapshots' residual columns.
Explicitly clearing a stream also clears that per-stream state (any
other buffer change is detected by the accumulator's own prefix check).
``engine="harmonic"`` (or ``"adaptive-harmonic"``) instead accelerates
the dense evaluation itself: steering phasors are realized by batched
inverse FFTs and cached per geometry, so re-locating against an updated
buffer (same disks, new phases) pays no steering work at all.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.core.locator import Fix2D, Fix3D
from repro.core.pipeline import PipelineConfig, TagspinSystem
from repro.errors import ConfigurationError, InsufficientDataError
from repro.hardware.llrp import ReportBatch, TagReportData
from repro.perf.engine import EngineSpec
from repro.server.registry import TagRegistry

#: A stream is identified by (reader name, antenna port).
StreamKey = Tuple[str, int]


def validate_stream_key(reader_name: str, antenna_port: int) -> None:
    """Reject stream keys that could never name a physical stream.

    An empty reader name or a negative antenna port silently creates a
    junk stream bucket that no query will ever find again; both indicate
    a misconfigured client, not bad RF data, so they raise
    :class:`~repro.errors.ConfigurationError` naming the value instead
    of being quarantined.
    """
    if not isinstance(reader_name, str) or not reader_name.strip():
        raise ConfigurationError(
            f"reader_name must be a non-empty string, got {reader_name!r}"
        )
    if antenna_port < 0:
        raise ConfigurationError(
            f"antenna_port must be non-negative, got {antenna_port!r} "
            f"(reader {reader_name!r})"
        )


@dataclass
class StreamBuffer:
    """Per-(reader, antenna) accumulation of reports."""

    reports: List[TagReportData] = field(default_factory=list)

    def spinning_read_counts(self, registry: TagRegistry) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for report in self.reports:
            if report.epc in registry:
                counts[report.epc] = counts.get(report.epc, 0) + 1
        return counts


class LocalizationServer:
    """Ingests report streams and answers reader-position queries."""

    def __init__(
        self,
        registry: TagRegistry,
        config: Optional[PipelineConfig] = None,
        max_buffer: int = 100_000,
        engine: EngineSpec = None,
    ) -> None:
        if max_buffer < 1:
            raise ValueError("max_buffer must be positive")
        self.registry = registry
        self.system = TagspinSystem(registry, config, engine=engine)
        self.max_buffer = max_buffer
        self._streams: Dict[StreamKey, StreamBuffer] = {}

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest(
        self, reader_name: str, reports: Iterable[TagReportData]
    ) -> int:
        """Append reports to the appropriate stream buffers.

        Reports for EPCs not in the registry are kept too (the reader may
        also see ordinary tags); the pipeline filters by registry itself.
        Returns the number of reports accepted.
        """
        validate_stream_key(reader_name, 0)
        accepted = 0
        for report in reports:
            if report.antenna_port < 0:
                raise ConfigurationError(
                    f"antenna_port must be non-negative, got "
                    f"{report.antenna_port!r} (reader {reader_name!r})"
                )
            key = (reader_name, report.antenna_port)
            buffer = self._streams.setdefault(key, StreamBuffer())
            buffer.reports.append(report)
            if len(buffer.reports) > self.max_buffer:
                # Keep the freshest window; old snapshots describe a stale
                # disk phase anyway.
                del buffer.reports[: len(buffer.reports) - self.max_buffer]
            accepted += 1
        return accepted

    def streams(self) -> List[StreamKey]:
        return sorted(self._streams)

    def snapshot_streams(self) -> Dict[StreamKey, List[TagReportData]]:
        """Copy of every stream buffer (checkpoint capture path)."""
        return {
            key: list(buffer.reports)
            for key, buffer in self._streams.items()
        }

    def restore_streams(
        self, streams: Dict[StreamKey, List[TagReportData]]
    ) -> int:
        """Replace all buffers wholesale (checkpoint restore path).

        Restored reports bypass per-report validation — they were
        validated before the snapshot was taken, and re-screening would
        falsely flag the whole window as duplicates.  Returns the number
        of reports restored.
        """
        restored: Dict[StreamKey, StreamBuffer] = {}
        for (reader_name, antenna_port), reports in streams.items():
            validate_stream_key(reader_name, antenna_port)
            window = list(reports)[-self.max_buffer :]
            restored[(reader_name, antenna_port)] = StreamBuffer(window)
        self._streams = restored
        # Any engine stream state describes the pre-restore buffers.
        self.system.engine.invalidate_streams()
        return sum(len(b.reports) for b in restored.values())

    def stream_report_count(self, reader_name: str, antenna_port: int) -> int:
        buffer = self._streams.get((reader_name, antenna_port))
        return len(buffer.reports) if buffer else 0

    def clear(self, reader_name: str, antenna_port: Optional[int] = None) -> None:
        """Drop buffered reports of one reader (optionally one antenna)."""
        keys = [
            key
            for key in self._streams
            if key[0] == reader_name
            and (antenna_port is None or key[1] == antenna_port)
        ]
        for key in keys:
            del self._streams[key]
        if keys:
            # Streaming engines key residual state per series, not per
            # stream buffer; dropping all of it is conservative and the
            # next fix simply rebuilds cold.
            self.system.engine.invalidate_streams()

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _batch_for(self, reader_name: str, antenna_port: int) -> ReportBatch:
        buffer = self._streams.get((reader_name, antenna_port))
        if buffer is None or not buffer.reports:
            raise InsufficientDataError(
                f"no reports buffered for {reader_name!r} antenna {antenna_port}"
            )
        return ReportBatch(list(buffer.reports))

    def batch_for(self, reader_name: str, antenna_port: int = 1) -> ReportBatch:
        """Copy of one antenna's buffered reports (health checks, CLI).

        Raises :class:`~repro.errors.InsufficientDataError` when the
        stream has no buffered reports.
        """
        return self._batch_for(reader_name, antenna_port)

    def locate_antenna_2d(
        self, reader_name: str, antenna_port: int = 1
    ) -> Fix2D:
        """2D position of one reader antenna from its buffered stream."""
        batch = self._batch_for(reader_name, antenna_port)
        return self.system.locate_2d(batch, antenna_port)

    def locate_antenna_3d(
        self, reader_name: str, antenna_port: int = 1
    ) -> Fix3D:
        """3D position of one reader antenna from its buffered stream."""
        batch = self._batch_for(reader_name, antenna_port)
        return self.system.locate_3d(batch, antenna_port)

    def locate_all_2d(self, reader_name: str) -> Dict[int, Fix2D]:
        """Locate every antenna of ``reader_name`` that has buffered data.

        Antennas whose buffers cannot support a fix are skipped — the paper
        calibrates "even multiple target antennas" in one pass, and partial
        coverage is normal while the reader is still interrogating.
        """
        fixes: Dict[int, Fix2D] = {}
        for name, port in self.streams():
            if name != reader_name:
                continue
            try:
                fixes[port] = self.locate_antenna_2d(name, port)
            except InsufficientDataError:
                continue
        return fixes
