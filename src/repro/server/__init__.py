"""The central localization server: registry and report-stream service."""
