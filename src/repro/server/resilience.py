"""A supervised, fault-tolerant localization server.

:class:`ResilientLocalizationServer` wraps the plain
:class:`~repro.server.service.LocalizationServer` with the full
robustness stack:

* every ingested report passes a per-stream
  :class:`~repro.robustness.validation.ReportValidator` (duplicates,
  corrupt fields and pi slips never reach a buffer);
* every fix runs through the *gated* pipeline
  (:meth:`~repro.core.pipeline.TagspinSystem.locate_2d_diagnosed`),
  which excludes untrustworthy disks and falls back from R to Q;
* transient failures (:class:`~repro.errors.TransientError`) are
  retried with exponential backoff while the buffer window grows —
  either passively (a live reader keeps streaming) or actively via a
  ``data_source`` callback that pulls more reports;
* the :class:`~repro.server.health.DeploymentMonitor` runs on a cadence
  and its findings ride along on each fix;
* every fix carries a :class:`~repro.robustness.diagnostics.FixDiagnostics`
  record, and each (reader, antenna) stream exposes a machine-readable
  :class:`~repro.robustness.diagnostics.DegradationState`.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, replace
from typing import Callable, Dict, Iterable, Optional, Tuple

import numpy as np

from repro.core.locator import Fix2D, Fix3D
from repro.core.pipeline import PipelineConfig
from repro.errors import PermanentError, TransientError
from repro.hardware.llrp import TagReportData
from repro.obs.metrics import get_registry
from repro.obs.trace import get_tracer
from repro.perf.engine import EngineSpec
from repro.robustness.diagnostics import (
    DegradationState,
    FixDiagnostics,
    PipelineDiagnostics,
)
from repro.robustness.validation import (
    QuarantineStats,
    ReportValidator,
    ValidationConfig,
)
from repro.server.health import DeploymentMonitor
from repro.server.registry import TagRegistry
from repro.server.service import (
    LocalizationServer,
    StreamKey,
    validate_stream_key,
)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential-backoff policy for transient localization failures.

    With ``jitter_rng`` set, :meth:`delay` applies *full jitter*: the
    wait is uniform in ``[0, backoff)`` instead of the deterministic
    backoff itself.  A fleet of actors retrying in lockstep (e.g. after
    a reader drops off and every deployment's fix starts failing at the
    same instant) would otherwise thunder-herd the solver on a
    synchronized cadence; full jitter decorrelates them while keeping
    the same mean pressure decay.  Leaving ``jitter_rng`` unset keeps
    the deterministic schedule tests rely on.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.5
    backoff_factor: float = 2.0
    #: Ceiling on the (pre-jitter) backoff; exponential growth saturates
    #: here instead of running away on high attempt counts.
    backoff_max_s: float = float("inf")
    #: When set, delays are drawn uniform from [0, backoff) (full jitter).
    jitter_rng: Optional[random.Random] = None

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based)."""
        backoff = min(
            self.backoff_max_s,
            self.backoff_base_s * self.backoff_factor ** (attempt - 1),
        )
        if self.jitter_rng is not None:
            return self.jitter_rng.uniform(0.0, backoff)
        return backoff


#: Pulls additional reports for (reader_name, antenna_port, attempt);
#: whatever it returns is ingested before the retry, growing the window.
DataSource = Callable[[str, int, int], Iterable[TagReportData]]


class ResilientLocalizationServer(LocalizationServer):
    """Localization server with validation, gating, retry and supervision.

    Parameters
    ----------
    validation : screen thresholds for the per-stream report validators.
    retry : backoff policy for :class:`~repro.errors.TransientError`.
    data_source : optional callback delivering more reports between
        retries (e.g. re-polling a live reader).  Without it, retries
        rely on reports ingested concurrently by other threads.
    monitor_every : run the deployment monitor every N locate calls per
        stream (1 = every call).
    sleep : injection point for the backoff wait (tests pass a stub).
    degraded_quarantine_ratio : fraction of rejected ingested reports
        above which a stream is considered degraded even if a fix works.
    engine : spectrum-evaluation strategy passed through to the pipeline
        (see :mod:`repro.perf`); the gated pipeline's repeated passes
        (scoring, triangulation, R-to-Q fallback) make the ``"batched"``
        engine's caches especially effective here.  ``"adaptive"``
        additionally shrinks each pass to a coarse-to-fine search,
        ``"harmonic"`` replaces dense steering evaluation with batched
        inverse FFTs over cached per-geometry harmonic tables
        (``"adaptive-harmonic"`` composes the two), and
        ``"streaming"`` makes poll-after-append cheap; all stay safe
        under this server's quarantining because any validator decision
        that reorders, drops or re-references early reports changes the
        series prefix, which the streaming accumulator detects and
        answers with a cold rebuild rather than stale state.
    """

    def __init__(
        self,
        registry: TagRegistry,
        config: Optional[PipelineConfig] = None,
        max_buffer: int = 100_000,
        validation: Optional[ValidationConfig] = None,
        retry: Optional[RetryPolicy] = None,
        data_source: Optional[DataSource] = None,
        monitor: Optional[DeploymentMonitor] = None,
        monitor_every: int = 5,
        sleep: Callable[[float], None] = time.sleep,
        degraded_quarantine_ratio: float = 0.05,
        engine: EngineSpec = None,
    ) -> None:
        base = config if config is not None else PipelineConfig()
        super().__init__(
            registry, replace(base, disk_gating=True), max_buffer, engine=engine
        )
        if monitor_every < 1:
            raise ValueError("monitor_every must be positive")
        self.validation = (
            validation if validation is not None else ValidationConfig()
        )
        self.retry = retry if retry is not None else RetryPolicy()
        self.data_source = data_source
        self.monitor = (
            monitor
            if monitor is not None
            else DeploymentMonitor(registry, self.system.config)
        )
        self.monitor_every = monitor_every
        self.degraded_quarantine_ratio = degraded_quarantine_ratio
        self._sleep = sleep
        self._validators: Dict[StreamKey, ReportValidator] = {}
        self._states: Dict[StreamKey, DegradationState] = {}
        self._last_diagnostics: Dict[StreamKey, FixDiagnostics] = {}
        self._health: Dict[StreamKey, Dict[str, Tuple[str, ...]]] = {}
        self._locate_counts: Dict[StreamKey, int] = {}

    # ------------------------------------------------------------------
    # Ingestion with validation
    # ------------------------------------------------------------------
    def ingest(
        self, reader_name: str, reports: Iterable[TagReportData]
    ) -> int:
        """Validate and buffer reports; returns the number accepted."""
        validate_stream_key(reader_name, 0)
        by_port: Dict[int, list] = {}
        for report in reports:
            validate_stream_key(reader_name, report.antenna_port)
            by_port.setdefault(report.antenna_port, []).append(report)
        accepted = 0
        tracer = get_tracer()
        with tracer.span("ingest", reader=reader_name, path="object") as span:
            for port, port_reports in by_port.items():
                validator = self._validators.setdefault(
                    (reader_name, port), ReportValidator(self.validation)
                )
                with tracer.span("validate", port=port):
                    survivors = validator.process(port_reports)
                accepted += super().ingest(reader_name, survivors)
            span.annotate(accepted=accepted)
        return accepted

    def ingest_columnar(self, reader_name: str, cols) -> int:
        """Validate and buffer a columnar batch; returns the number accepted.

        The wire-ingest counterpart of :meth:`ingest`: the batch arrives
        as a :class:`~repro.hardware.llrp_columnar.ColumnarReportBatch`,
        the stateless screens run vectorized over its columns
        (:meth:`~repro.robustness.validation.ReportValidator
        .process_columnar`), and only validator-approved survivors are
        materialized as objects for the stream buffers.  Identical
        accounting and buffer contents to ``ingest(cols.to_reports())``.
        """
        validate_stream_key(reader_name, 0)
        ports = cols.antenna_ports()
        for port in ports:
            validate_stream_key(reader_name, port)
        accepted = 0
        tracer = get_tracer()
        with tracer.span(
            "ingest", reader=reader_name, path="columnar"
        ) as span:
            for port in ports:
                sub = cols.select(np.asarray(cols.antenna_port == port))
                validator = self._validators.setdefault(
                    (reader_name, port), ReportValidator(self.validation)
                )
                with tracer.span("validate", port=port):
                    survivors = validator.process_columnar(sub)
                accepted += LocalizationServer.ingest(
                    self, reader_name, survivors
                )
            span.annotate(accepted=accepted)
        return accepted

    def quarantine_stats(
        self, reader_name: str, antenna_port: int
    ) -> QuarantineStats:
        """Validator counters of one stream (zeros if nothing ingested)."""
        validator = self._validators.get((reader_name, antenna_port))
        return validator.stats if validator else QuarantineStats()

    def all_quarantine_stats(self) -> Dict[StreamKey, QuarantineStats]:
        """Validator counters of every stream that ever ingested.

        Includes streams whose buffers were since cleared or trimmed —
        the counters are a lifetime ledger, which is what fleet-level
        accounting reconciliation needs.
        """
        return {
            key: validator.stats
            for key, validator in self._validators.items()
        }

    # ------------------------------------------------------------------
    # Worker-side lifecycle hooks (sharded fleet)
    # ------------------------------------------------------------------
    def engine_cache_stats(self) -> dict:
        """The spectrum engine's cache counters for this deployment.

        Worker processes report these back to the sharded fleet's parent
        so ``bench-engine``/fleet bench JSON can aggregate cache and
        harmonic-order stats across the whole fleet instead of reading
        the parent's (idle) engine.
        """
        return self.system.engine.cache_stats()

    def close(self) -> None:
        """Release engine-held resources (worker pools, caches).

        Called by sharded-fleet workers during graceful shutdown; safe to
        call more than once.
        """
        self.system.engine.close()

    # ------------------------------------------------------------------
    # Supervised queries
    # ------------------------------------------------------------------
    def locate_antenna_2d(
        self, reader_name: str, antenna_port: int = 1
    ) -> Fix2D:
        fix, _diagnostics = self.locate_antenna_2d_diagnosed(
            reader_name, antenna_port
        )
        return fix

    def locate_antenna_3d(
        self, reader_name: str, antenna_port: int = 1
    ) -> Fix3D:
        fix, _diagnostics = self.locate_antenna_3d_diagnosed(
            reader_name, antenna_port
        )
        return fix

    def locate_antenna_2d_diagnosed(
        self, reader_name: str, antenna_port: int = 1
    ) -> Tuple[Fix2D, FixDiagnostics]:
        """2D fix plus its provenance record."""
        return self._supervised_locate(
            reader_name,
            antenna_port,
            lambda batch: self.system.locate_2d_diagnosed(batch, antenna_port),
            mode="2d",
        )

    def locate_antenna_3d_diagnosed(
        self, reader_name: str, antenna_port: int = 1
    ) -> Tuple[Fix3D, FixDiagnostics]:
        """3D fix plus its provenance record."""
        return self._supervised_locate(
            reader_name,
            antenna_port,
            lambda batch: self.system.locate_3d_diagnosed(batch, antenna_port),
            mode="3d",
        )

    def _supervised_locate(self, reader_name, antenna_port, locate,
                           mode="2d"):
        key: StreamKey = (reader_name, antenna_port)
        registry = get_registry()
        fix_seconds = registry.histogram(
            "tagspin_fix_seconds",
            "End-to-end supervised fix latency (includes retries).",
            mode=mode,
        )
        attempts = 0
        with get_tracer().span(
            "fix", reader=reader_name, port=antenna_port, mode=mode
        ) as span, fix_seconds.time():
            try:
                while True:
                    attempts += 1
                    try:
                        batch = self._batch_for(reader_name, antenna_port)
                        fix, pipeline_diag = locate(batch)
                        break
                    except PermanentError:
                        self._states[key] = DegradationState.FAILED
                        raise
                    except TransientError:
                        if attempts >= self.retry.max_attempts:
                            self._states[key] = DegradationState.FAILED
                            raise
                        registry.counter(
                            "tagspin_fix_retries_total",
                            "Transient fix failures that were retried.",
                        ).inc()
                        self._sleep(self.retry.delay(attempts))
                        self._refill(reader_name, antenna_port, attempts)
            except (PermanentError, TransientError) as exc:
                span.annotate(attempts=attempts, outcome="failed")
                registry.counter(
                    "tagspin_server_fixes_total",
                    "Supervised fixes by outcome.",
                    mode=mode,
                    outcome=(
                        "permanent_error"
                        if isinstance(exc, PermanentError)
                        else "transient_exhausted"
                    ),
                ).inc()
                raise

            self._maybe_monitor(key)
            diagnostics = self._build_diagnostics(
                key, fix, pipeline_diag, attempts
            )
            self._states[key] = diagnostics.degradation
            self._last_diagnostics[key] = diagnostics
            span.annotate(
                attempts=attempts,
                outcome="ok",
                degradation=diagnostics.degradation.value,
            )
            registry.counter(
                "tagspin_server_fixes_total",
                "Supervised fixes by outcome.",
                mode=mode,
                outcome="ok",
            ).inc()
        return fix, diagnostics

    def _refill(self, reader_name: str, antenna_port: int, attempt: int) -> None:
        """Grow the buffer window before a retry, if a source is wired."""
        if self.data_source is None:
            return
        more = self.data_source(reader_name, antenna_port, attempt)
        if more is not None:
            self.ingest(reader_name, more)

    # ------------------------------------------------------------------
    # Supervision
    # ------------------------------------------------------------------
    def _maybe_monitor(self, key: StreamKey) -> None:
        count = self._locate_counts.get(key, 0)
        self._locate_counts[key] = count + 1
        if count % self.monitor_every != 0:
            return
        try:
            batch = self._batch_for(*key)
        except TransientError:
            return
        reports = self.monitor.check_all(batch, key[1])
        self._health[key] = {
            epc: report.issues
            for epc, report in reports.items()
            if report.issues
        }

    def _build_diagnostics(
        self,
        key: StreamKey,
        fix,
        pipeline_diag: PipelineDiagnostics,
        attempts: int,
    ) -> FixDiagnostics:
        quarantine = self.quarantine_stats(*key).snapshot()
        health_issues = dict(self._health.get(key, {}))
        degraded = (
            pipeline_diag.degraded
            or attempts > 1
            or quarantine.quarantine_ratio > self.degraded_quarantine_ratio
            or bool(health_issues)
        )
        return FixDiagnostics(
            reader_name=key[0],
            antenna_port=key[1],
            pipeline=pipeline_diag,
            quarantine=quarantine,
            degradation=(
                DegradationState.DEGRADED
                if degraded
                else DegradationState.HEALTHY
            ),
            attempts=attempts,
            confidence=fix.confidence,
            health_issues=health_issues,
        )

    # ------------------------------------------------------------------
    # State accessors
    # ------------------------------------------------------------------
    def restore_degradation(
        self, states: Dict[StreamKey, DegradationState]
    ) -> None:
        """Carry degradation states over from a checkpoint restore."""
        self._states.update(states)

    def degradation_state(
        self, reader_name: str, antenna_port: int = 1
    ) -> DegradationState:
        """Last known service state of one stream (HEALTHY before use)."""
        return self._states.get(
            (reader_name, antenna_port), DegradationState.HEALTHY
        )

    def degradation_states(self) -> Dict[StreamKey, DegradationState]:
        """Service state of every stream that has been queried."""
        return dict(self._states)

    def last_diagnostics(
        self, reader_name: str, antenna_port: int = 1
    ) -> Optional[FixDiagnostics]:
        """Diagnostics of the most recent fix on one stream, if any."""
        return self._last_diagnostics.get((reader_name, antenna_port))
